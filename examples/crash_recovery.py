"""Crash-injection demo: pull the plug mid-write, then recover.

Runs a random-write workload against MGSP, crashes the machine at an
arbitrary persistence event with adversarial cache-line loss, recovers
from the metadata log, and verifies that

- every completed write survived (durability), and
- the in-flight write is all-or-nothing (atomicity).

Run:  python examples/crash_recovery.py
"""

import random

from repro import MgspConfig, MgspFilesystem, NvmDevice, recover
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan

CAPACITY = 512 * 1024


def main() -> None:
    fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig())
    f = fs.create("victim.dat", capacity=CAPACITY)
    fs.device.drain()  # file creation is safely on media

    rng = random.Random(2024)
    reference = bytearray(CAPACITY)  # state after the last COMPLETED write
    in_flight = None

    # Crash somewhere inside roughly the 40th write.
    fs.device.crash_plan = CrashPlan(crash_after=1500)
    completed = 0
    try:
        while True:
            off = rng.randrange(0, CAPACITY - 1)
            length = min(rng.choice([64, 700, 4096, 30000]), CAPACITY - off)
            payload = bytes([rng.randrange(1, 256)]) * length
            in_flight = (off, length, payload)
            f.write(off, payload)
            reference[off : off + length] = payload
            in_flight = None
            completed += 1
    except CrashRequested:
        pass
    print(f"CRASH after {completed} completed writes "
          f"(one write in flight: {in_flight is not None})")

    # Compose a post-crash image: each unfenced 8-byte word independently
    # survives with p=0.5 (cache lines evict whenever they like).
    image = fs.device.crash_image(rng=random.Random(7), persist_probability=0.5)

    # --- the machine reboots ------------------------------------------------
    device = NvmDevice.from_image(bytes(image))
    recovered_fs, stats = recover(device)
    print(f"recovery: {stats.entries_replayed} metadata-log entries replayed, "
          f"{stats.log_bytes_written_back:,} log bytes written back, "
          f"{stats.elapsed_ns / 1e6:.2f} ms of virtual time")

    f2 = recovered_fs.open("victim.dat")
    got = f2.read(0, f2.size).ljust(CAPACITY, b"\0")

    old = bytes(reference)
    if got == old:
        print("post-crash state == state after last completed write "
              "(in-flight write rolled back cleanly)")
    else:
        off, length, payload = in_flight
        new = bytearray(reference)
        new[off : off + length] = payload
        assert got == bytes(new), "corruption detected!"
        print(f"post-crash state includes the in-flight write "
              f"[{off}, {off + length}) in full (it had committed)")
    print("atomicity + durability verified.")


if __name__ == "__main__":
    main()
