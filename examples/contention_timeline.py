"""Visualize WHY the scalability results (Fig 10) look the way they do.

Runs the same 8-thread, 1 KB synchronized-write burst against Ext4-DAX
(one journal, group commit) and MGSP (fine-grained MGL locks), then
renders each replay as an ASCII Gantt chart: '=' compute, '#' media I/O,
'.' waiting on a lock or device channel.

Run:  python examples/contention_timeline.py
"""

from repro.bench.registry import make_fs
from repro.inspect import render_timeline
from repro.sim.engine import ReplayEngine
from repro.workloads.fio import FioJob, _offsets, _prefill


def collect_traces(fs_name: str, threads: int = 8, ops_per_thread: int = 6):
    fs = make_fs(fs_name, device_size=64 << 20)
    job = FioJob(op="write", bs=1024, fsize=8 << 20, fsync=1, threads=threads)
    handle = fs.create("hot.dat", capacity=job.fsize)
    _prefill(fs, handle, job.fsize)

    streams = [[] for _ in range(threads)]
    offsets = [_offsets(job, t, ops_per_thread) for t in range(threads)]
    for i in range(ops_per_thread):
        for t in range(threads):
            if hasattr(fs, "current_thread"):
                fs.current_thread = t
            handle.write(offsets[t][i], b"\xab" * job.bs)
            handle.fsync()
            streams[t].extend(fs.take_traces())
    if hasattr(fs, "end_thread"):
        for t in range(threads):
            fs.end_thread(t)
            streams[t].extend(fs.take_traces())
    return fs, streams


def main() -> None:
    for name in ("Ext4-DAX", "MGSP"):
        fs, streams = collect_traces(name)
        result = ReplayEngine(fs.timing).run(streams, record_timeline=True)
        total_ops = sum(len(s) for s in streams)
        print(f"\n=== {name}: 8 threads x 6 synchronized 1K writes "
              f"(makespan {result.makespan_ns / 1e3:.1f} us, "
              f"lock wait {result.total_lock_wait_ns / 1e3:.1f} us) ===")
        print(render_timeline(result, width=100))
    print(
        "\nExt4-DAX rows spend their life dotted — every fsync funnels through\n"
        "the journal's exclusive commit. MGSP rows stay busy: per-node MGL\n"
        "locks rarely collide, so only the NVM channels are shared."
    )


if __name__ == "__main__":
    main()
