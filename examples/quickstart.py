"""Quickstart: crash-consistent memory-mapped I/O with MGSP.

Creates a simulated NVM device, mounts MGSP on it, and shows the core
guarantee: every write is a synchronized atomic operation — no fsync
needed, write amplification stays near 1.

Run:  python examples/quickstart.py
"""

from repro import MgspConfig, MgspFilesystem


def main() -> None:
    # One simulated 128 MB Optane-like DIMM, MGSP mounted on top.
    fs = MgspFilesystem(device_size=128 << 20, config=MgspConfig())

    f = fs.create("notes.txt", capacity=1 << 20)

    # Writes of any size and alignment; each one is atomic + durable on
    # return. Fine-grained updates (here 7 bytes) do not rewrite pages.
    f.write(0, b"hello, persistent world!\n")
    f.write(7, b"MUTABLE")
    print("file content:", f.read(0, 26))

    # Multi-granularity: a large write uses coarse-grained shadow logs...
    f.write(4096, b"\xca" * 256 * 1024)
    # ...and a byte write right after uses a 128-byte sub-block log.
    f.write(5000, b"!")
    assert f.read(5000, 1) == b"!"

    stats = fs.device.stats
    print(f"API bytes written : {fs.api.bytes_written:>10,}")
    print(f"device bytes      : {stats.stored_bytes:>10,}")
    print(f"write amplification: {fs.device.write_amplification(fs.api.bytes_written):.3f}")

    # fsync is a no-op performance-wise: the data is already safe.
    f.fsync()

    # Closing writes the shadow logs back and reclaims the log space.
    f.close()
    again = fs.open("notes.txt")
    assert again.read(0, 5) == b"hello"
    print("reopened after close: OK")

    # Simulated time spent, from the cost recorder:
    total_ns = sum(t.duration_ns(fs.timing.lock_ns) for t in fs.take_traces())
    print(f"virtual time spent: {total_ns / 1e3:.1f} us")


if __name__ == "__main__":
    main()
