"""An embedded database choosing its crash-safety provider.

SQLite-style deployments pay twice for consistency: once in the DB's
journal (WAL) and once in the file system. With MGSP providing
operation-level atomicity, the database can run with journal_mode=OFF
and stay crash-safe *per page write* while going faster.

This example runs the same key-value workload on:
  - Ext4-DAX + WAL   (classic: DB journal on a metadata-only FS)
  - MGSP + WAL       (belt and braces)
  - MGSP + OFF       (consistency delegated to the FS)

Run:  python examples/database_on_mgsp.py
"""

import random

from repro import Ext4Dax, MgspFilesystem
from repro.db import Database


def run_workload(fs, journal_mode: str) -> float:
    db = Database(fs, name="app.db", journal_mode=journal_mode)
    users = db.create_table("users")
    events = db.create_table("events")
    rng = random.Random(99)
    fs.take_traces()  # measure only the workload

    for txn in range(150):
        db.begin()
        uid = rng.randrange(500)
        users.insert((uid,), (f"user-{uid}", txn, rng.random()))
        for _ in range(3):
            events.insert((uid, txn, rng.randrange(1 << 30)), ("click", txn))
        if txn % 5 == 0:
            users.get((rng.randrange(500),))
        db.commit()

    elapsed = sum(t.duration_ns(fs.timing.lock_ns) for t in fs.take_traces())
    db.close()
    return 150 / (elapsed * 1e-9)  # transactions per second


def main() -> None:
    configs = [
        ("Ext4-DAX + WAL", Ext4Dax(device_size=128 << 20), "wal"),
        ("MGSP     + WAL", MgspFilesystem(device_size=128 << 20), "wal"),
        ("MGSP     + OFF", MgspFilesystem(device_size=128 << 20), "off"),
    ]
    results = []
    for label, fs, mode in configs:
        tps = run_workload(fs, mode)
        amp = fs.device.write_amplification(fs.api.bytes_written)
        results.append((label, tps, amp))

    base = results[0][1]
    print(f"{'configuration':<16} {'tx/s':>12} {'vs baseline':>12} {'write amp':>10}")
    for label, tps, amp in results:
        print(f"{label:<16} {tps:>12,.0f} {tps / base - 1:>+11.1%} {amp:>10.2f}")
    print("\nMGSP+OFF keeps crash safety (operation-level atomicity in the FS)")
    print("while skipping the double journaling — the paper's Fig 11/12 story.")


if __name__ == "__main__":
    main()
