"""Failure-atomic multi-write transactions (the paper's future work).

A toy bank ledger keeps one fixed-size account record per slot in a
single file. A transfer must debit one account and credit another —
atomically, across crashes. With plain files you need a WAL; with MGSP
transactions the file system gives you the group commit directly.

Run:  python examples/atomic_transactions.py
"""

import random
import struct

from repro import MgspFilesystem, NvmDevice, recover
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan

ACCOUNTS = 64
RECORD = struct.Struct("<q56x")  # balance + padding = one cache line


def balance(handle, account: int) -> int:
    raw = handle.read(account * RECORD.size, RECORD.size)
    return RECORD.unpack(raw.ljust(RECORD.size, b"\0"))[0] if raw else 0


def main() -> None:
    fs = MgspFilesystem(device_size=64 << 20)
    ledger = fs.create("ledger", capacity=1 << 20)

    # Seed every account with 1000 units.
    for account in range(ACCOUNTS):
        ledger.write(account * RECORD.size, RECORD.pack(1000))
    fs.device.drain()
    total0 = sum(balance(ledger, a) for a in range(ACCOUNTS))
    print(f"initial total: {total0}")

    # Random transfers, each as one FS-level transaction... until the
    # machine dies mid-stream.
    rng = random.Random(42)
    fs.device.crash_plan = CrashPlan(crash_after=2000)
    transfers = 0
    try:
        while True:
            src, dst = rng.sample(range(ACCOUNTS), 2)
            amount = rng.randrange(1, 200)
            with fs.begin_transaction(ledger) as txn:
                txn.write(src * RECORD.size, RECORD.pack(balance(ledger, src) - amount))
                txn.write(dst * RECORD.size, RECORD.pack(balance(ledger, dst) + amount))
            transfers += 1
    except CrashRequested:
        pass
    print(f"CRASH after {transfers} committed transfers (one possibly in flight)")

    # Reboot with adversarial cache-line loss; recover; audit the books.
    image = fs.device.crash_image(rng=random.Random(7))
    recovered, stats = recover(NvmDevice.from_image(bytes(image)))
    ledger2 = recovered.open("ledger")
    total1 = sum(balance(ledger2, a) for a in range(ACCOUNTS))
    print(f"entries replayed: {stats.entries_replayed}, "
          f"orphaned txn members discarded: {stats.entries_discarded}")
    print(f"post-crash total: {total1}")
    assert total1 == total0, "money was created or destroyed!"
    print("conservation of money verified — no torn transfers.")


if __name__ == "__main__":
    main()
