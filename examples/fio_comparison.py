"""Mini FIO sweep: the paper's Fig 8 in one script.

Runs sequential writes at several block sizes against all four file
systems (each op followed by fsync, like the paper's fair comparison)
and prints throughput plus MGSP's speedup.

Run:  python examples/fio_comparison.py [--random] [--threads N]
"""

import argparse

from repro.bench.harness import run_one
from repro.util import fmt_size
from repro.workloads.fio import FioJob

SIZES = [512, 1024, 4096, 16384, 65536]
SYSTEMS = ["Ext4-DAX", "Libnvmmio", "NOVA", "MGSP"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--random", action="store_true", help="random offsets")
    parser.add_argument("--threads", type=int, default=1)
    parser.add_argument("--nops", type=int, default=300, help="operations per run")
    args = parser.parse_args()
    op = "randwrite" if args.random else "write"

    print(f"{op}, fsync per op, {args.threads} thread(s) — MB/s (simulated)\n")
    header = f"{'bs':>6} " + "".join(f"{name:>12}" for name in SYSTEMS) + f"{'MGSP/DAX':>10}"
    print(header)
    print("-" * len(header))
    for bs in SIZES:
        job = FioJob(
            op=op,
            bs=bs,
            fsize=16 << 20,
            fsync=1,
            threads=args.threads,
            nops=args.nops * args.threads,
        )
        row = {name: run_one(name, job).throughput_mb_s for name in SYSTEMS}
        cells = "".join(f"{row[name]:>12.0f}" for name in SYSTEMS)
        print(f"{fmt_size(bs):>6} {cells}{row['MGSP'] / row['Ext4-DAX']:>9.2f}x")


if __name__ == "__main__":
    main()
