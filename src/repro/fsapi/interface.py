"""The POSIX-ish surface every simulated file system implements."""

from __future__ import annotations

import abc
import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import BadFileDescriptor
from repro.fsapi.volume import Volume
from repro.nvm.device import NvmDevice
from repro.nvm.timing import OptaneTiming, TimingModel
from repro.obs.spans import NULL_SINK
from repro.sim.trace import TraceRecorder


class OpenFlags(enum.Flag):
    RDONLY = 0
    RDWR = enum.auto()
    CREAT = enum.auto()
    ATOMIC = enum.auto()  # the paper's O_ATOMIC: route through the library


@dataclass
class ApiStats:
    """Traffic at the file-system API (the denominators for Table II)."""

    bytes_written: int = 0
    bytes_read: int = 0
    writes: int = 0
    reads: int = 0
    fsyncs: int = 0

    def snapshot(self) -> "ApiStats":
        return ApiStats(**vars(self))

    def delta(self, since: "ApiStats") -> "ApiStats":
        return ApiStats(
            bytes_written=self.bytes_written - since.bytes_written,
            bytes_read=self.bytes_read - since.bytes_read,
            writes=self.writes - since.writes,
            reads=self.reads - since.reads,
            fsyncs=self.fsyncs - since.fsyncs,
        )


class FileHandle(abc.ABC):
    """An open file. Offsets are explicit (pread/pwrite style)."""

    def __init__(self, fs: "FileSystem", name: str) -> None:
        self.fs = fs
        self.name = name
        self.closed = False
        self.read_only = False

    @property
    @abc.abstractmethod
    def size(self) -> int:
        ...

    @abc.abstractmethod
    def write(self, offset: int, data: bytes) -> int:
        ...

    @abc.abstractmethod
    def read(self, offset: int, length: int) -> bytes:
        ...

    @abc.abstractmethod
    def fsync(self) -> None:
        ...

    def mmap_view(self) -> Tuple[NvmDevice, int, int]:
        """(device, base offset, capacity) for direct load/store access.

        Only meaningful for DAX-capable file systems; the default raises.
        """
        raise NotImplementedError(f"{self.fs.name} does not support DAX mmap")

    def close(self) -> None:
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise BadFileDescriptor(f"{self.name} is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if self.read_only:
            from repro.errors import ReadOnlyError

            raise ReadOnlyError(f"{self.name} was opened read-only")

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FileSystem(abc.ABC):
    """A mounted file system over one NVM device.

    ``kernel_space`` decides whether each call pays a syscall or a
    user-space library-call entry cost — the central software-stack
    difference the paper measures.
    """

    name = "fs"
    kernel_space = True
    #: What the FS guarantees: "metadata" | "fsync" | "operation"
    consistency = "metadata"

    #: fraction of the device given to the log/CoW area (per-FS override)
    log_fraction = 0.30

    def __init__(
        self,
        device: Optional[NvmDevice] = None,
        device_size: int = 256 * 1024 * 1024,
        timing: Optional[TimingModel] = None,
    ) -> None:
        from repro.fsapi.layout import VolumeLayout

        self.timing = timing or OptaneTiming()
        self.device = device or NvmDevice(device_size, timing=self.timing)
        self.recorder = TraceRecorder(self.timing)
        self.device.tracer = self.recorder
        layout = VolumeLayout.for_device(self.device.size, log_fraction=self.log_fraction)
        self.volume = Volume(self.device, layout)
        self.api = ApiStats()
        self.open_handles = 0
        #: telemetry sink; repro.obs.attach_telemetry swaps in a live one
        self.obs = NULL_SINK

    # -- namespace ------------------------------------------------------------

    @abc.abstractmethod
    def create(self, name: str, capacity: int) -> FileHandle:
        ...

    @abc.abstractmethod
    def open(self, name: str, flags: OpenFlags = OpenFlags.RDWR) -> FileHandle:
        ...

    def exists(self, name: str) -> bool:
        return self.volume.exists(name)

    def unlink(self, name: str) -> None:
        self.volume.unlink(name)

    # -- cost bracketing --------------------------------------------------------

    @contextmanager
    def op(self, kind: str):
        """Bracket one API call: open a trace and charge the entry cost."""
        obs = self.obs
        frame = obs.span_begin("op." + kind) if obs.enabled else None
        self.recorder.begin_op(kind)
        entry = self.timing.syscall_ns if self.kernel_space else self.timing.user_call_ns
        self.recorder.compute(entry)
        try:
            yield
        finally:
            self.recorder.end_op()
            if frame is not None:
                obs.span_end(frame)

    def take_traces(self):
        return self.recorder.take_completed()

    # -- global sync hooks (overridden where meaningful) --------------------------

    def shutdown(self) -> None:
        """Orderly unmount: everything becomes durable."""
        self.device.drain()
