"""Persistent namespace + extent allocator shared by every file system.

Files are contiguous extents in the data area, described by fixed 64-byte
inode slots in the superblock. The in-DRAM mirror (`Volume._inodes`) is
rebuilt from the superblock on mount, which is how recovery finds files
after a crash.

Inode slot layout (64 B)::

    0   u32  magic (0x1N0DE5 when live, 0 when free)
    4   u32  id
    8   u64  base            extent start (device offset)
    16  u64  capacity        extent length
    24  u64  size            current logical size (atomic 8-byte updates)
    32  u64  node_table_off  MGSP radix-record table (0 if none)
    40  u64  node_table_len
    48  16s  name (utf-8, NUL padded)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AllocationError, FileExists, FileNotFound
from repro.fsapi.layout import VolumeLayout
from repro.nvm.device import NvmDevice
from repro.util import align_up

INODE_MAGIC = 0x1A0DE5
SLOT_SIZE = 64
HEADER_SIZE = 64
_SLOT = struct.Struct("<IIQQQQQ16s")


@dataclass
class Inode:
    id: int
    name: str
    base: int
    capacity: int
    size: int
    node_table_off: int = 0
    node_table_len: int = 0
    slot_offset: int = 0
    #: set by :meth:`Volume.unlink`. An open handle may keep writing
    #: (POSIX unlink-while-open), but its slot is free for reuse by the
    #: next create, so size/slot persists must become no-ops — otherwise
    #: a later checkpoint of the dangling handle would clobber whatever
    #: file now owns the slot.
    unlinked: bool = False

    @property
    def size_field_offset(self) -> int:
        return self.slot_offset + 24


class Volume:
    """Namespace over one device; all file systems share this substrate."""

    def __init__(self, device: NvmDevice, layout: Optional[VolumeLayout] = None) -> None:
        self.device = device
        self.layout = layout or VolumeLayout.for_device(device.size)
        self._inodes: Dict[str, Inode] = {}
        self._next_id = 1
        self._data_cursor = self.layout.data_area.start
        self._ntable_cursor = self.layout.node_tables.start
        self._max_slots = (self.layout.superblock.size - HEADER_SIZE) // SLOT_SIZE

    # -- mount / recovery ----------------------------------------------------

    @classmethod
    def mount(cls, device: NvmDevice, layout: Optional[VolumeLayout] = None) -> "Volume":
        """Rebuild the namespace from the superblock (post-crash path)."""
        volume = cls(device, layout)
        base = volume.layout.superblock.start + HEADER_SIZE
        for slot_idx in range(volume._max_slots):
            slot_off = base + slot_idx * SLOT_SIZE
            raw = device.buffer.load(slot_off, SLOT_SIZE)  # untimed: mount path
            magic, fid, ext_base, cap, size, nt_off, nt_len, name = _SLOT.unpack(raw)
            if magic != INODE_MAGIC:
                continue
            inode = Inode(
                id=fid,
                name=name.rstrip(b"\0").decode("utf-8"),
                base=ext_base,
                capacity=cap,
                size=size,
                node_table_off=nt_off,
                node_table_len=nt_len,
                slot_offset=slot_off,
            )
            volume._inodes[inode.name] = inode
            volume._next_id = max(volume._next_id, fid + 1)
            if ext_base:  # extentless (log-structured) inodes have base == 0
                volume._data_cursor = max(volume._data_cursor, ext_base + cap)
            if nt_len:
                volume._ntable_cursor = max(volume._ntable_cursor, nt_off + nt_len)
        return volume

    # -- namespace -------------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._inodes

    def lookup(self, name: str) -> Inode:
        inode = self._inodes.get(name)
        if inode is None:
            raise FileNotFound(name)
        return inode

    def files(self):
        return list(self._inodes.values())

    def create(
        self,
        name: str,
        capacity: int,
        node_table_len: int = 0,
        reserve_extent: bool = True,
    ) -> Inode:
        """Create *name*. With ``reserve_extent=False`` the inode carries a
        logical capacity but no contiguous extent (log-structured file
        systems allocate their own pages)."""
        if name in self._inodes:
            raise FileExists(name)
        if len(self._inodes) >= self._max_slots:
            raise AllocationError("superblock inode table full")
        capacity = align_up(max(capacity, 4096), 4096)
        if reserve_extent:
            base = self._data_cursor
            if base + capacity > self.layout.data_area.end:
                raise AllocationError(
                    f"data area exhausted: need {capacity}, "
                    f"{self.layout.data_area.end - base} left"
                )
            self._data_cursor = base + capacity
        else:
            base = 0

        node_table_off = 0
        if node_table_len:
            node_table_len = align_up(node_table_len, 4096)
            node_table_off = self._ntable_cursor
            if node_table_off + node_table_len > self.layout.node_tables.end:
                raise AllocationError("node-table area exhausted")
            self._ntable_cursor = node_table_off + node_table_len

        slot_idx = len(self._inodes)
        # Reuse the first free slot so unlink+create cycles do not leak.
        used = {inode.slot_offset for inode in self._inodes.values()}
        base_slot = self.layout.superblock.start + HEADER_SIZE
        for idx in range(self._max_slots):
            candidate = base_slot + idx * SLOT_SIZE
            if candidate not in used:
                slot_idx = idx
                break
        slot_off = base_slot + slot_idx * SLOT_SIZE

        inode = Inode(
            id=self._next_id,
            name=name,
            base=base,
            capacity=capacity,
            size=0,
            node_table_off=node_table_off,
            node_table_len=node_table_len,
            slot_offset=slot_off,
        )
        self._next_id += 1
        self._persist_slot(inode)
        self._inodes[name] = inode
        return inode

    def unlink(self, name: str) -> None:
        inode = self.lookup(name)
        self.device.atomic_store_u64(inode.slot_offset, 0)  # clear magic+id
        self.device.persist(inode.slot_offset, 8)
        inode.unlinked = True
        del self._inodes[name]

    def by_id(self, fid: int) -> Inode:
        for inode in self._inodes.values():
            if inode.id == fid:
                return inode
        raise FileNotFound(f"inode id {fid}")

    # -- size updates ------------------------------------------------------------

    def set_size(self, inode: Inode, new_size: int) -> None:
        """Atomic persistent size update (8-byte field)."""
        if new_size > inode.capacity:
            raise AllocationError(
                f"{inode.name}: size {new_size} exceeds capacity {inode.capacity}"
            )
        inode.size = new_size
        if inode.unlinked:  # slot is freed (possibly reused); DRAM mirror only
            return
        self.device.atomic_store_u64(inode.size_field_offset, new_size)
        self.device.persist(inode.size_field_offset, 8)

    def set_size_volatile(self, inode: Inode, new_size: int) -> None:
        """Size update whose persistence the caller handles (e.g. via a
        metadata-log replay); only the DRAM mirror changes here."""
        if new_size > inode.capacity:
            raise AllocationError(
                f"{inode.name}: size {new_size} exceeds capacity {inode.capacity}"
            )
        inode.size = new_size

    def persist_size(self, inode: Inode) -> None:
        if inode.unlinked:  # see set_size: never write a freed slot
            return
        self.device.atomic_store_u64(inode.size_field_offset, inode.size)
        self.device.persist(inode.size_field_offset, 8)

    # -- helpers --------------------------------------------------------------------

    def _persist_slot(self, inode: Inode) -> None:
        raw = _SLOT.pack(
            INODE_MAGIC,
            inode.id,
            inode.base,
            inode.capacity,
            inode.size,
            inode.node_table_off,
            inode.node_table_len,
            inode.name.encode("utf-8")[:16].ljust(16, b"\0"),
        )
        self.device.store(inode.slot_offset, raw)
        self.device.persist(inode.slot_offset, SLOT_SIZE)
