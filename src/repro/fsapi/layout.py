"""Device partitioning.

One simulated DIMM is split into fixed regions:

====================  =======================================
superblock            file table (namespace, inodes)
metadata log          MGSP's lock-free metadata log entries
node tables           MGSP's persistent per-file radix records
journal               kernel-FS journal (JBD2 / NOVA log heads)
log area              shadow / undo / redo / CoW data blocks
data area             file extents
====================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import align_up

SUPERBLOCK_SIZE = 64 * 1024
METALOG_SIZE = 8 * 1024


@dataclass(frozen=True)
class Region:
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, offset: int, length: int = 1) -> bool:
        return self.start <= offset and offset + length <= self.end


@dataclass(frozen=True)
class VolumeLayout:
    superblock: Region
    metalog: Region
    node_tables: Region
    journal: Region
    log_area: Region
    data_area: Region

    @classmethod
    def for_device(
        cls,
        device_size: int,
        log_fraction: float = 0.30,
        node_table_fraction: float = 0.05,
        journal_fraction: float = 0.05,
    ) -> "VolumeLayout":
        if device_size < 4 * 1024 * 1024:
            raise ValueError(f"device too small to partition: {device_size}")
        cursor = 0
        superblock = Region(cursor, cursor + SUPERBLOCK_SIZE)
        cursor = superblock.end
        metalog = Region(cursor, cursor + METALOG_SIZE)
        cursor = align_up(metalog.end, 4096)
        node_tables = Region(cursor, cursor + align_up(int(device_size * node_table_fraction), 4096))
        cursor = node_tables.end
        journal = Region(cursor, cursor + align_up(int(device_size * journal_fraction), 4096))
        cursor = journal.end
        log_area = Region(cursor, cursor + align_up(int(device_size * log_fraction), 4096))
        cursor = log_area.end
        data_area = Region(cursor, device_size)
        if data_area.size <= 0:
            raise ValueError("layout fractions leave no data area")
        return cls(superblock, metalog, node_tables, journal, log_area, data_area)
