"""Common file-system substrate.

Every file system in this reproduction (Ext4, Ext4-DAX, NOVA, Libnvmmio,
MGSP) implements :class:`~repro.fsapi.interface.FileSystem` over a
:class:`~repro.fsapi.volume.Volume`: a persistent namespace + contiguous
extent allocator on one simulated NVM device.
"""

from repro.fsapi.interface import FileHandle, FileSystem, OpenFlags
from repro.fsapi.layout import VolumeLayout
from repro.fsapi.volume import Inode, Volume

__all__ = [
    "FileHandle",
    "FileSystem",
    "Inode",
    "OpenFlags",
    "Volume",
    "VolumeLayout",
]
