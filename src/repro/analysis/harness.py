"""Attach the analyzer to live systems and replay workloads/programs.

Two entry paths:

- :func:`run_workload` replays a deterministic ``repro.crashsweep``
  workload with the tap attached and returns an :class:`AnalysisReport`
  whose event indices line up with the sweep's crash-point enumeration
  (verified against :func:`repro.nvm.crash.count_events` parity).
- :func:`run_program` executes one violation-corpus program (a ``.py``
  file with a ``run(ctx)`` function and an ``EXPECT`` rule list) against
  a bare device — the self-test substrate under ``tests/analysis_corpus``.
"""

from __future__ import annotations

import importlib.util
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.analyzer import AnalysisRecorder, Finding, RegionMap, TraceAnalyzer
from repro.nvm.crash import count_events
from repro.nvm.device import NvmDevice

#: CLI-friendly aliases -> registry names
WORKLOAD_ALIASES: Dict[str, str] = {
    "fio": "fio-randwrite",
    "txn": "txn-mixed",
    "ycsb": "ycsb-a",
}
CONFIG_ALIASES: Dict[str, str] = {
    "mgsp-sync": "sync",
    "mgsp-async": "async",
}


def resolve_workload(name: str) -> str:
    return WORKLOAD_ALIASES.get(name, name)


def resolve_config(name: str) -> str:
    return CONFIG_ALIASES.get(name, name)


def attach_analyzer(
    fs, perf: bool = True, max_events: Optional[int] = None
) -> TraceAnalyzer:
    """Instrument a mounted filesystem: tap the device and wrap the
    recorder so op boundaries reach the analyzer. Returns the analyzer
    (its ``findings`` accumulate for the life of the mount)."""
    analyzer = TraceAnalyzer(
        regions=RegionMap.from_layout(fs.volume.layout),
        device=fs.device,
        async_writeback=bool(getattr(fs.config, "async_writeback", False)),
        perf=perf,
        max_events=max_events,
    )
    fs.device.analysis_tap = analyzer
    fs.recorder = AnalysisRecorder(fs.recorder, analyzer)
    return analyzer


@dataclass
class AnalysisReport:
    """One analyzed workload replay."""

    workload: str
    config_name: str
    findings: List[Finding]
    events: int  # persistence events analyzed (crash-point count)
    parity_ok: bool  # tap event count == DeviceStats-derived count
    saturated: bool = False  # analysis stopped at --budget
    seed: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def reproducer(self, finding: Finding) -> str:
        return (
            f"python -m repro.crashsweep --workload {self.workload}"
            f" --configs {self.config_name} --policies keep_all"
            f" --at {finding.event_index} --seed {self.seed}"
        )

    def format(self, detail_limit: int = 10) -> str:
        lines = [
            f"analysis: workload={self.workload} config={self.config_name} "
            f"events={self.events} findings={len(self.findings)} "
            f"(errors={len(self.errors)})"
        ]
        if not self.parity_ok:
            lines.append(
                "  WARNING: event-count parity mismatch — reported indices may "
                "not line up with crashsweep --at indices"
            )
        if self.saturated:
            lines.append("  NOTE: analysis budget hit; later events were not checked")
        by_rule: Dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        for rule in sorted(by_rule):
            lines.append(f"  {rule}: {by_rule[rule]}")
        shown = self.findings[:detail_limit]
        for f in shown:
            lines.append("  " + f.format(self.reproducer(f)))
        if len(self.findings) > detail_limit:
            lines.append(f"  ... and {len(self.findings) - detail_limit} more")
        if not self.findings:
            lines.append("  clean: no findings")
        return "\n".join(lines)


def run_workload(
    workload: str,
    config: str,
    perf: bool = True,
    max_events: Optional[int] = None,
    seed: int = 0,
) -> AnalysisReport:
    """Replay one crash-sweep workload to completion under the tap."""
    from repro.crashsweep.workloads import get_workload

    wname = resolve_workload(workload)
    cname = resolve_config(config)
    wl = get_workload(wname)
    holder: dict = {}

    def instrument(fs) -> None:
        holder["analyzer"] = attach_analyzer(fs, perf=perf, max_events=max_events)

    outcome = wl.run(cname, instrument=instrument)
    analyzer: TraceAnalyzer = holder["analyzer"]
    derived = count_events(outcome.fs.device, since=outcome.stats_base)
    return AnalysisReport(
        workload=wname,
        config_name=cname,
        findings=list(analyzer.findings),
        events=analyzer.event_index,
        parity_ok=analyzer.event_index == derived,
        saturated=analyzer.saturated,
        seed=seed,
    )


# -- corpus programs -------------------------------------------------------

PROGRAM_DEVICE_SIZE = 4 << 20


@dataclass
class ProgramCtx:
    """What a corpus program's ``run(ctx)`` gets to drive."""

    device: NvmDevice
    regions: RegionMap
    analyzer: TraceAnalyzer
    #: handy region anchors (line-aligned starts)
    data_off: int = field(init=False)
    metalog_off: int = field(init=False)
    node_tables_off: int = field(init=False)

    def __post_init__(self) -> None:
        layout = self.regions.layout
        self.data_off = layout.data_area.start
        self.metalog_off = layout.metalog.start
        self.node_tables_off = layout.node_tables.start

    @contextmanager
    def op(self, name: str):
        """Bracket an operation (drives the boundary rule)."""
        self.analyzer.on_op_begin(name)
        try:
            yield
        finally:
            self.analyzer.on_op_end(name)


def program_context(device_size: int = PROGRAM_DEVICE_SIZE) -> ProgramCtx:
    device = NvmDevice(device_size)
    regions = RegionMap.for_device(device_size)
    analyzer = TraceAnalyzer(regions, device=device, async_writeback=False)
    device.analysis_tap = analyzer
    return ProgramCtx(device=device, regions=regions, analyzer=analyzer)


def load_program(path: str):
    spec = importlib.util.spec_from_file_location("repro_analysis_program", path)
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot load program {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not hasattr(module, "run"):
        raise ValueError(f"program {path!r} defines no run(ctx)")
    return module


def run_program(path: str) -> Tuple[List[Finding], List[str]]:
    """Execute one corpus program; returns (findings, EXPECT rules)."""
    module = load_program(path)
    ctx = program_context()
    module.run(ctx)
    return list(ctx.analyzer.findings), list(getattr(module, "EXPECT", []))
