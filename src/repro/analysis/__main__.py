"""CLI: replay a workload (or a corpus program) under the analyzer.

Examples::

    python -m repro.analysis --workload fio --config mgsp-sync
    python -m repro.analysis --workload txn --config mgsp-async --budget 20000
    python -m repro.analysis --program tests/analysis_corpus/torn_multiword.py
    python -m repro.analysis --corpus tests/analysis_corpus

Exit status: workload mode fails (1) on *error*-severity findings —
perf diagnostics (redundant flush/fence) are reported but informational
unless ``--strict`` promotes them. Program/corpus mode fails on any
finding at all (the corpus is a violation suite; its ``clean/`` twins
must produce zero findings of any severity).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.harness import run_program, run_workload


def _run_one_program(path: str) -> int:
    findings, expect = run_program(path)
    print(f"program {path}: {len(findings)} finding(s); EXPECT={expect}")
    for finding in findings:
        print("  " + finding.format())
    if expect:
        missing = [rule for rule in expect if rule not in {f.rule for f in findings}]
        if missing:
            print(f"  MISSING expected rule(s): {missing}")
            return 2
    return 1 if findings else 0


def _run_corpus(directory: str) -> int:
    """Violating programs at the top level must trip their EXPECT rules;
    everything under ``clean/`` must produce zero findings."""
    status = 0
    top = sorted(
        f for f in os.listdir(directory) if f.endswith(".py") and f != "__init__.py"
    )
    for name in top:
        rc = _run_one_program(os.path.join(directory, name))
        if rc != 1:  # violating programs are *supposed* to exit 1
            print(f"  UNEXPECTED: {name} exited {rc} (wanted findings matching EXPECT)")
            status = 2
    clean_dir = os.path.join(directory, "clean")
    if os.path.isdir(clean_dir):
        for name in sorted(f for f in os.listdir(clean_dir) if f.endswith(".py")):
            rc = _run_one_program(os.path.join(clean_dir, name))
            if rc != 0:
                print(f"  UNEXPECTED: clean/{name} produced findings")
                status = 2
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="persistence-order trace analysis",
    )
    parser.add_argument(
        "--workload",
        help="crash-sweep workload name or alias (fio, txn, ycsb, fio-write, ...)",
    )
    parser.add_argument(
        "--config",
        default="mgsp-sync",
        help="config name or alias (mgsp-sync, mgsp-async, sync, async)",
    )
    parser.add_argument("--program", help="run one violation-corpus program")
    parser.add_argument("--corpus", help="run a whole corpus directory (self-test)")
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="stop analyzing after N persistence events (CI cap)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="workload mode: fail on perf diagnostics too",
    )
    parser.add_argument("--seed", type=int, default=0, help="seed quoted in reproducer lines")
    parser.add_argument(
        "--bundle-dir",
        metavar="DIR",
        default=None,
        help="workload mode: write a black-box bundle per failing finding "
        "into DIR (capped at 5)",
    )
    args = parser.parse_args(argv)

    if args.program:
        return _run_one_program(args.program)
    if args.corpus:
        return _run_corpus(args.corpus)
    if not args.workload:
        parser.error("one of --workload, --program, --corpus is required")

    report = run_workload(
        args.workload,
        args.config,
        max_events=args.budget,
        seed=args.seed,
    )
    print(report.format())
    failing: List = report.findings if args.strict else report.errors

    if args.bundle_dir and failing:
        from repro.nvm.crash import CrashPolicy
        from repro.obs import blackbox

        for finding in failing[:5]:
            bundle = blackbox.capture(
                report.workload,
                report.config_name,
                finding.event_index,
                seed=args.seed,
                policy=CrashPolicy.KEEP_ALL,  # matches the reproducer line
                kind="analysis-finding",
                violations=[f"{finding.rule}: {finding.message}"],
                reproducer=report.reproducer(finding),
                extra={"rule": finding.rule, "severity": finding.severity},
            )
            path = blackbox.write_bundle(
                bundle,
                args.bundle_dir,
                name=f"blackbox-analysis-{finding.rule}-at{finding.event_index}.json",
            )
            print(f"black-box bundle: {path}")

    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
