"""Persistence-order analysis: trace analyzer + protocol linter.

- ``repro.analysis.analyzer`` — the dynamic engine: an event tap on
  :class:`~repro.nvm.device.NvmDevice` that checks the MGSP ordering
  protocol over the live store/flush/fence stream.
- ``repro.analysis.lint`` — the static engine: AST rules over
  ``src/repro`` (``python -m repro.analysis.lint``).
- ``repro.analysis.harness`` — attach the tap to a mounted fs, replay
  crash-sweep workloads, execute violation-corpus programs.
- ``python -m repro.analysis`` — the CLI; see ``--help``.
"""

from repro.analysis.analyzer import (
    ERROR,
    PERF,
    RULES,
    AnalysisRecorder,
    Finding,
    RegionMap,
    TraceAnalyzer,
)
from repro.analysis.harness import (
    AnalysisReport,
    ProgramCtx,
    attach_analyzer,
    program_context,
    run_program,
    run_workload,
)

# NOTE: repro.analysis.lint is intentionally NOT imported here so that
# ``python -m repro.analysis.lint`` does not trip runpy's already-in-
# sys.modules warning; import it explicitly where needed.

__all__ = [
    "ERROR",
    "PERF",
    "RULES",
    "AnalysisRecorder",
    "AnalysisReport",
    "Finding",
    "ProgramCtx",
    "RegionMap",
    "TraceAnalyzer",
    "attach_analyzer",
    "program_context",
    "run_program",
    "run_workload",
]
