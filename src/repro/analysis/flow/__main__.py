"""CLI: flow-sensitive static checking over the source tree.

Examples::

    python -m repro.analysis.flow src/repro            # whole tree
    python -m repro.analysis.flow --strict src/repro   # CI gate
    python -m repro.analysis.flow --sarif out.sarif --json out.json src/repro
    python -m repro.analysis.flow --corpus tests/analysis_corpus/flow

Exit status: 0 clean, 1 findings, 2 corpus/EXPECT mismatch. ``--strict``
is accepted for symmetry with the other CLIs; the flow checker always
treats every finding (including ``stale-pragma``) as fatal.

Corpus fixtures are analyzed *as if* they lived in a protocol module
(``repro/core/<name>``) and declare their expectation inline::

    EXPECT = ["mutate-before-validate"]
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.flow.driver import analyze_files, run_flow
from repro.analysis.flow.report import FlowFinding, to_json, to_sarif

__all__ = ["main", "analyze_fixture"]


def parse_expect(text: str) -> Optional[List[str]]:
    """The fixture's module-level ``EXPECT = [...]`` literal, if any."""
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "EXPECT":
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:
                        return None
                    if isinstance(value, list):
                        return [str(v) for v in value]
    return None


def analyze_fixture(path: str) -> Tuple[List[FlowFinding], List[str]]:
    """Analyze one corpus fixture under a protocol-module identity."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    module = "repro/core/" + os.path.basename(path)
    findings = analyze_files({path: text}, modules={path: module})
    return findings, parse_expect(text) or []


def _run_fixture(path: str) -> int:
    findings, expect = analyze_fixture(path)
    print(f"fixture {path}: {len(findings)} finding(s); EXPECT={expect}")
    for finding in findings:
        print("  " + finding.format())
    fired = {f.rule for f in findings}
    missing = [rule for rule in expect if rule not in fired]
    if missing:
        print(f"  MISSING expected rule(s): {missing}")
        return 2
    return 1 if findings else 0


def _run_corpus(directory: str) -> int:
    status = 0
    top = sorted(
        f for f in os.listdir(directory) if f.endswith(".py") and f != "__init__.py"
    )
    for name in top:
        rc = _run_fixture(os.path.join(directory, name))
        if rc != 1:
            print(f"  UNEXPECTED: {name} exited {rc} (wanted findings matching EXPECT)")
            status = 2
    clean_dir = os.path.join(directory, "clean")
    if os.path.isdir(clean_dir):
        for name in sorted(f for f in os.listdir(clean_dir) if f.endswith(".py")):
            rc = _run_fixture(os.path.join(clean_dir, name))
            if rc != 0:
                print(f"  UNEXPECTED: clean/{name} produced findings")
                status = 2
    print("corpus", directory, "OK" if status == 0 else "FAILED")
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flow",
        description="flow-sensitive static persistence & concurrency checker",
    )
    parser.add_argument("paths", nargs="*", help="files/directories (default src/repro)")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on any finding (already the default; kept for CI symmetry)",
    )
    parser.add_argument("--json", metavar="FILE", help="write findings as JSON ('-' for stdout)")
    parser.add_argument("--sarif", metavar="FILE", help="write findings as SARIF 2.1.0 ('-' for stdout)")
    parser.add_argument("--program", help="analyze one corpus fixture (EXPECT-aware)")
    parser.add_argument("--corpus", help="run a flow corpus directory (self-test)")
    args = parser.parse_args(argv)

    if args.corpus:
        return _run_corpus(args.corpus)
    if args.program:
        return _run_fixture(args.program)

    paths = args.paths or ["src/repro"]
    findings = run_flow(paths)
    for finding in findings:
        print(finding.format())
    if args.json:
        payload = to_json(findings)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
    if args.sarif:
        payload = to_sarif(findings)
        if args.sarif == "-":
            print(payload)
        else:
            with open(args.sarif, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
    if findings:
        print(f"repro.analysis.flow: {len(findings)} finding(s)")
        return 1
    print("repro.analysis.flow: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
