"""Persist-state analysis: ``unfenced-on-exception-path`` and
``mutate-before-validate``.

Abstract domain — a set of *store tokens*, one per store event that has
not yet provably reached durability::

    (line, kind, via)    kind ∈ {"dirty", "pending"}
                         via = 0, or the line of the except-handler the
                               token's path crossed

``dirty``  = stored but not flushed (cached ``store`` / ``store_v`` /
``atomic_store_u64``); ``pending`` = flushed but not fenced (the
``nt_store*`` family and ``store_word_v``). ``flush``/``flush_v``
promote dirty tokens to pending; ``fence`` retires pending tokens;
``persist``/``drain`` retire everything. Handler-entry nodes retag
tokens with the handler's line, which is what separates "store still
outstanding on the normal path" from "store outstanding only because an
exception was swallowed".

**Bias.** Flushes and fences are applied to *all* outstanding tokens,
not just the byte ranges they name, and ambiguous call resolution takes
the intersection of candidate leave-behinds. Both choices are
optimistic: this is a bug *finder* (a report means some path really
skips the fence modulo range-matching), not a durability *verifier* —
see docs/analysis.md for the full soundness statement.

Rules:

``unfenced-on-exception-path``
    A function in a protocol module whose normal exits are clean (every
    straight-line path fences its stores) but where a swallowed
    exception can reach a normal exit with an unretired token. Clean
    normal exits are the trigger condition on purpose: functions that
    *intentionally* leave state unfenced (the device primitives, helper
    halves of an op) leave tokens on every path and are never
    op-boundaries.

``mutate-before-validate``
    In a bulk entry point (``*_v`` / ``*_words`` / ``*bulk*``), an
    explicit ``raise`` reachable with protocol-state mutations already
    applied — the PR 7/8 bug class, where a mid-batch validation
    failure leaves a half-applied batch. Validate-all-then-mutate-all
    keeps the mutation set empty at every raise; a merged loop trips
    the rule through the loop back edge (iteration 2's validation
    raise sees iteration 1's mutation).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import FunctionInfo, ProgramIndex, fixpoint
from repro.analysis.flow.cfg import CfgNode, attr_chain
from repro.analysis.flow.dataflow import run_forward
from repro.analysis.flow.report import FlowFinding, TraceStep

__all__ = [
    "PROTOCOL_PREFIXES",
    "PersistSummary",
    "compute_persist_summaries",
    "check_persist",
    "check_bulk_validate",
    "is_device_call",
]

#: modules whose mutations must obey the MGSP ordering protocol
PROTOCOL_PREFIXES = ("repro/core", "repro/nvm", "repro/fs", "repro/fsapi", "repro/db")

#: receiver names that denote the simulated NVM device / store buffer
DEVICE_RECEIVERS = {"device", "dev", "buffer", "buf", "nvm"}

DIRTY_STORES = {"store", "store_v", "atomic_store_u64"}
PENDING_STORES = {
    "nt_store",
    "nt_store_v",
    "nt_store_word",
    "nt_store_words",
    "store_word_v",
}
FLUSHES = {"flush", "flush_v"}
FENCES = {"fence"}
CLEAR_ALL = {"persist", "drain"}

Token = Tuple[int, str, int]  # (line, kind, via-handler-line)
State = FrozenSet[Token]

#: (leaves-kinds-at-normal-exit, may_flush, may_fence, may_store)
PersistSummary = Tuple[FrozenSet[str], bool, bool, bool]

_NO_EFFECT: PersistSummary = (frozenset(), False, False, False)


def is_device_call(call: ast.Call) -> Optional[str]:
    """The device primitive a call invokes, or ``None``.

    Classification is receiver-based (``fs.device.nt_store``,
    ``self.buffer.flush`` ...) so that look-alike methods on other
    objects (``tree.store_word`` and friends) go through real summaries
    instead of being treated as primitives.
    """
    chain = attr_chain(call.func)
    if len(chain) < 2 or chain[-2] not in DEVICE_RECEIVERS:
        return None
    method = chain[-1]
    if method in DIRTY_STORES | PENDING_STORES | FLUSHES | FENCES | CLEAR_ALL:
        return method
    return None


def _callee_summary(
    index: ProgramIndex,
    call: ast.Call,
    caller: FunctionInfo,
    summaries: Dict[str, PersistSummary],
) -> PersistSummary:
    # Only protocol code can affect persist state: observability /
    # analysis / sim callees are persist-neutral by construction, and
    # letting name-fallback resolution reach them smears their
    # (meaningless) effects into protocol summaries.
    candidates = [c for c in index.resolve(call, caller) if in_protocol_module(c)]
    if not candidates:
        return _NO_EFFECT
    summs = [summaries.get(c.qualname + "@" + c.path, _NO_EFFECT) for c in candidates]
    leaves = summs[0][0]
    may_flush = may_fence = may_store = False
    for s in summs:
        leaves &= s[0]  # intersection: only certain leave-behinds count
        may_flush = may_flush or s[1]
        may_fence = may_fence or s[2]
        may_store = may_store or s[3]
    return (leaves, may_flush, may_fence, may_store)


def _apply_call(
    state: State,
    call: ast.Call,
    index: ProgramIndex,
    caller: FunctionInfo,
    summaries: Dict[str, PersistSummary],
) -> State:
    primitive = is_device_call(call)
    if primitive is not None:
        if primitive in DIRTY_STORES:
            return state | {(call.lineno, "dirty", 0)}
        if primitive in PENDING_STORES:
            return state | {(call.lineno, "pending", 0)}
        if primitive in FLUSHES:
            return frozenset((ln, "pending", via) for ln, _k, via in state)
        if primitive in FENCES:
            return frozenset(t for t in state if t[1] != "pending")
        return frozenset()  # persist / drain
    leaves, may_flush, may_fence, _may_store = _callee_summary(
        index, call, caller, summaries
    )
    if may_flush:
        state = frozenset((ln, "pending", via) for ln, _k, via in state)
    if may_fence:
        state = frozenset(t for t in state if t[1] != "pending")
    for kind in sorted(leaves):
        state = state | {(call.lineno, kind, 0)}
    return state


def _analyze_fn(
    fn: FunctionInfo,
    index: ProgramIndex,
    summaries: Dict[str, PersistSummary],
):
    def transfer(node: CfgNode, state: State) -> State:
        for call in node.calls:
            state = _apply_call(state, call, index, fn, summaries)
        return state

    def handler_entry(node: CfgNode, state: State) -> State:
        # tag everything still outstanding as having crossed this
        # handler; the innermost handler wins (first tag is kept)
        return frozenset(
            (ln, kind, via if via else node.line) for ln, kind, via in state
        )

    return run_forward(fn.cfg, frozenset(), transfer, handler_entry)


def _summary_of(fn: FunctionInfo, index: ProgramIndex, summaries) -> PersistSummary:
    result = _analyze_fn(fn, index, summaries)
    exit_state = result.exit_state or frozenset()
    leaves = frozenset(kind for _ln, kind, _via in exit_state)
    may_flush = may_fence = may_store = False
    for node in fn.cfg.nodes.values():
        for call in node.calls:
            primitive = is_device_call(call)
            if primitive is not None:
                may_flush = may_flush or primitive in FLUSHES or primitive in CLEAR_ALL
                may_fence = may_fence or primitive in FENCES or primitive in CLEAR_ALL
                may_store = may_store or primitive in DIRTY_STORES | PENDING_STORES
            else:
                _l, c_flush, c_fence, c_store = _callee_summary(
                    index, call, fn, summaries
                )
                may_flush = may_flush or c_flush
                may_fence = may_fence or c_fence
                may_store = may_store or c_store
    return (leaves, may_flush, may_fence, may_store)


def compute_persist_summaries(index: ProgramIndex) -> Dict[str, PersistSummary]:
    return fixpoint(
        index.functions,
        lambda fn, summaries: _summary_of(fn, index, summaries),
        key=lambda fn: fn.qualname + "@" + fn.path,
    )


def in_protocol_module(fn: FunctionInfo) -> bool:
    return fn.module.startswith(PROTOCOL_PREFIXES)


def check_persist(
    index: ProgramIndex, summaries: Dict[str, PersistSummary]
) -> List[FlowFinding]:
    """``unfenced-on-exception-path`` over all protocol-module functions."""
    findings: List[FlowFinding] = []
    for fn in index.functions:
        if not in_protocol_module(fn):
            continue
        result = _analyze_fn(fn, index, summaries)
        exit_state = result.exit_state or frozenset()
        normal = [t for t in exit_state if t[2] == 0]
        via = [t for t in exit_state if t[2] != 0]
        if normal or not via:
            continue  # not op-clean, or no exception-path leftovers
        for line, kind, handler_line in sorted(set(via)):
            findings.append(
                FlowFinding(
                    rule="unfenced-on-exception-path",
                    path=fn.path,
                    line=line,
                    message=(
                        f"{kind} store may never reach flush+fence: the "
                        f"exception handler at line {handler_line} swallows "
                        f"the failure and {fn.qualname}() returns normally"
                    ),
                    trace=[
                        TraceStep(fn.path, line, f"store issued here (left {kind})"),
                        TraceStep(
                            fn.path,
                            handler_line,
                            "exception handled here; execution continues",
                        ),
                        TraceStep(
                            fn.path,
                            fn.line,
                            f"{fn.qualname}() returns with the store unfenced "
                            "(every non-exception path fences)",
                        ),
                    ],
                    extra_pragma_lines=(handler_line,),
                )
            )
    return findings


# -- mutate-before-validate ------------------------------------------------

_BULK_SUFFIXES = ("_v", "_words")
_MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "remove",
    "setdefault",
    "update",
    "write",
}


def is_bulk_function(fn: FunctionInfo) -> bool:
    return fn.name.endswith(_BULK_SUFFIXES) or "bulk" in fn.name


def _state_aliases(fn: FunctionInfo) -> Set[str]:
    """Local names bound (anywhere in the function) to ``self``-rooted
    state — ``working = self.working`` makes ``working[...] = x`` a
    protocol-state mutation."""
    aliases: Set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        roots = {
            chain[0]
            for sub in ast.walk(node.value)
            if isinstance(sub, ast.Attribute)
            for chain in [attr_chain(sub)]
            if chain
        }
        if "self" not in roots and not roots & DEVICE_RECEIVERS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


def _is_stats_chain(chain: List[str]) -> bool:
    return any("stat" in part or part in ("metrics", "counters") for part in chain)


def _mutation_lines(stmt: ast.AST, aliases: Set[str]) -> List[int]:
    """Protocol-state mutations inside one statement (stats excluded)."""
    lines: List[int] = []

    def base_is_state(expr: ast.AST) -> bool:
        chain = attr_chain(expr)
        if not chain or _is_stats_chain(chain):
            return False
        return chain[0] == "self" or chain[0] in aliases

    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and base_is_state(target.value):
                    lines.append(node.lineno)
                elif isinstance(target, ast.Attribute):
                    chain = attr_chain(target)
                    if (
                        chain
                        and not _is_stats_chain(chain)
                        and chain[0] == "self"
                        and len(chain) >= 2
                    ):
                        lines.append(node.lineno)
        elif isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if (
                len(chain) >= 2
                and chain[-1] in _MUTATOR_METHODS
                and not _is_stats_chain(chain)
                and (chain[0] == "self" or chain[0] in aliases)
            ):
                lines.append(node.lineno)
    return lines


def check_bulk_validate(index: ProgramIndex) -> List[FlowFinding]:
    """``mutate-before-validate`` over bulk functions in protocol modules."""
    findings: List[FlowFinding] = []
    for fn in index.functions:
        if not in_protocol_module(fn) or not is_bulk_function(fn):
            continue
        aliases = _state_aliases(fn)
        cfg = fn.cfg

        def transfer(node: CfgNode, state: FrozenSet[int]) -> FrozenSet[int]:
            new: List[int] = []
            for fragment in node.src:
                new.extend(_mutation_lines(fragment, aliases))
            return state | frozenset(new) if new else state

        result = run_forward(cfg, frozenset(), transfer)
        for node in cfg.nodes.values():
            if not isinstance(node.stmt, ast.Raise):
                continue
            state = result.state_in(node.nid)
            if not state:
                continue
            first = min(state)
            findings.append(
                FlowFinding(
                    rule="mutate-before-validate",
                    path=fn.path,
                    line=node.line,
                    message=(
                        f"bulk op {fn.qualname}() can raise mid-batch at line "
                        f"{node.line} after mutating state (line {first}): "
                        "validation must complete before the first mutation"
                    ),
                    trace=[
                        TraceStep(fn.path, first, "state mutated here"),
                        TraceStep(
                            fn.path,
                            node.line,
                            "validation failure raised here with the batch "
                            "half-applied",
                        ),
                    ],
                    extra_pragma_lines=(first,),
                )
            )
    return findings
