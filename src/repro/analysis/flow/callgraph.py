"""Whole-program function index, call resolution, and summary fixpoint.

The flow analyses are interprocedural: ``MgspFile.write`` is clean only
because ``_write_atomic`` fences on every normal path, and the MGL lock
graph has edges created by calls made while locks are held. This module
gives them:

- :class:`ProgramIndex` — every function/method definition across the
  analyzed files, with lazy per-function CFGs;
- receiver-aware call resolution: ``self.checkpoint()`` resolves inside
  the enclosing class; ``fs.metalog.write(...)`` resolves through an
  attribute->class map harvested from ``self.metalog = MetadataLog(...)``
  constructor assignments and annotated parameters; bare names fall back
  to an any-definition-of-that-name match;
- :func:`fixpoint` — iterate per-function summary computation until the
  summary table stabilizes (callee effects feed caller analyses, so
  summaries are mutually recursive; the lattice is small and iteration
  is capped defensively).

Resolution is deliberately heuristic — Python has no static types here.
The analyses consume candidate *sets* and combine them with the bias
appropriate to each rule (see their module docstrings).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, TypeVar

from repro.analysis.flow.cfg import Cfg, attr_chain, build_cfg

__all__ = ["FunctionInfo", "ProgramIndex", "module_path", "fixpoint"]

T = TypeVar("T")


def module_path(path: str) -> str:
    """The ``repro/...`` part of a file path (POSIX separators)."""
    parts = os.path.normpath(path).split(os.sep)
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    return "/".join(parts)


@dataclass
class FunctionInfo:
    path: str  # file path as given
    module: str  # repro/... module path (for scoping rules)
    qualname: str  # Class.method or function name
    name: str
    cls: Optional[str]
    node: ast.AST
    _cfg: Optional[Cfg] = field(default=None, repr=False)

    @property
    def cfg(self) -> Cfg:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    @property
    def line(self) -> int:
        return self.node.lineno


class ProgramIndex:
    """All definitions in the analyzed file set."""

    def __init__(self) -> None:
        self.functions: List[FunctionInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        self.by_class: Dict[Tuple[str, str], FunctionInfo] = {}
        #: attribute / parameter name -> class names it may hold
        self.attr_classes: Dict[str, Set[str]] = {}
        self.class_names: Set[str] = set()
        self.sources: Dict[str, str] = {}
        self.trees: Dict[str, ast.AST] = {}
        self.errors: List[Tuple[str, int, str]] = []  # (path, line, message)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, files: Dict[str, str], modules: Optional[Dict[str, str]] = None) -> "ProgramIndex":
        """Index ``{path: source}``; *modules* overrides the inferred
        repro-relative module path per file (corpus fixtures)."""
        index = cls()
        for path, text in files.items():
            index.sources[path] = text
            try:
                tree = ast.parse(text, filename=path)
            except SyntaxError as exc:
                index.errors.append((path, exc.lineno or 0, str(exc)))
                continue
            index.trees[path] = tree
            module = (modules or {}).get(path) or module_path(path)
            index._index_module(path, module, tree)
        index._harvest_attr_classes()
        return index

    def _index_module(self, path: str, module: str, tree: ast.AST) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add(path, module, node, None)
            elif isinstance(node, ast.ClassDef):
                self.class_names.add(node.name)
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add(path, module, sub, node.name)

    def _add(self, path: str, module: str, node: ast.AST, cls_name: Optional[str]) -> None:
        qual = f"{cls_name}.{node.name}" if cls_name else node.name
        info = FunctionInfo(path, module, qual, node.name, cls_name, node)
        self.functions.append(info)
        self.by_name.setdefault(node.name, []).append(info)
        if cls_name:
            self.by_class[(cls_name, node.name)] = info

    def _harvest_attr_classes(self) -> None:
        """``self.metalog = MetadataLog(...)`` and ``device: NvmDevice``
        annotations both teach the resolver what an attribute holds."""
        for fn in self.functions:
            params: Dict[str, str] = {}
            args = getattr(fn.node, "args", None)
            if args is not None:
                for arg in list(args.args) + list(args.kwonlyargs):
                    cls_name = _annotation_class(arg.annotation)
                    if cls_name:
                        params[arg.arg] = cls_name
                        self.attr_classes.setdefault(arg.arg, set()).add(cls_name)
            for node in ast.walk(fn.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                cls_name = None
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in self.class_names
                ):
                    cls_name = value.func.id
                elif isinstance(value, ast.Name) and value.id in params:
                    cls_name = params[value.id]
                elif isinstance(node, ast.AnnAssign):
                    cls_name = _annotation_class(node.annotation) or cls_name
                if cls_name is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        self.attr_classes.setdefault(target.attr, set()).add(cls_name)
                    elif isinstance(target, ast.Name):
                        self.attr_classes.setdefault(target.id, set()).add(cls_name)

    # -- resolution --------------------------------------------------------

    def resolve(self, call: ast.Call, caller: FunctionInfo) -> List[FunctionInfo]:
        """Candidate definitions for one call site (possibly empty)."""
        func = call.func
        if isinstance(func, ast.Name):
            return list(self.by_name.get(func.id, []))
        chain = attr_chain(func)
        if not chain:
            return []
        method = chain[-1]
        receiver = chain[-2] if len(chain) >= 2 else None
        if receiver == "self" and caller.cls:
            own = self.by_class.get((caller.cls, method))
            if own is not None:
                return [own]
        if receiver is not None:
            classes = self.attr_classes.get(receiver)
            if classes:
                hits = [
                    self.by_class[(c, method)]
                    for c in sorted(classes)
                    if (c, method) in self.by_class
                ]
                if hits:
                    return hits
        return list(self.by_name.get(method, []))


def _annotation_class(annotation: Optional[ast.AST]) -> Optional[str]:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split(".")[-1].strip("'\"")
    return None


def fixpoint(
    functions: Sequence[FunctionInfo],
    compute: Callable[[FunctionInfo, Dict[str, T]], T],
    key: Callable[[FunctionInfo], str],
    max_rounds: int = 8,
) -> Dict[str, T]:
    """Iterate ``compute(fn, summaries)`` over all functions until the
    summary table stops changing (or *max_rounds*, defensively — the
    summary lattices are finite but ambiguous resolution can oscillate;
    the last table is then still a sound over/under-approximation in the
    direction each client chose)."""
    summaries: Dict[str, T] = {}
    for _ in range(max_rounds):
        changed = False
        for fn in functions:
            new = compute(fn, summaries)
            k = key(fn)
            if summaries.get(k) != new:
                summaries[k] = new
                changed = True
        if not changed:
            break
    return summaries
