"""Exception-path audit: ``exception-path-no-rollback``.

Structural (per-``try``) check over protocol modules: when the guarded
body issues protocol stores (directly, or through a callee whose
summary says it may store) and a handler *terminates the op* — a
top-level ``return`` or ``raise`` in the handler body — the handler
must visibly compensate. Compensation is any of:

- a cleanup/rollback-family call in the handler (``rollback``,
  ``release``, ``retire``, ``checkpoint``, ``unlock``, ...);
- the handler re-issuing protocol stores itself (the device bulk ops'
  per-element fallback loops *re-apply* the batch — that is the
  compensation);
- a ``finally`` on the same ``try`` that commits state (a cleanup
  call, store activity, or a stats ``+=`` commit — the device's
  ``finally: stats.stored_bytes += total`` pattern).

Handlers that merely observe and fall through (``except X: pass``
before a fallback path) never terminate the op and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from repro.analysis.flow.callgraph import FunctionInfo, ProgramIndex
from repro.analysis.flow.cfg import attr_chain, calls_in
from repro.analysis.flow.persist import (
    PersistSummary,
    in_protocol_module,
    is_device_call,
    DIRTY_STORES,
    PENDING_STORES,
)
from repro.analysis.flow.report import FlowFinding, TraceStep

__all__ = ["check_exception_paths"]

_CLEANUP_NAMES = {
    "abort",
    "checkpoint",
    "clear",
    "close",
    "discard",
    "forget",
    "free",
    "recover",
    "release",
    "release_retained",
    "reset",
    "restore",
    "retire",
    "rollback",
    "undo",
    "unlock",
}

_STORE_PRIMITIVES = DIRTY_STORES | PENDING_STORES


def _walk_no_defs(node: ast.AST) -> Iterable[ast.AST]:
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield from _walk_no_defs(child)


def _store_lines(
    stmts: List[ast.stmt],
    fn: FunctionInfo,
    index: ProgramIndex,
    summaries: Dict[str, PersistSummary],
) -> List[int]:
    """Lines in *stmts* where protocol stores are (transitively) issued."""
    lines: List[int] = []
    for stmt in stmts:
        for call in calls_in(stmt):
            primitive = is_device_call(call)
            if primitive is not None:
                if primitive in _STORE_PRIMITIVES:
                    lines.append(call.lineno)
                continue
            for cand in index.resolve(call, fn):
                summ = summaries.get(cand.qualname + "@" + cand.path)
                if summ is not None and summ[3]:  # may_store
                    lines.append(call.lineno)
                    break
    return lines


def _has_cleanup_call(stmts: List[ast.stmt]) -> bool:
    for stmt in stmts:
        for call in calls_in(stmt):
            chain = attr_chain(call.func)
            if chain and chain[-1] in _CLEANUP_NAMES:
                return True
    return False


def _has_stats_commit(stmts: List[ast.stmt]) -> bool:
    return any(
        isinstance(node, ast.AugAssign)
        for stmt in stmts
        for node in _walk_no_defs(stmt)
    )


def _terminal_stmt(handler_body: List[ast.stmt]) -> ast.stmt:
    for stmt in handler_body:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return stmt
    return None


def check_exception_paths(
    index: ProgramIndex, summaries: Dict[str, PersistSummary]
) -> List[FlowFinding]:
    findings: List[FlowFinding] = []
    for fn in index.functions:
        if not in_protocol_module(fn):
            continue
        for node in _walk_no_defs(fn.node):
            if not isinstance(node, ast.Try):
                continue
            stores = _store_lines(node.body, fn, index, summaries)
            if not stores:
                continue
            finally_compensates = bool(node.finalbody) and (
                _has_cleanup_call(node.finalbody)
                or _has_stats_commit(node.finalbody)
                or bool(_store_lines(node.finalbody, fn, index, summaries))
            )
            for handler in node.handlers:
                terminal = _terminal_stmt(handler.body)
                if terminal is None:
                    continue  # falls through: a later path compensates
                if (
                    _has_cleanup_call(handler.body)
                    or _store_lines(handler.body, fn, index, summaries)
                    or _has_stats_commit(handler.body)
                    or finally_compensates
                ):
                    continue
                verb = "returns" if isinstance(terminal, ast.Return) else "raises"
                findings.append(
                    FlowFinding(
                        rule="exception-path-no-rollback",
                        path=fn.path,
                        line=handler.lineno,
                        message=(
                            f"handler in {fn.qualname}() {verb} at line "
                            f"{terminal.lineno} without rollback or stats "
                            f"commit for stores issued in the try body "
                            f"(first at line {stores[0]})"
                        ),
                        trace=[
                            TraceStep(
                                fn.path, stores[0], "protocol store under this try"
                            ),
                            TraceStep(fn.path, handler.lineno, "exception lands here"),
                            TraceStep(
                                fn.path,
                                terminal.lineno,
                                f"handler {verb} with the stores unaccounted",
                            ),
                        ],
                        extra_pragma_lines=(terminal.lineno,),
                    )
                )
    return findings
