"""Worklist-driven forward abstract interpretation over a :class:`Cfg`.

Client analyses provide:

- an initial abstract state for the entry node (any hashable value,
  typically a ``frozenset`` of tokens);
- ``transfer(node, state) -> state`` — the effect of executing one CFG
  node to completion;
- optionally ``handler_entry(node, state) -> state`` — applied instead
  of ``transfer`` on ``kind="handler"`` nodes (e.g. to retag tokens as
  "reached via an exception path");
- ``join(a, b) -> state`` — the lattice join (defaults to frozenset
  union).

Exception edges are conservative about *when* a statement raises: the
state propagated along an ``exc`` edge is ``join(state_in, state_out)``
— the raise may happen before or after the node's effects applied.

The engine iterates to a fixpoint; states must come from a finite
lattice (token sets keyed by program lines are) or the caller must
guarantee convergence. Results map node id -> state *on entry* to the
node; ``state_out`` gives the post-state of any node.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional

from repro.analysis.flow.cfg import Cfg, CfgNode

__all__ = ["FlowResult", "run_forward", "union_join"]

State = FrozenSet


def union_join(a: State, b: State) -> State:
    return a | b


class FlowResult:
    """Fixpoint states for one CFG."""

    def __init__(
        self,
        cfg: Cfg,
        states_in: Dict[int, State],
        transfer: Callable[[CfgNode, State], State],
        handler_entry: Optional[Callable[[CfgNode, State], State]],
    ) -> None:
        self.cfg = cfg
        self.states_in = states_in
        self._transfer = transfer
        self._handler_entry = handler_entry

    def state_in(self, nid: int) -> Optional[State]:
        """Entry state, ``None`` when the node is unreachable."""
        return self.states_in.get(nid)

    def state_out(self, nid: int) -> Optional[State]:
        state = self.states_in.get(nid)
        if state is None:
            return None
        return self._apply(self.cfg.nodes[nid], state)

    def _apply(self, node: CfgNode, state: State) -> State:
        if node.kind == "handler" and self._handler_entry is not None:
            return self._handler_entry(node, state)
        return self._transfer(node, state)

    @property
    def exit_state(self) -> Optional[State]:
        return self.states_in.get(self.cfg.exit)

    @property
    def raise_state(self) -> Optional[State]:
        return self.states_in.get(self.cfg.raise_exit)


def run_forward(
    cfg: Cfg,
    init: State,
    transfer: Callable[[CfgNode, State], State],
    handler_entry: Optional[Callable[[CfgNode, State], State]] = None,
    join: Callable[[State, State], State] = union_join,
    max_steps: int = 200_000,
) -> FlowResult:
    """Run the worklist algorithm to fixpoint; returns per-node states."""
    states: Dict[int, State] = {cfg.entry: init}
    result = FlowResult(cfg, states, transfer, handler_entry)
    worklist = [cfg.entry]
    steps = 0
    while worklist:
        steps += 1
        if steps > max_steps:  # defensive: malformed lattice / transfer
            raise RuntimeError(
                f"dataflow did not converge in {max_steps} steps for {cfg.name}()"
            )
        nid = worklist.pop()
        state_in = states[nid]
        node = cfg.nodes[nid]
        state_out = result._apply(node, state_in)
        for dst, kind in cfg.succs[nid]:
            # an exception may fire before or after the node's effects
            carried = join(state_in, state_out) if kind == "exc" else state_out
            old = states.get(dst)
            new = carried if old is None else join(old, carried)
            if new != old:
                states[dst] = new
                worklist.append(dst)
    return result
