"""Top-level flow-checker driver: files -> findings.

Pipeline: parse everything into one :class:`ProgramIndex` (the whole
file set is a single program — interprocedural summaries cross file
boundaries), run the three analyses, then filter through the shared
``# analysis: allow(rule) -- reason`` pragma machinery. A pragma is
accepted on (or one line above) the finding's anchor line *or* any of
its ``extra_pragma_lines`` (e.g. the handler line of an
exception-path finding). Justified flow pragmas that suppressed
nothing are themselves reported as ``stale-pragma`` — the same
deadweight rule the linter applies to its own rules.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.flow.audit import check_exception_paths
from repro.analysis.flow.callgraph import ProgramIndex
from repro.analysis.flow.lockorder import check_lock_order, compute_lock_summaries
from repro.analysis.flow.persist import (
    check_bulk_validate,
    check_persist,
    compute_persist_summaries,
)
from repro.analysis.flow.report import FLOW_RULES, FlowFinding
from repro.analysis.pragmas import PragmaTable

__all__ = ["analyze_files", "run_flow"]


def analyze_files(
    files: Dict[str, str], modules: Optional[Dict[str, str]] = None
) -> List[FlowFinding]:
    index = ProgramIndex.build(files, modules)

    findings: List[FlowFinding] = [
        FlowFinding("syntax-error", path, line, message)
        for path, line, message in index.errors
    ]
    persist_summaries = compute_persist_summaries(index)
    findings += check_persist(index, persist_summaries)
    findings += check_bulk_validate(index)
    findings += check_exception_paths(index, persist_summaries)
    lock_summaries = compute_lock_summaries(index)
    findings += check_lock_order(index, lock_summaries)

    tables = {path: PragmaTable(text) for path, text in files.items()}
    kept: List[FlowFinding] = []
    for finding in sorted(findings, key=FlowFinding.sort_key):
        table = tables.get(finding.path)
        if table is not None:
            probe_lines = (finding.line,) + finding.extra_pragma_lines
            if any(table.suppresses(line, finding.rule) for line in probe_lines):
                continue
        kept.append(finding)

    owned = [rule for rule in FLOW_RULES if rule != "stale-pragma"]
    for path in sorted(tables):
        for pragma in tables[path].stale(owned):
            kept.append(
                FlowFinding(
                    rule="stale-pragma",
                    path=path,
                    line=pragma.line,
                    message=(
                        f"allow({pragma.rule}) suppresses no flow finding "
                        "here; remove it or fix the line it points at"
                    ),
                )
            )
    kept.sort(key=FlowFinding.sort_key)
    return kept


def run_flow(paths: Sequence[str]) -> List[FlowFinding]:
    """Analyze files/directories from disk (one whole-program index)."""
    from repro.analysis.lint import iter_python_files

    files: Dict[str, str] = {}
    for file in iter_python_files(paths):
        with open(file, "r", encoding="utf-8") as fh:
            files[file] = fh.read()
    return analyze_files(files)
