"""Per-function control-flow graphs built from the AST.

One :class:`Cfg` per function: statement-granularity nodes plus three
synthetic nodes — ``entry``, ``exit`` (every normal return path) and
``raise-exit`` (exceptions that escape the function). Edges carry a
kind:

``"n"``
    ordinary fall-through / branch / loop edges (back edges included);
``"exc"``
    may-raise transfer from inside a ``try`` into a handler, or from a
    ``raise`` toward the propagation chain.

``try``/``except``/``else``/``finally`` is modelled precisely enough
for path-sensitive persistence checking:

- every statement inside a ``try`` body gets an ``exc`` edge to *each*
  handler entry (handler types are not evaluated — over-approximation)
  **and** to the outward propagation chain (a typed handler may not
  match);
- handler entry nodes are marked ``kind="handler"`` so client analyses
  can tag abstract state as "reached via an exception path";
- a ``finally`` suite is **duplicated per continuation**: one copy for
  normal completion, one for exception propagation, and one per abrupt
  jump kind (``return``/``break``/``continue``) that actually crosses
  it. This is what keeps "exception swept through the finally and kept
  propagating" distinct from "the finally ran and control continued
  normally" — merging those two (the obvious single-copy shortcut)
  would let cleanup paths launder exception paths into normal ones and
  blind the ``unfenced-on-exception-path`` rule.

``with`` blocks contribute a node for the context expressions and run
their body inline (the protocol code's context managers — ``fs.op``,
``obs.span`` — do not swallow exceptions).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["CfgNode", "Cfg", "build_cfg", "calls_in", "attr_chain"]


def attr_chain(node: ast.AST) -> List[str]:
    """Names along an attribute chain: ``fs.device.nt_store`` ->
    ``['fs', 'device', 'nt_store']`` (empty head for computed bases)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def calls_in(stmt: ast.AST) -> List[ast.Call]:
    """Call expressions inside one statement, in source order, without
    descending into nested function/class definitions or lambdas."""
    calls: List[ast.Call] = []
    if isinstance(stmt, ast.Call):  # expression fragments may *be* a call
        calls.append(stmt)

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            walk(child)

    walk(stmt)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


@dataclass
class CfgNode:
    nid: int
    kind: str  # "entry" | "exit" | "raise-exit" | "stmt" | "handler"
    stmt: Optional[ast.AST] = None
    line: int = 0
    #: the AST fragments actually *evaluated at* this node — the whole
    #: statement for simple statements, only the header expression(s)
    #: for compound ones (an ``if`` node evaluates its test, not its
    #: branches; those have their own nodes)
    src: List[ast.AST] = field(default_factory=list)
    #: pre-extracted call expressions (source order) for client analyses
    calls: List[ast.Call] = field(default_factory=list)


@dataclass
class Cfg:
    func: ast.AST
    name: str
    nodes: Dict[int, CfgNode] = field(default_factory=dict)
    succs: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2

    def add_node(
        self,
        kind: str,
        stmt: Optional[ast.AST] = None,
        src: Optional[List[ast.AST]] = None,
    ) -> int:
        nid = len(self.nodes)
        if src is None:
            src = [stmt] if stmt is not None else []
        calls: List[ast.Call] = []
        for fragment in src:
            calls.extend(calls_in(fragment))
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        node = CfgNode(
            nid,
            kind,
            stmt,
            getattr(stmt, "lineno", 0) if stmt is not None else 0,
            src,
            calls,
        )
        self.nodes[nid] = node
        self.succs[nid] = []
        return nid

    def add_edge(self, src: int, dst: int, kind: str = "n") -> None:
        if (dst, kind) not in self.succs[src]:
            self.succs[src].append((dst, kind))

    def preds(self) -> Dict[int, List[Tuple[int, str]]]:
        back: Dict[int, List[Tuple[int, str]]] = {n: [] for n in self.nodes}
        for src, outs in self.succs.items():
            for dst, kind in outs:
                back[dst].append((src, kind))
        return back


class _Frame:
    """One enclosing ``try`` during construction: handler entries plus
    collectors for control transfers that must cross its ``finally``."""

    def __init__(self, handler_entries: List[int], has_finally: bool) -> None:
        self.handler_entries = handler_entries
        self.has_finally = has_finally
        # control kinds collected for finally re-dispatch
        self.raise_preds: List[int] = []
        self.return_preds: List[int] = []
        self.break_preds: List[int] = []
        self.continue_preds: List[int] = []


class _Loop:
    def __init__(self, head: int) -> None:
        self.head = head
        self.break_preds: List[int] = []


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = Cfg(func, getattr(func, "name", "<lambda>"))
        self.cfg.entry = self.cfg.add_node("entry")
        self.cfg.exit = self.cfg.add_node("exit")
        self.cfg.raise_exit = self.cfg.add_node("raise-exit")
        self.frames: List[_Frame] = []
        self.loops: List[_Loop] = []

    # -- control-transfer routing -----------------------------------------

    def _route(self, preds: Sequence[int], kind: str, target: Optional[int]) -> None:
        """Send *preds* toward an abrupt (non-raise) target, stopping at
        the first enclosing try-with-finally, whose per-kind finally
        copy re-dispatches later."""
        for frame in reversed(self.frames):
            if frame.has_finally:
                getattr(frame, kind + "_preds").extend(preds)
                return
        if target is not None:
            for p in preds:
                self.cfg.add_edge(p, target)
        elif kind == "break" and self.loops:
            self.loops[-1].break_preds.extend(preds)
        elif kind == "continue" and self.loops:
            for p in preds:
                self.cfg.add_edge(p, self.loops[-1].head)

    def _propagate_raise(self, preds: Sequence[int]) -> None:
        """An exception leaving *preds* walks the enclosing frames from
        the inside out: it may land in each frame's handlers (types are
        not evaluated, so propagation also continues past them), and it
        parks at the first try-with-finally — that frame's raise-copy of
        the finally resumes the walk from the outer context."""
        for frame in reversed(self.frames):
            for h in frame.handler_entries:
                for p in preds:
                    self.cfg.add_edge(p, h, "exc")
            if frame.has_finally:
                frame.raise_preds.extend(preds)
                return
        for p in preds:
            self.cfg.add_edge(p, self.cfg.raise_exit, "exc")

    def _wire_exception(self, nid: int) -> None:
        self._propagate_raise([nid])

    @staticmethod
    def _may_raise(stmt: ast.AST) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)):
            return False
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return False  # docstrings / bare literals
        return True

    # -- statement lists ----------------------------------------------------

    def build_body(self, body: Sequence[ast.stmt], preds: List[int]) -> List[int]:
        """Wire *body* after *preds*; returns the normal-exit preds."""
        for stmt in body:
            preds = self.build_stmt(stmt, preds)
            if not preds:
                break  # unreachable fall-through (return/raise/...)
        return preds

    def _stmt_node(
        self,
        stmt: ast.stmt,
        preds: List[int],
        kind: str = "stmt",
        src: Optional[List[ast.AST]] = None,
    ) -> int:
        nid = self.cfg.add_node(kind, stmt, src)
        for p in preds:
            self.cfg.add_edge(p, nid)
        if self.frames and self._may_raise(stmt):
            self._wire_exception(nid)
        return nid

    def build_stmt(self, stmt: ast.stmt, preds: List[int]) -> List[int]:
        cfg = self.cfg
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # nested definitions are analyzed on their own; the def
            # statement itself is a no-op node
            return [self._stmt_node(stmt, preds, src=[])]

        if isinstance(stmt, ast.Return):
            nid = self._stmt_node(stmt, preds)
            self._route([nid], "return", cfg.exit)
            return []

        if isinstance(stmt, ast.Raise):
            nid = self.cfg.add_node("stmt", stmt)
            for p in preds:
                cfg.add_edge(p, nid)
            self._propagate_raise([nid])
            return []

        if isinstance(stmt, ast.Break):
            nid = self._stmt_node(stmt, preds)
            self._route([nid], "break", None)
            return []

        if isinstance(stmt, ast.Continue):
            nid = self._stmt_node(stmt, preds)
            self._route([nid], "continue", None)
            return []

        if isinstance(stmt, ast.If):
            test = self._stmt_node(stmt, preds, src=[stmt.test])
            then_out = self.build_body(stmt.body, [test])
            else_out = self.build_body(stmt.orelse, [test]) if stmt.orelse else [test]
            return then_out + else_out

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = [stmt.test] if isinstance(stmt, ast.While) else [stmt.iter]
            head = self._stmt_node(stmt, preds, src=header)
            loop = _Loop(head)
            self.loops.append(loop)
            body_out = self.build_body(stmt.body, [head])
            for p in body_out:
                cfg.add_edge(p, head)  # back edge
            self.loops.pop()
            out = [head]  # loop may run zero times / iterator exhausts
            if stmt.orelse:
                out = self.build_body(stmt.orelse, out)
            return out + loop.break_preds

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            ctx = self._stmt_node(
                stmt, preds, src=[item.context_expr for item in stmt.items]
            )
            return self.build_body(stmt.body, [ctx])

        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, preds)

        # simple statement (assign, expr, assert, delete, ...)
        return [self._stmt_node(stmt, preds)]

    # -- try / except / else / finally --------------------------------------

    def _build_try(self, stmt: ast.Try, preds: List[int]) -> List[int]:
        cfg = self.cfg
        has_finally = bool(stmt.finalbody)

        # handler entry nodes first, so body statements can target them
        handler_entries: List[int] = []
        for handler in stmt.handlers:
            h = cfg.add_node(
                "handler", handler, [handler.type] if handler.type else []
            )
            handler_entries.append(h)

        frame = _Frame(handler_entries, has_finally)
        self.frames.append(frame)
        body_out = self.build_body(stmt.body, preds)
        if stmt.orelse:
            body_out = self.build_body(stmt.orelse, body_out)

        # handler bodies run under the frame too (their raises must
        # still cross this finally), but they no longer target their
        # own handler set.
        frame.handler_entries = []
        handler_out: List[int] = []
        for handler, h in zip(stmt.handlers, handler_entries):
            handler_out.extend(self.build_body(handler.body, [h]))
        self.frames.pop()

        normal_out = body_out + handler_out
        if not has_finally:
            return normal_out

        # one finally copy per continuation kind that actually occurs
        out = self.build_body(stmt.finalbody, normal_out) if normal_out else []
        if frame.raise_preds:
            fin = self.build_body(stmt.finalbody, frame.raise_preds)
            self._propagate_raise(fin)
        if frame.return_preds:
            fin = self.build_body(stmt.finalbody, frame.return_preds)
            self._route(fin, "return", cfg.exit)
        if frame.break_preds:
            fin = self.build_body(stmt.finalbody, frame.break_preds)
            self._route(fin, "break", None)
        if frame.continue_preds:
            fin = self.build_body(stmt.finalbody, frame.continue_preds)
            self._route(fin, "continue", None)
        return out


def build_cfg(func: ast.AST) -> Cfg:
    """CFG for one ``FunctionDef`` / ``AsyncFunctionDef``."""
    builder = _Builder(func)
    out = builder.build_body(func.body, [builder.cfg.entry])
    for p in out:
        builder.cfg.add_edge(p, builder.cfg.exit)
    return builder.cfg
