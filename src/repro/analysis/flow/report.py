"""Finding model and serialization for the flow checker.

A :class:`FlowFinding` is one diagnostic with a file:line anchor plus a
*trace* — the sequence of program points that make the path real
(store site → handler → op end; or mutation → raise; or the edges of a
lock cycle). Text output prints the trace indented under the finding;
JSON carries it structurally; SARIF 2.1.0 maps it to ``locations`` +
``codeFlows`` so standard viewers can step through it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["TraceStep", "FlowFinding", "FLOW_RULES", "to_json", "to_sarif"]

#: rule name -> one-line description (the flow engine's rule registry;
#: pragma staleness for these rules is owned by this engine)
FLOW_RULES: Dict[str, str] = {
    "unfenced-on-exception-path": (
        "a swallowed exception lets an op return normally with a store "
        "that never reached flush+fence"
    ),
    "mutate-before-validate": (
        "a bulk operation can raise a validation error after already "
        "mutating protocol state (half-applied batch)"
    ),
    "lock-order-cycle": (
        "the global lock-acquisition graph contains a cycle or an "
        "MGL-hierarchy violation (coarse lock taken while holding fine)"
    ),
    "exception-path-no-rollback": (
        "stores applied under a try whose handler returns/raises "
        "without rollback, compensation, or stats commit"
    ),
    "stale-pragma": (
        "a justified allow(...) pragma for a flow rule that suppresses "
        "no finding (dead suppression)"
    ),
    "syntax-error": "file does not parse; nothing was analyzed",
}


@dataclass(frozen=True)
class TraceStep:
    path: str
    line: int
    note: str


@dataclass(frozen=True)
class FlowFinding:
    rule: str
    path: str
    line: int
    message: str
    trace: Tuple[TraceStep, ...] = ()
    #: additional lines where a pragma is accepted for this finding
    #: (e.g. the handler line for an exception-path finding)
    extra_pragma_lines: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.trace, tuple):
            object.__setattr__(self, "trace", tuple(self.trace))

    def format(self) -> str:
        lines = [f"{self.path}:{self.line}: {self.rule}: {self.message}"]
        for step in self.trace:
            lines.append(f"    {step.path}:{step.line}: {step.note}")
        return "\n".join(lines)

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)


def to_json(findings: Sequence[FlowFinding]) -> str:
    payload = {
        "tool": "repro.analysis.flow",
        "rules": FLOW_RULES,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "trace": [
                    {"path": s.path, "line": s.line, "note": s.note} for s in f.trace
                ],
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_location(path: str, line: int, message: str = "") -> dict:
    loc = {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": max(1, line)},
        }
    }
    if message:
        loc["message"] = {"text": message}
    return loc


def to_sarif(findings: Sequence[FlowFinding]) -> str:
    """Minimal valid SARIF 2.1.0 with one run and per-finding codeFlows."""
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [_sarif_location(f.path, f.line)],
        }
        if f.trace:
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {"location": _sarif_location(s.path, s.line, s.note)}
                                for s in f.trace
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis.flow",
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": desc},
                            }
                            for rule, desc in sorted(FLOW_RULES.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
