"""Lock-order analysis: ``lock-order-cycle``.

Builds the global lock-*class* acquisition graph. Lock classes are the
discriminating first component of the virtual-lock key tuples the tree
uses everywhere — ``("inode", id)`` -> ``inode``, ``("jbd2",)`` ->
``jbd2`` — plus the MGL constructors ``node_key(...)`` -> ``mgsp`` and
``file_key(...)`` -> ``mgsp-file``. Key expressions that are plain
names are resolved through the nearest preceding assignment in the
same function (``key = self.file_key(fid); rec.lock(key, ...)``), which
keeps the two MGL branches of ``MglLockManager._acquire`` from
smearing into each other.

A held-set dataflow runs over each function's CFG. Acquiring class *c*
while holding *h* adds the edge ``h -> c``; calls are resolved through
the call graph and contribute edges from every held class to every
class the callee may (transitively) acquire — this is what makes the
check interprocedural where the existing ``mgl-lock-order`` lint rule
sees one call site at a time. Intra-class edges (``mgsp -> mgsp``) are
ignored: index-ordering inside one class is the lint rule's job.

Findings (both under rule ``lock-order-cycle``):

- a cycle among lock classes (one finding per strongly connected
  component, traced edge by edge);
- an MGL hierarchy violation — acquiring the coarse ``mgsp-file``
  class while holding fine ``mgsp`` node locks (rank order is
  file < node; coarse must come first).

Releases remove the named classes; a release whose key cannot be
resolved (loop variables over caller-provided key lists) clears the
whole held set — optimistic, so stale held state never fabricates
edges.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import FunctionInfo, ProgramIndex, fixpoint
from repro.analysis.flow.cfg import CfgNode, attr_chain
from repro.analysis.flow.dataflow import run_forward
from repro.analysis.flow.report import FlowFinding, TraceStep

__all__ = ["compute_lock_summaries", "check_lock_order"]

RECORDER_NAMES = {"recorder", "rec", "bg_recorder"}

#: MGL hierarchy ranks: lower rank = coarser = must be acquired first
MGL_RANKS = {"mgsp-file": 0, "mgsp": 1}

LockSummary = FrozenSet[str]  # classes the function may (transitively) acquire

#: acquisition-order edge: (held, acquired, path, line)
Edge = Tuple[str, str, str, int]


def _assignments(fn: FunctionInfo) -> List[Tuple[int, str, ast.AST]]:
    out: List[Tuple[int, str, ast.AST]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                out.append((node.lineno, target.id, node.value))
    out.sort(key=lambda t: t[0])
    return out


def _key_classes(
    expr: ast.AST,
    assigns: List[Tuple[int, str, ast.AST]],
    use_line: int,
    depth: int = 0,
) -> Set[str]:
    """Lock classes a key expression may denote (empty = unknown)."""
    if depth > 4:
        return set()
    if isinstance(expr, ast.Tuple) and expr.elts:
        first = expr.elts[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return {first.value}
        return set()
    if isinstance(expr, ast.Call):
        chain = attr_chain(expr.func)
        if chain:
            if chain[-1] == "node_key":
                return {"mgsp"}
            if chain[-1] == "file_key":
                return {"mgsp-file"}
        return set()
    if isinstance(expr, ast.Name):
        best: Optional[ast.AST] = None
        for lineno, name, value in assigns:
            if name == expr.id and lineno <= use_line:
                best = value  # nearest preceding assignment wins
        if best is not None:
            return _key_classes(best, assigns, use_line, depth + 1)
    return set()


def _lock_event(call: ast.Call) -> Optional[Tuple[str, Optional[ast.AST]]]:
    """``("acquire"|"release", key_expr)`` for direct lock primitives;
    MGL manager calls use the sentinel key ``None``."""
    chain = attr_chain(call.func)
    if len(chain) < 2:
        return None
    method, recv = chain[-1], chain[-2]
    if recv in RECORDER_NAMES and method in ("lock", "unlock") and call.args:
        return ("acquire" if method == "lock" else "release", call.args[0])
    if "mgl" in chain[:-1]:
        if method == "acquire":
            return ("acquire", None)
        if method in ("release", "release_retained"):
            return ("release", None)
    return None


_MGL_CLASSES = {"mgsp", "mgsp-file"}


class _LockPass:
    def __init__(self, index: ProgramIndex, summaries: Dict[str, LockSummary]) -> None:
        self.index = index
        self.summaries = summaries
        self.edges: Set[Edge] = set()
        self.violations: Set[Tuple[str, str, str, int]] = set()

    def _record_acquire(
        self, held: FrozenSet[str], classes: Set[str], path: str, line: int
    ) -> None:
        for c in sorted(classes):
            for h in sorted(held):
                if h == c:
                    continue
                self.edges.add((h, c, path, line))
                if (
                    h in MGL_RANKS
                    and c in MGL_RANKS
                    and MGL_RANKS[c] < MGL_RANKS[h]
                ):
                    self.violations.add((h, c, path, line))

    def analyze(self, fn: FunctionInfo) -> "FrozenSet[str]":
        assigns = _assignments(fn)

        def transfer(node: CfgNode, state: FrozenSet[str]) -> FrozenSet[str]:
            for call in node.calls:
                event = _lock_event(call)
                if event is not None:
                    action, key = event
                    classes = (
                        set(_MGL_CLASSES)
                        if key is None
                        else _key_classes(key, assigns, call.lineno)
                    )
                    if action == "acquire":
                        self._record_acquire(state, classes, fn.path, call.lineno)
                        state = state | frozenset(classes)
                    elif classes:
                        state = state - frozenset(classes)
                    else:  # unresolvable key: assume it releases everything
                        state = frozenset()
                    continue
                acquires = self._callee_acquires(call, fn)
                if acquires and state:
                    self._record_acquire(state, acquires, fn.path, call.lineno)
            return state

        result = run_forward(fn.cfg, frozenset(), transfer)
        exit_state = result.exit_state or frozenset()
        return exit_state

    def _callee_acquires(self, call: ast.Call, caller: FunctionInfo) -> Set[str]:
        candidates = self.index.resolve(call, caller)
        if not candidates:
            return set()
        sets = [
            self.summaries.get(c.qualname + "@" + c.path, frozenset())
            for c in candidates
        ]
        out = set(sets[0])
        for s in sets[1:]:
            out &= s  # ambiguous resolution: only certain acquires count
        return out

    def summary_of(self, fn: FunctionInfo) -> LockSummary:
        acquired: Set[str] = set()
        assigns = _assignments(fn)
        for node in fn.cfg.nodes.values():
            for call in node.calls:
                event = _lock_event(call)
                if event is not None:
                    action, key = event
                    if action == "acquire":
                        acquired |= (
                            set(_MGL_CLASSES)
                            if key is None
                            else _key_classes(key, assigns, call.lineno)
                        )
                else:
                    acquired |= self._callee_acquires(call, fn)
        return frozenset(acquired)


def compute_lock_summaries(index: ProgramIndex) -> Dict[str, LockSummary]:
    scratch = _LockPass(index, {})

    def compute(fn: FunctionInfo, summaries: Dict[str, LockSummary]) -> LockSummary:
        scratch.summaries = summaries
        return scratch.summary_of(fn)

    return fixpoint(
        index.functions, compute, key=lambda fn: fn.qualname + "@" + fn.path
    )


def _find_cycles(edges: Set[Edge]) -> List[List[str]]:
    """One representative cycle per strongly connected component."""
    graph: Dict[str, Set[str]] = {}
    for h, c, _p, _l in edges:
        graph.setdefault(h, set()).add(c)
        graph.setdefault(c, set())

    # Tarjan's SCC, iterative
    index_of: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(graph[root])))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index_of:
                    index_of[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index_of[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    for node in sorted(graph):
        if node not in index_of:
            strongconnect(node)

    cycles: List[List[str]] = []
    for scc in sccs:
        members = set(scc)
        # walk greedily inside the SCC from its smallest member
        path = [scc[0]]
        seen = {scc[0]}
        while True:
            nxt = sorted(n for n in graph[path[-1]] if n in members)
            step = next((n for n in nxt if n not in seen), None)
            if step is None:
                closing = next((n for n in nxt if n in seen), path[0])
                path = path[path.index(closing) :]
                break
            path.append(step)
            seen.add(step)
        cycles.append(path)
    return cycles


def check_lock_order(
    index: ProgramIndex, summaries: Dict[str, LockSummary]
) -> List[FlowFinding]:
    lock_pass = _LockPass(index, summaries)
    for fn in index.functions:
        lock_pass.analyze(fn)

    findings: List[FlowFinding] = []

    first_site: Dict[Tuple[str, str], Tuple[str, int]] = {}
    for h, c, path, line in sorted(lock_pass.edges):
        first_site.setdefault((h, c), (path, line))

    for cycle in _find_cycles(lock_pass.edges):
        ring = cycle + [cycle[0]]
        trace = []
        for a, b in zip(ring, ring[1:]):
            site = first_site.get((a, b))
            if site is not None:
                trace.append(
                    TraceStep(site[0], site[1], f"'{b}' acquired while holding '{a}'")
                )
        anchor = trace[0] if trace else TraceStep("<unknown>", 0, "")
        findings.append(
            FlowFinding(
                rule="lock-order-cycle",
                path=anchor.path,
                line=anchor.line,
                message=(
                    "lock-acquisition cycle: " + " -> ".join(ring)
                ),
                trace=trace,
            )
        )

    reported: Set[Tuple[str, str]] = set()
    for h, c, path, line in sorted(lock_pass.violations):
        if (h, c) in reported:
            continue
        reported.add((h, c))
        findings.append(
            FlowFinding(
                rule="lock-order-cycle",
                path=path,
                line=line,
                message=(
                    f"MGL hierarchy violation: coarse '{c}' acquired while "
                    f"holding fine '{h}' (coarse locks must come first)"
                ),
                trace=[
                    TraceStep(path, line, f"'{c}' acquired here with '{h}' held"),
                ],
            )
        )
    return findings
