"""Flow-sensitive static persistence & concurrency checker.

The static half of the correctness tooling got a dataflow engine: CFGs
per function (:mod:`.cfg`), a worklist abstract interpreter
(:mod:`.dataflow`), a whole-program index with call resolution and
summary fixpoints (:mod:`.callgraph`), and three analyses on top —
persist-state (:mod:`.persist`), exception-path audit (:mod:`.audit`)
and lock order (:mod:`.lockorder`). ``python -m repro.analysis.flow``
is the CLI; see docs/analysis.md for domains and soundness caveats.
"""

from repro.analysis.flow.callgraph import FunctionInfo, ProgramIndex
from repro.analysis.flow.cfg import Cfg, CfgNode, build_cfg
from repro.analysis.flow.dataflow import FlowResult, run_forward
from repro.analysis.flow.driver import analyze_files, run_flow
from repro.analysis.flow.report import FLOW_RULES, FlowFinding, TraceStep, to_json, to_sarif

__all__ = [
    "Cfg",
    "CfgNode",
    "FLOW_RULES",
    "FlowFinding",
    "FlowResult",
    "FunctionInfo",
    "ProgramIndex",
    "TraceStep",
    "analyze_files",
    "build_cfg",
    "run_flow",
    "run_forward",
    "to_json",
    "to_sarif",
]
