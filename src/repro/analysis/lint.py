"""Protocol linter: AST rules over ``src/repro`` (the static half).

Run as ``python -m repro.analysis.lint src/repro``; exits non-zero when
any finding survives. Suppress a finding with a justified pragma on the
flagged line (or the line above)::

    something.nt_store(off, data)  # analysis: allow(unfenced-nt-store) -- caller fences

A pragma without a ``-- reason`` does not suppress; it is reported as
``invalid-pragma`` instead.

Rules
-----
``raw-store-outside-protocol``
    ``device.store`` / ``nt_store`` (and their vectorized forms) called
    from a module outside the sanctioned protocol layers — persistence
    traffic must flow through the fs/core protocol code, not be issued
    ad hoc by benchmarks, the DB layer, or analysis code itself.
``unfenced-nt-store``
    A function issues a non-temporal store (``nt_store*`` or
    ``store_word_v``) but contains no reachable ``fence``/``persist``/
    ``drain``: the store may never be ordered-durable.
``mgl-lock-order``
    A loop acquiring locks over a ``terminals`` collection without
    ``sorted(...)`` — MGL terminal locks must be acquired in index
    order (the deadlock-avoidance discipline in ``core/locks.py``).
``ambient-nondeterminism``
    ``time.time``-style clocks or ambient ``random`` calls in
    crash-replayable paths, which would break seeded reproducers.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.pragmas import PragmaTable, TRACE_RULE_NAMES

LINT_RULES: Dict[str, str] = {
    "raw-store-outside-protocol": "raw device store issued outside sanctioned protocol modules",
    "unfenced-nt-store": "non-temporal store with no reachable fence in the same function",
    "mgl-lock-order": "terminal locks acquired without sorted() ordering",
    "ambient-nondeterminism": "ambient clock/randomness in a crash-replayable path",
    "invalid-pragma": "analysis pragma without a justification, or for an unknown rule",
    "stale-pragma": "justified allow(...) pragma that suppresses no finding",
}

#: rules whose pragmas this engine owns for staleness accounting —
#: pragmas for flow/trace rules are someone else's business
_OWNED_RULES: Tuple[str, ...] = (
    "raw-store-outside-protocol",
    "unfenced-nt-store",
    "mgl-lock-order",
    "ambient-nondeterminism",
)

#: module prefixes allowed to issue raw device stores (protocol layers)
SANCTIONED_STORE_PREFIXES: Tuple[str, ...] = (
    "repro/nvm",
    "repro/core",
    "repro/fs",
    "repro/fsapi",
    "repro/db/pqueue.py",  # durable MPSC queue speaks the device protocol directly
)

#: module prefixes whose execution must be seed-deterministic (they run
#: under crash replay / the sweep)
REPLAYABLE_PREFIXES: Tuple[str, ...] = (
    "repro/nvm",
    "repro/core",
    "repro/fs",
    "repro/fsapi",
    "repro/crashsweep",
    "repro/obs",
    "repro/infer",
    "repro/db/pqueue.py",
    "repro/service",
)

_STORE_METHODS = frozenset({"store", "nt_store", "store_v", "nt_store_v"})
_NT_METHODS = frozenset({"nt_store", "nt_store_v", "nt_store_word", "nt_store_words", "store_word_v"})
_FENCE_METHODS = frozenset({"fence", "persist", "drain"})
_DEVICE_NAMES = frozenset({"device", "buffer", "dev"})
_TIME_FUNCS = frozenset({"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"})
_RANDOM_FUNCS = frozenset(
    {"random", "randrange", "randint", "choice", "choices", "shuffle", "sample", "getrandbits", "uniform"}
)

@dataclass
class LintFinding:
    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _flow_rule_names() -> frozenset:
    """Flow-checker rule names (lazy import: the flow package is a
    consumer of this module's file iterator)."""
    from repro.analysis.flow.report import FLOW_RULES

    return frozenset(FLOW_RULES)


def _attr_chain(node: ast.AST) -> List[str]:
    """Names along an attribute chain, e.g. ``fs.device.nt_store`` ->
    ['fs', 'device', 'nt_store']."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _is_device_receiver(chain: Sequence[str]) -> bool:
    # everything before the method name
    return any(part in _DEVICE_NAMES for part in chain[:-1])


def _module_path(path: str) -> str:
    """The ``repro/...`` part of a file path (POSIX separators)."""
    parts = os.path.normpath(path).split(os.sep)
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    return "/".join(parts)


def _has_prefix(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + "/") for p in prefixes)


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: str) -> None:
        self.module = module
        self.sanctioned = _has_prefix(module, SANCTIONED_STORE_PREFIXES)
        self.replayable = _has_prefix(module, REPLAYABLE_PREFIXES)
        self.raw: List[Tuple[int, str]] = []  # (line, message)
        self.unfenced: List[Tuple[int, str]] = []
        self.lock_order: List[Tuple[int, str]] = []
        self.nondet: List[Tuple[int, str]] = []

    # -- per-function fence reachability -----------------------------------

    def _visit_function(self, node) -> None:
        nt_calls: List[Tuple[int, str]] = []
        fenced = False
        # walk without descending into nested defs (visited on their own)
        stack: List[ast.AST] = list(ast.iter_child_nodes(node))
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(sub))
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                chain = _attr_chain(sub.func)
                method = chain[-1] if chain else ""
                if method in _NT_METHODS and _is_device_receiver(chain):
                    nt_calls.append((sub.lineno, method))
                if method in _FENCE_METHODS:
                    fenced = True
        if nt_calls and not fenced:
            for line, method in nt_calls:
                self.unfenced.append(
                    (
                        line,
                        f"{method} in {node.name}() with no fence/persist/drain "
                        "reachable in the same function",
                    )
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- call-site rules ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            method = chain[-1]
            if (
                not self.sanctioned
                and method in _STORE_METHODS
                and _is_device_receiver(chain)
            ):
                self.raw.append(
                    (
                        node.lineno,
                        f"{'.'.join(chain)}(...) in non-protocol module "
                        f"{self.module}; route writes through the fs layer",
                    )
                )
            if self.replayable and len(chain) == 2:
                base, fn = chain
                if base == "time" and fn in _TIME_FUNCS:
                    self.nondet.append(
                        (node.lineno, f"time.{fn}() in crash-replayable path")
                    )
                elif base == "random" and fn in _RANDOM_FUNCS:
                    self.nondet.append(
                        (node.lineno, f"ambient random.{fn}() in crash-replayable path")
                    )
                elif base == "random" and fn == "Random" and not node.args and not node.keywords:
                    self.nondet.append(
                        (node.lineno, "unseeded random.Random() in crash-replayable path")
                    )
        self.generic_visit(node)

    # -- lock ordering -----------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._mentions_terminals(node.iter) and not self._is_sorted(node.iter):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                    if sub.func.attr in ("lock", "acquire"):
                        self.lock_order.append(
                            (
                                node.lineno,
                                "terminal locks acquired in plan order; wrap the "
                                "iterable in sorted(..., key=lambda t: t[1])",
                            )
                        )
                        break
        self.generic_visit(node)

    @staticmethod
    def _mentions_terminals(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr == "terminals":
                return True
            if isinstance(sub, ast.Name) and sub.id == "terminals":
                return True
        return False

    @staticmethod
    def _is_sorted(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        )


def lint_source(
    text: str, path: str = "<string>", module: Optional[str] = None
) -> List[LintFinding]:
    """Lint one source blob; *module* overrides the repro-relative path
    used for the sanctioned/replayable prefix checks."""
    module = module if module is not None else _module_path(path)
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, "syntax-error", str(exc))]
    visitor = _Visitor(module)
    visitor.visit(tree)
    raw_findings = (
        [("raw-store-outside-protocol", ln, msg) for ln, msg in visitor.raw]
        + [("unfenced-nt-store", ln, msg) for ln, msg in visitor.unfenced]
        + [("mgl-lock-order", ln, msg) for ln, msg in visitor.lock_order]
        + [("ambient-nondeterminism", ln, msg) for ln, msg in visitor.nondet]
    )
    table = PragmaTable(text)
    out: List[LintFinding] = []
    for rule, lineno, msg in sorted(raw_findings, key=lambda f: (f[1], f[0])):
        pragma = table.lookup(lineno, rule)
        if pragma is not None and pragma.valid:
            table.mark_used(pragma)
            continue
        if pragma is not None:  # matches a finding but has no reason
            out.append(
                LintFinding(
                    path,
                    pragma.line,
                    "invalid-pragma",
                    f"allow({rule}) has no '-- reason' justification",
                )
            )
        out.append(LintFinding(path, lineno, rule, msg))

    # pragma hygiene: unknown rule names, and justified pragmas for
    # lint-owned rules that suppressed nothing (dead suppressions)
    known = set(LINT_RULES) | set(TRACE_RULE_NAMES) | _flow_rule_names()
    for pragma in table.pragmas:
        if pragma.rule not in known:
            out.append(
                LintFinding(
                    path,
                    pragma.line,
                    "invalid-pragma",
                    f"allow({pragma.rule}) names no known analysis rule",
                )
            )
    for pragma in table.stale(_OWNED_RULES):
        out.append(
            LintFinding(
                path,
                pragma.line,
                "stale-pragma",
                f"allow({pragma.rule}) suppresses no finding here; remove "
                "it or fix the line it points at",
            )
        )
    out.sort(key=lambda f: (f.line, f.rule))
    return out


def iter_python_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                files.extend(
                    os.path.join(root, n) for n in sorted(names) if n.endswith(".py")
                )
        else:
            files.append(path)
    return sorted(files)


def run_lint(paths: Sequence[str]) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for file in iter_python_files(paths):
        with open(file, "r", encoding="utf-8") as fh:
            findings.extend(lint_source(fh.read(), path=file))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        args = ["src/repro"]
    findings = run_lint(args)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"repro.analysis.lint: {len(findings)} finding(s)")
        return 1
    print("repro.analysis.lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
