"""Persistence-order trace analyzer (the dynamic half of ``repro.analysis``).

WITCHER-style: instead of *executing* crash states like the PR-3 sweep,
the analyzer observes the live store/flush/fence stream through the
device's ``analysis_tap`` and checks the MGSP ordering protocol as an
invariant over that stream. Event indices count exactly like the crash
sweep's enumeration (one event per store / clwb call / fence, per
element inside the vectorized ``_v`` entry points), so every finding can
name the ``--at`` index a ``repro.crashsweep`` reproducer would crash
at.

Rules
-----
``commit-before-data`` (error)
    A fence is about to make a metadata-log commit entry durable while
    data the entry guards is still volatile: some non-metalog line is
    dirty, or pending from a store *older* than the commit store (i.e.
    the data fence that should precede the commit point is missing — a
    crash could persist the checksummed commit entry via eviction while
    the guarded bytes are lost).
``torn-multiword`` (error)
    Multi-word metadata (node tables, metalog) written with a plain
    cached store instead of ``atomic_store_u64`` / a non-temporal +
    fence sequence: words of the update can persist independently.
``unfenced-at-boundary`` (error)
    Dirty (stored-but-unflushed) lines alive when an operation returns,
    outside the async write-back config. The metadata-log region is
    exempt: MGSP's entry retire is deliberately unfenced (replay is
    idempotent) and leaves exactly one dirty metalog line per op.
``redundant-flush`` (perf)
    A clwb call that covered only clean lines.
``redundant-fence`` (perf)
    A fence issued with nothing pending. Note MGSP's ``fsync`` is *by
    design* such a fence (every write is already synchronized), so
    workload reports treat perf findings as diagnostics, not failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fsapi.layout import VolumeLayout
from repro.util import CACHE_LINE

ERROR = "error"
PERF = "perf"

#: rule id -> (severity, one-line description)
RULES: Dict[str, Tuple[str, str]] = {
    "commit-before-data": (
        ERROR,
        "commit/metalog entry becomes durable while guarded data is volatile",
    ),
    "torn-multiword": (
        ERROR,
        "multi-word metadata written with a plain (tearable) cached store",
    ),
    "unfenced-at-boundary": (
        ERROR,
        "dirty lines alive across an op boundary outside async write-back",
    ),
    "redundant-flush": (PERF, "clwb call that covered only clean lines"),
    "redundant-fence": (PERF, "fence issued with nothing pending"),
}

#: regions where multi-word metadata must use atomic / fenced stores
_TORN_REGIONS = frozenset({"node_tables", "metalog"})


@dataclass
class Finding:
    """One rule violation, anchored to a persistence-event index."""

    rule: str
    severity: str
    event_index: int  # 0-based: ``--at event_index`` crashes just before it
    message: str
    op: Optional[str] = None  # op open when the event fired, if any

    def format(self, reproducer: Optional[str] = None) -> str:
        where = f" [op={self.op}]" if self.op else ""
        line = f"{self.severity.upper():5s} {self.rule} @ event {self.event_index}{where}: {self.message}"
        if reproducer:
            line += f"\n      reproduce: {reproducer}"
        return line


class RegionMap:
    """Classify device offsets into volume-layout regions."""

    #: layout attributes, in device order
    NAMES = ("superblock", "metalog", "node_tables", "journal", "log_area", "data_area")

    def __init__(self, layout: VolumeLayout) -> None:
        self.layout = layout
        self._spans = [
            (getattr(layout, name).start, getattr(layout, name).end, name)
            for name in self.NAMES
        ]

    @classmethod
    def from_layout(cls, layout: VolumeLayout) -> "RegionMap":
        return cls(layout)

    @classmethod
    def for_device(cls, device_size: int, **kwargs) -> "RegionMap":
        return cls(VolumeLayout.for_device(device_size, **kwargs))

    def classify(self, offset: int) -> str:
        for start, end, name in self._spans:
            if start <= offset < end:
                return name
        return "unmapped"


# line-state slots (lists, mutated in place): [state, store_idx, is_commit]
_DIRTY = 0  # stored, not flushed
_PENDING = 1  # flushed (or nt-stored), not fenced


class TraceAnalyzer:
    """The ``analysis_tap`` observer: mirrors line state at cache-line
    granularity and checks the ordering rules online.

    Attach with :func:`repro.analysis.harness.attach_analyzer` (or set
    ``device.analysis_tap`` by hand and feed op boundaries through
    :class:`AnalysisRecorder`). ``on_drain`` resets both line state and
    the event counter — aligned with the sweep's drain-then-arm
    sequence, so reported indices match ``--at`` reproducer indices.
    """

    def __init__(
        self,
        regions: RegionMap,
        device=None,
        async_writeback: bool = False,
        perf: bool = True,
        max_events: Optional[int] = None,
    ) -> None:
        self.regions = regions
        self.device = device
        self.async_writeback = async_writeback
        self.perf = perf
        self.max_events = max_events
        self.findings: List[Finding] = []
        self.event_index = 0
        self.saturated = False  # hit max_events; stopped analyzing
        self._lines: Dict[int, list] = {}  # line -> [state, store_idx, commit]
        self._op: Optional[str] = None
        self._boundary_reported: Set[int] = set()

    # -- bookkeeping -------------------------------------------------------

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def perf_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == PERF]

    def _crashed(self) -> bool:
        plan = getattr(self.device, "crash_plan", None)
        return plan is not None and plan.fired

    def _next_index(self) -> Optional[int]:
        """Consume one event index; None once past the analysis budget."""
        idx = self.event_index
        self.event_index += 1
        if self.max_events is not None and idx >= self.max_events:
            if not self.saturated:
                self.saturated = True
                self._lines.clear()
            return None
        return idx

    def _report(self, rule: str, idx: int, message: str) -> None:
        severity = RULES[rule][0]
        if severity == PERF and not self.perf:
            return
        self.findings.append(
            Finding(rule=rule, severity=severity, event_index=idx, message=message, op=self._op)
        )

    # -- device tap --------------------------------------------------------

    def on_store(self, offset: int, length: int, kind: str) -> None:
        idx = self._next_index()
        if idx is None:
            return
        region = self.regions.classify(offset)
        if kind == "store" and length > 8 and region in _TORN_REGIONS:
            self._report(
                "torn-multiword",
                idx,
                f"plain {length}-byte store at offset {offset} in {region}; "
                "words may persist independently — use atomic_store_u64 or "
                "an nt_store + fence sequence",
            )
        state = _PENDING if kind == "nt" else _DIRTY
        is_commit = region == "metalog" and length > 8
        lines = self._lines
        for line in range(offset // CACHE_LINE, (offset + length - 1) // CACHE_LINE + 1):
            lines[line] = [state, idx, is_commit]

    def on_flush(self, offset: int, length: int, nlines: int) -> None:
        idx = self._next_index()
        if idx is None:
            return
        if nlines == 0:
            self._report(
                "redundant-flush",
                idx,
                f"clwb of [{offset}, {offset + length}) covered no dirty line",
            )
        lines = self._lines
        for line in range(offset // CACHE_LINE, (offset + length - 1) // CACHE_LINE + 1):
            st = lines.get(line)
            if st is not None and st[0] == _DIRTY:
                st[0] = _PENDING

    def on_fence(self) -> None:
        idx = self._next_index()
        if idx is None:
            return
        lines = self._lines
        pending = [(line, st) for line, st in lines.items() if st[0] == _PENDING]
        if not pending:
            self._report("redundant-fence", idx, "fence with nothing pending")
        commits = [(line, st) for line, st in pending if st[2]]
        if commits:
            commit_idx = min(st[1] for _, st in commits)
            offenders = []
            for line, st in lines.items():
                if st[2] or self.regions.classify(line * CACHE_LINE) == "metalog":
                    continue
                if st[0] == _DIRTY or st[1] < commit_idx:
                    offenders.append((line, st))
            if offenders:
                worst = min(off_st[1] for _, off_st in offenders)
                dirty_n = sum(1 for _, st in offenders if st[0] == _DIRTY)
                self._report(
                    "commit-before-data",
                    idx,
                    f"fence makes commit entry (store event {commit_idx}) durable "
                    f"while {len(offenders)} guarded line(s) are volatile "
                    f"({dirty_n} dirty; earliest guarded store at event {worst}) — "
                    "the data fence before the commit point is missing",
                )
        for line, _ in pending:
            del lines[line]

    def on_drain(self) -> None:
        self._lines.clear()
        self._boundary_reported.clear()
        self.event_index = 0
        self.saturated = False

    # -- op boundaries (fed by AnalysisRecorder) ---------------------------

    def on_op_begin(self, name: str) -> None:
        self._op = name

    def on_op_end(self, name: str) -> None:
        self._op = name  # boundary findings anchor to the op that just ended
        try:
            self._check_boundary(name)
        finally:
            self._op = None

    def _check_boundary(self, name: str) -> None:
        if self.async_writeback or self.saturated or self._crashed():
            return
        classify = self.regions.classify
        fresh = [
            line
            for line, st in self._lines.items()
            if st[0] == _DIRTY
            and line not in self._boundary_reported
            and classify(line * CACHE_LINE) != "metalog"
        ]
        if fresh:
            self._boundary_reported.update(fresh)
            offsets = sorted(line * CACHE_LINE for line in fresh)
            shown = ", ".join(str(o) for o in offsets[:4])
            more = f" (+{len(offsets) - 4} more)" if len(offsets) > 4 else ""
            self._report(
                "unfenced-at-boundary",
                self.event_index,
                f"op {name!r} returned with {len(fresh)} dirty line(s) at "
                f"offset(s) {shown}{more} and async write-back is off",
            )


class AnalysisRecorder:
    """Wrap any :class:`repro.sim.trace.Recorder` and feed op boundaries
    to the analyzer; everything else forwards to the wrapped recorder.

    Both ``TraceRecorder`` and ``NullRecorder`` satisfy the formal
    ``Recorder`` protocol, so no isinstance checks are needed — the
    wrapper is itself a conforming ``Recorder``.
    """

    def __init__(self, inner, analyzer: TraceAnalyzer) -> None:
        self.inner = inner
        self.analyzer = analyzer

    @property
    def timing(self):
        return self.inner.timing

    @property
    def enabled(self) -> bool:
        return self.inner.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.inner.enabled = value

    @property
    def clock_ns(self) -> float:
        return self.inner.clock_ns

    # -- op lifecycle ------------------------------------------------------

    def begin_op(self, name: str) -> None:
        self.analyzer.on_op_begin(name)
        self.inner.begin_op(name)

    def end_op(self):
        trace = self.inner.end_op()
        self.analyzer.on_op_end(trace.name)
        return trace

    def take_completed(self):
        return self.inner.take_completed()

    # -- explicit costs ----------------------------------------------------

    def compute(self, ns: float) -> None:
        self.inner.compute(ns)

    def lock(self, key, mode) -> None:
        self.inner.lock(key, mode)

    def unlock(self, key) -> None:
        self.inner.unlock(key)

    # -- device tracer interface -------------------------------------------

    def io_write(self, nbytes: int) -> None:
        self.inner.io_write(nbytes)

    def io_cached(self, nbytes: int) -> None:
        self.inner.io_cached(nbytes)

    def io_read(self, nbytes: int) -> None:
        self.inner.io_read(nbytes)

    def io_flush(self, nlines: int) -> None:
        self.inner.io_flush(nlines)

    def io_fence(self) -> None:
        self.inner.io_fence()
