"""Shared ``# analysis: allow(rule) -- reason`` pragma machinery.

Both static engines — the AST linter (:mod:`repro.analysis.lint`) and
the flow checker (:mod:`repro.analysis.flow`) — honour the same pragma
grammar, so the regex, the comment scanner, and the suppression
bookkeeping live here.

A pragma suppresses findings of its rule on the pragma's own line or
the line directly below it (i.e. the probe order seen from a finding is
``(finding_line, finding_line - 1)``). A pragma without a ``-- reason``
never suppresses; the linter reports it as ``invalid-pragma``.

Staleness: a pragma that suppressed nothing is dead weight — it either
outlived the code it excused or was wrong to begin with. Each engine
checks staleness only for rules it owns (``lint`` for lint rules,
``flow`` for flow rules), so a flow pragma never looks stale to the
linter and vice versa. :data:`TRACE_RULE_NAMES` mirrors the dynamic
analyzer's rule set so rule-name typos can be told apart from rules
owned by another engine; a corpus test asserts it stays in sync.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

PRAGMA_RE = re.compile(r"#\s*analysis:\s*allow\(([a-z0-9-]+)\)(?:\s*--\s*(\S.*))?")

#: rule names owned by the *dynamic* trace analyzer
#: (``repro.analysis.analyzer.RULES``) — pragmas never apply to those,
#: but their names are "known" for typo detection. Kept as a literal so
#: the pure-AST engines do not import the analyzer (and its device
#: dependencies); ``tests/test_analysis_flow.py`` asserts parity.
TRACE_RULE_NAMES: Tuple[str, ...] = (
    "commit-before-data",
    "torn-multiword",
    "unfenced-at-boundary",
    "redundant-flush",
    "redundant-fence",
)


@dataclass(frozen=True)
class Pragma:
    """One pragma comment occurrence."""

    line: int
    rule: str
    reason: Optional[str]

    @property
    def valid(self) -> bool:
        return self.reason is not None


def scan_pragmas(text: str) -> List[Pragma]:
    """Every pragma *comment* in the source, in line order.

    Uses the tokenizer so pragma examples quoted inside docstrings or
    string literals are not mistaken for live pragmas (a raw line regex
    would flag the usage example in ``lint``'s own module docstring as
    stale).
    """
    pragmas: List[Pragma] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = PRAGMA_RE.search(tok.string)
            if m:
                pragmas.append(Pragma(tok.start[0], m.group(1), m.group(2)))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable source is reported as syntax-error by the caller;
        # fall back to a raw line scan so suppression still works.
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = PRAGMA_RE.search(line)
            if m:
                pragmas.append(Pragma(lineno, m.group(1), m.group(2)))
    return pragmas


class PragmaTable:
    """Suppression lookups + used/stale accounting for one source file."""

    def __init__(self, text: str) -> None:
        self.pragmas = scan_pragmas(text)
        self._by_line: Dict[int, Pragma] = {p.line: p for p in self.pragmas}
        self._used: Set[Tuple[int, str]] = set()

    def lookup(self, finding_line: int, rule: str) -> Optional[Pragma]:
        """The pragma governing a finding at *finding_line*, if any."""
        for probe in (finding_line, finding_line - 1):
            pragma = self._by_line.get(probe)
            if pragma is not None and pragma.rule == rule:
                return pragma
        return None

    def suppresses(self, finding_line: int, rule: str) -> bool:
        """True (and marks the pragma used) when a *justified* pragma
        covers this finding."""
        pragma = self.lookup(finding_line, rule)
        if pragma is not None and pragma.valid:
            self._used.add((pragma.line, pragma.rule))
            return True
        return False

    def mark_used(self, pragma: Pragma) -> None:
        self._used.add((pragma.line, pragma.rule))

    def stale(self, owned_rules: Sequence[str]) -> List[Pragma]:
        """Justified pragmas for rules in *owned_rules* that suppressed
        nothing in this file."""
        owned = set(owned_rules)
        return [
            p
            for p in self.pragmas
            if p.valid
            and p.rule in owned
            and (p.line, p.rule) not in self._used
        ]
