"""Crash injection.

A :class:`CrashPlan` attached to a device counts persistence events
(stores, flushes, fences) and raises :class:`~repro.errors.CrashRequested`
when the configured event index is reached. Tests catch the exception,
compose a crash image, and run recovery against it.
"""

from __future__ import annotations

import enum
from typing import Optional, Set

from repro.errors import CrashRequested


class CrashPolicy(enum.Enum):
    """How unfenced words behave at the crash point."""

    DROP_ALL = "drop_all"  # nothing unfenced persists (lazy cache)
    KEEP_ALL = "keep_all"  # every dirty line was evicted just in time
    RANDOM = "random"  # each word flips a coin


class CrashPlan:
    """Fire a crash after the N-th persistence event of the chosen kinds."""

    def __init__(
        self,
        crash_after: int,
        kinds: Optional[Set[str]] = None,
    ) -> None:
        if crash_after < 0:
            raise ValueError("crash_after must be >= 0")
        self.crash_after = crash_after
        self.kinds = kinds or {"store", "flush", "fence"}
        self.count = 0
        self.fired = False

    def on_event(self, kind: str) -> None:
        if self.fired or kind not in self.kinds:
            return
        self.count += 1
        if self.count > self.crash_after:
            self.fired = True
            raise CrashRequested(f"crash injected after {self.crash_after} events")


def count_events(device, kinds: Optional[Set[str]] = None) -> int:
    """Number of persistence events a workload would generate, derived
    from the device's counters; used to enumerate crash points."""
    kinds = kinds or {"store", "flush", "fence"}
    total = 0
    if "store" in kinds:
        total += device.stats.stores
    if "flush" in kinds:
        # Count flush *calls* at line granularity is not tracked; use
        # flushed_lines as an upper bound proxy.
        total += device.stats.flushed_lines
    if "fence" in kinds:
        total += device.stats.fences
    return total
