"""Crash injection.

A :class:`CrashPlan` attached to a device counts persistence events
(stores, flushes, fences) and raises :class:`~repro.errors.CrashRequested`
when the configured event index is reached. Tests catch the exception,
compose a crash image, and run recovery against it.

:func:`count_events` enumerates the crash points a workload exposes and
is exact: it is derived from the same per-call counters the plan's
``on_event`` hook fires in (``stores``/``flush_calls``/``fences``), so a
sweep over ``crash_after in range(count_events(...))`` visits every
event once — including the events emitted per element inside the
vectorized ``store_v``/``nt_store_v``/``flush_v``/``store_word_v``
device entry points.

:func:`compose_image` turns a crashed device plus a :class:`CrashPolicy`
into a concrete post-crash image. ``RANDOM`` composition is driven by an
explicit seed so any sampled image can be reproduced exactly from the
``(workload, crash_after, policy, seed)`` tuple a sweep reports.
"""

from __future__ import annotations

import enum
import random
from typing import Optional, Set

from repro.errors import CrashRequested


class CrashPolicy(enum.Enum):
    """How unfenced words behave at the crash point."""

    DROP_ALL = "drop_all"  # nothing unfenced persists (lazy cache)
    KEEP_ALL = "keep_all"  # every dirty line was evicted just in time
    RANDOM = "random"  # each word flips a coin


class CrashPlan:
    """Fire a crash after the N-th persistence event of the chosen kinds."""

    def __init__(
        self,
        crash_after: int,
        kinds: Optional[Set[str]] = None,
    ) -> None:
        if crash_after < 0:
            raise ValueError("crash_after must be >= 0")
        self.crash_after = crash_after
        self.kinds = kinds or {"store", "flush", "fence"}
        self.count = 0
        self.fired = False
        self.fired_kind: Optional[str] = None

    def on_event(self, kind: str) -> None:
        if self.fired or kind not in self.kinds:
            return
        self.count += 1
        if self.count > self.crash_after:
            self.fired = True
            self.fired_kind = kind
            raise CrashRequested(f"crash injected after {self.crash_after} events")


#: A plan that counts every event but never fires: attach it during a
#: census run so the workload takes the *same* device code paths as an
#: armed run (some batched entry points specialize on ``crash_plan is
#: None``) while ``plan.count`` records the exact number of crash points.
def counting_plan(kinds: Optional[Set[str]] = None) -> CrashPlan:
    return CrashPlan(crash_after=(1 << 62), kinds=kinds)


def count_events(device, kinds: Optional[Set[str]] = None, since=None) -> int:
    """Number of persistence events a workload generated, derived from
    the device's counters; used to enumerate crash points.

    ``flush`` events are counted with ``stats.flush_calls`` — one per
    clwb *call*, exactly how :meth:`CrashPlan.on_event` fires (the old
    ``flushed_lines`` proxy over- or under-counted whenever a flush
    covered several lines or hit only clean ones). With ``since`` (a
    ``DeviceStats`` snapshot) only events after the snapshot count.
    """
    kinds = kinds or {"store", "flush", "fence"}
    stats = device.stats if since is None else device.stats.delta(since)
    total = 0
    if "store" in kinds:
        total += stats.stores
    if "flush" in kinds:
        total += stats.flush_calls
    if "fence" in kinds:
        total += stats.fences
    return total


def compose_image(
    device,
    policy: CrashPolicy,
    seed: int = 0,
    persist_probability: float = 0.5,
) -> bytes:
    """Compose the post-crash image of *device* under *policy*.

    ``RANDOM`` uses ``random.Random(seed)`` — never ambient randomness —
    so the image is a pure function of (device state, policy, seed) and
    a failing sweep sample can be replayed from its reported seed.
    """
    if policy is CrashPolicy.DROP_ALL:
        return bytes(device.crash_image(persist_words=()))
    if policy is CrashPolicy.KEEP_ALL:
        return bytes(device.crash_image(persist_words=device.unfenced_words()))
    return bytes(
        device.crash_image(
            rng=random.Random(seed), persist_probability=persist_probability
        )
    )
