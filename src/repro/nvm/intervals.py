"""Sorted, coalesced half-open integer interval sets.

Used by the store-buffer model to track dirty and flush-pending byte
ranges, and by tests to reason about coverage.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Tuple

Interval = Tuple[int, int]


class IntervalSet:
    """A set of non-overlapping, sorted, coalesced [start, end) intervals."""

    __slots__ = ("_starts", "_ends")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        for start, end in intervals:
            self.add(start, end)

    # -- queries ---------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self) -> Iterator[Interval]:
        return iter(zip(self._starts, self._ends))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:
        body = ", ".join(f"[{s}, {e})" for s, e in self)
        return f"IntervalSet({body})"

    def total(self) -> int:
        """Sum of interval lengths (no per-interval tuple allocation)."""
        return sum(self._ends) - sum(self._starts)

    def contains(self, point: int) -> bool:
        idx = bisect_right(self._starts, point) - 1
        return idx >= 0 and point < self._ends[idx]

    def covers(self, start: int, end: int) -> bool:
        """True when [start, end) is entirely inside one interval."""
        if start >= end:
            return True
        idx = bisect_right(self._starts, start) - 1
        return idx >= 0 and end <= self._ends[idx]

    def overlaps(self, start: int, end: int) -> bool:
        if start >= end or not self._starts:
            return False
        idx = bisect_right(self._starts, start) - 1
        if idx >= 0 and start < self._ends[idx]:
            return True
        nxt = bisect_left(self._starts, start)
        return nxt < len(self._starts) and self._starts[nxt] < end

    def intersect(self, start: int, end: int) -> "IntervalSet":
        """Return the part of this set inside [start, end)."""
        result = IntervalSet()
        for lo, hi in self.iter_intersect(start, end):
            result.add(lo, hi)
        return result

    def iter_intersect(self, start: int, end: int) -> Iterator[Interval]:
        """Yield the clipped pieces of this set inside [start, end).

        Allocation-free alternative to :meth:`intersect` for hot paths
        (the store buffer's flush). The set must not be mutated while
        the generator is being consumed.
        """
        if start >= end:
            return
        starts, ends = self._starts, self._ends
        idx = max(0, bisect_right(starts, start) - 1)
        for i in range(idx, len(starts)):
            s = starts[i]
            if s >= end:
                break
            e = ends[i]
            lo = s if s > start else start
            hi = e if e < end else end
            if lo < hi:
                yield lo, hi

    # -- mutation --------------------------------------------------------

    def add(self, start: int, end: int) -> None:
        """Insert [start, end), coalescing with touching neighbours."""
        if start >= end:
            return
        starts, ends = self._starts, self._ends
        if starts:
            last_end = ends[-1]
            if start > last_end:
                # Append-at-end: strictly past the last interval — the
                # common shape for ascending scans (crashsweep census,
                # sequential writers). O(1) instead of two bisects and a
                # list splice.
                starts.append(start)
                ends.append(end)
                return
            if start >= starts[-1]:
                # Touches or overlaps only the last interval: extend in
                # place (sequential writers growing one run).
                if end > last_end:
                    ends[-1] = end
                return
            idx = bisect_right(starts, start) - 1
            if idx >= 0 and end <= ends[idx]:
                # Fully contained in one existing interval: no-op.
                return
        lo = bisect_left(ends, start)
        hi = bisect_right(starts, end)
        if lo < hi:
            start = min(start, starts[lo])
            end = max(end, ends[hi - 1])
        starts[lo:hi] = [start]
        ends[lo:hi] = [end]

    def remove(self, start: int, end: int) -> None:
        """Delete [start, end) from the set, splitting as needed."""
        if start >= end or not self._starts:
            return
        starts, ends = self._starts, self._ends
        # First interval that extends past `start`; stop at `end`.
        i = bisect_right(ends, start)
        j = i
        new_starts: List[int] = []
        new_ends: List[int] = []
        while j < len(starts) and starts[j] < end:
            s, e = starts[j], ends[j]
            if s < start:
                new_starts.append(s)
                new_ends.append(start)
            if e > end:
                new_starts.append(end)
                new_ends.append(e)
            j += 1
        starts[i:j] = new_starts
        ends[i:j] = new_ends

    def pop_all(self) -> List[Interval]:
        """Return every interval and clear the set."""
        out = list(self)
        self._starts.clear()
        self._ends.clear()
        return out

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()

    def update(self, other: "IntervalSet") -> None:
        for s, e in other:
            self.add(s, e)
