"""Chunked range bitmaps for the store-buffer's dirty/pending/touched sets.

The store buffer used to track these sets as sorted interval lists
(:class:`repro.nvm.intervals.IntervalSet`).  Interval lists are compact
for a handful of large ranges but pay an O(n) list splice per mutation
once a workload scatters thousands of disjoint small ranges — exactly
the shape the hot write path produces.  This module replaces them with
*chunked bitmaps* in the style of :mod:`repro.core.bitmap`'s packed
int masks: one Python int per fixed-size chunk of the device, one bit
per grain (cache line or 8-byte word).

Representation
==============

``_chunks`` maps ``chunk_index -> mask`` where ``mask`` is a non-zero
int of up to :data:`CHUNK_BITS` bits.  Bit ``i`` of chunk ``c`` covers
the byte range ``[(c * CHUNK_BITS + i) << grain_shift, ... + grain)``.
Zero-valued chunks are deleted eagerly, so truthiness is ``bool(_chunks)``
and a mutation touches only the chunks its byte range overlaps: a 2 MB
store at line granularity ORs eight 4096-bit masks instead of splicing
a Python list, and a 64-byte store ORs one bit into one small int.

Ordering invariant (load-bearing for crash images)
==================================================

:meth:`RangeBitmap.runs` and :meth:`RangeBitmap.iter_intersect` yield
maximal coalesced ``[start, end)`` byte ranges in strictly ascending
order, merging runs across chunk borders — byte-for-byte the order the
sorted ``IntervalSet`` iteration produced.  ``StoreBuffer.unfenced_words``
derives crash-image candidate words by scanning these runs, and
``choose_persist_words`` flips one coin per candidate *in order*, so
ascending iteration is what keeps seeded crash images identical across
the representation change.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

#: bits per chunk (power of two).  At line granularity one chunk covers
#: 256 KB of device; at word granularity 32 KB.
CHUNK_BITS = 4096
_CHUNK_SHIFT = CHUNK_BITS.bit_length() - 1
_CHUNK_MASK = CHUNK_BITS - 1
#: an all-ones chunk, built once (a 2 MB store fills whole chunks)
FULL_CHUNK = (1 << CHUNK_BITS) - 1


def iter_bit_runs(mask: int) -> Iterator[Tuple[int, int]]:
    """Yield maximal ``[lo, hi)`` runs of set bits in *mask*, ascending.

    O(number of runs), independent of chunk width: each step isolates
    the lowest set bit, measures the run of ones starting there with two
    int ops, and clears everything below the run's end.
    """
    while mask:
        low = (mask & -mask).bit_length() - 1
        tail = mask >> low
        # tail ends in >= 1 one-bits; tail ^ (tail + 1) is a mask of the
        # trailing ones plus the carry bit, so bit_length - 1 == run length.
        run = (tail ^ (tail + 1)).bit_length() - 1
        hi = low + run
        yield low, hi
        mask = mask >> hi << hi


class RangeBitmap:
    """A set of byte ranges at fixed power-of-two grain, stored as
    chunked int bitmaps.

    All methods take half-open byte ranges.  ``start`` is floored and
    ``end`` ceiled to the grain, matching how the interval-based tracker
    received already-aligned ranges from the store buffer.
    """

    __slots__ = ("grain", "shift", "_chunks")

    def __init__(self, grain: int) -> None:
        if grain & (grain - 1) or grain <= 0:
            raise ValueError(f"grain must be a power of two, got {grain}")
        self.grain = grain
        self.shift = grain.bit_length() - 1
        self._chunks: Dict[int, int] = {}

    # -- queries ---------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._chunks)

    def __len__(self) -> int:
        """Number of maximal runs (mirrors ``len(IntervalSet)``)."""
        return sum(1 for _ in self.runs())

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return self.runs()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"[{s}, {e})" for s, e in self.runs())
        return f"RangeBitmap<{self.grain}>({body})"

    def contains(self, offset: int) -> bool:
        bit = offset >> self.shift
        mask = self._chunks.get(bit >> _CHUNK_SHIFT)
        return mask is not None and (mask >> (bit & _CHUNK_MASK)) & 1 == 1

    def total(self) -> int:
        """Total bytes covered (popcount over all chunks)."""
        return sum(m.bit_count() for m in self._chunks.values()) << self.shift

    def runs(self) -> Iterator[Tuple[int, int]]:
        """Maximal coalesced [start, end) byte runs, ascending."""
        shift = self.shift
        chunks = self._chunks
        cur_s = cur_e = -1
        for ci in sorted(chunks):
            base = ci << _CHUNK_SHIFT
            for lo, hi in iter_bit_runs(chunks[ci]):
                s = (base + lo) << shift
                e = (base + hi) << shift
                if s == cur_e:
                    cur_e = e
                else:
                    if cur_s >= 0:
                        yield cur_s, cur_e
                    cur_s, cur_e = s, e
        if cur_s >= 0:
            yield cur_s, cur_e

    def _clipped_chunks(self, start: int, end: int):
        """(chunk_index, mask-limited-to-[start,end)) pairs, ascending."""
        shift = self.shift
        b0 = start >> shift
        b1 = (end + self.grain - 1) >> shift
        if b0 >= b1:
            return
        chunks = self._chunks
        c0 = b0 >> _CHUNK_SHIFT
        c1 = (b1 - 1) >> _CHUNK_SHIFT
        for ci in range(c0, c1 + 1):
            mask = chunks.get(ci)
            if not mask:
                continue
            if ci == c0:
                r0 = b0 & _CHUNK_MASK
                mask = mask >> r0 << r0
            if ci == c1:
                r1 = ((b1 - 1) & _CHUNK_MASK) + 1
                if r1 < CHUNK_BITS:
                    mask &= (1 << r1) - 1
            if mask:
                yield ci, mask

    def iter_intersect(self, start: int, end: int) -> Iterator[Tuple[int, int]]:
        """Clipped maximal runs of this set inside [start, end), ascending
        (the bitmap equivalent of ``IntervalSet.iter_intersect``)."""
        shift = self.shift
        cur_s = cur_e = -1
        for ci, mask in self._clipped_chunks(start, end):
            base = ci << _CHUNK_SHIFT
            for lo, hi in iter_bit_runs(mask):
                s = (base + lo) << shift
                e = (base + hi) << shift
                if s == cur_e:
                    cur_e = e
                else:
                    if cur_s >= 0:
                        yield cur_s, cur_e
                    cur_s, cur_e = s, e
        if cur_s >= 0:
            yield cur_s, cur_e

    def overlaps(self, start: int, end: int) -> bool:
        for _ in self._clipped_chunks(start, end):
            return True
        return False

    def count(self, start: int, end: int) -> int:
        """Set grains inside [start, end) (popcount, no run iteration)."""
        return sum(mask.bit_count() for _, mask in self._clipped_chunks(start, end))

    # -- mutation --------------------------------------------------------

    def add(self, start: int, end: int) -> None:
        if start >= end:
            return
        shift = self.shift
        b0 = start >> shift
        b1 = (end + self.grain - 1) >> shift
        chunks = self._chunks
        c0 = b0 >> _CHUNK_SHIFT
        c1 = (b1 - 1) >> _CHUNK_SHIFT
        r0 = b0 & _CHUNK_MASK
        if c0 == c1:
            bits = ((1 << (b1 - b0)) - 1) << r0
            chunks[c0] = chunks.get(c0, 0) | bits
            return
        chunks[c0] = chunks.get(c0, 0) | (FULL_CHUNK >> r0 << r0)
        for ci in range(c0 + 1, c1):
            chunks[ci] = FULL_CHUNK
        r1 = ((b1 - 1) & _CHUNK_MASK) + 1
        chunks[c1] = chunks.get(c1, 0) | ((1 << r1) - 1)

    def remove(self, start: int, end: int) -> None:
        if start >= end or not self._chunks:
            return
        shift = self.shift
        b0 = start >> shift
        b1 = (end + self.grain - 1) >> shift
        chunks = self._chunks
        c0 = b0 >> _CHUNK_SHIFT
        c1 = (b1 - 1) >> _CHUNK_SHIFT
        r0 = b0 & _CHUNK_MASK
        if c0 == c1:
            old = chunks.get(c0)
            if old:
                new = old & ~(((1 << (b1 - b0)) - 1) << r0)
                if new:
                    chunks[c0] = new
                else:
                    del chunks[c0]
            return
        old = chunks.get(c0)
        if old:
            new = old & ((1 << r0) - 1)
            if new:
                chunks[c0] = new
            else:
                del chunks[c0]
        for ci in range(c0 + 1, c1):
            chunks.pop(ci, None)
        old = chunks.get(c1)
        if old:
            r1 = ((b1 - 1) & _CHUNK_MASK) + 1
            new = old >> r1 << r1
            if new:
                chunks[c1] = new
            else:
                del chunks[c1]

    def pop_runs(self) -> List[Tuple[int, int]]:
        """Return every run (ascending) and clear the set."""
        out = list(self.runs())
        self._chunks.clear()
        return out

    def clear(self) -> None:
        self._chunks.clear()
