"""The simulated NVM DIMM: store buffer + traffic counters + crash hooks."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.errors import OutOfRangeError, TornWriteError
from repro.nvm.cache import StoreBuffer
from repro.nvm.crash import CrashPlan
from repro.nvm.timing import OptaneTiming, TimingModel
from repro.util import CACHE_LINE


@dataclass
class DeviceStats:
    """Raw traffic counters, the ground truth for Table II.

    ``stored_bytes`` counts every byte handed to the device's write path
    (the paper's "write size received at the PMDK library").
    """

    stored_bytes: int = 0
    loaded_bytes: int = 0
    flushed_lines: int = 0
    #: clwb *calls* (one per flushed range, even when every covered line
    #: is clean) — the unit :meth:`CrashPlan.on_event` fires in, unlike
    #: ``flushed_lines`` which is a cost metric.
    flush_calls: int = 0
    fences: int = 0
    stores: int = 0
    loads: int = 0
    #: wasted persistence ops (perf diagnostics, not correctness):
    #: a clwb call that covered only clean lines, and an sfence issued
    #: with nothing pending — both cost Optane bandwidth/latency for no
    #: durability gain. Surfaced by ``repro.analysis`` reports.
    redundant_flushes: int = 0
    redundant_fences: int = 0

    def snapshot(self) -> "DeviceStats":
        return DeviceStats(**vars(self))

    def delta(self, since: "DeviceStats") -> "DeviceStats":
        return DeviceStats(
            stored_bytes=self.stored_bytes - since.stored_bytes,
            loaded_bytes=self.loaded_bytes - since.loaded_bytes,
            flushed_lines=self.flushed_lines - since.flushed_lines,
            flush_calls=self.flush_calls - since.flush_calls,
            fences=self.fences - since.fences,
            stores=self.stores - since.stores,
            loads=self.loads - since.loads,
            redundant_flushes=self.redundant_flushes - since.redundant_flushes,
            redundant_fences=self.redundant_fences - since.redundant_fences,
        )


class TapFanout:
    """Dispatch ``analysis_tap`` callbacks to several observers in order.

    ``device.analysis_tap`` is a single slot; the analyzer, the event
    collector, and the flight recorder all want it. Composing them
    through a fan-out keeps every observer's view identical to what it
    would see alone — same callbacks, same order, same per-logical-op
    granularity — so index parity holds for each of them independently.
    """

    __slots__ = ("taps",)

    def __init__(self, taps=()) -> None:
        self.taps = list(taps)

    def on_store(self, offset: int, length: int, kind: str) -> None:
        for tap in self.taps:
            tap.on_store(offset, length, kind)

    def on_flush(self, offset: int, length: int, nlines: int) -> None:
        for tap in self.taps:
            tap.on_flush(offset, length, nlines)

    def on_fence(self) -> None:
        for tap in self.taps:
            tap.on_fence()

    def on_drain(self) -> None:
        for tap in self.taps:
            tap.on_drain()


def add_tap(device: "NvmDevice", tap) -> object:
    """Attach *tap* to the device, composing with any existing observer
    via :class:`TapFanout`. Returns *tap*."""
    current = device.analysis_tap
    if current is None:
        device.analysis_tap = tap
    elif isinstance(current, TapFanout):
        current.taps.append(tap)
    else:
        device.analysis_tap = TapFanout([current, tap])
    return tap


def remove_tap(device: "NvmDevice", tap) -> None:
    """Detach *tap*; collapses a one-element fan-out back to a bare slot."""
    current = device.analysis_tap
    if current is tap:
        device.analysis_tap = None
    elif isinstance(current, TapFanout) and tap in current.taps:
        current.taps.remove(tap)
        if len(current.taps) == 1:
            device.analysis_tap = current.taps[0]
        elif not current.taps:
            device.analysis_tap = None


class NvmDevice:
    """Byte-addressable persistent device with explicit persistence ops.

    A ``tracer`` (duck-typed, see :class:`repro.sim.trace.TraceRecorder`)
    may be attached; every media operation reports its cost segment so
    file-system code does not have to price device traffic by hand.
    """

    def __init__(
        self,
        size: int,
        timing: Optional[TimingModel] = None,
        name: str = "pmem0",
    ) -> None:
        self.size = size
        self.name = name
        self.timing = timing or OptaneTiming()
        self.buffer = StoreBuffer(size)
        self.stats = DeviceStats()
        self.tracer = None  # duck-typed: io_write / io_read / io_flush / io_fence
        #: duck-typed persistence-event observer (see
        #: :class:`repro.analysis.analyzer.TraceAnalyzer`): on_store /
        #: on_flush / on_fence / on_drain, fired once per logical op —
        #: per element inside the vectorized entry points, mirroring the
        #: crash-plan event enumeration exactly.
        self.analysis_tap = None
        self.crash_plan: Optional[CrashPlan] = None

    # -- persistence primitives -------------------------------------------

    def store(self, offset: int, data: bytes) -> None:
        """Cached store: visible immediately, durable only after persist."""
        if self.crash_plan is not None:
            self.crash_plan.on_event("store")
        self.buffer.store(offset, data)
        self.stats.stores += 1
        self.stats.stored_bytes += len(data)
        if self.tracer is not None:
            self.tracer.io_cached(len(data))
        if self.analysis_tap is not None:
            self.analysis_tap.on_store(offset, len(data), "store")

    def nt_store(self, offset: int, data: bytes) -> None:
        """Non-temporal store: bypasses the cache (store + clwb in one);
        still requires a fence to be ordered-durable."""
        if self.crash_plan is not None:
            self.crash_plan.on_event("store")
        # analysis: allow(unfenced-nt-store) -- this *is* the primitive; ordering is the caller's contract
        flushed = self.buffer.nt_store(offset, data)
        self.stats.stores += 1
        self.stats.stored_bytes += len(data)
        self.stats.flushed_lines += flushed
        if self.tracer is not None:
            self.tracer.io_write(len(data))
        if self.analysis_tap is not None:
            self.analysis_tap.on_store(offset, len(data), "nt")

    # -- scatter-gather entry points ---------------------------------------
    #
    # One Python call issues a whole interval list. Accounting stays per
    # logical op: every element still counts one store (and one crash-plan
    # event, and one tracer segment), so DeviceStats, trace costs, and
    # crash-point enumeration are byte-for-byte identical to a loop of
    # single-op calls — the batching only removes interpreter overhead.
    # Batch totals are committed in ``finally`` blocks so that a
    # CrashRequested fired *inside* a batch leaves the counters exactly
    # where the equivalent unbatched sequence would.

    def store_v(self, writes: Sequence[Tuple[int, bytes]]) -> None:
        """Vectorized cached store of (offset, data) pairs.

        With no observer attached, the whole batch is one bulk buffer
        call (identical per-element state transitions, no per-element
        Python dispatch). The bulk path validates *before* mutating, so
        on a bad element we fall through to the per-element loop to
        reproduce exact partial-application semantics: same prefix
        applied, same counters, same exception.
        """
        crash_plan = self.crash_plan
        buffer = self.buffer
        stats = self.stats
        tracer = self.tracer
        tap = self.analysis_tap
        if crash_plan is None and tracer is None and tap is None:
            try:
                total = buffer.store_v(writes)
            except OutOfRangeError:
                pass  # replay per-element below for exact partial state
            else:
                stats.stores += len(writes)
                stats.stored_bytes += total
                return
        total = 0
        try:
            for offset, data in writes:
                if crash_plan is not None:
                    crash_plan.on_event("store")
                buffer.store(offset, data)
                stats.stores += 1
                total += len(data)
                if tracer is not None:
                    tracer.io_cached(len(data))
                if tap is not None:
                    tap.on_store(offset, len(data), "store")
        finally:
            stats.stored_bytes += total

    def nt_store_v(self, writes: Sequence[Tuple[int, bytes]]) -> None:
        """Vectorized non-temporal store of (offset, data) pairs.

        Same bulk/fallback structure as :meth:`store_v`.
        """
        crash_plan = self.crash_plan
        buffer = self.buffer
        stats = self.stats
        tracer = self.tracer
        tap = self.analysis_tap
        if crash_plan is None and tracer is None and tap is None:
            try:
                # analysis: allow(unfenced-nt-store) -- this *is* the primitive; ordering is the caller's contract
                total, lines = buffer.nt_store_v(writes)
            except OutOfRangeError:
                pass  # replay per-element below for exact partial state
            else:
                stats.stores += len(writes)
                stats.stored_bytes += total
                stats.flushed_lines += lines
                return
        total = 0
        lines = 0
        try:
            for offset, data in writes:
                if crash_plan is not None:
                    crash_plan.on_event("store")
                # analysis: allow(unfenced-nt-store) -- this *is* the primitive; ordering is the caller's contract
                lines += buffer.nt_store(offset, data)
                stats.stores += 1
                total += len(data)
                if tracer is not None:
                    tracer.io_write(len(data))
                if tap is not None:
                    tap.on_store(offset, len(data), "nt")
        finally:
            stats.stored_bytes += total
            stats.flushed_lines += lines

    def store_word_v(self, words: Sequence[Tuple[int, int]]) -> None:
        """Vectorized ``atomic_store_u64 + flush`` of (offset, value)
        pairs — the metadata-word commit pattern.

        With a crash plan or tracer attached this delegates to the exact
        two-step primitives so crash-event enumeration and trace
        segments stay byte-identical. Otherwise the pair is fused
        through the buffer's non-temporal store: the net effect on
        working/dirty/pending/touched state and on DeviceStats is
        provably the same (the just-stored line is always dirty, so the
        flush always queues exactly that one line). The fused call
        validates *before* mutating, so on a bad word we fall through to
        the per-element loop to reproduce exact partial-application
        semantics: same prefix applied, same counters, same exception —
        an observer attached after the failure reads the identical
        device state either way.
        """
        if (
            self.crash_plan is not None
            or self.tracer is not None
            or self.analysis_tap is not None
        ):
            for offset, value in words:
                self.atomic_store_u64(offset, value)
                self.flush(offset, 8)
            return
        n = len(words)
        try:
            # analysis: allow(unfenced-nt-store) -- this *is* the primitive; ordering is the caller's contract
            self.buffer.nt_store_words(words)
        except (TornWriteError, OutOfRangeError):
            for offset, value in words:  # replay per-element for exact partial state
                self.atomic_store_u64(offset, value)
                self.flush(offset, 8)
            return
        stats = self.stats
        stats.stores += n
        stats.stored_bytes += 8 * n
        stats.flushed_lines += n
        stats.flush_calls += n

    def flush_v(self, ranges: Sequence[Tuple[int, int]]) -> None:
        """Vectorized clwb of (offset, length) ranges."""
        crash_plan = self.crash_plan
        buffer = self.buffer
        stats = self.stats
        tracer = self.tracer
        tap = self.analysis_tap
        if crash_plan is None and tracer is None and tap is None:
            lines, redundant = buffer.flush_v(ranges)
            stats.flushed_lines += lines
            stats.flush_calls += len(ranges)
            stats.redundant_flushes += redundant
            return
        lines = 0
        calls = 0
        redundant = 0
        try:
            for offset, length in ranges:
                if crash_plan is not None:
                    crash_plan.on_event("flush")
                nlines = buffer.flush(offset, length)
                lines += nlines
                calls += 1
                if nlines == 0:
                    redundant += 1
                if tracer is not None:
                    tracer.io_flush(nlines)
                if tap is not None:
                    tap.on_flush(offset, length, nlines)
        finally:
            stats.flushed_lines += lines
            stats.flush_calls += calls
            stats.redundant_flushes += redundant

    def atomic_store_u64(self, offset: int, value: int) -> None:
        if self.crash_plan is not None:
            self.crash_plan.on_event("store")
        self.buffer.atomic_store_u64(offset, value)
        self.stats.stores += 1
        self.stats.stored_bytes += 8
        if self.tracer is not None:
            self.tracer.io_cached(8)
        if self.analysis_tap is not None:
            self.analysis_tap.on_store(offset, 8, "atomic")

    def load(self, offset: int, length: int) -> bytes:
        data = self.buffer.load(offset, length)
        self.stats.loads += 1
        self.stats.loaded_bytes += length
        if self.tracer is not None:
            self.tracer.io_read(length)
        return data

    def load_u64(self, offset: int) -> int:
        return int.from_bytes(self.load(offset, 8), "little")

    def flush(self, offset: int, length: int) -> None:
        if self.crash_plan is not None:
            self.crash_plan.on_event("flush")
        self.stats.flush_calls += 1
        nlines = self.buffer.flush(offset, length)
        self.stats.flushed_lines += nlines
        if nlines == 0:
            self.stats.redundant_flushes += 1
        if self.tracer is not None:
            self.tracer.io_flush(nlines)
        if self.analysis_tap is not None:
            self.analysis_tap.on_flush(offset, length, nlines)

    def fence(self) -> None:
        if self.crash_plan is not None:
            self.crash_plan.on_event("fence")
        if not self.buffer.has_pending():
            self.stats.redundant_fences += 1
        self.buffer.fence()
        self.stats.fences += 1
        if self.tracer is not None:
            self.tracer.io_fence()
        if self.analysis_tap is not None:
            self.analysis_tap.on_fence()

    def persist(self, offset: int, length: int) -> None:
        """flush + fence of one range (pmem_persist)."""
        self.flush(offset, length)
        self.fence()

    # -- crash / recovery ---------------------------------------------------

    def crash_image(
        self,
        persist_words: Optional[Iterable[int]] = None,
        rng: Optional[random.Random] = None,
        persist_probability: float = 0.5,
    ) -> bytearray:
        """A possible post-crash content of the medium (see StoreBuffer)."""
        return self.buffer.crash_image(persist_words, rng, persist_probability)

    def unfenced_words(self):
        return self.buffer.unfenced_words()

    def drain(self) -> None:
        """Orderly shutdown: everything written becomes durable."""
        self.buffer.drain()
        if self.analysis_tap is not None:
            self.analysis_tap.on_drain()

    @classmethod
    def from_image(
        cls, image: bytes, timing: Optional[TimingModel] = None, name: str = "pmem0"
    ) -> "NvmDevice":
        """Boot a device from a crash image (the recovered machine)."""
        device = cls(len(image), timing=timing, name=name)
        device.buffer.working[:] = image
        device.buffer.durable[:] = image
        return device

    # -- derived accounting --------------------------------------------------

    def line_of(self, offset: int) -> int:
        return offset // CACHE_LINE

    def write_amplification(self, api_bytes: int, since: Optional[DeviceStats] = None) -> float:
        """Device bytes written / API bytes, optionally since a snapshot."""
        stats = self.stats if since is None else self.stats.delta(since)
        if api_bytes <= 0:
            return 0.0
        return stats.stored_bytes / api_bytes
