"""The simulated NVM DIMM: store buffer + traffic counters + crash hooks."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.nvm.cache import StoreBuffer
from repro.nvm.crash import CrashPlan
from repro.nvm.timing import OptaneTiming, TimingModel
from repro.util import CACHE_LINE


@dataclass
class DeviceStats:
    """Raw traffic counters, the ground truth for Table II.

    ``stored_bytes`` counts every byte handed to the device's write path
    (the paper's "write size received at the PMDK library").
    """

    stored_bytes: int = 0
    loaded_bytes: int = 0
    flushed_lines: int = 0
    fences: int = 0
    stores: int = 0
    loads: int = 0

    def snapshot(self) -> "DeviceStats":
        return DeviceStats(**vars(self))

    def delta(self, since: "DeviceStats") -> "DeviceStats":
        return DeviceStats(
            stored_bytes=self.stored_bytes - since.stored_bytes,
            loaded_bytes=self.loaded_bytes - since.loaded_bytes,
            flushed_lines=self.flushed_lines - since.flushed_lines,
            fences=self.fences - since.fences,
            stores=self.stores - since.stores,
            loads=self.loads - since.loads,
        )


class NvmDevice:
    """Byte-addressable persistent device with explicit persistence ops.

    A ``tracer`` (duck-typed, see :class:`repro.sim.trace.TraceRecorder`)
    may be attached; every media operation reports its cost segment so
    file-system code does not have to price device traffic by hand.
    """

    def __init__(
        self,
        size: int,
        timing: Optional[TimingModel] = None,
        name: str = "pmem0",
    ) -> None:
        self.size = size
        self.name = name
        self.timing = timing or OptaneTiming()
        self.buffer = StoreBuffer(size)
        self.stats = DeviceStats()
        self.tracer = None  # duck-typed: io_write / io_read / io_flush / io_fence
        self.crash_plan: Optional[CrashPlan] = None

    # -- persistence primitives -------------------------------------------

    def store(self, offset: int, data: bytes) -> None:
        """Cached store: visible immediately, durable only after persist."""
        if self.crash_plan is not None:
            self.crash_plan.on_event("store")
        self.buffer.store(offset, data)
        self.stats.stores += 1
        self.stats.stored_bytes += len(data)
        if self.tracer is not None:
            self.tracer.io_cached(len(data))

    def nt_store(self, offset: int, data: bytes) -> None:
        """Non-temporal store: bypasses the cache (store + clwb in one);
        still requires a fence to be ordered-durable."""
        if self.crash_plan is not None:
            self.crash_plan.on_event("store")
        self.buffer.store(offset, data)
        flushed = self.buffer.flush(offset, len(data))
        self.stats.stores += 1
        self.stats.stored_bytes += len(data)
        self.stats.flushed_lines += flushed
        if self.tracer is not None:
            self.tracer.io_write(len(data))

    def atomic_store_u64(self, offset: int, value: int) -> None:
        if self.crash_plan is not None:
            self.crash_plan.on_event("store")
        self.buffer.atomic_store_u64(offset, value)
        self.stats.stores += 1
        self.stats.stored_bytes += 8
        if self.tracer is not None:
            self.tracer.io_cached(8)

    def load(self, offset: int, length: int) -> bytes:
        data = self.buffer.load(offset, length)
        self.stats.loads += 1
        self.stats.loaded_bytes += length
        if self.tracer is not None:
            self.tracer.io_read(length)
        return data

    def load_u64(self, offset: int) -> int:
        return int.from_bytes(self.load(offset, 8), "little")

    def flush(self, offset: int, length: int) -> None:
        if self.crash_plan is not None:
            self.crash_plan.on_event("flush")
        nlines = self.buffer.flush(offset, length)
        self.stats.flushed_lines += nlines
        if self.tracer is not None:
            self.tracer.io_flush(nlines)

    def fence(self) -> None:
        if self.crash_plan is not None:
            self.crash_plan.on_event("fence")
        self.buffer.fence()
        self.stats.fences += 1
        if self.tracer is not None:
            self.tracer.io_fence()

    def persist(self, offset: int, length: int) -> None:
        """flush + fence of one range (pmem_persist)."""
        self.flush(offset, length)
        self.fence()

    # -- crash / recovery ---------------------------------------------------

    def crash_image(
        self,
        persist_words: Optional[Iterable[int]] = None,
        rng: Optional[random.Random] = None,
        persist_probability: float = 0.5,
    ) -> bytearray:
        """A possible post-crash content of the medium (see StoreBuffer)."""
        return self.buffer.crash_image(persist_words, rng, persist_probability)

    def unfenced_words(self):
        return self.buffer.unfenced_words()

    def drain(self) -> None:
        """Orderly shutdown: everything written becomes durable."""
        self.buffer.drain()

    @classmethod
    def from_image(
        cls, image: bytes, timing: Optional[TimingModel] = None, name: str = "pmem0"
    ) -> "NvmDevice":
        """Boot a device from a crash image (the recovered machine)."""
        device = cls(len(image), timing=timing, name=name)
        device.buffer.working[:] = image
        device.buffer.durable[:] = image
        return device

    # -- derived accounting --------------------------------------------------

    def line_of(self, offset: int) -> int:
        return offset // CACHE_LINE

    def write_amplification(self, api_bytes: int, since: Optional[DeviceStats] = None) -> float:
        """Device bytes written / API bytes, optionally since a snapshot."""
        stats = self.stats if since is None else self.stats.delta(since)
        if api_bytes <= 0:
            return 0.0
        return stats.stored_bytes / api_bytes
