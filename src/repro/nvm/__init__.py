"""Simulated byte-addressable non-volatile memory.

This package replaces the Intel Optane DC PMEM + x86 persistence
instructions the paper runs on. The model:

- Stores land in a volatile :class:`~repro.nvm.cache.StoreBuffer`
  (the CPU cache); loads always see the latest store.
- ``flush`` (clwb) marks lines as queued for write-back; ``fence``
  (sfence) makes queued lines durable.
- On a crash, the durable image survives, plus an *arbitrary* subset of
  unfenced 8-byte words (cache lines can be evicted at any time), so a
  correct protocol must tolerate any such subset.
- 8-byte aligned stores are atomic; anything larger can tear at word
  boundaries.
"""

from repro.nvm.allocator import LogAllocator
from repro.nvm.cache import StoreBuffer
from repro.nvm.crash import (
    CrashPlan,
    CrashPolicy,
    compose_image,
    count_events,
    counting_plan,
)
from repro.nvm.device import DeviceStats, NvmDevice
from repro.nvm.intervals import IntervalSet
from repro.nvm.timing import OptaneTiming, TimingModel

__all__ = [
    "CrashPlan",
    "CrashPolicy",
    "DeviceStats",
    "IntervalSet",
    "LogAllocator",
    "NvmDevice",
    "OptaneTiming",
    "StoreBuffer",
    "TimingModel",
    "compose_image",
    "count_events",
    "counting_plan",
]
