"""CPU store-buffer / cache model in front of the durable medium.

Semantics (matching x86 + ADR persistence):

- ``store`` writes are immediately visible to loads but *volatile*.
- ``flush`` (clwb) queues the covered cache lines for write-back.
- ``fence`` (sfence) guarantees every queued line is durable.
- Any dirty or queued line may *also* become durable at any moment
  (cache eviction), so a crash image is: the fenced image, plus an
  arbitrary subset of unfenced 8-byte words.

Word (8-byte) granularity is the atomicity unit: an aligned 8-byte store
never tears, anything larger may persist partially.

Representation (array-native core)
==================================

The dirty (stored-not-flushed), pending (flushed-not-fenced) and touched
(stored-since-durable) sets are cache-line/word-granular chunked bitmaps
(:class:`repro.nvm.bitmap.RangeBitmap`) instead of sorted interval
lists: a bulk store is a single ``bytearray`` slice assignment plus a
few chunk-mask ORs, and scattered small stores OR one bit into one small
int instead of splicing a Python list.  Bulk copies between the working
and durable images go through persistent ``memoryview``\\ s so a fence
moves bytes once (no intermediate slice materialisation).

``pending`` and ``touched`` are additionally maintained *lazily*: the
store paths append raw ranges to ``_pending_log``/``_touched_log`` and
the logs are folded into the bitmaps only when set semantics are needed
(fence-with-dirty, external inspection); the common fence replays the
raw ranges directly (idempotent) and drops both wholesale.

The crash-image candidate set (``unfenced_words``) scans only touched
runs — in ascending offset order, exactly the order the interval-based
tracker produced — so ``choose_persist_words`` yields identical subsets
from the same seed across the representation change; the word list is
memoized until the next mutation.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import OutOfRangeError, TornWriteError
from repro.nvm.bitmap import RangeBitmap
from repro.util import ATOMIC_UNIT, CACHE_LINE

# Alignment masks (power-of-two sizes): x & _LINE_MASK == align_down,
# (x + LINE - 1) & _LINE_MASK == align_up. Inlined in the hot methods —
# these run several times per simulated write.
_LINE = CACHE_LINE
_LINE_MASK = -CACHE_LINE
_LINE_SHIFT = CACHE_LINE.bit_length() - 1
_WORD_MASK = -ATOMIC_UNIT

#: touched runs at least this long diff working vs durable through a
#: vectorized uint64 compare; shorter runs stay on the per-word loop
#: (less constant overhead). Both scans emit words in ascending order.
_VECTOR_SCAN_BYTES = 1024


def choose_persist_words(
    candidates: Sequence[int], rng: random.Random, persist_probability: float
) -> List[int]:
    """The word subset a random crash persists: each candidate flips the
    given rng's coin, *in candidate order*. Kept as a standalone function
    so crash-image composition and the crash-sweep minimizer derive the
    identical subset from the same seed."""
    return [w for w in candidates if rng.random() < persist_probability]


class StoreBuffer:
    """Volatile view over a durable byte image."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.working = bytearray(size)  # what loads observe
        self.durable = bytearray(size)  # what survives a crash (fenced)
        #: persistent views for single-pass bulk copies (a bytearray
        #: slice on either side of an assignment would materialise an
        #: intermediate copy). The arrays never resize, so the exported
        #: buffers stay valid for the buffer's lifetime.
        self._wmv = memoryview(self.working)
        self._dmv = memoryview(self.durable)
        self.dirty = RangeBitmap(CACHE_LINE)  # stored, not flushed
        #: flushed, not fenced. Like ``touched``, maintained lazily: the
        #: non-temporal store paths append line-aligned ranges to
        #: ``_pending_log`` and the log is folded in only when set
        #: semantics are needed (fence-with-dirty, external inspection);
        #: the common fence just replays the raw ranges (idempotent).
        self.pending = RangeBitmap(CACHE_LINE)
        self._pending_log: List[tuple] = []
        #: word-aligned ranges stored since last made durable; always a
        #: superset of the words where working and durable differ.
        #: Maintained lazily: stores append to ``_touched_log`` and the
        #: log is folded into the bitmap only when someone needs it
        #: (fence-with-dirty, unfenced_words) — the common fence drops
        #: both wholesale.
        self.touched = RangeBitmap(ATOMIC_UNIT)
        self._touched_log: List[tuple] = []
        self._uw_cache: Optional[List[int]] = None

    def _consolidate_touched(self) -> RangeBitmap:
        log = self._touched_log
        if log:
            touched = self.touched
            for s, e in log:
                touched.add(s, e)
            log.clear()
        return self.touched

    def _consolidate_pending(self) -> RangeBitmap:
        log = self._pending_log
        if log:
            pending = self.pending
            for s, e in log:
                pending.add(s, e)
            log.clear()
        return self.pending

    def pending_set(self) -> RangeBitmap:
        """The flushed-not-fenced line bitmap (consolidated view)."""
        return self._consolidate_pending()

    def has_pending(self) -> bool:
        """Whether a fence would make anything durable (cheap: checks
        the raw log before consolidating the bitmap)."""
        return bool(self._pending_log) or bool(self.pending)

    # -- the persistence primitives ---------------------------------------

    def store(self, offset: int, data) -> None:
        end = offset + len(data)
        if offset < 0 or end > self.size:
            raise OutOfRangeError(f"store [{offset}, {end}) outside device of {self.size}")
        self.working[offset:end] = data
        self.dirty.add(offset & _LINE_MASK, (end + _LINE - 1) & _LINE_MASK)
        self._touched_log.append((offset & _WORD_MASK, (end + ATOMIC_UNIT - 1) & _WORD_MASK))
        self._uw_cache = None

    def store_v(self, writes: Sequence[Tuple[int, bytes]]) -> int:
        """Bulk :meth:`store`: identical per-element state transitions,
        shared attribute lookups. Validates every element up front and
        raises before mutating anything, so a caller can fall back to
        the per-element path for exact partial-application semantics.
        Returns total bytes stored."""
        size = self.size
        for offset, data in writes:
            if offset < 0 or offset + len(data) > size:
                end = offset + len(data)
                raise OutOfRangeError(f"store [{offset}, {end}) outside device of {size}")
        working = self.working
        dirty = self.dirty
        tlog = self._touched_log
        total = 0
        for offset, data in writes:
            end = offset + len(data)
            working[offset:end] = data
            dirty.add(offset & _LINE_MASK, (end + _LINE - 1) & _LINE_MASK)
            tlog.append((offset & _WORD_MASK, (end + ATOMIC_UNIT - 1) & _WORD_MASK))
            total += end - offset
        self._uw_cache = None
        return total

    def nt_store(self, offset: int, data) -> int:
        """Fused store + flush of exactly the stored range (non-temporal
        store). Equivalent to ``store`` followed by ``flush`` over the
        same bytes — the just-stored lines are always dirty, so the
        intermediate dirty-set round trip is skipped. Returns the number
        of lines queued (identical to what ``flush`` would report).
        """
        end = offset + len(data)
        if offset < 0 or end > self.size:
            raise OutOfRangeError(f"store [{offset}, {end}) outside device of {self.size}")
        self.working[offset:end] = data
        start = offset & _LINE_MASK
        aend = (end + _LINE - 1) & _LINE_MASK
        if self.dirty:
            self.dirty.remove(start, aend)
        self._pending_log.append((start, aend))
        self._touched_log.append((offset & _WORD_MASK, (end + ATOMIC_UNIT - 1) & _WORD_MASK))
        self._uw_cache = None
        return (aend - start) >> _LINE_SHIFT

    def nt_store_v(self, writes: Sequence[Tuple[int, bytes]]) -> Tuple[int, int]:
        """Bulk :meth:`nt_store`; validates up front (see
        :meth:`store_v`). Returns (total bytes, total lines queued)."""
        size = self.size
        for offset, data in writes:
            if offset < 0 or offset + len(data) > size:
                end = offset + len(data)
                raise OutOfRangeError(f"store [{offset}, {end}) outside device of {size}")
        working = self.working
        # A batch only removes from dirty, so emptiness checked once holds.
        dirty = self.dirty if self.dirty else None
        plog = self._pending_log
        tlog = self._touched_log
        total = 0
        lines = 0
        for offset, data in writes:
            end = offset + len(data)
            working[offset:end] = data
            start = offset & _LINE_MASK
            aend = (end + _LINE - 1) & _LINE_MASK
            if dirty is not None:
                dirty.remove(start, aend)
            plog.append((start, aend))
            tlog.append((offset & _WORD_MASK, (end + ATOMIC_UNIT - 1) & _WORD_MASK))
            total += end - offset
            lines += (aend - start) >> _LINE_SHIFT
        self._uw_cache = None
        return total, lines

    def nt_store_word(self, offset: int, value: int) -> None:
        """:meth:`nt_store` specialized for one aligned 8-byte word (the
        metadata-commit pattern): same state transitions, one line."""
        if offset % ATOMIC_UNIT != 0:
            raise TornWriteError(f"atomic store at unaligned offset {offset}")
        if offset < 0 or offset + 8 > self.size:
            raise OutOfRangeError(f"store at {offset} outside device of {self.size}")
        self.working[offset : offset + 8] = value.to_bytes(8, "little")
        line = offset & _LINE_MASK
        if self.dirty:
            self.dirty.remove(line, line + _LINE)
        self._pending_log.append((line, line + _LINE))
        self._touched_log.append((offset, offset + 8))
        self._uw_cache = None

    def nt_store_words(self, words) -> None:
        """Batch of :meth:`nt_store_word` calls: identical per-word state
        transitions, shared attribute lookups across the batch. Validates
        every word up front and raises before mutating anything (see
        :meth:`store_v`), so a caller can fall back to the per-element
        path for exact partial-application semantics."""
        working = self.working
        size = self.size
        for offset, _value in words:
            if offset % ATOMIC_UNIT != 0:
                raise TornWriteError(f"atomic store at unaligned offset {offset}")
            if offset < 0 or offset + 8 > size:
                raise OutOfRangeError(f"store at {offset} outside device of {size}")
        # A batch only removes from dirty, so emptiness checked once holds.
        dirty = self.dirty if self.dirty else None
        plog = self._pending_log
        log = self._touched_log
        for offset, value in words:
            working[offset : offset + 8] = value.to_bytes(8, "little")
            line = offset & _LINE_MASK
            if dirty is not None:
                dirty.remove(line, line + _LINE)
            plog.append((line, line + _LINE))
            log.append((offset, offset + 8))
        self._uw_cache = None

    def atomic_store_u64(self, offset: int, value: int) -> None:
        """8-byte aligned atomic store (the only atomic unit NVM gives us)."""
        if offset % ATOMIC_UNIT != 0:
            raise TornWriteError(f"atomic store at unaligned offset {offset}")
        self.store(offset, value.to_bytes(8, "little"))

    def load(self, offset: int, length: int) -> bytes:
        end = offset + length
        if offset < 0 or end > self.size:
            raise OutOfRangeError(f"load [{offset}, {end}) outside device of {self.size}")
        # One copy: a bytearray slice would materialise an intermediate
        # bytearray before bytes() copied it again.
        return bytes(self._wmv[offset:end])

    def load_u64(self, offset: int) -> int:
        return int.from_bytes(self.load(offset, 8), "little")

    def flush(self, offset: int, length: int) -> int:
        """clwb every cache line covering [offset, offset+length).

        Returns the number of lines flushed (for cost accounting). Clean
        lines are skipped, as clwb on a clean line is nearly free.
        """
        if not self.dirty:
            return 0
        start = offset & _LINE_MASK
        end = (offset + length + _LINE - 1) & _LINE_MASK
        nlines = 0
        plog = self._pending_log
        for s, e in self.dirty.iter_intersect(start, end):
            plog.append((s, e))
            nlines += (e - s) >> _LINE_SHIFT
        if nlines:
            self.dirty.remove(start, end)
        return nlines

    def flush_v(self, ranges: Sequence[Tuple[int, int]]) -> Tuple[int, int]:
        """Bulk :meth:`flush`; returns (total lines, redundant calls) —
        a call is redundant when every covered line was already clean."""
        lines = 0
        redundant = 0
        dirty = self.dirty
        plog = self._pending_log
        for offset, length in ranges:
            if not dirty:
                redundant += 1
                continue
            start = offset & _LINE_MASK
            end = (offset + length + _LINE - 1) & _LINE_MASK
            nlines = 0
            for s, e in dirty.iter_intersect(start, end):
                plog.append((s, e))
                nlines += (e - s) >> _LINE_SHIFT
            if nlines:
                dirty.remove(start, end)
                lines += nlines
            else:
                redundant += 1
        return lines, redundant

    def fence(self) -> None:
        """sfence: everything previously flushed becomes durable."""
        wmv = self._wmv
        dmv = self._dmv
        if not self.dirty:
            # Common case: every store since the last fence was also
            # flushed, so the popped pending set covers all of touched
            # (touched ⊆ dirty ∪ pending always holds) — drop it whole.
            # The raw pending log is replayed directly: duplicate or
            # overlapping ranges just copy the same bytes twice.
            pending = self.pending
            if pending:
                for start, end in pending.runs():
                    dmv[start:end] = wmv[start:end]
                pending.clear()
            for start, end in self._pending_log:
                dmv[start:end] = wmv[start:end]
            self._pending_log.clear()
            if self.touched:
                self.touched.clear()
            self._touched_log.clear()
            self._uw_cache = None
            return
        dirty = self.dirty
        touched = self._consolidate_touched()
        for start, end in self._consolidate_pending().pop_runs():
            dmv[start:end] = wmv[start:end]
            # The fenced words now match durably; keep only the parts
            # that were re-dirtied after the flush as crash candidates.
            if touched.overlaps(start, end):
                touched.remove(start, end)
                for ds, de in dirty.iter_intersect(start, end):
                    touched.add(ds, de)
        self._uw_cache = None

    def persist(self, offset: int, length: int) -> int:
        """flush + fence convenience; returns lines flushed."""
        nlines = self.flush(offset, length)
        self.fence()
        return nlines

    def drain(self) -> None:
        """Make the entire working image durable (orderly shutdown)."""
        self.dirty.clear()
        self.pending.clear()
        self._pending_log.clear()
        self.touched.clear()
        self._touched_log.clear()
        self._uw_cache = None
        self.durable[:] = self.working

    # -- crash-image composition ------------------------------------------

    def _diff_words(self, start: int, end: int, words: List[int]) -> None:
        """Append offsets of words differing between working and durable
        inside [start, end), ascending. Long runs use one vectorized
        uint64 compare; short runs use the per-word loop — same output."""
        if end - start >= _VECTOR_SCAN_BYTES:
            n = (end - start) >> 3
            w = np.frombuffer(self.working, dtype=np.uint64, count=n, offset=start)
            d = np.frombuffer(self.durable, dtype=np.uint64, count=n, offset=start)
            diff = np.flatnonzero(w != d)
            if len(diff):
                words.extend((start + (diff << 3)).tolist())
            return
        working = self.working
        durable = self.durable
        if working[start:end] == durable[start:end]:
            return
        for off in range(start, end, ATOMIC_UNIT):
            if working[off : off + 8] != durable[off : off + 8]:
                words.append(off)

    def unfenced_words(self) -> List[int]:
        """Offsets of every 8-byte word that differs between the working
        and durable images and has not been fenced.

        Memoized until the next store/fence/drain; the scan itself only
        visits ``touched`` runs rather than every dirty/pending line.
        """
        if self._uw_cache is None:
            words: List[int] = []
            for start, end in self._consolidate_touched().runs():
                self._diff_words(start, end, words)
            self._uw_cache = words
        return list(self._uw_cache)

    def _unfenced_words_full_scan(self) -> List[int]:
        """Reference implementation: re-walk every dirty/pending word.

        Kept for regression tests asserting the incremental tracker
        reports the identical word set.
        """
        words: List[int] = []
        for line_bitmap in (self.dirty, self._consolidate_pending()):
            for start, end in line_bitmap.runs():
                for off in range(start, end, ATOMIC_UNIT):
                    if self.working[off : off + 8] != self.durable[off : off + 8]:
                        words.append(off)
        return sorted(set(words))

    def crash_image(
        self,
        persist_words: Optional[Iterable[int]] = None,
        rng: Optional[random.Random] = None,
        persist_probability: float = 0.5,
    ) -> bytearray:
        """Compose a possible post-crash image.

        - With ``persist_words``, exactly those unfenced words are taken
          from the working image (for exhaustive adversarial tests).
        - Otherwise each unfenced word independently persists with
          ``persist_probability`` using ``rng`` (default: fresh RNG).
        """
        image = bytearray(self.durable)
        candidates = self.unfenced_words()
        if persist_words is not None:
            chosen = set(persist_words)
            unknown = chosen.difference(candidates)
            if unknown:
                raise OutOfRangeError(f"words {sorted(unknown)} are not unfenced")
        else:
            # analysis: allow(ambient-nondeterminism) -- exploratory default only; every replayable caller passes a seeded rng
            rng = rng or random.Random()
            chosen = choose_persist_words(candidates, rng, persist_probability)
        for off in chosen:
            image[off : off + 8] = self.working[off : off + 8]
        return image

    def snapshot_durable(self) -> bytes:
        """The image with *no* eviction of unfenced lines (kindest crash)."""
        return bytes(self.durable)
