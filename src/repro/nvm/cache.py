"""CPU store-buffer / cache model in front of the durable medium.

Semantics (matching x86 + ADR persistence):

- ``store`` writes are immediately visible to loads but *volatile*.
- ``flush`` (clwb) queues the covered cache lines for write-back.
- ``fence`` (sfence) guarantees every queued line is durable.
- Any dirty or queued line may *also* become durable at any moment
  (cache eviction), so a crash image is: the fenced image, plus an
  arbitrary subset of unfenced 8-byte words.

Word (8-byte) granularity is the atomicity unit: an aligned 8-byte store
never tears, anything larger may persist partially.

The crash-image candidate set (``unfenced_words``) is maintained
incrementally: ``touched`` tracks the word-aligned ranges stored since
they were last made durable, so composing a crash image scans only those
ranges instead of re-walking every dirty/pending byte; the resulting
word list is additionally memoized until the next mutation.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.errors import OutOfRangeError, TornWriteError
from repro.nvm.intervals import IntervalSet
from repro.util import ATOMIC_UNIT, CACHE_LINE

# Alignment masks (power-of-two sizes): x & _LINE_MASK == align_down,
# (x + LINE - 1) & _LINE_MASK == align_up. Inlined in the hot methods —
# these run several times per simulated write.
_LINE = CACHE_LINE
_LINE_MASK = -CACHE_LINE
_WORD_MASK = -ATOMIC_UNIT


def choose_persist_words(
    candidates: Sequence[int], rng: random.Random, persist_probability: float
) -> List[int]:
    """The word subset a random crash persists: each candidate flips the
    given rng's coin, *in candidate order*. Kept as a standalone function
    so crash-image composition and the crash-sweep minimizer derive the
    identical subset from the same seed."""
    return [w for w in candidates if rng.random() < persist_probability]


class StoreBuffer:
    """Volatile view over a durable byte image."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.working = bytearray(size)  # what loads observe
        self.durable = bytearray(size)  # what survives a crash (fenced)
        self.dirty = IntervalSet()  # stored, not flushed
        #: flushed, not fenced. Like ``touched``, maintained lazily: the
        #: non-temporal store paths append line-aligned ranges to
        #: ``_pending_log`` and the log is folded in only when interval
        #: semantics are needed (fence-with-dirty, external inspection);
        #: the common fence just replays the raw ranges (idempotent).
        self.pending = IntervalSet()
        self._pending_log: List[tuple] = []
        #: word-aligned ranges stored since last made durable; always a
        #: superset of the words where working and durable differ.
        #: Maintained lazily: stores append to ``_touched_log`` and the
        #: log is folded into the set only when someone needs it
        #: (fence-with-dirty, unfenced_words) — the common fence drops
        #: both wholesale.
        self.touched = IntervalSet()
        self._touched_log: List[tuple] = []
        self._uw_cache: Optional[List[int]] = None

    def _consolidate_touched(self) -> IntervalSet:
        log = self._touched_log
        if log:
            touched = self.touched
            for s, e in log:
                touched.add(s, e)
            log.clear()
        return self.touched

    def _consolidate_pending(self) -> IntervalSet:
        log = self._pending_log
        if log:
            pending = self.pending
            for s, e in log:
                pending.add(s, e)
            log.clear()
        return self.pending

    def pending_set(self) -> IntervalSet:
        """The flushed-not-fenced interval set (consolidated view)."""
        return self._consolidate_pending()

    def has_pending(self) -> bool:
        """Whether a fence would make anything durable (cheap: checks
        the raw log before touching interval semantics)."""
        return bool(self._pending_log) or bool(self.pending)

    # -- the persistence primitives ---------------------------------------

    def store(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if offset < 0 or end > self.size:
            raise OutOfRangeError(f"store [{offset}, {end}) outside device of {self.size}")
        self.working[offset:end] = data
        self.dirty.add(offset & _LINE_MASK, (end + _LINE - 1) & _LINE_MASK)
        self._touched_log.append((offset & _WORD_MASK, (end + ATOMIC_UNIT - 1) & _WORD_MASK))
        self._uw_cache = None

    def nt_store(self, offset: int, data: bytes) -> int:
        """Fused store + flush of exactly the stored range (non-temporal
        store). Equivalent to ``store`` followed by ``flush`` over the
        same bytes — the just-stored lines are always dirty, so the
        intermediate dirty-set round trip is skipped. Returns the number
        of lines queued (identical to what ``flush`` would report).
        """
        end = offset + len(data)
        if offset < 0 or end > self.size:
            raise OutOfRangeError(f"store [{offset}, {end}) outside device of {self.size}")
        self.working[offset:end] = data
        start = offset & _LINE_MASK
        aend = (end + _LINE - 1) & _LINE_MASK
        if self.dirty:
            self.dirty.remove(start, aend)
        self._pending_log.append((start, aend))
        self._touched_log.append((offset & _WORD_MASK, (end + ATOMIC_UNIT - 1) & _WORD_MASK))
        self._uw_cache = None
        return (aend - start) // _LINE

    def nt_store_word(self, offset: int, value: int) -> None:
        """:meth:`nt_store` specialized for one aligned 8-byte word (the
        metadata-commit pattern): same state transitions, one line."""
        if offset % ATOMIC_UNIT != 0:
            raise TornWriteError(f"atomic store at unaligned offset {offset}")
        if offset < 0 or offset + 8 > self.size:
            raise OutOfRangeError(f"store at {offset} outside device of {self.size}")
        self.working[offset : offset + 8] = value.to_bytes(8, "little")
        line = offset & _LINE_MASK
        if self.dirty:
            self.dirty.remove(line, line + _LINE)
        self._pending_log.append((line, line + _LINE))
        self._touched_log.append((offset, offset + 8))
        self._uw_cache = None

    def nt_store_words(self, words) -> None:
        """Batch of :meth:`nt_store_word` calls: identical per-word state
        transitions, shared attribute lookups across the batch."""
        working = self.working
        size = self.size
        # A batch only removes from dirty, so emptiness checked once holds.
        dirty = self.dirty if self.dirty else None
        plog = self._pending_log
        log = self._touched_log
        for offset, value in words:
            if offset % ATOMIC_UNIT != 0:
                raise TornWriteError(f"atomic store at unaligned offset {offset}")
            if offset < 0 or offset + 8 > size:
                raise OutOfRangeError(f"store at {offset} outside device of {size}")
            working[offset : offset + 8] = value.to_bytes(8, "little")
            line = offset & _LINE_MASK
            if dirty is not None:
                dirty.remove(line, line + _LINE)
            plog.append((line, line + _LINE))
            log.append((offset, offset + 8))
        self._uw_cache = None

    def atomic_store_u64(self, offset: int, value: int) -> None:
        """8-byte aligned atomic store (the only atomic unit NVM gives us)."""
        if offset % ATOMIC_UNIT != 0:
            raise TornWriteError(f"atomic store at unaligned offset {offset}")
        self.store(offset, value.to_bytes(8, "little"))

    def load(self, offset: int, length: int) -> bytes:
        end = offset + length
        if offset < 0 or end > self.size:
            raise OutOfRangeError(f"load [{offset}, {end}) outside device of {self.size}")
        return bytes(self.working[offset:end])

    def load_u64(self, offset: int) -> int:
        return int.from_bytes(self.load(offset, 8), "little")

    def flush(self, offset: int, length: int) -> int:
        """clwb every cache line covering [offset, offset+length).

        Returns the number of lines flushed (for cost accounting). Clean
        lines are skipped, as clwb on a clean line is nearly free.
        """
        if not self.dirty:
            return 0
        start = offset & _LINE_MASK
        end = (offset + length + _LINE - 1) & _LINE_MASK
        nlines = 0
        plog = self._pending_log
        for s, e in self.dirty.iter_intersect(start, end):
            plog.append((s, e))
            nlines += (e - s) // _LINE
        if nlines:
            self.dirty.remove(start, end)
        return nlines

    def fence(self) -> None:
        """sfence: everything previously flushed becomes durable."""
        working = self.working
        durable = self.durable
        dirty = self.dirty
        if not dirty:
            # Common case: every store since the last fence was also
            # flushed, so the popped pending set covers all of touched
            # (touched ⊆ dirty ∪ pending always holds) — drop it whole.
            # The raw pending log is replayed directly: duplicate or
            # overlapping ranges just copy the same bytes twice.
            pending = self.pending
            if pending:
                for start, end in pending:
                    durable[start:end] = working[start:end]
                pending.clear()
            for start, end in self._pending_log:
                durable[start:end] = working[start:end]
            self._pending_log.clear()
            if self.touched:
                self.touched.clear()
            self._touched_log.clear()
            self._uw_cache = None
            return
        touched = self._consolidate_touched()
        for start, end in self._consolidate_pending().pop_all():
            durable[start:end] = working[start:end]
            # The fenced words now match durably; keep only the parts
            # that were re-dirtied after the flush as crash candidates.
            if touched.overlaps(start, end):
                touched.remove(start, end)
                for ds, de in dirty.iter_intersect(start, end):
                    touched.add(ds, de)
        self._uw_cache = None

    def persist(self, offset: int, length: int) -> int:
        """flush + fence convenience; returns lines flushed."""
        nlines = self.flush(offset, length)
        self.fence()
        return nlines

    def drain(self) -> None:
        """Make the entire working image durable (orderly shutdown)."""
        self.dirty.clear()
        self.pending.clear()
        self._pending_log.clear()
        self.touched.clear()
        self._touched_log.clear()
        self._uw_cache = None
        self.durable[:] = self.working

    # -- crash-image composition ------------------------------------------

    def unfenced_words(self) -> List[int]:
        """Offsets of every 8-byte word that differs between the working
        and durable images and has not been fenced.

        Memoized until the next store/fence/drain; the scan itself only
        visits ``touched`` ranges rather than every dirty/pending line.
        """
        if self._uw_cache is None:
            words: List[int] = []
            working = self.working
            durable = self.durable
            for start, end in self._consolidate_touched():
                if working[start:end] == durable[start:end]:
                    continue
                for off in range(start, end, ATOMIC_UNIT):
                    if working[off : off + 8] != durable[off : off + 8]:
                        words.append(off)
            self._uw_cache = words
        return list(self._uw_cache)

    def _unfenced_words_full_scan(self) -> List[int]:
        """Reference implementation: re-walk every dirty/pending word.

        Kept for regression tests asserting the incremental tracker
        reports the identical word set.
        """
        words: List[int] = []
        for interval_set in (self.dirty, self._consolidate_pending()):
            for start, end in interval_set:
                for off in range(start, end, ATOMIC_UNIT):
                    if self.working[off : off + 8] != self.durable[off : off + 8]:
                        words.append(off)
        return sorted(set(words))

    def crash_image(
        self,
        persist_words: Optional[Iterable[int]] = None,
        rng: Optional[random.Random] = None,
        persist_probability: float = 0.5,
    ) -> bytearray:
        """Compose a possible post-crash image.

        - With ``persist_words``, exactly those unfenced words are taken
          from the working image (for exhaustive adversarial tests).
        - Otherwise each unfenced word independently persists with
          ``persist_probability`` using ``rng`` (default: fresh RNG).
        """
        image = bytearray(self.durable)
        candidates = self.unfenced_words()
        if persist_words is not None:
            chosen = set(persist_words)
            unknown = chosen.difference(candidates)
            if unknown:
                raise OutOfRangeError(f"words {sorted(unknown)} are not unfenced")
        else:
            # analysis: allow(ambient-nondeterminism) -- exploratory default only; every replayable caller passes a seeded rng
            rng = rng or random.Random()
            chosen = choose_persist_words(candidates, rng, persist_probability)
        for off in chosen:
            image[off : off + 8] = self.working[off : off + 8]
        return image

    def snapshot_durable(self) -> bytes:
        """The image with *no* eviction of unfenced lines (kindest crash)."""
        return bytes(self.durable)
