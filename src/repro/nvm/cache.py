"""CPU store-buffer / cache model in front of the durable medium.

Semantics (matching x86 + ADR persistence):

- ``store`` writes are immediately visible to loads but *volatile*.
- ``flush`` (clwb) queues the covered cache lines for write-back.
- ``fence`` (sfence) guarantees every queued line is durable.
- Any dirty or queued line may *also* become durable at any moment
  (cache eviction), so a crash image is: the fenced image, plus an
  arbitrary subset of unfenced 8-byte words.

Word (8-byte) granularity is the atomicity unit: an aligned 8-byte store
never tears, anything larger may persist partially.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.errors import OutOfRangeError, TornWriteError
from repro.nvm.intervals import IntervalSet
from repro.util import ATOMIC_UNIT, CACHE_LINE, align_down, align_up


class StoreBuffer:
    """Volatile view over a durable byte image."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.working = bytearray(size)  # what loads observe
        self.durable = bytearray(size)  # what survives a crash (fenced)
        self.dirty = IntervalSet()  # stored, not flushed
        self.pending = IntervalSet()  # flushed, not fenced

    # -- the persistence primitives ---------------------------------------

    def store(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if offset < 0 or end > self.size:
            raise OutOfRangeError(f"store [{offset}, {end}) outside device of {self.size}")
        self.working[offset:end] = data
        self.dirty.add(align_down(offset, CACHE_LINE), align_up(end, CACHE_LINE))

    def atomic_store_u64(self, offset: int, value: int) -> None:
        """8-byte aligned atomic store (the only atomic unit NVM gives us)."""
        if offset % ATOMIC_UNIT != 0:
            raise TornWriteError(f"atomic store at unaligned offset {offset}")
        self.store(offset, value.to_bytes(8, "little"))

    def load(self, offset: int, length: int) -> bytes:
        end = offset + length
        if offset < 0 or end > self.size:
            raise OutOfRangeError(f"load [{offset}, {end}) outside device of {self.size}")
        return bytes(self.working[offset:end])

    def load_u64(self, offset: int) -> int:
        return int.from_bytes(self.load(offset, 8), "little")

    def flush(self, offset: int, length: int) -> int:
        """clwb every cache line covering [offset, offset+length).

        Returns the number of lines flushed (for cost accounting). Clean
        lines are skipped, as clwb on a clean line is nearly free.
        """
        start = align_down(offset, CACHE_LINE)
        end = align_up(offset + length, CACHE_LINE)
        moved = self.dirty.intersect(start, end)
        if not moved:
            return 0
        self.dirty.remove(start, end)
        nlines = 0
        for s, e in moved:
            self.pending.add(s, e)
            nlines += (e - s) // CACHE_LINE
        return nlines

    def fence(self) -> None:
        """sfence: everything previously flushed becomes durable."""
        for start, end in self.pending.pop_all():
            self.durable[start:end] = self.working[start:end]

    def persist(self, offset: int, length: int) -> int:
        """flush + fence convenience; returns lines flushed."""
        nlines = self.flush(offset, length)
        self.fence()
        return nlines

    def drain(self) -> None:
        """Make the entire working image durable (orderly shutdown)."""
        self.dirty.clear()
        self.pending.clear()
        self.durable[:] = self.working

    # -- crash-image composition ------------------------------------------

    def unfenced_words(self) -> List[int]:
        """Offsets of every 8-byte word that differs between the working
        and durable images and has not been fenced."""
        words: List[int] = []
        for interval_set in (self.dirty, self.pending):
            for start, end in interval_set:
                for off in range(start, end, ATOMIC_UNIT):
                    if self.working[off : off + 8] != self.durable[off : off + 8]:
                        words.append(off)
        return sorted(set(words))

    def crash_image(
        self,
        persist_words: Optional[Iterable[int]] = None,
        rng: Optional[random.Random] = None,
        persist_probability: float = 0.5,
    ) -> bytearray:
        """Compose a possible post-crash image.

        - With ``persist_words``, exactly those unfenced words are taken
          from the working image (for exhaustive adversarial tests).
        - Otherwise each unfenced word independently persists with
          ``persist_probability`` using ``rng`` (default: fresh RNG).
        """
        image = bytearray(self.durable)
        candidates = self.unfenced_words()
        if persist_words is not None:
            chosen = set(persist_words)
            unknown = chosen.difference(candidates)
            if unknown:
                raise OutOfRangeError(f"words {sorted(unknown)} are not unfenced")
        else:
            rng = rng or random.Random()
            chosen = {w for w in candidates if rng.random() < persist_probability}
        for off in chosen:
            image[off : off + 8] = self.working[off : off + 8]
        return image

    def snapshot_durable(self) -> bytes:
        """The image with *no* eviction of unfenced lines (kindest crash)."""
        return bytes(self.durable)
