"""Cost models for simulated time.

All figures in the reproduction are computed on a virtual clock; a
:class:`TimingModel` prices each primitive in nanoseconds. The default
:class:`OptaneTiming` is loosely calibrated against published Optane DC
PMEM measurements (Izraelevitz et al. [20] in the paper) and against the
*ratios* the paper reports; absolute values are not meant to match the
authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TimingModel:
    """Prices (ns) for the primitives the simulated stack executes."""

    # Media access.
    read_latency_ns: float = 0.0
    read_ns_per_byte: float = 0.0
    write_latency_ns: float = 0.0
    write_ns_per_byte: float = 0.0
    flush_ns: float = 0.0  # clwb per cache line
    fence_ns: float = 0.0  # sfence

    # Software stack.
    syscall_ns: float = 0.0  # user->kernel->user round trip + VFS dispatch
    user_call_ns: float = 0.0  # interposed user-space library call
    dram_ns_per_byte: float = 0.0  # page-cache / bounce-buffer copies
    page_cache_lookup_ns: float = 0.0
    journal_commit_ns: float = 0.0  # JBD2-style transaction commit
    block_alloc_ns: float = 0.0  # extent/page allocation
    tree_node_ns: float = 0.0  # one radix/index node visit
    lock_ns: float = 0.0  # uncontended lock acquire or release
    cas_ns: float = 0.0  # atomic RMW
    hash_ns: float = 0.0  # hashing a thread id / key
    tlb_shootdown_ns: float = 0.0  # remap cost for CoW mmap schemes
    msync_sweep_ns: float = 0.0  # Libnvmmio: per-sync index sweep / epoch barrier
    msync_entry_ns: float = 0.0  # Libnvmmio: per-log-entry checkpoint overhead

    # Device parallelism for the multi-thread replay: the number of
    # concurrent media operations the DIMMs sustain before queueing.
    channels: int = 4
    # Media-side occupancy of a write: Optane's internal 256 B blocks
    # drain far slower than the ADR-visible store latency, which is what
    # caps multi-thread write throughput (Fig 10's "hardware limit").
    write_channel_ns_per_byte: float = 0.0

    def media_write_ns(self, nbytes: int) -> float:
        """Cost of an ntstore of *nbytes* (excluding the fence)."""
        if nbytes <= 0:
            return 0.0
        return self.write_latency_ns + nbytes * self.write_ns_per_byte

    def media_read_ns(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return self.read_latency_ns + nbytes * self.read_ns_per_byte

    def dram_copy_ns(self, nbytes: int) -> float:
        return nbytes * self.dram_ns_per_byte


def OptaneTiming(**overrides: float) -> TimingModel:
    """Default timing: Optane DC PMEM behind a Xeon-class core.

    Media numbers follow the commonly reported asymmetry (reads ~169 ns
    and ~6.6 GB/s single-threaded; writes ~90 ns to the ADR domain and
    ~2.3 GB/s ntstore bandwidth). Software costs reflect a 5.x kernel
    syscall + VFS path (~1.5-2 us) and sub-microsecond user-space calls.
    """
    params = dict(
        read_latency_ns=120.0,
        read_ns_per_byte=0.08,
        write_latency_ns=90.0,
        write_ns_per_byte=0.25,
        write_channel_ns_per_byte=1.00,
        flush_ns=45.0,
        fence_ns=25.0,
        syscall_ns=900.0,
        user_call_ns=480.0,
        dram_ns_per_byte=0.06,
        page_cache_lookup_ns=250.0,
        journal_commit_ns=3900.0,
        block_alloc_ns=300.0,
        tree_node_ns=22.0,
        lock_ns=32.0,
        cas_ns=24.0,
        hash_ns=18.0,
        tlb_shootdown_ns=2800.0,
        msync_sweep_ns=3000.0,
        msync_entry_ns=2600.0,
        channels=4,
    )
    params.update(overrides)
    return TimingModel(**params)
