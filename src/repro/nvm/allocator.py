"""Log-block allocator.

Hands out power-of-two sized, size-aligned blocks from a device region.
Freed blocks go to per-size free lists. The allocator state itself is
volatile: after a crash the metadata log is the source of truth, and the
log region is rebuilt wholesale once recovery completes (matching the
paper's "space can be reclaimed when the file is closed").
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import AllocationError
from repro.util import align_up, is_power_of_two


class LogAllocator:
    """Bump allocator with per-size free lists over [start, end)."""

    def __init__(self, start: int, end: int) -> None:
        if start < 0 or end < start:
            raise ValueError(f"bad region [{start}, {end})")
        self.start = start
        self.end = end
        self._cursor = start
        self._free: Dict[int, List[int]] = {}
        self.allocated_bytes = 0
        self.peak_bytes = 0

    @property
    def capacity(self) -> int:
        return self.end - self.start

    @property
    def in_use(self) -> int:
        return self.allocated_bytes

    def alloc(self, size: int) -> int:
        """Return the device offset of a fresh *size*-aligned block."""
        if size <= 0 or not is_power_of_two(size):
            raise AllocationError(f"log block size must be a power of two, got {size}")
        free_list = self._free.get(size)
        if free_list:
            offset = free_list.pop()
        else:
            offset = align_up(self._cursor, size)
            if offset + size > self.end:
                offset = self._retry_from_free_lists(size)
            else:
                self._cursor = offset + size
        self.allocated_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        return offset

    def _retry_from_free_lists(self, size: int) -> int:
        # Split a larger free block if one exists; otherwise we are full.
        for bigger in sorted(s for s in self._free if s > size and self._free[s]):
            block = self._free[bigger].pop()
            remaining = bigger
            while remaining > size:
                remaining //= 2
                self._free.setdefault(remaining, []).append(block + remaining)
            return block
        raise AllocationError(
            f"log region exhausted: need {size}, {self.end - self._cursor} left"
        )

    def free(self, offset: int, size: int) -> None:
        if not is_power_of_two(size):
            raise AllocationError(f"free of non power-of-two size {size}")
        if offset < self.start or offset + size > self.end:
            raise AllocationError(f"free of [{offset}, {offset + size}) outside region")
        self._free.setdefault(size, []).append(offset)
        self.allocated_bytes -= size

    def reset(self) -> None:
        """Reclaim everything (file closed / recovery finished)."""
        self._cursor = self.start
        self._free.clear()
        self.allocated_bytes = 0
