"""Cost traces recorded by file-system operations.

A segment is a small tuple-like record; four kinds exist:

- ``("compute", ns)`` — CPU work on the calling thread.
- ``("io", ns)`` — a media operation that occupies one NVM channel.
- ``("lock", key, mode)`` — acquire *key* in MGL mode ``IR/IW/R/W``.
- ``("unlock", key)`` — release.

The recorder also implements the duck-typed device-tracer interface
(io_write / io_read / io_flush / io_fence) so that attaching it to an
:class:`~repro.nvm.device.NvmDevice` prices all media traffic
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Protocol, Tuple, runtime_checkable

from repro.nvm.timing import TimingModel

Segment = Tuple  # ("compute", ns) | ("io", ns) | ("lock", key, mode) | ("unlock", key)


@runtime_checkable
class Recorder(Protocol):
    """The formal surface shared by :class:`TraceRecorder` and
    :class:`NullRecorder` (and any wrapper, e.g. the analysis tap's
    :class:`~repro.analysis.analyzer.AnalysisRecorder`).

    File-system code talks to its recorder only through these members,
    so a conforming wrapper can be swapped in without isinstance checks.
    ``enabled`` gates cost emission; ``timing`` prices media operations.
    """

    timing: TimingModel
    enabled: bool
    #: accumulated uncontended virtual time (the telemetry clock):
    #: every priced segment advances it by exactly what
    #: :meth:`OpTrace.duration_ns` would charge for that segment.
    clock_ns: float

    # -- op lifecycle --------------------------------------------------
    def begin_op(self, name: str) -> None: ...
    def end_op(self) -> "OpTrace": ...
    def take_completed(self) -> List["OpTrace"]: ...

    # -- explicit costs ------------------------------------------------
    def compute(self, ns: float) -> None: ...
    def lock(self, key: Hashable, mode: str) -> None: ...
    def unlock(self, key: Hashable) -> None: ...

    # -- device tracer interface ---------------------------------------
    def io_write(self, nbytes: int) -> None: ...
    def io_cached(self, nbytes: int) -> None: ...
    def io_read(self, nbytes: int) -> None: ...
    def io_flush(self, nlines: int) -> None: ...
    def io_fence(self) -> None: ...


@dataclass
class OpTrace:
    """The priced execution of one file-system operation."""

    name: str = "op"
    segments: List[Segment] = field(default_factory=list)

    def duration_ns(self, lock_ns: float = 0.0) -> float:
        """Uncontended duration: sum of compute + io, plus a fixed cost
        per lock/unlock event."""
        total = 0.0
        for seg in self.segments:
            kind = seg[0]
            if kind in ("compute", "io"):
                total += seg[1]
            else:
                total += lock_ns
        return total

    def io_ns(self) -> float:
        return sum(seg[1] for seg in self.segments if seg[0] == "io")

    def lock_keys(self) -> List[Hashable]:
        return [seg[1] for seg in self.segments if seg[0] == "lock"]


class TraceRecorder:
    """Accumulates segments for the operation currently executing.

    ``begin_op``/``end_op`` bracket one logical operation. When no op is
    open, costs are still accepted (they land in an "ambient" trace) so
    code paths can be shared between benchmarked and plain execution.
    """

    def __init__(self, timing: TimingModel) -> None:
        self.timing = timing
        self.current: Optional[OpTrace] = None
        self.completed: List[OpTrace] = []
        self.enabled = True
        self.clock_ns = 0.0

    # -- op lifecycle ------------------------------------------------------

    def begin_op(self, name: str) -> None:
        if self.current is not None:
            # Ambient (outside-an-op) costs get their own trace.
            self.completed.append(self.current)
        self.current = OpTrace(name=name)

    def end_op(self) -> OpTrace:
        trace = self.current if self.current is not None else OpTrace()
        self.completed.append(trace)
        self.current = None
        return trace

    def take_completed(self) -> List[OpTrace]:
        # Flush any open ambient trace (costs charged outside an op,
        # e.g. the database's SQL-layer CPU) so callers never lose it.
        if self.current is not None and self.current.name == "ambient":
            self.completed.append(self.current)
            self.current = None
        out = self.completed
        self.completed = []
        return out

    def _emit(self, segment: Segment) -> None:
        if not self.enabled:
            return
        # Advance the telemetry clock by the uncontended cost of this
        # segment — the same pricing OpTrace.duration_ns applies, so the
        # clock always equals the sum over every recorded trace.
        kind = segment[0]
        if kind == "compute" or kind == "io":
            self.clock_ns += segment[1]
        else:
            self.clock_ns += self.timing.lock_ns
        if self.current is None:
            self.current = OpTrace(name="ambient")
        self.current.segments.append(segment)

    # -- explicit costs ------------------------------------------------------

    def compute(self, ns: float) -> None:
        if ns > 0:
            self._emit(("compute", ns))

    def lock(self, key: Hashable, mode: str) -> None:
        self._emit(("lock", key, mode))

    def unlock(self, key: Hashable) -> None:
        self._emit(("unlock", key))

    # -- device tracer interface ----------------------------------------------

    def io_write(self, nbytes: int) -> None:
        visible = self.timing.media_write_ns(nbytes)
        occupancy = visible
        if self.timing.write_channel_ns_per_byte:
            occupancy = (
                self.timing.write_latency_ns
                + nbytes * self.timing.write_channel_ns_per_byte
            )
        self._emit(("io", visible, occupancy))

    def io_cached(self, nbytes: int) -> None:
        """A store that lands in the CPU cache: cheap; the media cost is
        charged by the flush that later writes the line back."""
        self._emit(("compute", 12.0 + nbytes * 0.02))

    def io_read(self, nbytes: int) -> None:
        self._emit(("io", self.timing.media_read_ns(nbytes)))

    def io_flush(self, nlines: int) -> None:
        if nlines > 0:
            self._emit(("io", nlines * self.timing.flush_ns))

    def io_fence(self) -> None:
        self._emit(("compute", self.timing.fence_ns))


class NullRecorder:
    """Recorder that ignores everything (for correctness-only runs)."""

    clock_ns = 0.0  # never advances: nothing is priced

    def __init__(self, timing: Optional[TimingModel] = None) -> None:
        self.timing = timing or TimingModel()
        self.enabled = False

    def io_cached(self, nbytes: int) -> None:
        pass

    def begin_op(self, name: str) -> None:  # pragma: no cover - trivial
        pass

    def end_op(self) -> OpTrace:
        return OpTrace()

    def take_completed(self) -> List[OpTrace]:
        return []

    def compute(self, ns: float) -> None:
        pass

    def lock(self, key: Hashable, mode: str) -> None:
        pass

    def unlock(self, key: Hashable) -> None:
        pass

    def io_write(self, nbytes: int) -> None:
        pass

    def io_read(self, nbytes: int) -> None:
        pass

    def io_flush(self, nlines: int) -> None:
        pass

    def io_fence(self) -> None:
        pass
