"""Virtual-time execution model.

File-system operations execute *functionally* right away (so data and
crash state are always real), while recording a cost trace — compute
segments, media I/O segments, and lock acquire/release events. Summing a
trace gives single-thread latency; replaying many threads' traces through
:class:`~repro.sim.engine.ReplayEngine` yields contended multi-thread
timing (Fig 10) with MGL lock semantics and limited NVM channel
parallelism.
"""

from repro.sim.engine import ReplayEngine, ReplayResult
from repro.sim.locks import COMPATIBLE, LockMode
from repro.sim.trace import OpTrace, Segment, TraceRecorder

__all__ = [
    "COMPATIBLE",
    "LockMode",
    "OpTrace",
    "ReplayEngine",
    "ReplayResult",
    "Segment",
    "TraceRecorder",
]
