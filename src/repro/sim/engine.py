"""Replay recorded traces under contention.

Each simulated thread owns an ordered list of :class:`OpTrace`; the
engine interleaves their segments on a virtual clock:

- compute segments advance only the owning thread;
- io segments occupy one of ``timing.channels`` NVM channels (FIFO);
- lock/unlock segments arbitrate via MGL-compatible virtual locks,
  parking threads that cannot be granted and waking them FIFO on
  release.

The result's makespan is the basis for multi-thread throughput (Fig 10).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence

from repro.errors import SimulationError
from repro.nvm.timing import TimingModel
from repro.sim.locks import LockTable
from repro.sim.trace import OpTrace, Segment


@dataclass
class ThreadStats:
    finish_ns: float = 0.0
    compute_ns: float = 0.0
    io_ns: float = 0.0
    lock_wait_ns: float = 0.0
    ops: int = 0
    blocked_acquires: int = 0


@dataclass
class ReplayResult:
    makespan_ns: float
    threads: List[ThreadStats] = field(default_factory=list)
    #: optional (tid, start_ns, end_ns, kind) events; kind in
    #: {"compute", "io", "wait"} — filled when run(record_timeline=True)
    timeline: List[tuple] = field(default_factory=list)

    @property
    def total_lock_wait_ns(self) -> float:
        return sum(t.lock_wait_ns for t in self.threads)

    def throughput_bytes_per_sec(self, total_bytes: int) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return total_bytes / (self.makespan_ns * 1e-9)


def _batch_segments(segments: List[Segment]) -> List[Segment]:
    """Coalesce runs of consecutive compute segments into one
    ``("computes", (ns, ns, ...))`` dispatch.

    Compute segments advance only the owning thread, so the run's
    intermediate wake-ups cannot interact with locks, channels, or other
    threads — only the arrival time at the next shared-state segment
    matters. The batched handler replays the per-segment float additions
    in the original order, so clocks and compute_ns accumulate through
    the bit-identical sequence of operations; the batching removes one
    heap push/pop and one dispatch per merged segment.
    """
    out: List[Segment] = []
    i, n = 0, len(segments)
    while i < n:
        segment = segments[i]
        if segment[0] == "compute":
            j = i + 1
            while j < n and segments[j][0] == "compute":
                j += 1
            if j - i > 1:
                out.append(("computes", tuple(s[1] for s in segments[i:j])))
            else:
                out.append(segment)
            i = j
        else:
            out.append(segment)
            i += 1
    return out


class _Thread:
    __slots__ = ("tid", "segments", "cursor", "clock", "stats", "wait_started")

    def __init__(self, tid: int, segments: List[Segment]) -> None:
        self.tid = tid
        self.segments = segments
        self.cursor = 0
        self.clock = 0.0
        self.stats = ThreadStats()
        self.wait_started = 0.0

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.segments)


class ReplayEngine:
    """Deterministic virtual-time replay of per-thread segment streams."""

    def __init__(self, timing: TimingModel, obs=None) -> None:
        self.timing = timing
        if obs is None:
            from repro.obs.spans import NULL_SINK

            obs = NULL_SINK
        #: telemetry sink; when enabled, every satisfied blocked acquire
        #: reports its wait time for the lock-contention top-N view.
        self.obs = obs

    def run(
        self,
        per_thread_traces: Sequence[Sequence[OpTrace]],
        record_timeline: bool = False,
        background: int = 0,
        batch_ops: bool = True,
        start_times: Sequence[float] = None,
    ) -> ReplayResult:
        """Replay the streams; the last *background* streams are daemon
        threads (e.g. the MGSP async write-back flusher): they contend
        for NVM channels and locks like any other thread, but their tail
        does not extend the makespan — application throughput is judged
        by when the foreground threads finish.

        ``start_times`` (one virtual-ns value per stream, default all
        zero) delays each thread's first segment to its arrival time —
        the multi-tenant service layer uses this to stagger tenant
        admission instead of releasing every client at t=0. An arrived
        thread competes for channels and locks exactly like one that
        started at zero; an empty stream simply finishes on arrival.

        With ``batch_ops`` (the default), runs of consecutive compute
        segments are coalesced into single dispatches at flatten time
        (see :func:`_batch_segments`); disabled automatically when a
        timeline is recorded, since the timeline wants one entry per
        original segment. Pass ``batch_ops=False`` to force the
        segment-at-a-time loop (the differential-testing reference).
        """
        batch = batch_ops and not record_timeline
        threads = []
        for tid, traces in enumerate(per_thread_traces):
            segments: List[Segment] = []
            for trace in traces:
                segments.extend(trace.segments)
            if batch:
                segments = _batch_segments(segments)
            thread = _Thread(tid, segments)
            thread.stats.ops = len(traces)
            threads.append(thread)

        if start_times is not None and len(start_times) != len(threads):
            raise SimulationError(
                f"start_times has {len(start_times)} entries for "
                f"{len(threads)} streams"
            )

        locks = LockTable()
        channels = [0.0] * max(1, self.timing.channels)
        ready: List = []  # (time, seq, tid)
        seq = 0
        for thread in threads:
            start = float(start_times[thread.tid]) if start_times is not None else 0.0
            thread.clock = start
            if not thread.done:
                heapq.heappush(ready, (start, seq, thread.tid))
                seq += 1
            else:
                thread.stats.finish_ns = start
        parked: Dict[int, Hashable] = {}  # tid -> lock key it waits on
        timeline: List[tuple] = []

        lock_ns = self.timing.lock_ns

        def wake(thread: _Thread, at: float) -> None:
            nonlocal seq
            thread.clock = at
            heapq.heappush(ready, (at, seq, thread.tid))
            seq += 1

        while ready:
            now, _, tid = heapq.heappop(ready)
            thread = threads[tid]
            if thread.done:
                thread.stats.finish_ns = max(thread.stats.finish_ns, now)
                continue
            segment = thread.segments[thread.cursor]
            kind = segment[0]

            if kind == "compute":
                thread.cursor += 1
                thread.clock = now + segment[1]
                thread.stats.compute_ns += segment[1]
                if record_timeline and segment[1] > 0:
                    timeline.append((tid, now, thread.clock, "compute"))
                wake(thread, thread.clock)

            elif kind == "computes":
                # Batched compute run: replay the additions one segment
                # at a time so clock and compute_ns go through the exact
                # float-operation sequence of the unbatched loop.
                thread.cursor += 1
                clock = now
                stats = thread.stats
                for ns in segment[1]:
                    clock += ns
                    stats.compute_ns += ns
                thread.clock = clock
                wake(thread, clock)

            elif kind == "io":
                thread.cursor += 1
                best = min(range(len(channels)), key=channels.__getitem__)
                start = max(now, channels[best])
                visible = segment[1]
                occupancy = segment[2] if len(segment) > 2 else visible
                channels[best] = start + occupancy
                thread.stats.io_ns += visible
                thread.stats.lock_wait_ns += start - now  # channel queueing
                if record_timeline:
                    if start > now:
                        timeline.append((tid, now, start, "wait"))
                    if visible > 0:
                        timeline.append((tid, start, start + visible, "io"))
                wake(thread, start + visible)

            elif kind == "lock":
                key, mode = segment[1], segment[2]
                lock = locks.get(key)
                if lock.waiters or not lock.can_grant(tid, mode):
                    lock.waiters.append((tid, mode))
                    parked[tid] = key
                    thread.wait_started = now
                    thread.stats.blocked_acquires += 1
                else:
                    lock.grant(tid, mode)
                    thread.cursor += 1
                    wake(thread, now + lock_ns)

            elif kind == "unlock":
                key = segment[1]
                lock = locks.get(key)
                lock.release(tid)
                thread.cursor += 1
                wake(thread, now + lock_ns)
                for waiter_tid, _mode in lock.grantable_waiters():
                    waiter = threads[waiter_tid]
                    parked.pop(waiter_tid, None)
                    waiter.stats.lock_wait_ns += now - waiter.wait_started
                    if self.obs.enabled:
                        self.obs.lock_wait(key, now - waiter.wait_started)
                    if record_timeline and now > waiter.wait_started:
                        timeline.append((waiter_tid, waiter.wait_started, now, "wait"))
                    waiter.cursor += 1  # the lock segment is satisfied
                    wake(waiter, now + lock_ns)

            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown segment kind {kind!r}")

            if thread.done and tid not in parked:
                thread.stats.finish_ns = max(thread.stats.finish_ns, thread.clock)

        if parked:
            stuck = {tid: key for tid, key in parked.items()}
            raise SimulationError(f"replay deadlock; parked threads: {stuck}")

        foreground = threads[: len(threads) - background] if background > 0 else threads
        makespan = max((t.stats.finish_ns for t in foreground), default=0.0)
        return ReplayResult(
            makespan_ns=makespan,
            threads=[t.stats for t in threads],
            timeline=timeline,
        )
