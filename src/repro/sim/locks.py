"""Virtual multiple-granularity locks (Table I of the paper).

These locks arbitrate *virtual time* in the replay engine; they are not
thread-synchronization primitives (the functional execution is
single-threaded). Compatibility follows Gray's multiple granularity
locking:

====  ====  ====  ====  ====
 .     IR    IW    R     W
====  ====  ====  ====  ====
 IR    ok    ok    ok    --
 IW    ok    ok    --    --
 R     ok    --    ok    --
 W     --    --    --    --
====  ====  ====  ====  ====
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Tuple


class LockMode:
    IR = "IR"
    IW = "IW"
    R = "R"
    W = "W"

    ALL = (IR, IW, R, W)


COMPATIBLE: Dict[str, frozenset] = {
    LockMode.IR: frozenset({LockMode.IR, LockMode.IW, LockMode.R}),
    LockMode.IW: frozenset({LockMode.IR, LockMode.IW}),
    LockMode.R: frozenset({LockMode.IR, LockMode.R}),
    LockMode.W: frozenset(),
}


def compatible(requested: str, held: str) -> bool:
    return held in COMPATIBLE[requested]


class VirtualLock:
    """One lockable object: holder multiset + FIFO waiter queue."""

    __slots__ = ("key", "holders", "waiters")

    def __init__(self, key: Hashable) -> None:
        self.key = key
        self.holders: List[Tuple[int, str]] = []  # (thread id, mode)
        self.waiters: Deque[Tuple[int, str]] = deque()

    def can_grant(self, tid: int, mode: str) -> bool:
        for holder_tid, holder_mode in self.holders:
            if holder_tid == tid:
                continue  # re-entrant with self (same thread, any mode)
            if not compatible(mode, holder_mode):
                return False
        return True

    def grant(self, tid: int, mode: str) -> None:
        self.holders.append((tid, mode))

    def release(self, tid: int) -> None:
        """Release this thread's most recent grant on the lock."""
        for i in range(len(self.holders) - 1, -1, -1):
            if self.holders[i][0] == tid:
                del self.holders[i]
                return
        raise KeyError(f"thread {tid} does not hold lock {self.key!r}")

    def grantable_waiters(self) -> List[Tuple[int, str]]:
        """FIFO-pop the longest compatible prefix of waiters."""
        granted: List[Tuple[int, str]] = []
        while self.waiters:
            tid, mode = self.waiters[0]
            if not self.can_grant(tid, mode):
                break
            self.waiters.popleft()
            self.grant(tid, mode)
            granted.append((tid, mode))
        return granted


class LockTable:
    """All virtual locks in one replay, created on demand."""

    def __init__(self) -> None:
        self._locks: Dict[Hashable, VirtualLock] = {}

    def get(self, key: Hashable) -> VirtualLock:
        lock = self._locks.get(key)
        if lock is None:
            lock = VirtualLock(key)
            self._locks[key] = lock
        return lock

    def __len__(self) -> int:
        return len(self._locks)
