"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single type. Subsystems raise the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class NvmError(ReproError):
    """Errors from the NVM device simulator."""


class OutOfRangeError(NvmError):
    """An access fell outside the device or a mapped region."""


class TornWriteError(NvmError):
    """A store larger than the atomic unit was requested atomically."""


class AllocationError(NvmError):
    """The log-block allocator ran out of space."""


class CrashRequested(NvmError):
    """Raised internally when a scheduled crash point fires.

    Crash-injection tests install a :class:`~repro.nvm.crash.CrashPlan`
    that raises this to unwind out of the I/O path; the durable device
    image at that moment is what recovery sees.
    """


class FsError(ReproError):
    """Errors from the file-system layer."""


class FileNotFound(FsError):
    """Named file does not exist in the simulated namespace."""


class FileExists(FsError):
    """Exclusive create of a name that already exists."""


class BadFileDescriptor(FsError):
    """Operation on a closed or invalid handle."""


class FileBusy(FsError):
    """MGSP files are single-open: a second opener must wait for close
    (§III-C2: MGL is designed for intra-process parallelism; threads
    share one handle)."""


class ReadOnlyError(FsError):
    """Write attempted through a read-only handle."""


class LockProtocolError(ReproError):
    """MGL invariant violated (bad release order, double release, ...)."""


class RecoveryError(ReproError):
    """Recovery found an unrecoverable inconsistency."""


class DbError(ReproError):
    """Errors from the embedded database engine."""


class TransactionError(DbError):
    """Illegal transaction state transition (nested begin, commit w/o begin)."""


class SchemaError(DbError):
    """Unknown table/column or row/schema mismatch."""


class SimulationError(ReproError):
    """Errors from the discrete-event engine (deadlock, bad process)."""
