"""Programmatic definitions of every paper experiment.

`run_all()` is the equivalent of the artifact's ``run_all.sh``: it
executes each experiment and returns rendered tables; the CLI
(``python -m repro.bench``) writes them to a report file.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.bench.harness import Table, run_one
from repro.bench.registry import make_fs
from repro.core import MgspConfig
from repro.util import fmt_size
from repro.workloads.fio import FioJob
from repro.workloads.mobibench import run_mobibench
from repro.workloads.tpcc import run_tpcc

FS_SET = ("Ext4-DAX", "Libnvmmio", "NOVA", "MGSP")
FSIZE = 16 << 20


def fig01(nops: int = 300) -> Table:
    table = Table(title="Fig 1 — 4KB write MB/s under sync requirements")
    for name in ("Ext4-wb", "Ext4-ordered", "Ext4-journal", "Ext4-DAX", "Libnvmmio", "MGSP"):
        for label, fsync in (("no-sync", 0), ("sync", 1)):
            job = FioJob(op="write", bs=4096, fsize=FSIZE, fsync=fsync, nops=nops)
            table.set(name, label, run_one(name, job).throughput_mb_s)
    return table


def fig07(nops: int = 300) -> Table:
    table = Table(title="Fig 7 — 4KB seq write MB/s vs sync interval")
    intervals = ((1, "fsync-1"), (10, "fsync-10"), (100, "fsync-100"), (0, "none"))
    for name in FS_SET:
        for interval, label in intervals:
            job = FioJob(op="write", bs=4096, fsize=FSIZE, fsync=interval, nops=nops)
            table.set(name, label, run_one(name, job).throughput_mb_s)
    # Extension beyond the paper: MGSP with asynchronous write-back
    # epochs (background checkpoint drains every 256 KB of fresh log).
    async_config = MgspConfig(async_writeback=True, writeback_epoch_bytes=256 << 10)
    for interval, label in intervals:
        job = FioJob(op="write", bs=4096, fsize=FSIZE, fsync=interval, nops=nops)
        table.set("MGSP-async", label, run_one("MGSP", job, mgsp_config=async_config).throughput_mb_s)
    return table


def fig08(op: str, nops: int = 300) -> Table:
    table = Table(title=f"Fig 8 — {op} MB/s by block size (fsync per op)")
    for bs in (512, 1024, 2048, 4096, 16384, 65536):
        job = FioJob(op=op, bs=bs, fsize=FSIZE, fsync=1, nops=nops)
        for name in FS_SET:
            table.set(name, fmt_size(bs), run_one(name, job).throughput_mb_s)
    return table


def fig09(nops: int = 300) -> Table:
    table = Table(title="Fig 9 — 4KB mixed rw normalized to Ext4-DAX")
    for ratio in (0.1, 0.3, 0.5, 0.7, 0.9):
        col = f"{int(ratio * 100)}%w"
        base = None
        for name in FS_SET:
            job = FioJob(op="randrw", bs=4096, fsize=FSIZE, fsync=1, write_ratio=ratio, nops=nops)
            mbps = run_one(name, job).throughput_mb_s
            if name == "Ext4-DAX":
                base = mbps
            table.set(name, col, f"{mbps / base:.2f}")
    return table


def fig10(op: str, bs: int, ops_per_thread: int = 150) -> Table:
    table = Table(title=f"Fig 10 — {op} bs={fmt_size(bs)} MB/s by threads")
    for name in FS_SET:
        for threads in (1, 2, 4, 8, 16):
            job = FioJob(
                op=op, bs=bs, fsize=FSIZE, fsync=1, threads=threads,
                nops=ops_per_thread * threads,
            )
            table.set(name, f"t{threads}", run_one(name, job).throughput_mb_s)
    return table


def fig11(journal_mode: str, transactions: int = 150) -> Table:
    table = Table(title=f"Fig 11 — Mobibench tx/s (journal={journal_mode})")
    for name in FS_SET:
        for mode in ("insert", "update", "delete"):
            fs = make_fs(name, device_size=96 << 20)
            result = run_mobibench(fs, mode=mode, journal_mode=journal_mode, transactions=transactions)
            table.set(name, mode, result.tx_per_sec)
    return table


def fig12(journal_mode: str, transactions: int = 120) -> Table:
    table = Table(title=f"Fig 12 — TPC-C tpm (journal={journal_mode})")
    for name in FS_SET:
        fs = make_fs(name, device_size=192 << 20)
        table.set(name, "tpm", run_tpcc(fs, journal_mode=journal_mode, transactions=transactions).tpm)
    return table


def tab02(nops: int = 300) -> Table:
    table = Table(title="Table II — random-write amplification")
    for bs in (1024, 4096, 16384):
        for fs_name, fsync, row in (
            ("Libnvmmio", 1, "Libnvmmio"),
            ("Libnvmmio", 100, "Libnvmmio-100"),
            ("Libnvmmio", 0, "Libnvmmio-wo-sync"),
            ("MGSP", 1, "MGSP"),
        ):
            job = FioJob(op="randwrite", bs=bs, fsize=FSIZE, fsync=fsync, nops=nops)
            table.set(row, fmt_size(bs), f"{run_one(fs_name, job).write_amplification:.3f}")
    return table


def fig13(nops: int = 200) -> Table:
    table = Table(title="Fig 13 — technique stack, speedup over Ext4-DAX")
    stack = (
        ("base", MgspConfig.baseline()),
        ("+shadow", MgspConfig.baseline().with_shadow_logging()),
        ("+multigran", MgspConfig.baseline().with_shadow_logging().with_multi_granularity()),
        ("+finelock",
         MgspConfig.baseline().with_shadow_logging().with_multi_granularity().with_fine_locking()),
        ("+opts",
         MgspConfig.baseline().with_shadow_logging().with_multi_granularity()
         .with_fine_locking().with_optimizations()),
    )
    for bs, threads in ((1024, 1), (2048, 2), (4096, 4)):
        col = f"{fmt_size(bs)}/{threads}t"
        job = FioJob(op="write", bs=bs, fsize=FSIZE, fsync=1, threads=threads, nops=nops * threads)
        base = run_one("Ext4-DAX", job).throughput_mb_s
        for label, config in stack:
            mbps = run_one("MGSP", job, mgsp_config=config).throughput_mb_s
            table.set(label, col, f"{mbps / base:.2f}")
    return table


def recovery_experiment(file_size: int = 64 << 20) -> str:
    from repro.core import MgspFilesystem, recover
    from repro.errors import CrashRequested
    from repro.nvm.crash import CrashPlan
    from repro.nvm.device import NvmDevice

    config = MgspConfig()
    fs = MgspFilesystem(device_size=4 * file_size, config=config)
    f = fs.create("big.dat", capacity=file_size)
    # analysis: allow(raw-store-outside-protocol) -- prefill of pre-existing file content, not measured traffic
    fs.device.buffer.store(f.inode.base, b"\x11" * file_size)
    fs.device.buffer.drain()
    fs.volume.set_size(f.inode, file_size)
    rng = random.Random(17)
    fs.device.crash_plan = CrashPlan(crash_after=60_000)
    writes = 0
    try:
        while True:
            f.write(rng.randrange(0, file_size // 4096) * 4096, b"\x22" * 4096)
            writes += 1
    except CrashRequested:
        pass
    image = fs.device.crash_image(rng=random.Random(3))
    _, stats = recover(NvmDevice.from_image(bytes(image)), config=config)
    return (
        "Recovery (§III-D)\n"
        f"  writes before crash : {writes:,}\n"
        f"  entries replayed    : {stats.entries_replayed}\n"
        f"  log bytes written   : {stats.log_bytes_written_back:,}\n"
        f"  virtual time        : {stats.elapsed_ns / 1e6:.2f} ms "
        f"(file {fmt_size(file_size)})"
    )


EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "fig01": fig01,
    "fig07": fig07,
    "fig08-write": lambda: fig08("write"),
    "fig08-randwrite": lambda: fig08("randwrite"),
    "fig08-read": lambda: fig08("read"),
    "fig08-randread": lambda: fig08("randread"),
    "fig09": fig09,
    "fig10-1k": lambda: fig10("write", 1024),
    "fig10-4k": lambda: fig10("write", 4096),
    "fig10-16k": lambda: fig10("write", 16384),
    "fig11-wal": lambda: fig11("wal"),
    "fig11-off": lambda: fig11("off"),
    "fig12-wal": lambda: fig12("wal"),
    "fig12-off": lambda: fig12("off"),
    "tab02": tab02,
    "fig13": fig13,
    "recovery": recovery_experiment,
}


def run_all(names: Optional[List[str]] = None, progress: Optional[Callable[[str], None]] = None):
    """Run the selected (default: all) experiments; yields (name, text)."""
    for name in names or list(EXPERIMENTS):
        if name not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {name!r}; choices: {sorted(EXPERIMENTS)}")
        if progress:
            progress(name)
        result = EXPERIMENTS[name]()
        yield name, str(result)
