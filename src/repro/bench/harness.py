"""Shared experiment plumbing: run FIO sweeps, render result tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.registry import device_size_for, make_fs
from repro.core import MgspConfig
from repro.workloads.fio import FioJob, FioResult, run_fio

#: when set (via collect_breakdowns), run_one attaches telemetry to
#: every filesystem it mounts and appends one breakdown record per run.
_breakdown_sink: Optional[List[dict]] = None

#: when set (via collect_perfetto), run_one also attaches an unbounded
#: flight recorder and appends one trace-event document per run.
_perfetto_sink: Optional[List[dict]] = None


def collect_breakdowns(sink: Optional[List[dict]]) -> None:
    """Route per-run telemetry breakdowns into *sink* (None to stop).

    Each record is ``{"fs", "job", "breakdown"}`` where ``breakdown``
    is the :func:`repro.obs.exporters.json_snapshot` of that run — the
    sidecar payload ``python -m repro.bench --breakdown`` writes.
    """
    global _breakdown_sink
    _breakdown_sink = sink


def collect_perfetto(sink: Optional[List[dict]]) -> None:
    """Route per-run span timelines into *sink* (None to stop).

    Each record is a Chrome trace-event document from
    :func:`repro.obs.perfetto.from_flight`, one Perfetto process per
    run — ``python -m repro.bench --perfetto`` merges and writes them.
    """
    global _perfetto_sink
    _perfetto_sink = sink


@dataclass
class Table:
    """A printable result grid: rows x columns -> formatted cell."""

    title: str
    columns: List[str] = field(default_factory=list)
    rows: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def set(self, row: str, col: str, value) -> None:
        if col not in self.columns:
            self.columns.append(col)
        self.rows.setdefault(row, {})[col] = value if isinstance(value, str) else f"{value:.1f}"

    def render(self) -> str:
        name_w = max([len(r) for r in self.rows] + [8])
        col_w = {c: max(len(c), 9) for c in self.columns}
        out = [self.title, ""]
        header = " " * name_w + "  " + "  ".join(c.rjust(col_w[c]) for c in self.columns)
        out.append(header)
        out.append("-" * len(header))
        for row, cells in self.rows.items():
            line = row.ljust(name_w) + "  " + "  ".join(
                cells.get(c, "-").rjust(col_w[c]) for c in self.columns
            )
            out.append(line)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()

    def value(self, row: str, col: str) -> float:
        return float(self.rows[row][col])


def run_one(
    fs_name: str,
    job: FioJob,
    mgsp_config: Optional[MgspConfig] = None,
    device_size: Optional[int] = None,
) -> FioResult:
    fs = make_fs(
        fs_name,
        device_size=device_size or device_size_for(job.fsize),
        mgsp_config=mgsp_config,
    )
    sink = _breakdown_sink
    traces = _perfetto_sink
    if sink is None and traces is None:
        return run_fio(fs, job)
    from repro.obs.exporters import json_snapshot
    from repro.obs.spans import attach_telemetry

    telemetry = attach_telemetry(fs)
    flight = None
    if traces is not None:
        from repro.obs.flight import attach_flight

        flight = attach_flight(fs, capacity=0)
    result = run_fio(fs, job)
    if sink is not None:
        sink.append(
            {
                "fs": fs_name,
                "job": {
                    "op": job.op,
                    "bs": job.bs,
                    "fsync": job.fsync,
                    "threads": job.threads,
                    "nops": job.nops,
                },
                "breakdown": json_snapshot(telemetry),
            }
        )
    if traces is not None:
        from repro.obs import perfetto

        traces.append(
            perfetto.from_flight(
                flight,
                workload=fs_name,
                config=f"{job.op}-bs{job.bs}-t{job.threads}",
                pid=len(traces) + 1,
            )
        )
    return result


def sweep_fio(
    fs_names: Sequence[str],
    jobs: Sequence[FioJob],
    title: str,
    column_of=lambda job: str(job.bs),
    mgsp_config: Optional[MgspConfig] = None,
) -> Table:
    """Run every (fs, job) pair into one table of MB/s."""
    table = Table(title=title)
    for job in jobs:
        col = column_of(job)
        for fs_name in fs_names:
            result = run_one(fs_name, job, mgsp_config=mgsp_config)
            table.set(fs_name, col, result.throughput_mb_s)
    return table
