"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # run everything, print tables
    python -m repro.bench fig08-write tab02
    python -m repro.bench --list
    python -m repro.bench -o report.txt   # also write a report file

This is the reproduction's equivalent of the artifact's
``evaluation/fio/scripts/run_all.sh``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import EXPERIMENTS, run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("experiments", nargs="*", help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument("-o", "--output", help="write the report to this file")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    sections = []
    start = time.time()
    for name, text in run_all(
        args.experiments or None,
        progress=lambda n: print(f"[{time.time() - start:6.1f}s] running {n} ...", file=sys.stderr),
    ):
        block = f"\n{'=' * 70}\n{text}\n"
        print(block)
        sections.append(block)

    if args.output:
        with open(args.output, "w") as fh:
            fh.write("MGSP reproduction report\n")
            fh.writelines(sections)
        print(f"report written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
