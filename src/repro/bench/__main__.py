"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                 # run everything, print tables
    python -m repro.bench fig08-write tab02
    python -m repro.bench --list
    python -m repro.bench -o report.txt   # also write a report file
    python -m repro.bench tab02 --breakdown tab02.obs.json
                                          # + per-run telemetry sidecar
    python -m repro.bench fig08-write --profile fig08.pstats
                                          # + cProfile sidecar (pstats)

This is the reproduction's equivalent of the artifact's
``evaluation/fio/scripts/run_all.sh``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import EXPERIMENTS, run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("experiments", nargs="*", help="experiment names (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument("-o", "--output", help="write the report to this file")
    parser.add_argument(
        "--breakdown",
        help="write a JSON sidecar with per-run telemetry breakdowns "
        "(fig13-style layer attribution for every figure run)",
    )
    parser.add_argument(
        "--perfetto",
        metavar="FILE",
        help="write a merged Chrome trace-event JSON of every run's span "
        "timeline (one Perfetto process per run; load at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        help="run the selected experiments under cProfile and dump pstats "
        "data to FILE (inspect with `python -m pstats FILE`); the top "
        "cumulative functions are printed to stderr",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    breakdowns = None
    if args.breakdown:
        from repro.bench.harness import collect_breakdowns

        breakdowns = []
        collect_breakdowns(breakdowns)

    traces = None
    if args.perfetto:
        from repro.bench.harness import collect_perfetto

        traces = []
        collect_perfetto(traces)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    sections = []
    start = time.time()
    try:
        if profiler is not None:
            profiler.enable()
        for name, text in run_all(
            args.experiments or None,
            progress=lambda n: print(f"[{time.time() - start:6.1f}s] running {n} ...", file=sys.stderr),
        ):
            block = f"\n{'=' * 70}\n{text}\n"
            print(block)
            sections.append(block)
    finally:
        if profiler is not None:
            profiler.disable()
        if breakdowns is not None:
            from repro.bench.harness import collect_breakdowns

            collect_breakdowns(None)
        if traces is not None:
            from repro.bench.harness import collect_perfetto

            collect_perfetto(None)

    if profiler is not None:
        import pstats

        profiler.dump_stats(args.profile)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(15)
        print(f"profile data written to {args.profile}", file=sys.stderr)

    if args.output:
        with open(args.output, "w") as fh:
            fh.write("MGSP reproduction report\n")
            fh.writelines(sections)
        print(f"report written to {args.output}", file=sys.stderr)
    if args.breakdown:
        import json

        with open(args.breakdown, "w") as fh:
            json.dump(breakdowns, fh, indent=2, sort_keys=True)
        print(
            f"breakdown sidecar ({len(breakdowns)} runs) written to {args.breakdown}",
            file=sys.stderr,
        )
    if args.perfetto:
        from repro.obs import perfetto

        merged = {
            "traceEvents": [ev for doc in traces for ev in doc["traceEvents"]],
            "displayTimeUnit": "ns",
        }
        perfetto.validate(merged)
        with open(args.perfetto, "w", encoding="utf-8") as fh:
            fh.write(perfetto.render(merged))
        print(
            f"perfetto trace ({len(traces)} runs) written to {args.perfetto}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
