"""Machine-readable export of experiment results.

Tables render for humans; CI and plotting want structure. This module
converts :class:`~repro.bench.harness.Table` objects to dicts / JSON /
CSV, and can diff two exported runs to flag regressions — useful when
hacking on the timing model or the MGSP internals.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Tuple

from repro.bench.harness import Table


def table_to_dict(table: Table) -> Dict:
    rows = {}
    for row, cells in table.rows.items():
        parsed = {}
        for col, value in cells.items():
            try:
                parsed[col] = float(value)
            except (TypeError, ValueError):
                parsed[col] = value
        rows[row] = parsed
    return {"title": table.title, "columns": list(table.columns), "rows": rows}


def table_to_json(table: Table, indent: int = 2) -> str:
    return json.dumps(table_to_dict(table), indent=indent)


def table_to_csv(table: Table) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([""] + list(table.columns))
    for row, cells in table.rows.items():
        writer.writerow([row] + [cells.get(col, "") for col in table.columns])
    return buffer.getvalue()


def export_run(tables: Iterable[Tuple[str, Table]]) -> str:
    """Serialize a whole experiment run (name -> table) as JSON."""
    return json.dumps(
        {name: table_to_dict(table) for name, table in tables}, indent=2
    )


def diff_runs(
    baseline_json: str,
    candidate_json: str,
    tolerance: float = 0.10,
) -> List[str]:
    """Compare two exported runs; report cells that moved more than
    *tolerance* (relative). Returns human-readable finding strings."""
    baseline = json.loads(baseline_json)
    candidate = json.loads(candidate_json)
    findings: List[str] = []
    for name, base_table in baseline.items():
        cand_table = candidate.get(name)
        if cand_table is None:
            findings.append(f"{name}: missing from candidate run")
            continue
        for row, cells in base_table["rows"].items():
            for col, base_value in cells.items():
                if not isinstance(base_value, (int, float)):
                    continue
                cand_value = cand_table["rows"].get(row, {}).get(col)
                if cand_value is None:
                    findings.append(f"{name}: {row}/{col} missing")
                    continue
                if base_value == 0:
                    continue
                drift = (cand_value - base_value) / abs(base_value)
                if abs(drift) > tolerance:
                    findings.append(
                        f"{name}: {row}/{col} drifted {drift:+.1%} "
                        f"({base_value:g} -> {cand_value:g})"
                    )
    for name in candidate:
        if name not in baseline:
            findings.append(f"{name}: new in candidate run")
    return findings
