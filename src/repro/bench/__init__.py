"""Benchmark harness: one module per paper table/figure (see DESIGN.md)."""

from repro.bench.registry import FS_NAMES, make_fs
from repro.bench.harness import Table, sweep_fio

__all__ = ["FS_NAMES", "Table", "make_fs", "sweep_fio"]
