"""Benchmark provenance stamps: make BENCH_*.json rows auditable.

Every benchmark export carries a ``provenance`` record tying the
numbers to what produced them:

- ``seed`` — the RNG seed the run was keyed off;
- ``config_digest`` — a short SHA-256 over the canonical JSON of the
  knobs that shaped the run (two exports with the same digest measured
  the same configuration, whatever produced the file);
- ``conservation`` — the telemetry self-check status at export time:
  ``"ok"`` when every attached :class:`~repro.obs.spans.Telemetry`
  satisfied the layer-sum conservation laws, ``"violated"`` when one
  did not, ``"disabled"`` when the run was intentionally untelemetered
  (wall-clock benchmarks null their recorders).

The stamp is deterministic — no timestamps, no hostnames — so adding
it keeps the byte-identical-export CI gates intact.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, Optional

#: hex chars of SHA-256 kept in the digest (collision-safe for a
#: benchmark config space, short enough to eyeball in diffs)
DIGEST_LEN = 12


def config_digest(config: Dict[str, object]) -> str:
    """Short deterministic digest of a benchmark's configuration."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:DIGEST_LEN]


def conservation_status(telemetries: Iterable) -> str:
    """Fold the conservation self-check over every attached telemetry.

    The laws are the ones :mod:`repro.obs.attribution` guarantees:
    per-layer virtual time sums to the elapsed total, per-layer bytes
    sum to the device's stored bytes."""
    from repro.obs import attribution

    checked = False
    for tel in telemetries:
        if tel is None or not getattr(tel, "enabled", False):
            continue
        checked = True
        ns_sum = sum(v for _, v in attribution.time_breakdown(tel))
        byte_sum = sum(v for _, v in attribution.write_breakdown(tel))
        ns_ok = abs(ns_sum - tel.total_ns()) <= 1e-6 * max(1.0, tel.total_ns())
        if not (ns_ok and byte_sum == tel.total_bytes()
                and tel.total_bytes() == tel.stored_bytes()):
            return "violated"
    return "ok" if checked else "disabled"


def provenance(
    seed: int,
    config: Dict[str, object],
    telemetries: Optional[Iterable] = None,
    conservation: Optional[str] = None,
) -> Dict[str, object]:
    """The stamp itself. Pass *telemetries* to derive the conservation
    status, or *conservation* to state it directly (wall-clock suites
    that run untelemetered pass ``"disabled"``)."""
    if conservation is None:
        conservation = conservation_status(telemetries or ())
    return {
        "seed": seed,
        "config_digest": config_digest(config),
        "conservation": conservation,
    }
