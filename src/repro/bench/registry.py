"""File-system factories used by every experiment."""

from __future__ import annotations

from typing import Optional

from repro.core import MgspConfig, MgspFilesystem
from repro.fs import Ext4, Ext4Dax, Libnvmmio, Nova, Splitfs
from repro.fsapi.interface import FileSystem
from repro.nvm.timing import TimingModel

FS_NAMES = ("Ext4-DAX", "Libnvmmio", "NOVA", "MGSP")
EXT4_MODES = ("Ext4-wb", "Ext4-ordered", "Ext4-journal")


def make_fs(
    name: str,
    device_size: int = 256 << 20,
    timing: Optional[TimingModel] = None,
    mgsp_config: Optional[MgspConfig] = None,
) -> FileSystem:
    """Build a fresh file system (own simulated device) by paper name."""
    if name == "Ext4-DAX":
        return Ext4Dax(device_size=device_size, timing=timing)
    if name == "Libnvmmio":
        return Libnvmmio(device_size=device_size, timing=timing)
    if name == "NOVA":
        return Nova(device_size=device_size, timing=timing)
    if name == "MGSP":
        return MgspFilesystem(device_size=device_size, timing=timing, config=mgsp_config)
    if name == "SplitFS":
        return Splitfs(device_size=device_size, timing=timing)
    if name.startswith("Ext4-"):
        mode = name.split("-", 1)[1]
        return Ext4(device_size=device_size, timing=timing, mode=mode)
    raise ValueError(f"unknown file system {name!r}; expected one of {FS_NAMES + EXT4_MODES}")


def device_size_for(fsize: int) -> int:
    """A device comfortably holding one benchmark file plus log space."""
    return max(64 << 20, 4 * fsize)
