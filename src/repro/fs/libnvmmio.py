"""Libnvmmio: user-space hybrid undo/redo differential logging.

The model reproduces the behaviours the paper leans on:

- **user-space MMIO**: no syscall cost; data moves with load/store + clwb.
- **differential logging**: only the written bytes are logged (per-4 KB
  block log entries, interval-tracked), so unsynced write amplification
  stays near 1 (Table II).
- **double write on sync**: ``fsync`` checkpoints every dirty log entry
  back to the file — the write-amplification ratio ~2 and the Fig 7
  collapse under frequent sync.
- **hybrid logging**: per-sync-epoch policy switch — redo when the epoch
  was write-dominant (fast writes, merging reads), undo when
  read-dominant (double-write writes, direct reads).
- **background checkpointing**: without sync, entries are drained in the
  background only under log-space pressure; those ops are recorded on a
  separate background trace whose per-block write locks conflict with
  foreground threads in the multi-thread replay (Fig 9/10).
- atomicity is only at ``fsync`` granularity (``consistency="fsync"``):
  a crash between syncs loses (redo) or rolls back (undo) unsynced data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import FileNotFound, FsError
from repro.fsapi.interface import FileHandle, FileSystem, OpenFlags
from repro.fsapi.volume import Inode
from repro.nvm.allocator import LogAllocator
from repro.nvm.intervals import IntervalSet
from repro.sim.trace import TraceRecorder

BLOCK = 4096
ENTRY_META = 64
INDEX_DEPTH = 4  # radix levels walked per block lookup


@dataclass
class LogEntry:
    log_off: int
    policy: str  # "redo" | "undo"
    intervals: IntervalSet = field(default_factory=IntervalSet)  # in-block offsets


class LibnvmmioFile(FileHandle):
    def __init__(self, fs: "Libnvmmio", inode: Inode) -> None:
        super().__init__(fs, inode.name)
        self.inode = inode
        self.entries: Dict[int, LogEntry] = {}
        self.epoch_policy = "redo"
        self.epoch_reads = 0
        self.epoch_writes = 0
        self._size_dirty = False

    @property
    def size(self) -> int:
        return self.inode.size

    # -- helpers ---------------------------------------------------------------

    def _entry(self, block_idx: int, policy: str) -> LogEntry:
        fs: Libnvmmio = self.fs  # type: ignore[assignment]
        fs.recorder.compute(fs.timing.tree_node_ns * INDEX_DEPTH)
        entry = self.entries.get(block_idx)
        if entry is None:
            log_off = fs.logs.alloc(BLOCK)
            fs.recorder.compute(fs.timing.block_alloc_ns)
            entry = LogEntry(log_off=log_off, policy=policy)
            self.entries[block_idx] = entry
        return entry

    def _file_off(self, block_idx: int) -> int:
        return self.inode.base + block_idx * BLOCK

    # -- API ---------------------------------------------------------------------

    def write(self, offset: int, data: bytes) -> int:
        self._check_writable()
        fs: Libnvmmio = self.fs  # type: ignore[assignment]
        end = offset + len(data)
        if end > self.inode.capacity:
            raise FsError(f"{self.inode.name}: write past capacity")
        with fs.op("write"):
            fs.recorder.lock(("lib-epoch", self.inode.id), "IR")
            pos = offset
            while pos < end:
                idx = pos // BLOCK
                in_block = pos - idx * BLOCK
                take = min(BLOCK - in_block, end - pos)
                chunk = data[pos - offset : pos - offset + take]
                fs.recorder.lock(("block", self.inode.id, idx), "W")
                if self.epoch_policy == "redo":
                    entry = self._entry(idx, "redo")
                    fs.device.nt_store(entry.log_off + in_block, chunk)
                    entry.intervals.add(in_block, in_block + take)
                else:  # undo: log old data, update file in place
                    entry = self._entry(idx, "undo")
                    if not entry.intervals.covers(in_block, in_block + take):
                        old = fs.device.load(self._file_off(idx) + in_block, take)
                        fs.device.nt_store(entry.log_off + in_block, old)
                        entry.intervals.add(in_block, in_block + take)
                    fs.device.nt_store(self._file_off(idx) + in_block, chunk)
                # Per-entry metadata (commit record for the log write).
                fs.device.nt_store(fs.meta_cursor(), b"\0" * ENTRY_META)
                fs.recorder.unlock(("block", self.inode.id, idx))
                pos += take
            fs.device.fence()
            if end > self.inode.size:
                fs.volume.set_size_volatile(self.inode, end)
                self._size_dirty = True
            fs.recorder.unlock(("lib-epoch", self.inode.id))
        self.epoch_writes += 1
        fs.api.writes += 1
        fs.api.bytes_written += len(data)
        fs.maybe_background_checkpoint(self)
        return len(data)

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        fs: Libnvmmio = self.fs  # type: ignore[assignment]
        length = max(0, min(length, self.inode.size - offset))
        out = bytearray(length)
        with fs.op("read"):
            pos = offset
            end = offset + length
            while pos < end:
                idx = pos // BLOCK
                in_block = pos - idx * BLOCK
                take = min(BLOCK - in_block, end - pos)
                fs.recorder.lock(("block", self.inode.id, idx), "R")
                # Per-block epoch check + reader refcount (2 atomics).
                fs.recorder.compute(fs.timing.cas_ns * 2)
                entry = self.entries.get(idx)
                base = self._file_off(idx)
                chunk = bytearray(fs.device.load(base + in_block, take))
                if entry is not None and entry.policy == "redo":
                    # Overlay the logged (newer) byte ranges.
                    for s, e in entry.intervals.intersect(in_block, in_block + take):
                        logged = fs.device.load(entry.log_off + s, e - s)
                        chunk[s - in_block : e - in_block] = logged
                        fs.recorder.compute(fs.timing.dram_copy_ns(e - s))
                out[pos - offset : pos - offset + take] = chunk
                fs.recorder.unlock(("block", self.inode.id, idx))
                pos += take
        self.epoch_reads += 1
        fs.api.reads += 1
        fs.api.bytes_read += length
        return bytes(out)

    def fsync(self) -> None:
        """Checkpoint: push every dirty log entry back to the file."""
        self._check_open()
        fs: Libnvmmio = self.fs  # type: ignore[assignment]
        with fs.op("fsync"):
            # Epoch transition: sweep the per-file index, transition the
            # epoch, coordinate with the background drainer. The epoch
            # lock is exclusive: every reader/writer drains first.
            fs.recorder.lock(("lib-epoch", self.inode.id), "W")
            fs.recorder.compute(fs.timing.msync_sweep_ns)
            if self.entries:
                # No live log entries means nothing to checkpoint and
                # nothing pending (every write fenced itself), so the
                # fence would be pure overhead — e.g. the second fsync
                # of a sync-heavy run, or close() after fsync.
                self._checkpoint_all()
                fs.device.fence()
            if self._size_dirty:
                fs.volume.persist_size(self.inode)
                self._size_dirty = False
            self._choose_epoch_policy()
            fs.recorder.unlock(("lib-epoch", self.inode.id))
        fs.api.fsyncs += 1

    def _checkpoint_all(self) -> None:
        fs: Libnvmmio = self.fs  # type: ignore[assignment]
        obs = fs.obs
        frame = obs.span_begin("checkpoint.libnvmmio") if obs.enabled else None
        for idx in sorted(self.entries):
            self._checkpoint_block(idx)
        if frame is not None:
            obs.span_end(frame)

    def _checkpoint_block(self, idx: int) -> None:
        fs: Libnvmmio = self.fs  # type: ignore[assignment]
        entry = self.entries.pop(idx, None)
        if entry is None:
            return
        fs.recorder.lock(("block", self.inode.id, idx), "W")
        # Per-entry checkpoint bookkeeping: epoch check, commit-mark
        # update + flush, entry reclamation.
        fs.recorder.compute(fs.timing.msync_entry_ns)
        if entry.policy == "redo":
            for s, e in entry.intervals:
                logged = fs.device.load(entry.log_off + s, e - s)
                # analysis: allow(unfenced-nt-store) -- caller fences: fsync/_checkpoint_all issue one fence over every block
                fs.device.nt_store(self._file_off(idx) + s, logged)
        # undo entries: file already has new data; just retire the log.
        fs.logs.free(entry.log_off, BLOCK)
        fs.recorder.unlock(("block", self.inode.id, idx))

    def _choose_epoch_policy(self) -> None:
        if self.epoch_reads > self.epoch_writes:
            self.epoch_policy = "undo"
        else:
            self.epoch_policy = "redo"
        self.epoch_reads = 0
        self.epoch_writes = 0

    def mmap_view(self):
        """Raw extent view; only coherent when no log entries are live."""
        self._check_open()
        return (self.fs.device, self.inode.base, self.inode.capacity)

    def close(self) -> None:
        if not self.closed:
            self.fsync()
            super().close()
            self.fs.open_handles -= 1


class Libnvmmio(FileSystem):
    name = "Libnvmmio"
    kernel_space = False
    consistency = "fsync"
    log_fraction = 0.45

    #: start draining in the background past this log-area utilization
    bg_pressure = 0.75

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        area = self.volume.layout.log_area
        self.logs = LogAllocator(area.start, area.end)
        self._meta_cursor = self.volume.layout.journal.start
        self.bg_recorder = TraceRecorder(self.timing)

    def meta_cursor(self) -> int:
        off = self._meta_cursor
        self._meta_cursor += ENTRY_META
        if self._meta_cursor + ENTRY_META > self.volume.layout.journal.end:
            self._meta_cursor = self.volume.layout.journal.start
        return off

    def maybe_background_checkpoint(self, handle: LibnvmmioFile) -> None:
        """Drain half the oldest entries on a background trace when the
        log area fills up; its locks contend with foreground writers."""
        if self.logs.in_use < self.bg_pressure * self.logs.capacity:
            return
        obs = self.obs
        frame = obs.span_begin("checkpoint.libnvmmio-bg") if obs.enabled else None
        fg = self.device.tracer
        self.device.tracer = self.bg_recorder
        self.bg_recorder.begin_op("bg-checkpoint")
        try:
            victims = sorted(handle.entries)[: max(1, len(handle.entries) // 2)]
            for idx in victims:
                entry = handle.entries.pop(idx, None)
                if entry is None:
                    continue
                self.bg_recorder.lock(("block", handle.inode.id, idx), "W")
                if entry.policy == "redo":
                    for s, e in entry.intervals:
                        logged = self.device.load(entry.log_off + s, e - s)
                        self.device.nt_store(handle._file_off(idx) + s, logged)
                self.logs.free(entry.log_off, BLOCK)
                self.bg_recorder.unlock(("block", handle.inode.id, idx))
            self.device.fence()
        finally:
            self.bg_recorder.end_op()
            self.device.tracer = fg
            if frame is not None:
                obs.span_end(frame)
                obs.registry.counter("libnvmmio_bg_checkpoints_total").inc()

    def take_bg_traces(self):
        return self.bg_recorder.take_completed()

    def create(self, name: str, capacity: int) -> LibnvmmioFile:
        inode = self.volume.create(name, capacity)
        self.open_handles += 1
        return LibnvmmioFile(self, inode)

    def open(self, name: str, flags: OpenFlags = OpenFlags.RDWR) -> LibnvmmioFile:
        if not self.volume.exists(name):
            if flags & OpenFlags.CREAT:
                return self.create(name, 4096)
            raise FileNotFound(name)
        self.open_handles += 1
        handle = LibnvmmioFile(self, self.volume.lookup(name))
        handle.read_only = not bool(flags & OpenFlags.RDWR)
        return handle
