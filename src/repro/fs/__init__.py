"""Baseline file systems the paper compares against.

- :class:`~repro.fs.ext4.Ext4` — page-cache Ext4 with ``wb`` / ``ordered``
  / ``journal`` modes (Fig 1 only).
- :class:`~repro.fs.ext4dax.Ext4Dax` — DAX in-place writes, metadata-only
  journal; the underlying FS for Libnvmmio and MGSP in the paper.
- :class:`~repro.fs.nova.Nova` — log-structured per-write CoW with
  page-granularity atomicity.
- :class:`~repro.fs.libnvmmio.Libnvmmio` — user-space hybrid undo/redo
  differential logging with fsync-time checkpointing.
"""

from repro.fs.ext4 import Ext4
from repro.fs.ext4dax import Ext4Dax
from repro.fs.libnvmmio import Libnvmmio
from repro.fs.nova import Nova
from repro.fs.splitfs import Splitfs

__all__ = ["Ext4", "Ext4Dax", "Libnvmmio", "Nova", "Splitfs"]
