"""Ext4-DAX: direct-access writes, metadata-only journaling.

The model follows the paper's characterization:

- every call crosses the kernel (syscall cost);
- data is written in place with non-temporal stores — *no* data
  journaling, so a crashed write may be partially durable (the paper's
  "only supports metadata consistency");
- ``fsync`` fences outstanding stores and commits the metadata journal
  (JBD2), which is where the Fig 7 sync penalty comes from;
- writes hold the inode lock exclusively (limited scalability, Fig 10).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import FileNotFound
from repro.fsapi.interface import FileHandle, FileSystem, OpenFlags
from repro.fsapi.volume import Inode
from repro.nvm.device import NvmDevice


class Ext4DaxFile(FileHandle):
    def __init__(self, fs: "Ext4Dax", inode: Inode) -> None:
        super().__init__(fs, inode.name)
        self.inode = inode
        self._size_dirty = False

    @property
    def size(self) -> int:
        return self.inode.size

    def write(self, offset: int, data: bytes) -> int:
        self._check_writable()
        fs: Ext4Dax = self.fs  # type: ignore[assignment]
        timing = fs.timing
        with fs.op("write"):
            fs.recorder.lock(("inode", self.inode.id), "W")
            # Extent lookup in the DAX path.
            fs.recorder.compute(timing.page_cache_lookup_ns)
            # analysis: allow(unfenced-nt-store) -- DAX semantics: durability is deferred to fsync's fence by design
            fs.device.nt_store(self.inode.base + offset, data)
            if offset + len(data) > self.inode.size:
                # i_size update is metadata: DRAM now, journaled at fsync.
                fs.volume.set_size_volatile(self.inode, offset + len(data))
                self._size_dirty = True
            fs.recorder.unlock(("inode", self.inode.id))
        fs.api.writes += 1
        fs.api.bytes_written += len(data)
        return len(data)

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        fs: Ext4Dax = self.fs  # type: ignore[assignment]
        length = max(0, min(length, self.inode.size - offset))
        with fs.op("read"):
            fs.recorder.lock(("inode", self.inode.id), "R")
            fs.recorder.compute(fs.timing.page_cache_lookup_ns)
            data = fs.device.load(self.inode.base + offset, length) if length else b""
            fs.recorder.unlock(("inode", self.inode.id))
        fs.api.reads += 1
        fs.api.bytes_read += length
        return data

    def fsync(self) -> None:
        self._check_open()
        fs: Ext4Dax = self.fs  # type: ignore[assignment]
        with fs.op("fsync"):
            fs.device.fence()  # drain in-flight nt stores
            if self._size_dirty:
                fs.volume.persist_size(self.inode)
                self._size_dirty = False
            # Metadata-only JBD2 commit: one running transaction per
            # journal, so committers serialize on it.
            fs.recorder.compute(fs.timing.journal_commit_ns * 0.2)
            fs.recorder.lock(("jbd2",), "W")
            fs.recorder.compute(fs.timing.journal_commit_ns * 0.8)
            fs.device.store(fs.volume.layout.journal.start, b"\0" * 512)
            fs.device.persist(fs.volume.layout.journal.start, 512)
            fs.recorder.unlock(("jbd2",))
        fs.api.fsyncs += 1

    def mmap_view(self) -> Tuple[NvmDevice, int, int]:
        self._check_open()
        return (self.fs.device, self.inode.base, self.inode.capacity)

    def close(self) -> None:
        if not self.closed:
            self.fsync()
            super().close()
            self.fs.open_handles -= 1


class Ext4Dax(FileSystem):
    name = "Ext4-DAX"
    kernel_space = True
    consistency = "metadata"

    def create(self, name: str, capacity: int) -> Ext4DaxFile:
        inode = self.volume.create(name, capacity)
        self.open_handles += 1
        return Ext4DaxFile(self, inode)

    def open(self, name: str, flags: OpenFlags = OpenFlags.RDWR) -> Ext4DaxFile:
        if not self.volume.exists(name):
            if flags & OpenFlags.CREAT:
                return self.create(name, 4096)
            raise FileNotFound(name)
        self.open_handles += 1
        handle = Ext4DaxFile(self, self.volume.lookup(name))
        handle.read_only = not bool(flags & OpenFlags.RDWR)
        return handle
