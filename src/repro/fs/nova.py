"""NOVA: log-structured, per-operation CoW atomicity (kernel space).

Model of the properties the paper measures:

- every write allocates fresh 4 KB pages, copies in any unmodified bytes
  of partially-covered pages (CoW write amplification for sub-page
  writes), persists them, commits a checksummed journal entry, then
  swings the per-page pointers in a persistent page table;
- data atomicity holds for every operation (``consistency="operation"``);
- ``fsync`` is nearly free (data is already durable at op return);
- writes serialize on the per-inode log (exclusive inode lock, Fig 10);
- remapping pages under an mmap costs a TLB shootdown, part of why CoW
  MMIO loses to MGSP (§II-B).

Commit protocol (per chunk of at most :data:`MAX_COMMIT_PAGES` pages)::

    1. CoW pages        nt_store × n
    2. fence            -- data durable BEFORE anything references it
    3. journal entry    nt_store (crc over seq/file/size/pointer pairs)
       fence            -- the commit point
    4. pointer swings   atomic_store_u64 + clwb per slot; size likewise
    5. fence            -- page table durable
    6. retire           atomic zero of the entry's crc word + clwb, no
                        fence (the next op's data fence, or recovery,
                        orders it; replay is idempotent)

A crash before step 3's fence leaves the old state (the entry fails its
checksum); after it, :meth:`Nova.recover` rolls the entry forward —
every pointer swing and the size update are replayed from the entry, so
partially-persisted swings of a multi-page write can never surface as a
torn mix of old and new pages. At most one checksum-valid entry is live
in any crash image: an entry's retire line is flushed at retire time and
becomes durable at the next operation's data fence, before that
operation can commit.

Journal entry layout (128 B, within the volume's journal region)::

    0   u32  crc32 over bytes [4, 40 + 16 n)
    4   u32  n               pointer pairs (1..MAX_COMMIT_PAGES)
    8   u64  seq             monotonic commit sequence
    16  u64  file_id
    24  u64  new_size
    32  u64  size_slot       device offset of the inode's size field
    40  (u64 slot, u64 ptr) × n
"""

from __future__ import annotations

import struct
import zlib
from typing import List

from repro.errors import FileNotFound, FsError
from repro.fsapi.interface import FileHandle, FileSystem, OpenFlags
from repro.fsapi.volume import Inode
from repro.nvm.allocator import LogAllocator

PAGE = 4096
JOURNAL_ENTRY = 128
MAX_COMMIT_PAGES = 5

_ENTRY_HEAD = struct.Struct("<IQQQQ")  # n, seq, file_id, new_size, size_slot
_ENTRY_PAIR = struct.Struct("<QQ")


class NovaFile(FileHandle):
    def __init__(self, fs: "Nova", inode: Inode) -> None:
        super().__init__(fs, inode.name)
        self.inode = inode
        #: whether an mmap is active (NOVA's atomic-mmap pays TLB churn);
        #: plain file I/O benchmarks leave this off.
        self.mapped = False
        self.npages = inode.capacity // PAGE
        if inode.node_table_len < self.npages * 8:
            raise FsError(f"{inode.name}: page table too small")
        # DRAM mirror of the persistent page table (0 = hole).
        self.page_table: List[int] = [
            fs.device.buffer.load_u64(inode.node_table_off + i * 8)
            for i in range(self.npages)
        ]

    @property
    def size(self) -> int:
        return self.inode.size

    def _ptr_slot(self, page_idx: int) -> int:
        return self.inode.node_table_off + page_idx * 8

    def write(self, offset: int, data: bytes) -> int:
        self._check_writable()
        fs: Nova = self.fs  # type: ignore[assignment]
        timing = fs.timing
        end = offset + len(data)
        if end > self.inode.capacity:
            raise FsError(f"{self.inode.name}: write past capacity")
        with fs.op("write"):
            fs.recorder.lock(("inode", self.inode.id), "W")
            total_pages = 0
            pos = offset
            while pos < end:
                # One journal commit covers at most MAX_COMMIT_PAGES
                # freshly written CoW pages (an inode-log entry's span).
                chunk = []  # (page_idx, new_off, old_off)
                while pos < end and len(chunk) < MAX_COMMIT_PAGES:
                    idx = pos // PAGE
                    in_page = pos - idx * PAGE
                    take = min(PAGE - in_page, end - pos)
                    old = self.page_table[idx]
                    new = fs.pages.alloc(PAGE)
                    fs.recorder.compute(timing.block_alloc_ns * 0.35)  # per-inode free list
                    page = bytearray(PAGE)
                    if take < PAGE and old:
                        # CoW copy-in of only the unmodified bytes.
                        if in_page:
                            page[:in_page] = fs.device.load(old, in_page)
                        tail = in_page + take
                        if tail < PAGE:
                            page[tail:] = fs.device.load(old + tail, PAGE - tail)
                    page[in_page : in_page + take] = data[pos - offset : pos - offset + take]
                    fs.device.nt_store(new, bytes(page))
                    chunk.append((idx, new, old))
                    pos += take
                fs.device.fence()  # data durable before the commit entry
                new_size = max(self.inode.size, min(end, pos))
                entry_off = fs._journal_append(self.inode, new_size, chunk)
                # Post-commit: swing the persistent page-table pointers.
                for idx, new, old in chunk:
                    self.page_table[idx] = new
                    fs.device.atomic_store_u64(self._ptr_slot(idx), new)
                    fs.device.flush(self._ptr_slot(idx), 8)
                if new_size > self.inode.size:
                    fs.volume.set_size_volatile(self.inode, new_size)
                    fs.device.atomic_store_u64(self.inode.size_field_offset, new_size)
                    fs.device.flush(self.inode.size_field_offset, 8)
                fs.device.fence()
                fs._journal_retire(entry_off)
                for _, __, old in chunk:
                    if old:
                        fs.pages.free(old, PAGE)
                total_pages += len(chunk)
            if self.mapped:
                # CoW under an active mapping: remap + TLB shootdown,
                # the §II-B cost of CoW-style atomic mmap.
                fs.recorder.compute(timing.tlb_shootdown_ns * total_pages * 0.25)
            fs.recorder.unlock(("inode", self.inode.id))
        fs.api.writes += 1
        fs.api.bytes_written += len(data)
        return len(data)

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        fs: Nova = self.fs  # type: ignore[assignment]
        length = max(0, min(length, self.inode.size - offset))
        out = bytearray(length)
        with fs.op("read"):
            pos = offset
            end = offset + length
            while pos < end:
                idx = pos // PAGE
                in_page = pos - idx * PAGE
                take = min(PAGE - in_page, end - pos)
                page_off = self.page_table[idx]
                if page_off:
                    out[pos - offset : pos - offset + take] = fs.device.load(
                        page_off + in_page, take
                    )
                pos += take
        fs.api.reads += 1
        fs.api.bytes_read += length
        return bytes(out)

    def fsync(self) -> None:
        """Data is durable per-op; fsync only fences stragglers."""
        self._check_open()
        fs: Nova = self.fs  # type: ignore[assignment]
        with fs.op("fsync"):
            fs.device.fence()
        fs.api.fsyncs += 1

    def close(self) -> None:
        if not self.closed:
            super().close()
            self.fs.open_handles -= 1


class Nova(FileSystem):
    name = "NOVA"
    kernel_space = True
    consistency = "operation"
    log_fraction = 0.05  # pages come from the data area instead

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        area = self.volume.layout.data_area
        self.pages = LogAllocator(area.start, area.end)
        self.log_tail = self.volume.layout.journal.start
        self._journal_seq = 1

    def create(self, name: str, capacity: int) -> NovaFile:
        npages = -(-capacity // PAGE)
        inode = self.volume.create(
            name, capacity, node_table_len=npages * 8, reserve_extent=False
        )
        self.open_handles += 1
        return NovaFile(self, inode)

    def open(self, name: str, flags: OpenFlags = OpenFlags.RDWR) -> NovaFile:
        if not self.volume.exists(name):
            if flags & OpenFlags.CREAT:
                return self.create(name, 4096)
            raise FileNotFound(name)
        self.open_handles += 1
        handle = NovaFile(self, self.volume.lookup(name))
        handle.read_only = not bool(flags & OpenFlags.RDWR)
        return handle

    # -- commit journal ----------------------------------------------------

    def _journal_append(self, inode: Inode, new_size: int, chunk) -> int:
        """Persist one checksummed commit entry; returns its offset."""
        seq = self._journal_seq
        self._journal_seq += 1
        body = _ENTRY_HEAD.pack(
            len(chunk), seq, inode.id, new_size, inode.size_field_offset
        ) + b"".join(
            _ENTRY_PAIR.pack(inode.node_table_off + idx * 8, new)
            for idx, new, _old in chunk
        )
        crc = zlib.crc32(body) & 0xFFFFFFFF
        entry = (struct.pack("<I", crc) + body).ljust(JOURNAL_ENTRY, b"\0")
        off = self.log_tail
        self.log_tail += JOURNAL_ENTRY
        if self.log_tail + JOURNAL_ENTRY > self.volume.layout.journal.end:
            self.log_tail = self.volume.layout.journal.start
        self.device.nt_store(off, entry)
        self.device.fence()  # the commit point
        return off

    def _journal_retire(self, entry_off: int) -> None:
        """Invalidate an entry (zero its crc+n word). Deliberately not
        fenced: the next operation's data fence (or recovery, which is
        idempotent either way) makes it durable."""
        self.device.atomic_store_u64(entry_off, 0)
        self.device.flush(entry_off, 8)

    def _journal_scan(self):
        """(seq, off, file_id, new_size, size_slot, pairs) for every
        checksum-valid entry, plus the max seq field seen anywhere."""
        journal = self.volume.layout.journal
        entries = []
        max_seq = 0
        for off in range(journal.start, journal.end - JOURNAL_ENTRY + 1, JOURNAL_ENTRY):
            raw = self.device.buffer.load(off, JOURNAL_ENTRY)  # untimed: mount path
            crc, n = struct.unpack_from("<II", raw)
            seq = struct.unpack_from("<Q", raw, 8)[0]
            max_seq = max(max_seq, seq)
            if not 1 <= n <= MAX_COMMIT_PAGES:
                continue
            if crc != zlib.crc32(raw[4 : 40 + 16 * n]) & 0xFFFFFFFF:
                continue
            _n, seq, fid, new_size, size_slot = _ENTRY_HEAD.unpack_from(raw, 4)
            pairs = [_ENTRY_PAIR.unpack_from(raw, 40 + 16 * i) for i in range(n)]
            entries.append((seq, off, fid, new_size, size_slot, pairs))
        return entries, max_seq

    # -- mount / recovery --------------------------------------------------

    @classmethod
    def remount(cls, device, timing=None) -> "Nova":
        """Mount an existing device image *without* journal replay (the
        clean-shutdown path; crash images go through :meth:`recover`)."""
        from repro.fsapi.volume import Volume
        from repro.fsapi.layout import VolumeLayout

        fs = cls.__new__(cls)
        FileSystem.__init__(fs, device=device, timing=timing)
        fs.volume = Volume.mount(device, VolumeLayout.for_device(device.size, log_fraction=cls.log_fraction))
        area = fs.volume.layout.data_area
        fs.pages = LogAllocator(area.start, area.end)
        # Walk page tables so reused pages are not handed out again.
        for inode in fs.volume.files():
            for i in range(inode.capacity // PAGE):
                ptr = device.buffer.load_u64(inode.node_table_off + i * 8)
                if ptr:
                    fs.pages._cursor = max(fs.pages._cursor, ptr + PAGE)
        fs.log_tail = fs.volume.layout.journal.start
        _entries, max_seq = fs._journal_scan()
        fs._journal_seq = max_seq + 1
        return fs

    @classmethod
    def recover(cls, device, timing=None) -> "Nova":
        """Crash-mount: roll every checksum-valid journal entry forward
        (seq order), retire it, and return the recovered mount.

        Replay rewrites *all* of an entry's pointer swings and its size
        from the entry body, so a crash that persisted only a subset of
        a multi-page commit still lands on the complete new state. Sizes
        never shrink (a stale entry re-replayed after its writer's retire
        word was lost must not undo a later op). Idempotent: a second
        pass finds no valid entries and writes nothing.
        """
        fs = cls.remount(device, timing=timing)
        entries, _max_seq = fs._journal_scan()
        if not entries:
            return fs
        inodes_by_id = {inode.id: inode for inode in fs.volume.files()}
        for seq, off, fid, new_size, size_slot, pairs in sorted(entries):
            inode = inodes_by_id.get(fid)
            if inode is not None and size_slot == inode.size_field_offset:
                table_end = inode.node_table_off + inode.node_table_len
                for slot, ptr in pairs:
                    if not inode.node_table_off <= slot < table_end:
                        continue  # corrupt pair; never scribble elsewhere
                    device.atomic_store_u64(slot, ptr)
                    device.flush(slot, 8)
                if new_size <= inode.capacity and device.buffer.load_u64(size_slot) < new_size:
                    device.atomic_store_u64(size_slot, new_size)
                    device.flush(size_slot, 8)
            # Entries for unlinked/unknown files are discarded, but every
            # processed entry is retired so replay converges.
            device.atomic_store_u64(off, 0)
            device.flush(off, 8)
        device.fence()
        # Pointers changed under the first mount's mirrors: remount.
        return cls.remount(device, timing=timing)
