"""NOVA: log-structured, per-operation CoW atomicity (kernel space).

Model of the properties the paper measures:

- every write allocates fresh 4 KB pages, copies in any unmodified bytes
  of partially-covered pages (CoW write amplification for sub-page
  writes), persists them, appends a log entry, then commits by atomically
  swinging the per-page pointers in a persistent page table;
- data atomicity holds for every operation (``consistency="operation"``);
- ``fsync`` is nearly free (data is already durable at op return);
- writes serialize on the per-inode log (exclusive inode lock, Fig 10);
- remapping pages under an mmap costs a TLB shootdown, part of why CoW
  MMIO loses to MGSP (§II-B).

The persistent page table (one u64 per 4 KB page, in the node-table
region) lets a crash image be remounted: pointer slots are updated only
after their pages are durable.
"""

from __future__ import annotations

from typing import List

from repro.errors import FileNotFound, FsError
from repro.fsapi.interface import FileHandle, FileSystem, OpenFlags
from repro.fsapi.volume import Inode
from repro.nvm.allocator import LogAllocator

PAGE = 4096
LOG_ENTRY = 64


class NovaFile(FileHandle):
    def __init__(self, fs: "Nova", inode: Inode) -> None:
        super().__init__(fs, inode.name)
        self.inode = inode
        #: whether an mmap is active (NOVA's atomic-mmap pays TLB churn);
        #: plain file I/O benchmarks leave this off.
        self.mapped = False
        self.npages = inode.capacity // PAGE
        if inode.node_table_len < self.npages * 8:
            raise FsError(f"{inode.name}: page table too small")
        # DRAM mirror of the persistent page table (0 = hole).
        self.page_table: List[int] = [
            fs.device.buffer.load_u64(inode.node_table_off + i * 8)
            for i in range(self.npages)
        ]

    @property
    def size(self) -> int:
        return self.inode.size

    def _ptr_slot(self, page_idx: int) -> int:
        return self.inode.node_table_off + page_idx * 8

    def write(self, offset: int, data: bytes) -> int:
        self._check_writable()
        fs: Nova = self.fs  # type: ignore[assignment]
        timing = fs.timing
        end = offset + len(data)
        if end > self.inode.capacity:
            raise FsError(f"{self.inode.name}: write past capacity")
        with fs.op("write"):
            fs.recorder.lock(("inode", self.inode.id), "W")
            new_pages = []  # (page_idx, new_off, old_off)
            pos = offset
            while pos < end:
                idx = pos // PAGE
                in_page = pos - idx * PAGE
                take = min(PAGE - in_page, end - pos)
                old = self.page_table[idx]
                new = fs.pages.alloc(PAGE)
                fs.recorder.compute(timing.block_alloc_ns * 0.35)  # per-inode free list
                page = bytearray(PAGE)
                if take < PAGE and old:
                    # CoW copy-in of only the unmodified bytes.
                    if in_page:
                        page[:in_page] = fs.device.load(old, in_page)
                    tail = in_page + take
                    if tail < PAGE:
                        page[tail:] = fs.device.load(old + tail, PAGE - tail)
                page[in_page : in_page + take] = data[pos - offset : pos - offset + take]
                fs.device.nt_store(new, bytes(page))
                new_pages.append((idx, new, old))
                pos += take
            # Append the inode log entry and order it before the commit.
            fs.device.nt_store(fs.log_tail, b"\0" * LOG_ENTRY)
            fs.log_tail += LOG_ENTRY
            if fs.log_tail + LOG_ENTRY > fs.volume.layout.journal.end:
                fs.log_tail = fs.volume.layout.journal.start
            fs.device.fence()
            # Commit: atomic pointer swings, then release old pages.
            for idx, new, old in new_pages:
                self.page_table[idx] = new
                fs.device.atomic_store_u64(self._ptr_slot(idx), new)
                fs.device.flush(self._ptr_slot(idx), 8)
            if end > self.inode.size:
                fs.volume.set_size_volatile(self.inode, end)
                fs.volume.persist_size(self.inode)
            fs.device.fence()
            for _, __, old in new_pages:
                if old:
                    fs.pages.free(old, PAGE)
            if self.mapped:
                # CoW under an active mapping: remap + TLB shootdown,
                # the §II-B cost of CoW-style atomic mmap.
                fs.recorder.compute(timing.tlb_shootdown_ns * len(new_pages) * 0.25)
            fs.recorder.unlock(("inode", self.inode.id))
        fs.api.writes += 1
        fs.api.bytes_written += len(data)
        return len(data)

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        fs: Nova = self.fs  # type: ignore[assignment]
        length = max(0, min(length, self.inode.size - offset))
        out = bytearray(length)
        with fs.op("read"):
            pos = offset
            end = offset + length
            while pos < end:
                idx = pos // PAGE
                in_page = pos - idx * PAGE
                take = min(PAGE - in_page, end - pos)
                page_off = self.page_table[idx]
                if page_off:
                    out[pos - offset : pos - offset + take] = fs.device.load(
                        page_off + in_page, take
                    )
                pos += take
        fs.api.reads += 1
        fs.api.bytes_read += length
        return bytes(out)

    def fsync(self) -> None:
        """Data is durable per-op; fsync only fences stragglers."""
        self._check_open()
        fs: Nova = self.fs  # type: ignore[assignment]
        with fs.op("fsync"):
            fs.device.fence()
        fs.api.fsyncs += 1

    def close(self) -> None:
        if not self.closed:
            super().close()
            self.fs.open_handles -= 1


class Nova(FileSystem):
    name = "NOVA"
    kernel_space = True
    consistency = "operation"
    log_fraction = 0.05  # pages come from the data area instead

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        area = self.volume.layout.data_area
        self.pages = LogAllocator(area.start, area.end)
        self.log_tail = self.volume.layout.journal.start

    def create(self, name: str, capacity: int) -> NovaFile:
        npages = -(-capacity // PAGE)
        inode = self.volume.create(
            name, capacity, node_table_len=npages * 8, reserve_extent=False
        )
        self.open_handles += 1
        return NovaFile(self, inode)

    def open(self, name: str, flags: OpenFlags = OpenFlags.RDWR) -> NovaFile:
        if not self.volume.exists(name):
            if flags & OpenFlags.CREAT:
                return self.create(name, 4096)
            raise FileNotFound(name)
        self.open_handles += 1
        handle = NovaFile(self, self.volume.lookup(name))
        handle.read_only = not bool(flags & OpenFlags.RDWR)
        return handle

    @classmethod
    def remount(cls, device, timing=None) -> "Nova":
        """Mount an existing (e.g. post-crash) device image."""
        from repro.fsapi.volume import Volume
        from repro.fsapi.layout import VolumeLayout

        fs = cls.__new__(cls)
        FileSystem.__init__(fs, device=device, timing=timing)
        fs.volume = Volume.mount(device, VolumeLayout.for_device(device.size, log_fraction=cls.log_fraction))
        area = fs.volume.layout.data_area
        fs.pages = LogAllocator(area.start, area.end)
        # Walk page tables so reused pages are not handed out again.
        for inode in fs.volume.files():
            for i in range(inode.capacity // PAGE):
                ptr = device.buffer.load_u64(inode.node_table_off + i * 8)
                if ptr:
                    fs.pages._cursor = max(fs.pages._cursor, ptr + PAGE)
        fs.log_tail = fs.volume.layout.journal.start
        return fs
