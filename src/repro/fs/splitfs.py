"""SplitFS (SOSP'19) in strict mode — an extension comparator.

The paper discusses SplitFS in §II-C and §V: a split architecture where
data operations run in user space against memory-mapped *staging*
blocks and ``fsync`` performs **relink** — swinging the staged blocks
into the target file with metadata-only operations (no data copy).
Two properties the paper criticizes are modelled faithfully:

- **strict mode needs CoW**: a sub-4K write must copy the remainder of
  its block into staging (write amplification for small writes);
- **relink churns mappings**: every relinked block costs a metadata
  journal append, and remapping under an active mmap costs a TLB
  shootdown (the paper's §II-B critique of CoW-style MMIO).

Relink itself moves no data: the functional block transplant uses the
raw buffer (uncounted), matching real SplitFS where the block simply
changes owner. Consistency level is "fsync": staged writes become
visible-durable in the target file atomically at relink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import FileNotFound, FsError
from repro.fsapi.interface import FileHandle, FileSystem, OpenFlags
from repro.fsapi.volume import Inode
from repro.nvm.allocator import LogAllocator

BLOCK = 4096
RELINK_META = 48  # journal bytes per relinked block


@dataclass
class _StagedBlock:
    staging_off: int
    covered: int  # bytes valid from block start (strict CoW fills all)


class SplitfsFile(FileHandle):
    def __init__(self, fs: "Splitfs", inode: Inode) -> None:
        super().__init__(fs, inode.name)
        self.inode = inode
        self.staged: Dict[int, _StagedBlock] = {}
        self._size_dirty = False
        self.mapped = True  # MMIO-style access: relink pays shootdowns

    @property
    def size(self) -> int:
        return self.inode.size

    def _file_off(self, block_idx: int) -> int:
        return self.inode.base + block_idx * BLOCK

    def write(self, offset: int, data: bytes) -> int:
        self._check_writable()
        fs: Splitfs = self.fs  # type: ignore[assignment]
        end = offset + len(data)
        if end > self.inode.capacity:
            raise FsError(f"{self.inode.name}: write past capacity")
        with fs.op("write"):
            fs.recorder.lock(("split-stage", self.inode.id), "W")
            pos = offset
            while pos < end:
                idx = pos // BLOCK
                in_block = pos - idx * BLOCK
                take = min(BLOCK - in_block, end - pos)
                chunk = data[pos - offset : pos - offset + take]
                entry = self.staged.get(idx)
                if entry is None:
                    staging = fs.staging.alloc(BLOCK)
                    fs.recorder.compute(fs.timing.block_alloc_ns)
                    entry = _StagedBlock(staging_off=staging, covered=0)
                    self.staged[idx] = entry
                    if take < BLOCK:
                        # Strict mode: CoW the whole block into staging.
                        old = fs.device.load(self._file_off(idx), BLOCK)
                        fs.device.nt_store(staging, old)
                        entry.covered = BLOCK
                fs.device.nt_store(entry.staging_off + in_block, chunk)
                entry.covered = max(entry.covered, in_block + take)
                pos += take
            fs.device.fence()
            if end > self.inode.size:
                fs.volume.set_size_volatile(self.inode, end)
                self._size_dirty = True
            fs.recorder.unlock(("split-stage", self.inode.id))
        fs.api.writes += 1
        fs.api.bytes_written += len(data)
        return len(data)

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        fs: Splitfs = self.fs  # type: ignore[assignment]
        length = max(0, min(length, self.inode.size - offset))
        out = bytearray(length)
        with fs.op("read"):
            pos = offset
            end = offset + length
            while pos < end:
                idx = pos // BLOCK
                in_block = pos - idx * BLOCK
                take = min(BLOCK - in_block, end - pos)
                entry = self.staged.get(idx)
                if entry is not None and in_block < entry.covered:
                    src = entry.staging_off + in_block
                else:
                    src = self._file_off(idx) + in_block
                out[pos - offset : pos - offset + take] = fs.device.load(src, take)
                pos += take
        fs.api.reads += 1
        fs.api.bytes_read += length
        return bytes(out)

    def fsync(self) -> None:
        """Relink: transplant staged blocks into the file — metadata only."""
        self._check_open()
        fs: Splitfs = self.fs  # type: ignore[assignment]
        with fs.op("fsync"):
            # Relink is a kernel call even though writes were user-space.
            fs.recorder.compute(fs.timing.syscall_ns)
            fs.recorder.lock(("split-stage", self.inode.id), "W")
            for idx in sorted(self.staged):
                entry = self.staged.pop(idx)
                # Block transplant: ownership change, not a data copy.
                image = fs.device.buffer.load(entry.staging_off, BLOCK)
                file_off = self._file_off(idx)
                tail = min(BLOCK, self.inode.capacity - idx * BLOCK)
                fs.device.buffer.store(file_off, bytes(image[:tail]))
                fs.device.buffer.flush(file_off, tail)
                # Metadata journal append per relinked block.
                fs.device.nt_store(fs.meta_cursor(), b"\0" * RELINK_META)
                fs.recorder.compute(fs.timing.block_alloc_ns * 0.3)
                fs.staging.free(entry.staging_off, BLOCK)
                if self.mapped:
                    fs.recorder.compute(fs.timing.tlb_shootdown_ns)
            fs.device.fence()
            if self._size_dirty:
                fs.volume.persist_size(self.inode)
                self._size_dirty = False
            fs.recorder.unlock(("split-stage", self.inode.id))
        fs.api.fsyncs += 1

    def mmap_view(self):
        self._check_open()
        if self.staged:
            raise FsError("raw view incoherent while staged blocks exist")
        return (self.fs.device, self.inode.base, self.inode.capacity)

    def close(self) -> None:
        if not self.closed:
            self.fsync()
            super().close()
            self.fs.open_handles -= 1


class Splitfs(FileSystem):
    name = "SplitFS"
    kernel_space = False  # data path is user-space; relink pays a syscall
    consistency = "fsync"
    log_fraction = 0.40

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        area = self.volume.layout.log_area
        self.staging = LogAllocator(area.start, area.end)
        self._meta_cursor = self.volume.layout.journal.start

    def meta_cursor(self) -> int:
        off = self._meta_cursor
        self._meta_cursor += RELINK_META
        if self._meta_cursor + RELINK_META > self.volume.layout.journal.end:
            self._meta_cursor = self.volume.layout.journal.start
        return off

    def create(self, name: str, capacity: int) -> SplitfsFile:
        inode = self.volume.create(name, capacity)
        self.open_handles += 1
        return SplitfsFile(self, inode)

    def open(self, name: str, flags: OpenFlags = OpenFlags.RDWR) -> SplitfsFile:
        if not self.volume.exists(name):
            if flags & OpenFlags.CREAT:
                return self.create(name, 4096)
            raise FileNotFound(name)
        self.open_handles += 1
        handle = SplitfsFile(self, self.volume.lookup(name))
        handle.read_only = not bool(flags & OpenFlags.RDWR)
        return handle
