"""Page-cache Ext4 with the three journaling modes of Fig 1.

- ``wb`` (writeback): metadata journaled, data written back unordered.
- ``ordered``: data flushed to its home location before the metadata
  commit of the same transaction.
- ``journal``: data itself goes through the journal (written twice).

Without fsync, writes only touch the DRAM page cache — fast, volatile
(which is exactly why Fig 1's unsynced bars are tall and why a crash
loses data). ``fsync`` forces writeback of dirty pages plus a JBD2
commit per the active mode.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import FileNotFound, FsError
from repro.fsapi.interface import FileHandle, FileSystem, OpenFlags
from repro.fsapi.volume import Inode

PAGE = 4096

MODES = ("wb", "ordered", "journal")


class Ext4File(FileHandle):
    def __init__(self, fs: "Ext4", inode: Inode) -> None:
        super().__init__(fs, inode.name)
        self.inode = inode
        self.page_cache: Dict[int, bytearray] = {}
        self.dirty_pages: set = set()
        self._size_dirty = False

    @property
    def size(self) -> int:
        return self.inode.size

    # -- page-cache helpers -------------------------------------------------

    def _page(self, idx: int, populate: bool) -> bytearray:
        page = self.page_cache.get(idx)
        if page is None:
            fs: Ext4 = self.fs  # type: ignore[assignment]
            page = bytearray(PAGE)
            if populate:
                base = self.inode.base + idx * PAGE
                end = min(PAGE, max(0, self.inode.size - idx * PAGE))
                if end > 0:
                    page[:end] = fs.device.load(base, end)
                    fs.recorder.compute(fs.timing.dram_copy_ns(end))
            self.page_cache[idx] = page
        return page

    # -- API ------------------------------------------------------------------

    def write(self, offset: int, data: bytes) -> int:
        self._check_writable()
        fs: Ext4 = self.fs  # type: ignore[assignment]
        with fs.op("write"):
            fs.recorder.lock(("inode", self.inode.id), "W")
            fs.recorder.compute(fs.timing.page_cache_lookup_ns)
            fs.recorder.compute(fs.timing.dram_copy_ns(len(data)))
            pos = offset
            end = offset + len(data)
            while pos < end:
                idx = pos // PAGE
                in_page = pos - idx * PAGE
                take = min(PAGE - in_page, end - pos)
                partial = take < PAGE
                page = self._page(idx, populate=partial)
                page[in_page : in_page + take] = data[pos - offset : pos - offset + take]
                self.dirty_pages.add(idx)
                pos += take
            if end > self.inode.size:
                self.fs.volume.set_size_volatile(self.inode, end)
                self._size_dirty = True
            fs.recorder.unlock(("inode", self.inode.id))
        fs.api.writes += 1
        fs.api.bytes_written += len(data)
        return len(data)

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        fs: Ext4 = self.fs  # type: ignore[assignment]
        length = max(0, min(length, self.inode.size - offset))
        out = bytearray(length)
        with fs.op("read"):
            fs.recorder.lock(("inode", self.inode.id), "R")
            fs.recorder.compute(fs.timing.page_cache_lookup_ns)
            pos = offset
            end = offset + length
            while pos < end:
                idx = pos // PAGE
                in_page = pos - idx * PAGE
                take = min(PAGE - in_page, end - pos)
                cached = self.page_cache.get(idx)
                if cached is not None:
                    out[pos - offset : pos - offset + take] = cached[in_page : in_page + take]
                    fs.recorder.compute(fs.timing.dram_copy_ns(take))
                else:
                    out[pos - offset : pos - offset + take] = fs.device.load(
                        self.inode.base + pos, take
                    )
                pos += take
            fs.recorder.unlock(("inode", self.inode.id))
        fs.api.reads += 1
        fs.api.bytes_read += length
        return bytes(out)

    def fsync(self) -> None:
        self._check_open()
        fs: Ext4 = self.fs  # type: ignore[assignment]
        with fs.op("fsync"):
            fs.recorder.lock(("jbd2",), "W")
            journal = fs.volume.layout.journal.start
            for idx in sorted(self.dirty_pages):
                page = bytes(self.page_cache[idx])
                if fs.mode == "journal":
                    # Data block into the journal first, then checkpointed
                    # to its home location: two full writes.
                    fs.device.nt_store(journal, page)
                fs.device.nt_store(self.inode.base + idx * PAGE, page)
            fs.device.fence()
            self.dirty_pages.clear()
            if self._size_dirty:
                fs.volume.persist_size(self.inode)
                self._size_dirty = False
            # JBD2 transaction commit (metadata, plus ordering semantics;
            # only part of it holds the transaction exclusively).
            fs.recorder.compute(fs.timing.journal_commit_ns)
            fs.device.store(journal, b"\0" * 512)
            fs.device.persist(journal, 512)
            fs.recorder.unlock(("jbd2",))
        fs.api.fsyncs += 1

    def close(self) -> None:
        if not self.closed:
            self.fsync()
            super().close()
            self.fs.open_handles -= 1


class Ext4(FileSystem):
    """Non-DAX Ext4; ``mode`` selects wb / ordered / journal."""

    kernel_space = True
    consistency = "metadata"

    def __init__(self, *args, mode: str = "ordered", **kwargs) -> None:
        if mode not in MODES:
            raise FsError(f"unknown ext4 mode {mode!r}; expected one of {MODES}")
        super().__init__(*args, **kwargs)
        self.mode = mode
        self.name = f"Ext4-{mode}"

    def create(self, name: str, capacity: int) -> Ext4File:
        inode = self.volume.create(name, capacity)
        self.open_handles += 1
        return Ext4File(self, inode)

    def open(self, name: str, flags: OpenFlags = OpenFlags.RDWR) -> Ext4File:
        if not self.volume.exists(name):
            if flags & OpenFlags.CREAT:
                return self.create(name, 4096)
            raise FileNotFound(name)
        self.open_handles += 1
        handle = Ext4File(self, self.volume.lookup(name))
        handle.read_only = not bool(flags & OpenFlags.RDWR)
        return handle
