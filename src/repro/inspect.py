"""Human-readable introspection of simulated state (debugging aids).

All functions return strings; nothing here mutates state. Typical use
in a REPL or a failing test::

    from repro.inspect import dump_tree, dump_metalog, describe_volume
    print(describe_volume(fs.volume))
    print(dump_tree(handle))
    print(dump_metalog(fs.metalog))
"""

from __future__ import annotations

from typing import List

from repro.core import bitmap
from repro.util import fmt_size


def describe_device(device) -> str:
    stats = device.stats
    lines = [
        f"device {device.name}: {fmt_size(device.size)}",
        f"  stores        : {stats.stores:,} ({stats.stored_bytes:,} bytes)",
        f"  loads         : {stats.loads:,} ({stats.loaded_bytes:,} bytes)",
        f"  flushed lines : {stats.flushed_lines:,} ({stats.flush_calls:,} calls)",
        f"  fences        : {stats.fences:,}",
        f"  redundant     : {stats.redundant_flushes:,} flushes, "
        f"{stats.redundant_fences:,} fences",
        f"  dirty ranges  : {len(device.buffer.dirty)}",
        f"  pending ranges: {len(device.buffer.pending_set())}",
    ]
    return "\n".join(lines)


def render_breakdown(rows, total: float, unit: str = "ns", width: int = 40) -> str:
    """Render ``(label, value)`` rows as a bar-chart table.

    Shared by the telemetry exporters (fig13-style layer breakdowns)
    and ad-hoc debugging. Values must be in *unit*; percentages and
    bars are relative to *total* (pass the conserved total so the
    column sums visibly to 100%). Zero rows are kept — a zero line in
    a breakdown is information, not noise.
    """
    label_w = max([len(str(label)) for label, _ in rows] + [5])
    lines = [f"{'layer':<{label_w}}  {unit:>14}  {'%':>6}  "]
    for label, value in rows:
        pct = 100.0 * value / total if total else 0.0
        bar = "#" * int(round(width * value / total)) if total > 0 else ""
        lines.append(f"{label:<{label_w}}  {value:>14,.0f}  {pct:>6.1f}  {bar}")
    lines.append(f"{'total':<{label_w}}  {total:>14,.0f}  {100.0 if total else 0.0:>6.1f}")
    return "\n".join(lines)


def describe_volume(volume) -> str:
    layout = volume.layout
    lines = ["volume layout:"]
    for name in ("superblock", "metalog", "node_tables", "journal", "log_area", "data_area"):
        region = getattr(layout, name)
        lines.append(
            f"  {name:<12} [{region.start:#012x}, {region.end:#012x})  {fmt_size(region.size)}"
        )
    lines.append("files:")
    for inode in volume.files():
        lines.append(
            f"  id={inode.id:<3} {inode.name:<16} base={inode.base:#x} "
            f"size={inode.size:,}/{inode.capacity:,}"
            + (f" ntable={inode.node_table_off:#x}" if inode.node_table_len else "")
        )
    if not volume.files():
        lines.append("  (none)")
    return "\n".join(lines)


def dump_tree(handle, max_nodes: int = 200) -> str:
    """Render an MGSP file's materialized radix nodes, top-down."""
    tree = handle.tree
    stats = handle.shadow.stats
    lines = [
        f"{handle.inode.name}: height={tree.height} "
        f"covered={fmt_size(tree.covered())} gen={tree.gen} "
        f"nodes={len(tree.nodes)}",
        f"  commits: redo={stats.redo_commits} undo={stats.undo_commits} "
        f"coarse={stats.coarse_commits} fine={stats.fine_commits} "
        f"sub-block={stats.sub_block_writes} rmw={stats.rmw_fill_bytes:,}B "
        f"logs={stats.logs_allocated}",
    ]
    shown = 0
    for (level, index) in sorted(tree.nodes, key=lambda k: (-k[0], k[1])):
        node = tree.nodes[(level, index)]
        if not node.word and not node.log_off:
            continue
        if shown >= max_nodes:
            lines.append(f"  ... ({len(tree.nodes) - shown} more)")
            break
        shown += 1
        indent = "  " * (tree.height - level + 1)
        if level == 0:
            bits = bitmap.unpack_leaf(node.word)
            desc = f"mask={bits.mask:#010x} gen={bits.own_gen}"
        else:
            bits = bitmap.unpack_nonleaf(node.word)
            desc = (
                f"v={int(bits.valid)} e={int(bits.existing)} "
                f"sub={bits.sub_gen} own={bits.own_gen}"
            )
        log = f" log={node.log_off:#x}" if node.log_off else ""
        lines.append(
            f"{indent}L{level}#{index} [{fmt_size(node.start)}+{fmt_size(node.size)}] {desc}{log}"
        )
    return "\n".join(lines)


def dump_metalog(metalog) -> str:
    entries = metalog.scan()
    if not entries:
        return "metadata log: empty (all entries retired)"
    lines: List[str] = [f"metadata log: {len(entries)} live entries"]
    for entry in entries:
        kind = "txn-commit" if entry.is_txn_commit else ("txn-member" if entry.is_txn_member else "write")
        lines.append(
            f"  [{entry.index:2d}] {kind:<10} file={entry.file_id} "
            f"len={entry.length} gen={entry.gen} slots={len(entry.slots)}"
        )
        for slot in entry.slots:
            detail = f"mask={slot.leaf_mask:#x}" if slot.is_leaf else f"valid={int(slot.valid)}"
            lines.append(f"        ord={slot.ordinal} {'leaf' if slot.is_leaf else 'node'} {detail}")
    return "\n".join(lines)


def render_timeline(result, width: int = 72) -> str:
    """ASCII Gantt of a replay run (needs run(record_timeline=True)).

    One row per thread; '=' compute, '#' io, '.' lock/channel wait.
    """
    if not result.timeline or result.makespan_ns <= 0:
        return "(no timeline recorded; pass record_timeline=True to run())"
    scale = width / result.makespan_ns
    tids = sorted({tid for tid, *_ in result.timeline})
    rows = {tid: [" "] * width for tid in tids}
    glyph = {"compute": "=", "io": "#", "wait": "."}
    for tid, start, end, kind in result.timeline:
        a = min(width - 1, int(start * scale))
        b = min(width, max(a + 1, int(end * scale)))
        for col in range(a, b):
            rows[tid][col] = glyph.get(kind, "?")
    lines = [f"timeline ({result.makespan_ns / 1e3:.1f} us, '=' cpu '#' io '.' wait)"]
    for tid in tids:
        lines.append(f"t{tid:<3}|" + "".join(rows[tid]) + "|")
    return "\n".join(lines)


def summarize_traces(traces, lock_ns: float = 32.0) -> str:
    """Aggregate a batch of op traces into a cost breakdown."""
    from collections import Counter

    count = Counter()
    total = Counter()
    compute = Counter()
    io = Counter()
    for trace in traces:
        count[trace.name] += 1
        total[trace.name] += trace.duration_ns(lock_ns)
        for seg in trace.segments:
            if seg[0] == "compute":
                compute[trace.name] += seg[1]
            elif seg[0] == "io":
                io[trace.name] += seg[1]
    lines = [f"{'op':<14}{'n':>7}{'total us':>12}{'avg ns':>10}{'cpu %':>8}{'io %':>8}"]
    for name in sorted(total, key=total.get, reverse=True):
        t = total[name]
        lines.append(
            f"{name:<14}{count[name]:>7}{t / 1e3:>12.1f}{t / count[name]:>10.0f}"
            f"{100 * compute[name] / t if t else 0:>8.0f}{100 * io[name] / t if t else 0:>8.0f}"
        )
    return "\n".join(lines)
