"""Black-box bundles: self-contained JSON diagnoses of one failure.

When a failure detector trips — a crashsweep invariant violation, a
``repro.infer`` true bug, an analyzer strict finding, a service-layer
tenant error — it normally prints a verdict and discards the history
that explains it. :func:`capture` re-runs the failing workload
deterministically with a flight recorder and telemetry attached, crashes
it at the reported event index, and packages everything a post-mortem
needs into one JSON dict:

- identity: workload, config, seed, crash policy / persisted-word set;
- the exact ``--at N`` reproducer command;
- the tail of the flight-recorder ring (device events with their
  span/op context, lock traffic, protocol steps);
- the held-lock table and metric snapshot at the crash point;
- a digest of the composed crash image plus the device traffic counters.

Because workloads are seed-deterministic and the flight recorder is
provably non-perturbing, the re-run reproduces the original failure
exactly — the bundle is evidence, not approximation. Everything in the
bundle is virtual-time data; two captures of the same failure are
byte-identical (no wall clocks, no ambient randomness).

``python -m repro.obs postmortem BUNDLE`` consumes these bundles (see
:mod:`repro.obs.postmortem`).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence

from repro.nvm.crash import CrashPlan, CrashPolicy, compose_image

from repro.obs.flight import attach_flight
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import attach_telemetry

BLACKBOX_VERSION = 1

#: word-list cap: bundles stay readable even when a crash point leaves
#: thousands of unfenced words in flight
MAX_WORDS = 512


def _word_list(words: Sequence[int]) -> Dict[str, object]:
    ordered = sorted(int(w) for w in words)
    return {
        "count": len(ordered),
        "words": ordered[:MAX_WORDS],
        "truncated": len(ordered) > MAX_WORDS,
    }


def kept_words(device, policy: Optional[str], seed: int, crash_after: int,
               persist_words: Optional[Sequence[int]] = None) -> List[int]:
    """The persisted-word set a bundle's crash image keeps: an explicit
    surgical set when given, else the policy's deterministic choice."""
    from repro.crashsweep.sweep import _chosen_words, point_seed

    candidates = set(device.unfenced_words())
    if persist_words is not None:
        return sorted(set(int(w) for w in persist_words) & candidates)
    pol = CrashPolicy(policy) if policy is not None else CrashPolicy.DROP_ALL
    return sorted(_chosen_words(device, pol, point_seed(seed, crash_after)))


def capture(
    workload_name: str,
    config_name: str,
    crash_after: int,
    seed: int = 0,
    policy: Optional[CrashPolicy] = None,
    persist_words: Optional[Sequence[int]] = None,
    kind: str = "crashsweep-failure",
    violations: Sequence[str] = (),
    reproducer: Optional[str] = None,
    capacity: int = 256,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Deterministically re-run *workload_name* to the crash point and
    assemble the black-box bundle.

    Either *policy* (a standard crashsweep policy) or *persist_words*
    (a surgical keep-set, e.g. from ``repro.infer``) selects the crash
    image; with neither, DROP_ALL is assumed.
    """
    from repro.crashsweep.sweep import PERSIST_PROBABILITY, point_seed
    from repro.crashsweep.workloads import get_workload

    workload = get_workload(workload_name)
    holder: dict = {}

    def instrument(system) -> None:
        holder["telemetry"] = attach_telemetry(system, registry=MetricsRegistry())
        holder["flight"] = attach_flight(
            system, capacity=capacity, regions=workload.region_map(system)
        )

    outcome = workload.run(config_name, CrashPlan(crash_after), instrument=instrument)
    flight = holder["flight"]
    telemetry = holder["telemetry"]
    device = outcome.fs.device

    candidates = sorted(device.unfenced_words())
    kept = kept_words(
        device,
        policy.value if policy is not None else None,
        seed,
        crash_after,
        persist_words=persist_words,
    )
    if policy is not None and persist_words is None:
        image = bytes(
            compose_image(
                device,
                policy,
                seed=point_seed(seed, crash_after),
                persist_probability=PERSIST_PROBABILITY,
            )
        )
    else:
        image = bytes(device.crash_image(persist_words=kept))
    found = (
        list(workload.check(image, config_name, outcome.oracles))
        if outcome.crashed
        else []
    )
    dropped = sorted(set(candidates) - set(kept))

    policy_value = policy.value if policy is not None else None
    if reproducer is None:
        repro_policy = policy_value or CrashPolicy.DROP_ALL.value
        reproducer = (
            f"python -m repro.crashsweep --workload {workload_name}"
            f" --configs {config_name} --policies {repro_policy}"
            f" --at {crash_after} --seed {seed}"
        )

    bundle: Dict[str, object] = {
        "blackbox_version": BLACKBOX_VERSION,
        "kind": kind,
        "workload": workload_name,
        "config": config_name,
        "seed": seed,
        "policy": policy_value,
        "crash_after": crash_after,
        "crashed": outcome.crashed,
        "fired_kind": outcome.plan.fired_kind if outcome.plan is not None else None,
        "persist_words": (
            sorted(int(w) for w in persist_words) if persist_words is not None else None
        ),
        "kept_words": _word_list(kept),
        "dropped_words": _word_list(dropped),
        "violations": list(violations) or found,
        "violations_reproduced": found,
        "reproducer": reproducer,
        "image_sha256": hashlib.sha256(image).hexdigest(),
        "device": {
            "name": device.name,
            "size": device.size,
            "stats": {k: v for k, v in sorted(vars(device.stats).items())},
            "stats_since_setup": {
                k: v
                for k, v in sorted(vars(device.stats.delta(outcome.stats_base)).items())
            },
        },
        "metrics": telemetry.registry.snapshot(),
        "held_locks": flight.held_locks_snapshot(),
        "flight": flight.snapshot(),
    }
    if extra:
        bundle.update(extra)
    return bundle


def bundle_name(bundle: Dict[str, object]) -> str:
    """Deterministic file name for one bundle."""
    policy = bundle.get("policy") or "surgical"
    return (
        f"blackbox-{bundle['kind']}-{bundle['workload']}-{bundle['config']}"
        f"-{policy}-at{bundle['crash_after']}.json"
    )


def render(bundle: Dict[str, object]) -> str:
    """Byte-deterministic JSON for one bundle."""
    return json.dumps(bundle, indent=2, sort_keys=True) + "\n"


def write_bundle(bundle: Dict[str, object], directory: str,
                 name: Optional[str] = None) -> str:
    """Write one bundle under *directory* (created if needed); returns
    the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name or bundle_name(bundle))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render(bundle))
    return path


def load_bundle(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def service_error_bundle(service, shard: int, tenant: str, request,
                         exc: BaseException) -> Dict[str, object]:
    """Bundle one service-layer tenant error in place.

    Unlike :func:`capture` this does not re-run anything — the service
    is mid-dispatch when the error fires, so the live shard state (its
    flight-recorder tail, held locks, device counters, registry
    snapshot) *is* the evidence."""
    fs = service.shards[shard]
    device = fs.device
    flight = None
    flights = getattr(service, "flights", None)
    if flights and shard < len(flights):
        flight = flights[shard]
    session = service.sessions.get(tenant)
    bundle: Dict[str, object] = {
        "blackbox_version": BLACKBOX_VERSION,
        "kind": "service-error",
        "shard": shard,
        "shards": service.config.shards,
        "tenant": tenant,
        "tenant_thread": session.thread if session is not None else None,
        "request": {
            "kind": request.kind,
            "offset": request.offset,
            "nbytes": request.nbytes,
            "arrival_ns": request.arrival_ns,
        },
        "error": {"type": type(exc).__name__, "message": str(exc)},
        "device": {
            "name": device.name,
            "size": device.size,
            "stats": {k: v for k, v in sorted(vars(device.stats).items())},
        },
        "metrics": service.registry.snapshot(),
        "held_locks": flight.held_locks_snapshot() if flight is not None else [],
        "flight": flight.snapshot() if flight is not None else None,
        "reproducer": (
            f"python -m repro.service --tenants {len(service.sessions)}"
            f" --shards {service.config.shards}"
        ),
    }
    return bundle


def capture_failure(failure, capacity: int = 256,
                    kind: str = "crashsweep-failure") -> Dict[str, object]:
    """Bundle one :class:`repro.crashsweep.sweep.Failure`."""
    return capture(
        failure.workload,
        failure.config_name,
        failure.crash_after,
        seed=failure.seed,
        policy=failure.policy,
        kind=kind,
        violations=failure.violations,
        reproducer=failure.reproducer,
        capacity=capacity,
        extra={
            "minimized_words": (
                sorted(failure.minimized_words)
                if failure.minimized_words is not None
                else None
            )
        },
    )
