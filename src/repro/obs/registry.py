"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Instruments are keyed by ``(name, labels)`` — the same identity model as
Prometheus — and created lazily on first use::

    reg = MetricsRegistry()
    reg.counter("mgl_acquires_total", mode="w").inc()
    reg.histogram("span_ns", span="write.data").observe(412.0)
    reg.gauge("log_area_bytes").set(1 << 20)

Everything here is plain arithmetic on the *virtual* clock's numbers —
no wall time, no ambient randomness — so two identical simulation runs
produce byte-identical :meth:`MetricsRegistry.snapshot` output (the
determinism contract the telemetry CLI and CI lean on).

:func:`percentile` is the shared nearest-rank percentile over raw
samples (previously inlined in ``repro.workloads.fio``); histograms
answer the same question from fixed buckets when keeping every sample
would be too expensive.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (e.g. 50, 99) over raw samples.

    The single source of the latency-percentile math used by
    :class:`repro.workloads.fio.FioResult` and the workload CLI.
    Returns 0.0 for an empty sample set.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(pct / 100 * (len(ordered) - 1)))))
    return ordered[rank]


#: default histogram bounds for virtual-nanosecond durations: powers of
#: two from 16 ns to ~1 s (observations above the last bound land in the
#: overflow bucket and report as the observed maximum).
DEFAULT_NS_BUCKETS: Tuple[float, ...] = tuple(float(16 << i) for i in range(27))


class Counter:
    """A monotonically increasing count (events, bytes, calls)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, live bytes, utilization)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max sidecars.

    ``bounds`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last bound. Percentiles are answered
    by nearest rank over the cumulative bucket counts and report the
    containing bucket's upper bound (clamped to the observed max), so
    they are deterministic and never interpolate invented values.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        bounds: Sequence[float] = DEFAULT_NS_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Bucketed nearest-rank percentile (upper bound of the bucket
        holding the rank-th observation, clamped to the observed max)."""
        if not self.count:
            return 0.0
        rank = min(self.count - 1, max(0, int(round(pct / 100 * (self.count - 1)))))
        seen = 0
        for idx, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen > rank:
                bound = self.bounds[idx] if idx < len(self.bounds) else self.max
                return min(bound, self.max)
        return self.max  # pragma: no cover - rank < count guarantees a hit

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """(upper bound, count) for populated buckets, overflow last."""
        out: List[Tuple[float, int]] = []
        for idx, bucket_count in enumerate(self.counts):
            if bucket_count:
                bound = self.bounds[idx] if idx < len(self.bounds) else float("inf")
                out.append((bound, bucket_count))
        return out


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    """``{k="v",...}`` in sorted-key order; empty string for no labels."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class MetricsRegistry:
    """Lazily-created instruments keyed by ``(name, labels)``.

    One registry backs one :class:`~repro.obs.spans.Telemetry`; the
    get-or-create accessors are the only write path, so instrument
    identity is stable and snapshots are deterministic.
    """

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, Counter] = {}
        self._gauges: Dict[LabelKey, Gauge] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}

    # -- get-or-create accessors ------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                name, key[1], bounds=buckets if buckets is not None else DEFAULT_NS_BUCKETS
            )
        return inst

    # -- iteration / export ------------------------------------------------

    def counters(self) -> Iterable[Counter]:
        return (self._counters[k] for k in sorted(self._counters))

    def gauges(self) -> Iterable[Gauge]:
        return (self._gauges[k] for k in sorted(self._gauges))

    def histograms(self) -> Iterable[Histogram]:
        return (self._histograms[k] for k in sorted(self._histograms))

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic nested dict of every instrument's state."""
        out: Dict[str, Dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for counter in self.counters():
            out["counters"][counter.name + render_labels(counter.labels)] = counter.value
        for gauge in self.gauges():
            out["gauges"][gauge.name + render_labels(gauge.labels)] = gauge.value
        for hist in self.histograms():
            out["histograms"][hist.name + render_labels(hist.labels)] = {
                "count": hist.count,
                "sum": hist.sum,
                "min": hist.min if hist.count else 0.0,
                "max": hist.max if hist.count else 0.0,
                "p50": hist.percentile(50),
                "p99": hist.percentile(99),
            }
        return out
