"""Attribution views over telemetry: fig13-style layer breakdowns.

Folds the raw span aggregates from :class:`repro.obs.spans.Telemetry`
into the paper's Figure-13 vocabulary — data write, log append,
checkpoint, metadata, lock, plus the syscall/mmio/txn/recovery layers
our reproduction adds — and produces:

- :func:`time_breakdown` — per-layer virtual nanoseconds whose values
  sum to the total elapsed virtual time **exactly** (the residual is
  reported as ``(unattributed)``);
- :func:`write_breakdown` — per-layer device bytes whose values sum to
  ``DeviceStats.stored_bytes`` exactly (byte meters are integers, so
  this is true equality, not within-rounding);
- :func:`lock_contention` — top-N lock keys by simulated wait time,
  from the replay engine's blocked-acquire reports.

Layer names, ordering, and the residual rule are the contract the CLI,
the bench breakdown sidecars, and the conservation tests share.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.obs.spans import Telemetry

#: span-name prefix -> fig13 layer, first match wins (order matters:
#: more specific prefixes come first).
LAYER_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("mgl.", "lock"),
    ("write.data", "data"),
    ("write.log", "log"),
    ("write.plan", "plan"),
    ("write.metadata", "metadata"),
    ("metalog.", "metadata"),
    ("checkpoint.", "checkpoint"),
    ("flusher.", "checkpoint"),
    ("txn.", "txn"),
    ("recovery.", "recovery"),
    ("mmio.", "mmio"),
    ("op.txn", "txn"),
    ("op.read", "read"),
    ("read.", "read"),
    ("op.checkpoint", "checkpoint"),
    ("op.close", "checkpoint"),
    ("op.", "syscall"),
)

#: canonical display order for layers (unknown layers sort after these,
#: alphabetically; the residual always comes last).
LAYER_ORDER: Tuple[str, ...] = (
    "data",
    "log",
    "checkpoint",
    "metadata",
    "lock",
    "plan",
    "txn",
    "mmio",
    "read",
    "syscall",
    "recovery",
)

UNATTRIBUTED = "(unattributed)"


def layer_of(span_name: str) -> str:
    """Map a span name to its fig13 layer (``other`` if unmatched)."""
    for prefix, layer in LAYER_PREFIXES:
        if span_name.startswith(prefix):
            return layer
    return "other"


def _sort_layers(breakdown: Dict[str, float]) -> List[Tuple[str, float]]:
    rank = {name: idx for idx, name in enumerate(LAYER_ORDER)}
    tail = len(LAYER_ORDER)

    def key(item):
        name = item[0]
        if name == UNATTRIBUTED:
            return (tail + 1, name)
        return (rank.get(name, tail), name)

    return sorted(breakdown.items(), key=key)


def time_breakdown(tel: Telemetry) -> List[Tuple[str, float]]:
    """Per-layer virtual-ns, summing exactly to ``tel.total_ns()``.

    Span *self* time (inclusive minus nested spans) goes to the span's
    layer; virtual time outside any span — workload think time, setup,
    costs charged between spans — lands in ``(unattributed)``. The
    residual is computed as ``total - attributed`` so the sum over the
    returned values reconstructs the total by construction.
    """
    per_layer: Dict[str, float] = {}
    for name, stats in tel.spans.items():
        layer = layer_of(name)
        per_layer[layer] = per_layer.get(layer, 0.0) + stats.self_ns
    residual = tel.total_ns() - tel.attributed_ns()
    if residual or not per_layer:
        per_layer[UNATTRIBUTED] = residual
    return _sort_layers(per_layer)


def write_breakdown(tel: Telemetry) -> List[Tuple[str, int]]:
    """Per-layer device bytes, summing exactly to ``tel.total_bytes()``.

    Bytes are attributed by which span was innermost when the device
    counted them (span self bytes); bytes stored outside any span fall
    in ``(unattributed)``. Integer meters make the conservation exact.
    """
    per_layer: Dict[str, int] = {}
    for name, stats in tel.spans.items():
        layer = layer_of(name)
        per_layer[layer] = per_layer.get(layer, 0) + stats.self_bytes
    residual = tel.total_bytes() - tel.attributed_bytes()
    if residual or not per_layer:
        per_layer[UNATTRIBUTED] = residual
    return _sort_layers(per_layer)  # type: ignore[arg-type]


def lock_contention(tel: Telemetry, top: int = 10) -> List[Tuple[str, int, float]]:
    """Top-*top* lock keys by total simulated wait time.

    Returns ``(key, blocked_acquires, total_wait_ns)`` rows, sorted by
    wait time descending then key (for deterministic output on ties).
    """
    rows = [
        (_render_key(key), int(entry[0]), float(entry[1]))
        for key, entry in tel.lock_waits.items()
    ]
    rows.sort(key=lambda r: (-r[2], r[0]))
    return rows[:top]


def _render_key(key: Hashable) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def span_table(tel: Telemetry) -> List[Tuple[str, int, float, float, int]]:
    """Per-span rows ``(name, count, self_ns, total_ns, self_bytes)``,
    sorted by self time descending then name — the ``top``-style view."""
    rows = [
        (name, s.count, s.self_ns, s.total_ns, s.self_bytes)
        for name, s in tel.spans.items()
    ]
    rows.sort(key=lambda r: (-r[2], r[0]))
    return rows
