"""The black-box flight recorder: a bounded ring of recent events.

Always-on observability for the failure detectors: a
:class:`FlightRecorder` keeps the *tail* of the run's history — device
persistence events (store/flush/fence), span open/close, lock
acquire/release, op boundaries, and explicit protocol-step markers —
in a fixed-capacity ring stamped with the virtual clock. When a check
fails, the ring is exactly the context a human needs: what the system
was doing in the moments before the crash point.

Design constraints, in order:

- **Determinism.** Timestamps come from the bound cost recorders'
  ``clock_ns`` (virtual time) only; recording reads state but never
  mutates clocks, device counters, or crash images. Two identical runs
  produce byte-identical ring snapshots, and a run with the recorder
  attached is byte-identical (crash images, ``DeviceStats``, verdicts)
  to the same run without it — the determinism gate in
  ``tests/test_obs_flight.py`` asserts both.
- **Index parity.** Device events consume indices exactly like
  :class:`repro.infer.events.EventCollector` and the crashsweep census:
  one index per store / clwb call / fence (per element inside the
  vectorized entry points), reset to zero by ``on_drain``. A ring
  entry's index therefore *is* a ``--at N`` crash index.
- **Null-object detachment.** The module-level :data:`NULL_FLIGHT`
  (``enabled = False``) is the detached recorder; hot paths that keep a
  ``flight`` reference pay one attribute check when recording is off,
  mirroring :data:`repro.obs.spans.NULL_SINK`.

Ring entries are plain tuples, kind-tagged in slot 0:

========== ===========================================================
kind        payload
========== ===========================================================
store       ``(index, t_ns, offset, length, store_kind, op, spans)``
flush       ``(index, t_ns, offset, length, nlines, op, spans)``
fence       ``(index, t_ns, op, spans)``
span-open   ``(t_ns, name)``
span-close  ``(t_ns, name, dur_ns)``
lock        ``(t_ns, key, mode)``
unlock      ``(t_ns, key)``
op-begin    ``(t_ns, name, op_seq)``
op-end      ``(t_ns, name)``
mark        ``(t_ns, text)``
========== ===========================================================

``spans`` is the tuple of currently-open span names (innermost last)
at the moment of the device event — the "protocol step" forensics the
postmortem narrator leans on.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nvm.device import add_tap


class NullFlightRecorder:
    """Detached recorder: one attribute check, nothing recorded."""

    enabled = False

    def events_list(self) -> List[tuple]:
        return []

    def mark(self, text: str) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"capacity": 0, "recorded": 0, "dropped": 0, "events": []}

    def held_locks_snapshot(self) -> List[List[str]]:
        return []

    def on_store(self, offset: int, length: int, kind: str) -> None:
        pass

    def on_flush(self, offset: int, length: int, nlines: int) -> None:
        pass

    def on_fence(self) -> None:
        pass

    def on_drain(self) -> None:
        pass

    def on_op_begin(self, name: str) -> None:
        pass

    def on_op_end(self, name: str) -> None:
        pass

    def on_lock(self, key, mode: str = "X") -> None:
        pass

    def on_unlock(self, key) -> None:
        pass

    def on_span_open(self, name: str, t_ns: float) -> None:
        pass

    def on_span_close(self, name: str, t_ns: float, dur_ns: float) -> None:
        pass


#: the shared detached recorder (``Telemetry.flight`` stays ``None``
#: instead, but code handed "a flight recorder" can default to this).
NULL_FLIGHT = NullFlightRecorder()


def _render_key(key) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


class FlightRecorder:
    """Bounded, virtual-time-stamped event ring with crashsweep-parity
    device-event indices.

    ``capacity=0`` means unbounded (used by the postmortem replays that
    need the whole stream); any positive capacity bounds memory and
    keeps only the tail, counting evictions in :attr:`dropped`.
    """

    enabled = True

    def __init__(self, capacity: int = 256, regions=None) -> None:
        self.capacity = capacity
        self.regions = regions
        self._ring = deque() if capacity == 0 else deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0
        #: crashsweep-parity device-event index (see module docstring)
        self.event_index = 0
        self._clocks: Tuple[object, ...] = ()
        #: rendered lock key -> mode, in acquisition order
        self.held_locks: Dict[str, str] = {}
        self._span_stack: List[str] = []
        self.op: Optional[str] = None
        self.op_seq = -1

    # -- binding / clock ----------------------------------------------------

    def bind(self, clocks: Sequence[object]) -> None:
        """Set the virtual-time source: recorders exposing ``clock_ns``."""
        self._clocks = tuple(clocks)

    def now(self) -> float:
        return sum(clock.clock_ns for clock in self._clocks)

    # -- ring ---------------------------------------------------------------

    def _append(self, entry: tuple) -> None:
        ring = self._ring
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(entry)
        self.recorded += 1

    def events_list(self) -> List[tuple]:
        return list(self._ring)

    # -- device.analysis_tap (index parity with EventCollector) -------------

    def _next_index(self) -> int:
        idx = self.event_index
        self.event_index += 1
        return idx

    def on_store(self, offset: int, length: int, kind: str) -> None:
        self._append(
            ("store", self._next_index(), self.now(), offset, length, kind,
             self.op, tuple(self._span_stack))
        )

    def on_flush(self, offset: int, length: int, nlines: int) -> None:
        self._append(
            ("flush", self._next_index(), self.now(), offset, length, nlines,
             self.op, tuple(self._span_stack))
        )

    def on_fence(self) -> None:
        self._append(
            ("fence", self._next_index(), self.now(), self.op, tuple(self._span_stack))
        )

    def on_drain(self) -> None:
        """Setup boundary: pre-history is discarded and indices restart,
        exactly like the collector and the census baseline."""
        self._ring.clear()
        self.dropped = 0
        self.recorded = 0
        self.event_index = 0

    # -- recorder-wrapper hooks (ops + locks) -------------------------------

    def on_op_begin(self, name: str) -> None:
        self.op_seq += 1
        self.op = name
        self._append(("op-begin", self.now(), name, self.op_seq))

    def on_op_end(self, name: str) -> None:
        self._append(("op-end", self.now(), name))
        self.op = None

    def on_lock(self, key, mode) -> None:
        rendered = _render_key(key)
        self.held_locks[rendered] = str(mode)
        self._append(("lock", self.now(), rendered, str(mode)))

    def on_unlock(self, key) -> None:
        rendered = _render_key(key)
        self.held_locks.pop(rendered, None)
        self._append(("unlock", self.now(), rendered))

    # -- telemetry span hooks -----------------------------------------------

    def on_span_open(self, name: str, t_ns: float) -> None:
        self._span_stack.append(name)
        self._append(("span-open", t_ns, name))

    def on_span_close(self, name: str, t_ns: float, dur_ns: float) -> None:
        # Self-healing parity with Telemetry.span_end: frames abandoned
        # by an exception unwind never see a close, so pop through them.
        stack = self._span_stack
        while stack:
            if stack.pop() == name:
                break
        self._append(("span-close", t_ns, name, dur_ns))

    # -- protocol-step markers ----------------------------------------------

    def mark(self, text: str) -> None:
        """Record an explicit protocol-step marker."""
        self._append(("mark", self.now(), text))

    # -- export -------------------------------------------------------------

    def held_locks_snapshot(self) -> List[List[str]]:
        return [[key, mode] for key, mode in self.held_locks.items()]

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view of the ring (tuples become lists)."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": [list(entry) for entry in self._ring],
        }


class FlightRecorderWrapper:
    """A conforming ``Recorder`` that feeds op boundaries and lock
    events to the flight recorder; everything else forwards. Mirrors
    :class:`repro.analysis.analyzer.AnalysisRecorder` so the two can
    stack in either order."""

    def __init__(self, inner, flight: FlightRecorder) -> None:
        self.inner = inner
        self.flight = flight

    @property
    def timing(self):
        return self.inner.timing

    @property
    def enabled(self) -> bool:
        return self.inner.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.inner.enabled = value

    @property
    def clock_ns(self) -> float:
        return self.inner.clock_ns

    # -- op lifecycle ------------------------------------------------------

    def begin_op(self, name: str) -> None:
        self.inner.begin_op(name)
        self.flight.on_op_begin(name)

    def end_op(self):
        trace = self.inner.end_op()
        self.flight.on_op_end(trace.name)
        return trace

    def take_completed(self):
        return self.inner.take_completed()

    # -- explicit costs ----------------------------------------------------

    def compute(self, ns: float) -> None:
        self.inner.compute(ns)

    def lock(self, key, mode) -> None:
        self.inner.lock(key, mode)
        self.flight.on_lock(key, mode)

    def unlock(self, key) -> None:
        self.inner.unlock(key)
        self.flight.on_unlock(key)

    # -- device tracer interface -------------------------------------------

    def io_write(self, nbytes: int) -> None:
        self.inner.io_write(nbytes)

    def io_cached(self, nbytes: int) -> None:
        self.inner.io_cached(nbytes)

    def io_read(self, nbytes: int) -> None:
        self.inner.io_read(nbytes)

    def io_flush(self, nlines: int) -> None:
        self.inner.io_flush(nlines)

    def io_fence(self) -> None:
        self.inner.io_fence()


def attach_flight(system, capacity: int = 256, telemetry=None, regions=None) -> FlightRecorder:
    """Attach a flight recorder to a workload system (a mounted file
    system or a crashsweep ``RawSystem``).

    Composes with any observer already on ``device.analysis_tap`` via
    the fan-out, wraps the foreground recorder for op/lock events, and
    — when telemetry is live (attach it first) — hooks span open/close
    through ``Telemetry.flight``.
    """
    flight = FlightRecorder(capacity=capacity, regions=regions)
    clocks = [system.recorder]
    bg = getattr(system, "bg_recorder", None)
    if bg is not None:
        clocks.append(bg)
    flight.bind(clocks)
    add_tap(system.device, flight)
    system.recorder = FlightRecorderWrapper(system.recorder, flight)
    tel = telemetry if telemetry is not None else getattr(system, "obs", None)
    if tel is not None and getattr(tel, "enabled", False):
        tel.flight = flight
    return flight
