"""Run deterministic workloads with telemetry attached.

Mirrors :mod:`repro.analysis.harness`: resolve a crash-sweep workload
and config by the same aliases (``fio`` → ``fio-randwrite``,
``mgsp-sync`` → ``sync``), attach :func:`~repro.obs.spans.attach_telemetry`
through the workload's ``instrument`` hook (before setup, so the whole
stream is measured), replay to completion, and hand back an
:class:`ObsRun` bundling the telemetry with the run's totals.

The workloads are seed-deterministic and the telemetry meters are the
virtual clock and device counters, so two calls with the same arguments
produce identical exports — the property ``python -m repro.obs`` and
the CI job assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Telemetry, attach_telemetry

# Shared CLI vocabulary with the analysis/crashsweep tools.
from repro.analysis.harness import resolve_config, resolve_workload  # noqa: F401


@dataclass
class ObsRun:
    """One telemetered workload replay."""

    workload: str
    config_name: str
    telemetry: Telemetry
    outcome: object  # crashsweep RunOutcome (fs still mounted)
    flight: object = None  # FlightRecorder when requested, else None

    @property
    def fs(self):
        return self.outcome.fs


def run_workload(
    workload: str,
    config: str,
    registry: "MetricsRegistry | None" = None,
    flight_capacity: "int | None" = None,
) -> ObsRun:
    """Replay one crash-sweep workload to completion under telemetry.

    The sink attaches before :meth:`SweepWorkload.setup`, so setup
    traffic (file creation, initial population) is part of the measured
    stream and the byte meter's baseline is the fresh device — making
    ``telemetry.total_bytes()`` equal ``DeviceStats.stored_bytes``.
    """
    from repro.crashsweep.workloads import get_workload

    wname = resolve_workload(workload)
    cname = resolve_config(config)
    wl = get_workload(wname)
    holder: dict = {}

    def instrument(fs) -> None:
        holder["telemetry"] = attach_telemetry(fs, registry=registry)
        if flight_capacity is not None:
            from repro.obs.flight import attach_flight

            holder["flight"] = attach_flight(
                fs, capacity=flight_capacity, regions=wl.region_map(fs)
            )

    outcome = wl.run(cname, instrument=instrument)
    return ObsRun(
        workload=wname,
        config_name=cname,
        telemetry=holder["telemetry"],
        outcome=outcome,
        flight=holder.get("flight"),
    )
