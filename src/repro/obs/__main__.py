"""CLI: replay a workload with telemetry and export the results.

Examples::

    python -m repro.obs --workload fio --config mgsp-sync
    python -m repro.obs --workload txn --config mgsp-async --format json
    python -m repro.obs --workload fio --config mgsp-sync \\
        --format prometheus --out metrics.prom
    python -m repro.obs --workload ycsb --format perfetto --out trace.json
    python -m repro.obs postmortem blackbox-…-at4.json

Formats: ``report`` (default; the human fig13-style breakdown),
``json`` (deterministic snapshot — identical runs diff empty),
``prometheus`` (text exposition format), and ``perfetto``
(Chrome trace-event JSON — load the file at https://ui.perfetto.dev).

The ``postmortem`` subcommand correlates a black-box bundle from
:mod:`repro.obs.blackbox` with a deterministic replay and narrates the
failure: which words were non-durable, which protocol steps wrote them,
and which fence would have saved them.

Exit status: 0 on success; 2 when the conservation self-check fails
(per-layer sums not equal to the run totals — an instrumentation bug,
never expected in CI); postmortem exits 3 when the bundle's failure
does not reproduce.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.obs import attribution, exporters


def _workload_registry() -> str:
    """The full crash-sweep registry (fixtures included) plus aliases —
    the vocabulary this CLI accepts for ``--workload``."""
    from repro.analysis.harness import WORKLOAD_ALIASES
    from repro.crashsweep.workloads import WORKLOADS

    names = sorted(WORKLOADS)
    aliases = ", ".join(f"{k}->{v}" for k, v in sorted(WORKLOAD_ALIASES.items()))
    return f"{', '.join(names)} (aliases: {aliases})"


def _conservation_ok(tel) -> bool:
    time_rows = attribution.time_breakdown(tel)
    byte_rows = attribution.write_breakdown(tel)
    ns_sum = sum(v for _, v in time_rows)
    byte_sum = sum(v for _, v in byte_rows)
    ns_ok = abs(ns_sum - tel.total_ns()) <= 1e-6 * max(1.0, tel.total_ns())
    bytes_ok = byte_sum == tel.total_bytes()
    device_ok = tel.total_bytes() == tel.stored_bytes()
    return ns_ok and bytes_ok and device_ok


def _postmortem_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs postmortem",
        description="narrate a black-box bundle: non-durable words, the "
        "spans/protocol steps that wrote them, the fence that would have "
        "saved them",
    )
    parser.add_argument("bundle", help="path to a blackbox-*.json bundle")
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument("--out", help="write output to this file instead of stdout")
    args = parser.parse_args(argv)

    from repro.obs import blackbox, postmortem

    try:
        bundle = blackbox.load_bundle(args.bundle)
    except (OSError, ValueError) as exc:
        print(f"postmortem: cannot load {args.bundle}: {exc}", file=sys.stderr)
        return 2

    report = postmortem.analyze(bundle)
    if args.json:
        text = json.dumps(report, sort_keys=True, indent=2) + "\n"
    else:
        text = postmortem.render(report)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)

    if not report["reproduced"]:
        print(
            "postmortem: bundle's failure did NOT reproduce on replay",
            file=sys.stderr,
        )
        return 3
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "postmortem":
        return _postmortem_main(list(argv[1:]))

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="telemetered workload replay: per-layer virtual-time "
        "and write-amplification breakdowns (see also the `postmortem "
        "BUNDLE` subcommand)",
    )
    parser.add_argument(
        "--workload",
        required=True,
        help="crash-sweep workload name or alias: " + _workload_registry(),
    )
    parser.add_argument(
        "--config",
        default="mgsp-sync",
        help="config name or alias (mgsp-sync, mgsp-async, sync, async)",
    )
    parser.add_argument(
        "--format",
        choices=("report", "json", "prometheus", "perfetto"),
        default="report",
        help="output format (default: report)",
    )
    parser.add_argument("--out", help="write output to this file instead of stdout")
    parser.add_argument(
        "--top", type=int, default=10, help="rows in the hottest-spans/lock tables"
    )
    args = parser.parse_args(argv)

    from repro.obs.harness import run_workload

    # perfetto needs the complete span stream, not just the bounded tail
    flight_capacity = 0 if args.format == "perfetto" else None
    try:
        run = run_workload(
            args.workload, args.config, flight_capacity=flight_capacity
        )
    except ValueError as exc:
        parser.error(f"{exc}; valid workloads: {_workload_registry()}")
    tel = run.telemetry

    if args.format == "json":
        text = exporters.to_json(tel) + "\n"
    elif args.format == "prometheus":
        text = exporters.to_prometheus(tel)
    elif args.format == "perfetto":
        from repro.obs import perfetto

        doc = perfetto.from_flight(
            run.flight, workload=run.workload, config=run.config_name
        )
        perfetto.validate(doc)
        text = perfetto.render(doc)
    else:
        header = (
            f"obs: workload={run.workload} config={run.config_name} "
            f"elapsed={tel.total_ns() / 1e6:.3f} ms "
            f"stored={tel.total_bytes():,} bytes\n\n"
        )
        text = header + exporters.to_report(tel, top=args.top) + "\n"

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)

    if not _conservation_ok(tel):
        print("obs: CONSERVATION FAILURE: layer sums != run totals", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
