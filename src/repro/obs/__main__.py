"""CLI: replay a workload with telemetry and export the results.

Examples::

    python -m repro.obs --workload fio --config mgsp-sync
    python -m repro.obs --workload txn --config mgsp-async --format json
    python -m repro.obs --workload fio --config mgsp-sync \\
        --format prometheus --out metrics.prom

Formats: ``report`` (default; the human fig13-style breakdown),
``json`` (deterministic snapshot — identical runs diff empty), and
``prometheus`` (text exposition format).

Exit status: 0 on success; 2 when the conservation self-check fails
(per-layer sums not equal to the run totals — an instrumentation bug,
never expected in CI).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.obs import attribution, exporters
from repro.obs.harness import run_workload


def _conservation_ok(tel) -> bool:
    time_rows = attribution.time_breakdown(tel)
    byte_rows = attribution.write_breakdown(tel)
    ns_sum = sum(v for _, v in time_rows)
    byte_sum = sum(v for _, v in byte_rows)
    ns_ok = abs(ns_sum - tel.total_ns()) <= 1e-6 * max(1.0, tel.total_ns())
    bytes_ok = byte_sum == tel.total_bytes()
    device_ok = tel.total_bytes() == tel.stored_bytes()
    return ns_ok and bytes_ok and device_ok


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="telemetered workload replay: per-layer virtual-time "
        "and write-amplification breakdowns",
    )
    parser.add_argument(
        "--workload",
        required=True,
        help="crash-sweep workload name or alias (fio, txn, ycsb, fio-write, ...)",
    )
    parser.add_argument(
        "--config",
        default="mgsp-sync",
        help="config name or alias (mgsp-sync, mgsp-async, sync, async)",
    )
    parser.add_argument(
        "--format",
        choices=("report", "json", "prometheus"),
        default="report",
        help="output format (default: report)",
    )
    parser.add_argument("--out", help="write output to this file instead of stdout")
    parser.add_argument(
        "--top", type=int, default=10, help="rows in the hottest-spans/lock tables"
    )
    args = parser.parse_args(argv)

    run = run_workload(args.workload, args.config)
    tel = run.telemetry

    if args.format == "json":
        text = exporters.to_json(tel) + "\n"
    elif args.format == "prometheus":
        text = exporters.to_prometheus(tel)
    else:
        header = (
            f"obs: workload={run.workload} config={run.config_name} "
            f"elapsed={tel.total_ns() / 1e6:.3f} ms "
            f"stored={tel.total_bytes():,} bytes\n\n"
        )
        text = header + exporters.to_report(tel, top=args.top) + "\n"

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)

    if not _conservation_ok(tel):
        print("obs: CONSERVATION FAILURE: layer sums != run totals", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
