"""repro.obs: unified telemetry — spans, metrics, attribution, exporters.

The measurement substrate for the reproduction: a metrics registry
(:mod:`repro.obs.registry`), virtual-time spans with per-layer
attribution (:mod:`repro.obs.spans`, :mod:`repro.obs.attribution`),
and exporters (:mod:`repro.obs.exporters`). Everything runs on the
simulated clock only, so telemetry is deterministic; with the default
:data:`~repro.obs.spans.NULL_SINK` attached, instrumented hot paths
cost one attribute check.

Typical use::

    from repro.obs import MetricsRegistry, attach_telemetry, to_report

    tel = attach_telemetry(fs)       # before opening handles
    ... run the workload ...
    print(to_report(tel))

or, end to end, ``python -m repro.obs --workload fio --config mgsp-sync``.

This package deliberately imports none of the protocol layers (core,
fs, crashsweep) at import time — ``repro.fsapi.interface`` imports
:data:`NULL_SINK` from here, so the dependency must stay one-way. The
workload harness lives in :mod:`repro.obs.harness` (imported lazily by
the CLI and tests).
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.spans import NULL_SINK, NullSink, Telemetry, attach_telemetry
from repro.obs.flight import (
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    attach_flight,
)
from repro.obs.attribution import (
    lock_contention,
    time_breakdown,
    write_breakdown,
)
from repro.obs.exporters import json_snapshot, to_json, to_prometheus, to_report

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "NULL_SINK",
    "NullSink",
    "Telemetry",
    "attach_telemetry",
    "NULL_FLIGHT",
    "FlightRecorder",
    "NullFlightRecorder",
    "attach_flight",
    "time_breakdown",
    "write_breakdown",
    "lock_contention",
    "json_snapshot",
    "to_json",
    "to_prometheus",
    "to_report",
]
