"""Telemetry exporters: JSON snapshot, Prometheus text, human report.

Three views over one :class:`~repro.obs.spans.Telemetry`:

- :func:`to_json` / :func:`json_snapshot` — a deterministic nested
  dict (span table, layer breakdowns, lock contention, full metrics
  registry) suitable for sidecar files and run-to-run diffing;
- :func:`to_prometheus` — Prometheus text exposition format
  (``# TYPE`` headers, ``_bucket``/``_sum``/``_count`` histogram
  series with cumulative ``le`` labels);
- :func:`to_report` — the human ``top``-style report, reusing the
  table formatting from :mod:`repro.inspect`.

All output is keyed and ordered deterministically: two identical
simulated runs render byte-identical exports (the CI contract).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs import attribution
from repro.obs.spans import Telemetry


def json_snapshot(tel: Telemetry) -> Dict[str, object]:
    """The full telemetry state as plain deterministic data."""
    spans = {
        name: {
            "count": s.count,
            "self_ns": s.self_ns,
            "total_ns": s.total_ns,
            "self_bytes": s.self_bytes,
            "total_bytes": s.total_bytes,
        }
        for name, s in sorted(tel.spans.items())
    }
    return {
        "totals": {
            "elapsed_ns": tel.total_ns(),
            "stored_bytes": tel.total_bytes(),
        },
        "time_breakdown_ns": {k: v for k, v in attribution.time_breakdown(tel)},
        "write_breakdown_bytes": {k: v for k, v in attribution.write_breakdown(tel)},
        "lock_contention": [
            {"key": key, "blocked": blocked, "wait_ns": wait}
            for key, blocked, wait in attribution.lock_contention(tel)
        ],
        "spans": spans,
        "metrics": tel.registry.snapshot(),
    }


def to_json(tel: Telemetry, indent: int = 2) -> str:
    """:func:`json_snapshot` rendered with sorted keys (diffable)."""
    return json.dumps(json_snapshot(tel), indent=indent, sort_keys=True)


def _prom_name(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _escape_label_value(value: str) -> str:
    """Exposition-format label-value escaping: backslash, double-quote,
    and line-feed (in that order — backslash first)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels) -> str:
    """Like :func:`repro.obs.registry.render_labels` but with values
    escaped per the exposition format. Kept local on purpose: the
    registry's renderer doubles as the JSON snapshot's series key, so
    its output must stay verbatim."""
    if not labels:
        return ""
    parts = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in labels)
    return "{" + parts + "}"


#: ``# HELP`` text per metric family; families not listed fall back to
#: a generic line (the format requires HELP before the first sample).
_HELP: Dict[str, str] = {
    "checkpoint_bytes_total": "Bytes written back by checkpoint passes.",
    "flusher_bytes_total": "Bytes written back by the async flusher daemon.",
    "flusher_epochs_total": "Async write-back epochs the flusher completed.",
    "flusher_deferred": "Dirty bytes deferred to the flusher at last count.",
    "libnvmmio_bg_checkpoints_total": "Background checkpoints in the libnvmmio model.",
    "lock_waits_total": "Simulated blocked lock acquisitions.",
    "lock_wait_ns": "Virtual nanoseconds spent blocked on locks.",
    "log_area_bytes": "Current per-file log area footprint.",
    "metalog_commits_total": "Metadata-log commit records appended.",
    "mgl_acquires_total": "Multi-granularity lock acquisitions.",
    "mgl_hold_ns": "Virtual nanoseconds multi-granularity locks were held.",
    "recovery_entries_discarded": "Log entries discarded during recovery.",
    "recovery_entries_replayed": "Log entries replayed during recovery.",
    "recovery_log_bytes_written_back": "Log bytes written back during recovery.",
    "service_admission_rejects_total": "Requests rejected by tenant token buckets.",
    "service_latency_ns": "Per-request virtual latency across all tenants.",
    "service_shard_makespan_ns": "Replay makespan of the shard's streams.",
    "service_shard_utilization": "Busy channel time over makespan x channels.",
    "service_tenant_errors_total": "Tenant requests that raised a service error.",
    "service_tenants": "Tenants registered on the shard.",
    "span_calls_total": "Telemetry span entries, by span name.",
    "span_ns": "Virtual nanoseconds per telemetry span.",
    "txn_commits_total": "Transactions committed.",
    "txn_rollbacks_total": "Transactions rolled back.",
}


def to_prometheus(tel: Telemetry) -> str:
    """Prometheus text exposition format (0.0.4) for the registry.

    Counters and gauges render one sample each; histograms render
    cumulative ``_bucket`` series (with the canonical ``+Inf`` bound)
    plus ``_sum`` and ``_count``. Metric families are emitted in
    sorted-name order; each carries one ``# HELP`` and one ``# TYPE``
    header, and label values are escaped per the exposition format.
    """
    lines: List[str] = []
    seen_type: set = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_type:
            seen_type.add(name)
            help_text = _HELP.get(name, "repro telemetry metric.")
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

    for counter in tel.registry.counters():
        name = _prom_name(counter.name)
        header(name, "counter")
        lines.append(f"{name}{_prom_labels(counter.labels)} {_fmt(counter.value)}")
    for gauge in tel.registry.gauges():
        name = _prom_name(gauge.name)
        header(name, "gauge")
        lines.append(f"{name}{_prom_labels(gauge.labels)} {_fmt(gauge.value)}")
    for hist in tel.registry.histograms():
        name = _prom_name(hist.name)
        header(name, "histogram")
        cumulative = 0
        for idx, bound in enumerate(hist.bounds):
            cumulative += hist.counts[idx]
            labels = hist.labels + (("le", _fmt(bound)),)
            lines.append(f"{name}_bucket{_prom_labels(labels)} {cumulative}")
        labels = hist.labels + (("le", "+Inf"),)
        lines.append(f"{name}_bucket{_prom_labels(labels)} {hist.count}")
        lines.append(f"{name}_sum{_prom_labels(hist.labels)} {_fmt(hist.sum)}")
        lines.append(f"{name}_count{_prom_labels(hist.labels)} {hist.count}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_report(tel: Telemetry, top: int = 10) -> str:
    """Human ``top``-style report: layer breakdowns, hottest spans,
    lock contention. Uses :func:`repro.inspect.render_breakdown` for
    the fig13 tables so telemetry and debug dumps share one look."""
    from repro.inspect import render_breakdown  # lazy: inspect pulls core

    total_ns = tel.total_ns()
    total_bytes = tel.total_bytes()
    parts: List[str] = []

    parts.append("== per-layer virtual time ==")
    parts.append(render_breakdown(attribution.time_breakdown(tel), total_ns, unit="ns"))

    parts.append("")
    parts.append("== per-layer device writes ==")
    parts.append(
        render_breakdown(attribution.write_breakdown(tel), float(total_bytes), unit="bytes")
    )

    rows = attribution.span_table(tel)[:top]
    parts.append("")
    parts.append(f"== hottest spans (top {len(rows)} by self time) ==")
    if rows:
        parts.append(
            f"{'span':<24}{'count':>8}{'self us':>12}{'incl us':>12}{'self bytes':>14}"
        )
        for name, count, self_ns, incl_ns, self_bytes in rows:
            parts.append(
                f"{name:<24}{count:>8}{self_ns / 1e3:>12.1f}"
                f"{incl_ns / 1e3:>12.1f}{self_bytes:>14,}"
            )
    else:
        parts.append("(no spans recorded)")

    locks = attribution.lock_contention(tel, top=top)
    parts.append("")
    parts.append("== lock contention ==")
    if locks:
        parts.append(f"{'lock':<32}{'blocked':>10}{'wait us':>12}")
        for key, blocked, wait_ns in locks:
            parts.append(f"{key:<32}{blocked:>10}{wait_ns / 1e3:>12.1f}")
    else:
        parts.append("(no simulated lock waits)")
    return "\n".join(parts)
