"""Chrome trace-event export: span timelines loadable in Perfetto.

Two sources feed the same JSON shape
(``{"traceEvents": [...], "displayTimeUnit": "ns"}``):

- :func:`from_flight` — the flight recorder's span-close ring entries
  become ``"X"`` (complete) events, one track per fig13 layer
  (:func:`repro.obs.attribution.layer_of`), plus an ``ops`` track for
  op begin/end markers and a ``device`` track of fence instants;
- :func:`from_timelines` — :class:`repro.sim.engine.ReplayResult`
  timelines from a multi-tenant service run become per-tenant lanes
  (one Perfetto *process* per shard, one *thread* per tenant stream),
  each segment an ``"X"`` event named by its kind
  (``compute`` / ``io`` / ``wait``).

Timestamps are virtual nanoseconds converted to the trace-event
microsecond unit (fractional µs keep full ns precision). Everything is
derived from deterministic inputs, so the rendered JSON is
byte-reproducible; :func:`validate` is the schema check CI runs on the
exported files.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.attribution import layer_of

#: trace-event phase codes we emit
_COMPLETE = "X"
_INSTANT = "i"
_METADATA = "M"

#: reserved tids on the single-device (flight-recorder) timeline
_OPS_TID = 1
_DEVICE_TID = 2
_LAYER_TID0 = 10


def _us(ns: float) -> float:
    return ns / 1000.0


def _meta(pid: int, tid: int, what: str, name: str) -> Dict[str, object]:
    return {
        "ph": _METADATA,
        "pid": pid,
        "tid": tid,
        "name": what,
        "args": {"name": name},
    }


def from_flight(
    flight,
    workload: str = "workload",
    config: str = "",
    pid: int = 1,
    fences: bool = True,
) -> Dict[str, object]:
    """Build a trace-event document from a flight recorder's ring.

    Span-close entries carry both the end timestamp and the duration,
    so each one yields a complete event on its layer's track — opens
    evicted from a bounded ring cost nothing but the spans they began.
    """
    events: List[Dict[str, object]] = []
    layer_tids: Dict[str, int] = {}

    def layer_tid(layer: str) -> int:
        tid = layer_tids.get(layer)
        if tid is None:
            tid = _LAYER_TID0 + len(layer_tids)
            layer_tids[layer] = tid
        return tid

    open_ops: List[tuple] = []
    for entry in flight.events_list():
        kind = entry[0]
        if kind == "span-close":
            _, end_ns, name, dur_ns = entry
            events.append(
                {
                    "ph": _COMPLETE,
                    "pid": pid,
                    "tid": layer_tid(layer_of(name)),
                    "name": name,
                    "cat": layer_of(name),
                    "ts": _us(end_ns - dur_ns),
                    "dur": _us(dur_ns),
                }
            )
        elif kind == "op-begin":
            _, t, name, seq = entry
            open_ops.append((name, t, seq))
        elif kind == "op-end":
            _, t, name = entry
            if open_ops and open_ops[-1][0] == name:
                _oname, start, seq = open_ops.pop()
                events.append(
                    {
                        "ph": _COMPLETE,
                        "pid": pid,
                        "tid": _OPS_TID,
                        "name": name,
                        "cat": "op",
                        "ts": _us(start),
                        "dur": _us(t - start),
                        "args": {"seq": seq},
                    }
                )
        elif kind == "fence" and fences:
            _, idx, t, op, _spans = entry
            events.append(
                {
                    "ph": _INSTANT,
                    "pid": pid,
                    "tid": _DEVICE_TID,
                    "name": "fence",
                    "cat": "device",
                    "s": "t",
                    "ts": _us(t),
                    "args": {"event": idx, "op": op},
                }
            )

    label = f"{workload}/{config}" if config else workload
    meta = [_meta(pid, 0, "process_name", f"repro:{label}")]
    meta.append(_meta(pid, _OPS_TID, "thread_name", "ops"))
    if fences:
        meta.append(_meta(pid, _DEVICE_TID, "thread_name", "device fences"))
    for layer in sorted(layer_tids, key=layer_tids.get):
        meta.append(_meta(pid, layer_tids[layer], "thread_name", f"layer:{layer}"))
    return {"traceEvents": meta + events, "displayTimeUnit": "ns"}


def from_timelines(
    timelines: Sequence[Sequence[tuple]],
    lane_names: Optional[Sequence[Sequence[str]]] = None,
    shard_names: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Per-tenant lanes from replay-engine timelines.

    *timelines* is one sequence per shard of ``(tid, start, end, kind)``
    segments (:attr:`ReplayResult.timeline` with ``record_timeline``).
    *lane_names* optionally names each shard's threads (tenants, then
    the writeback daemon); *shard_names* names the processes.
    """
    events: List[Dict[str, object]] = []
    meta: List[Dict[str, object]] = []
    for shard, timeline in enumerate(timelines):
        pid = shard + 1
        sname = (
            shard_names[shard]
            if shard_names and shard < len(shard_names)
            else f"shard {shard}"
        )
        meta.append(_meta(pid, 0, "process_name", f"repro.service:{sname}"))
        names = lane_names[shard] if lane_names and shard < len(lane_names) else ()
        seen: set = set()
        for tid, start, end, kind in timeline:
            if tid not in seen:
                seen.add(tid)
                label = names[tid] if tid < len(names) else f"stream {tid}"
                meta.append(_meta(pid, tid + 1, "thread_name", label))
            events.append(
                {
                    "ph": _COMPLETE,
                    "pid": pid,
                    "tid": tid + 1,
                    "name": kind,
                    "cat": kind,
                    "ts": _us(start),
                    "dur": _us(end - start),
                }
            )
    return {"traceEvents": meta + events, "displayTimeUnit": "ns"}


def render(doc: Dict[str, object]) -> str:
    """Deterministic JSON text (Perfetto and ``chrome://tracing`` both
    load it)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def validate(doc: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless *doc* is well-formed trace-event
    JSON: the schema check CI applies to every exported file."""
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in (_COMPLETE, _INSTANT, _METADATA):
            raise ValueError(f"traceEvents[{i}]: unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"traceEvents[{i}]: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"traceEvents[{i}]: {key} must be an int")
        if ph == _COMPLETE:
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"traceEvents[{i}]: {key} must be a non-negative number"
                    )
        elif ph == _INSTANT:
            if not isinstance(ev.get("ts"), (int, float)):
                raise ValueError(f"traceEvents[{i}]: ts must be a number")
        elif ph == _METADATA:
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                raise ValueError(f"traceEvents[{i}]: metadata needs args.name")
