"""Crash post-mortem forensics: narrate a black-box bundle.

Given a bundle from :mod:`repro.obs.blackbox`, :func:`analyze` replays
the workload twice — once to completion with an unbounded flight
recorder (the full event stream, each device event tagged with the op
and open spans that issued it) and once crashed at the bundle's event
index (the device state the failure was judged on) — and correlates the
two with the crash image:

- **which words were non-durable** at the crash point and got dropped
  by the bundle's policy / surgical keep-set;
- **which spans / protocol steps wrote them** — the last store covering
  each word before the crash, with its op and open-span stack;
- **which fence would have saved them** — the first fence at or after
  the crash index that makes each word durable in the passing run
  (or the finding that no flush ever covered it).

Both runs are seed-deterministic and the flight recorder is
non-perturbing, so the replayed prefix is bit-identical to the run the
bundle describes; the narration is evidence, not reconstruction.
:func:`render` formats the same report for humans;
``python -m repro.obs postmortem BUNDLE`` wires both up.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

from repro.nvm.crash import CrashPlan

from repro.obs import blackbox
from repro.obs.flight import attach_flight
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import attach_telemetry

#: per-word detail rows kept in the JSON report (grouping covers the rest)
MAX_WORD_ROWS = 64

#: word size of the store buffer's persist granularity
WORD = 8


def _run_with_flight(workload, config_name: str, plan):
    holder: dict = {}

    def instrument(system) -> None:
        holder["telemetry"] = attach_telemetry(system, registry=MetricsRegistry())
        holder["flight"] = attach_flight(
            system, capacity=0, regions=workload.region_map(system)
        )

    outcome = workload.run(config_name, plan, instrument=instrument)
    return outcome, holder["flight"]


def _device_events(events: Sequence[tuple]) -> List[tuple]:
    return [ev for ev in events if ev[0] in ("store", "flush", "fence")]


def _forensics(events: Sequence[tuple], words: Sequence[int], crash_after: int):
    """One pass over the full event stream; per tracked word, find the
    last pre-crash store (the writer) and the first at-or-post-crash
    fence that makes it durable (the saver)."""
    ordered = sorted(words)
    info: Dict[int, dict] = {
        w: {
            "writer": None,
            "saved_by": None,
            "flushed_before_crash": False,
            "rewritten_before_save": False,
            "_state": "clean",
        }
        for w in ordered
    }

    def covered(offset: int, length: int) -> List[int]:
        out = []
        i = bisect_left(ordered, offset - (WORD - 1))
        end = offset + length
        while i < len(ordered) and ordered[i] < end:
            out.append(ordered[i])
            i += 1
        return out

    pending: set = set()
    for ev in events:
        kind = ev[0]
        if kind == "store":
            _, idx, _t, offset, length, store_kind, op, spans = ev
            for w in covered(offset, length):
                rec = info[w]
                if idx < crash_after:
                    rec["writer"] = {
                        "event": idx,
                        "kind": store_kind,
                        "op": op,
                        "spans": list(spans),
                    }
                elif rec["saved_by"] is None:
                    rec["rewritten_before_save"] = True
                if store_kind == "nt":
                    rec["_state"] = "pending"
                    pending.add(w)
                else:
                    rec["_state"] = "dirty"
                    pending.discard(w)
        elif kind == "flush":
            _, idx, _t, offset, length, _nlines, op, spans = ev
            for w in covered(offset, length):
                rec = info[w]
                if rec["_state"] == "dirty":
                    rec["_state"] = "pending"
                    pending.add(w)
                    if idx < crash_after:
                        rec["flushed_before_crash"] = True
        elif kind == "fence":
            _, idx, _t, op, spans = ev
            if not pending:
                continue
            for w in list(pending):
                rec = info[w]
                rec["_state"] = "durable"
                if idx >= crash_after and rec["saved_by"] is None:
                    rec["saved_by"] = {"event": idx, "op": op, "spans": list(spans)}
            pending.clear()
    for rec in info.values():
        del rec["_state"]
    return info


def analyze(bundle: Dict[str, object]) -> Dict[str, object]:
    """Correlate *bundle* with a deterministic replay; returns the
    machine-readable post-mortem report (plain JSON-safe data)."""
    from repro.crashsweep.workloads import get_workload

    workload_name = str(bundle["workload"])
    config_name = str(bundle["config"])
    crash_after = int(bundle["crash_after"])
    seed = int(bundle.get("seed", 0))
    policy = bundle.get("policy")
    persist_words = bundle.get("persist_words")
    workload = get_workload(workload_name)

    # the full passing run: the event stream past the crash point
    full, full_flight = _run_with_flight(workload, config_name, plan=None)
    events = _device_events(full_flight.events_list())

    # the crashed run: the device state the failure was judged on
    outcome, crash_flight = _run_with_flight(
        workload, config_name, plan=CrashPlan(crash_after)
    )
    device = outcome.fs.device
    regions = crash_flight.regions
    candidates = sorted(device.unfenced_words())
    kept = blackbox.kept_words(
        device, policy, seed, crash_after, persist_words=persist_words
    )
    dropped = sorted(set(candidates) - set(kept))
    image = bytes(device.crash_image(persist_words=kept))
    violations = (
        list(workload.check(image, config_name, outcome.oracles))
        if outcome.crashed
        else []
    )

    info = _forensics(events, dropped, crash_after)

    # group by (region, writer op, innermost span) — the protocol step
    groups: Dict[tuple, dict] = {}
    rows = []
    for w in dropped:
        rec = info[w]
        region = regions.classify(w) if regions is not None else "device"
        writer = rec["writer"]
        op = writer["op"] if writer else None
        step = writer["spans"][-1] if writer and writer["spans"] else None
        key = (region, op or "", step or "")
        group = groups.get(key)
        if group is None:
            group = groups[key] = {
                "region": region,
                "op": op,
                "step": step,
                "words": 0,
                "first_word": w,
                "last_word": w,
                "writer_events": [],
                "saved_by": None,
                "flushed_before_crash": False,
                "never_fenced": 0,
            }
        group["words"] += 1
        group["last_word"] = max(group["last_word"], w)
        if writer:
            group["writer_events"].append(writer["event"])
        if rec["flushed_before_crash"]:
            group["flushed_before_crash"] = True
        if rec["saved_by"] is None:
            group["never_fenced"] += 1
        elif group["saved_by"] is None or rec["saved_by"]["event"] < group["saved_by"]["event"]:
            group["saved_by"] = rec["saved_by"]
        if len(rows) < MAX_WORD_ROWS:
            rows.append(
                {
                    "offset": w,
                    "region": region,
                    "writer": writer,
                    "saved_by": rec["saved_by"],
                    "flushed_before_crash": rec["flushed_before_crash"],
                    "rewritten_before_save": rec["rewritten_before_save"],
                }
            )

    group_rows = []
    for key in sorted(groups):
        group = groups[key]
        evs = group.pop("writer_events")
        group["writer_events"] = [min(evs), max(evs)] if evs else None
        group_rows.append(group)

    return {
        "bundle_kind": bundle.get("kind"),
        "workload": workload_name,
        "config": config_name,
        "crash_after": crash_after,
        "seed": seed,
        "policy": policy,
        "surgical": persist_words is not None,
        "crashed": outcome.crashed,
        "reproduced": bool(violations),
        "violations": violations,
        "bundle_violations": list(bundle.get("violations") or []),
        "candidate_words": len(candidates),
        "kept_words": len(kept),
        "dropped_words": len(dropped),
        "words": rows,
        "words_truncated": len(dropped) > MAX_WORD_ROWS,
        "steps": group_rows,
        "total_events": len(events),
    }


def _fmt_step(group: dict) -> str:
    where = f"{group['region']}"
    span = f", step {group['step']!r}" if group["step"] else ""
    op = f"op {group['op']!r}" if group["op"] else "outside any op"
    evs = group["writer_events"]
    wrote = (
        f"written at event {evs[0]}"
        if evs and evs[0] == evs[1]
        else f"written at events {evs[0]}..{evs[1]}"
        if evs
        else "written before the census baseline"
    )
    saved = group["saved_by"]
    if saved is not None:
        fate = (
            f"the fence at event {saved['event']} (op {saved['op']!r}) would "
            f"have made them durable — the crash preceded it"
        )
    elif group["never_fenced"] == group["words"]:
        fate = (
            "no later fence ever covers them (missing flush+fence on this path)"
        )
    else:
        fate = "partially fenced later; some words are never covered"
    cached = (
        "flushed but unfenced"
        if group["flushed_before_crash"]
        else "still in the CPU cache"
    )
    return (
        f"{group['words']} word(s) in {where}{span}: {wrote} by {op}, "
        f"{cached} at the crash; {fate}"
    )


def render(report: Dict[str, object]) -> str:
    """Human-readable narration of one post-mortem report."""
    lines: List[str] = []
    how = (
        "surgical keep-set"
        if report["surgical"]
        else f"policy {report['policy'] or 'drop_all'}"
    )
    lines.append(
        f"postmortem: {report['workload']}/{report['config']} "
        f"crash@{report['crash_after']} ({how}, seed {report['seed']})"
    )
    verdict = "REPRODUCED" if report["reproduced"] else "did NOT reproduce"
    lines.append(
        f"verdict: failure {verdict} — {len(report['violations'])} violation(s)"
    )
    for violation in report["violations"]:
        lines.append(f"  - {violation}")
    lines.append(
        f"crash state: {report['candidate_words']} unfenced word(s); "
        f"{report['kept_words']} persisted, {report['dropped_words']} dropped"
    )
    steps = report["steps"]
    if steps:
        lines.append("non-durable words, by writing protocol step:")
        for group in steps:
            lines.append("  - " + _fmt_step(group))
    else:
        lines.append("no dropped words — the failure is not a lost-write "
                     "(check the bundle's violations for the real cause)")
    return "\n".join(lines) + "\n"
