"""Virtual-time spans: per-layer attribution on the simulated clock.

A span brackets a region of protocol code (``mgl.acquire``,
``write.data``, ``checkpoint.writeback``, ...) and measures two meters
across it:

- **virtual nanoseconds** — the cost recorders' accumulated clock
  (:attr:`repro.sim.trace.TraceRecorder.clock_ns`), i.e. exactly the
  time the replay/throughput math charges; and
- **device bytes** — ``DeviceStats.stored_bytes``, so every persisted
  byte is attributed to the layer that issued it.

Spans nest; a span's *self* time/bytes are its inclusive delta minus
whatever nested spans claimed, so summing self values over all spans
(plus the unattributed remainder) reconstructs the run's total exactly
— the conservation property the attribution views and tests rely on.

Instrumented hot paths pay **one attribute check** when observability
is off: every file system carries ``fs.obs`` which defaults to the
shared :data:`NULL_SINK` (``enabled = False``); code guards with
``if obs.enabled:`` and never constructs frames or reads clocks in the
disabled case. Everything here runs on the virtual clock only — no
wall time, no ambient randomness — so telemetry is deterministic and
crash-replay safe.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry


class NullSink:
    """Disabled telemetry: one attribute check, nothing else.

    Instrumentation guards with ``if obs.enabled:``; the no-op methods
    below exist only as a safety net for unguarded (cold-path) calls.
    """

    enabled = False
    registry: Optional[MetricsRegistry] = None

    def now(self) -> float:
        return 0.0

    def span_begin(self, name: str, **labels):
        return None

    def span_end(self, frame) -> None:
        pass

    @contextmanager
    def span(self, name: str, **labels):
        yield

    def lock_wait(self, key: Hashable, ns: float) -> None:
        pass


#: the shared disabled sink — the default value of ``FileSystem.obs``
NULL_SINK = NullSink()


class _Frame:
    """One open span on the stack (identity is the close token)."""

    __slots__ = ("name", "labels", "start_ns", "start_bytes", "child_ns", "child_bytes")

    def __init__(self, name: str, labels, start_ns: float, start_bytes: int) -> None:
        self.name = name
        self.labels = labels
        self.start_ns = start_ns
        self.start_bytes = start_bytes
        self.child_ns = 0.0
        self.child_bytes = 0


class SpanStats:
    """Aggregated measurements for one span name."""

    __slots__ = ("count", "self_ns", "self_bytes", "total_ns", "total_bytes")

    def __init__(self) -> None:
        self.count = 0
        self.self_ns = 0.0
        self.self_bytes = 0
        self.total_ns = 0.0
        self.total_bytes = 0


class Telemetry:
    """The live sink: span accounting + a metrics registry.

    Bind it to a mounted file system with :func:`attach_telemetry`
    (captures the cost recorders' clocks and the device's byte counter
    as the two meters). The simulation executes functionally on one OS
    thread, so a single span stack is exact even for multi-threaded
    *simulated* runs — simulated-thread contention shows up through
    :meth:`lock_wait`, fed by the replay engine.
    """

    enabled = True

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clocks: Tuple[object, ...] = ()
        self._device = None
        self._stack: List[_Frame] = []
        self.spans: Dict[str, SpanStats] = {}
        #: lock key -> [blocked acquires, total wait ns] (replay engine)
        self.lock_waits: Dict[Hashable, List[float]] = {}
        self._clock0 = 0.0
        self._bytes0 = 0
        self._root_ns = 0.0
        self._root_bytes = 0
        #: optional :class:`repro.obs.flight.FlightRecorder` fed span
        #: open/close events (set by ``attach_flight``; None when no
        #: recorder is attached — one attribute check on the span path)
        self.flight = None

    # -- binding -----------------------------------------------------------

    def bind(self, clocks: Sequence[object], device=None) -> None:
        """Set the meters: *clocks* are recorders exposing ``clock_ns``
        (foreground + any background stream), *device* supplies
        ``stats.stored_bytes``. Zeroes the baselines at the bind point."""
        self._clocks = tuple(clocks)
        self._device = device
        self._clock0 = self.now()
        self._bytes0 = self.stored_bytes()

    # -- meters ------------------------------------------------------------

    def now(self) -> float:
        """Total virtual work priced so far, across all bound streams."""
        return sum(clock.clock_ns for clock in self._clocks)

    def stored_bytes(self) -> int:
        device = self._device
        return device.stats.stored_bytes if device is not None else 0

    def total_ns(self) -> float:
        """Virtual nanoseconds elapsed since :meth:`bind`."""
        return self.now() - self._clock0

    def total_bytes(self) -> int:
        """Device bytes stored since :meth:`bind`."""
        return self.stored_bytes() - self._bytes0

    def attributed_ns(self) -> float:
        """Inclusive time claimed by top-level spans (≤ total_ns)."""
        return self._root_ns

    def attributed_bytes(self) -> int:
        return self._root_bytes

    # -- spans -------------------------------------------------------------

    def span_begin(self, name: str, **labels) -> _Frame:
        frame = _Frame(name, labels, self.now(), self.stored_bytes())
        self._stack.append(frame)
        if self.flight is not None:
            self.flight.on_span_open(name, frame.start_ns)
        return frame

    def span_end(self, frame: _Frame) -> None:
        """Close *frame*. Self-healing: frames opened after *frame* and
        never closed (an exception unwound past their span_end) are
        discarded — their time folds into *frame*'s self time."""
        stack = self._stack
        try:
            idx = stack.index(frame)
        except ValueError:
            return  # already healed away by an outer span_end
        del stack[idx:]
        ns = self.now() - frame.start_ns
        nbytes = self.stored_bytes() - frame.start_bytes
        agg = self.spans.get(frame.name)
        if agg is None:
            agg = self.spans[frame.name] = SpanStats()
        agg.count += 1
        agg.total_ns += ns
        agg.total_bytes += nbytes
        agg.self_ns += ns - frame.child_ns
        agg.self_bytes += nbytes - frame.child_bytes
        if stack:
            parent = stack[-1]
            parent.child_ns += ns
            parent.child_bytes += nbytes
        else:
            self._root_ns += ns
            self._root_bytes += nbytes
        reg = self.registry
        reg.counter("span_calls_total", span=frame.name, **frame.labels).inc()
        reg.histogram("span_ns", span=frame.name).observe(ns)
        if self.flight is not None:
            self.flight.on_span_close(frame.name, frame.start_ns + ns, ns)

    @contextmanager
    def span(self, name: str, **labels):
        """Context-manager form for cold paths::

            with fs.obs.span("recovery.writeback"):
                ...
        """
        frame = self.span_begin(name, **labels)
        try:
            yield frame
        finally:
            self.span_end(frame)

    # -- contention (fed by the replay engine) -----------------------------

    def lock_wait(self, key: Hashable, ns: float) -> None:
        entry = self.lock_waits.get(key)
        if entry is None:
            entry = self.lock_waits[key] = [0, 0.0]
        entry[0] += 1
        entry[1] += ns
        self.registry.counter("lock_waits_total").inc()
        self.registry.histogram("lock_wait_ns").observe(ns)


def attach_telemetry(fs, registry: Optional[MetricsRegistry] = None,
                     telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Enable telemetry on a mounted file system.

    Binds a :class:`Telemetry` to the filesystem's cost recorders
    (foreground plus ``bg_recorder`` where one exists) and its device,
    then points ``fs.obs`` — and the protocol objects that keep their
    own reference (``fs.mgl``, ``fs.metalog``) — at the live sink.
    Attach **before** opening handles: per-handle protocol state (e.g.
    ``MgspFile.shadow``) snapshots ``fs.obs`` at handle creation.
    """
    tel = telemetry if telemetry is not None else Telemetry(registry)
    clocks = [fs.recorder]
    bg = getattr(fs, "bg_recorder", None)
    if bg is not None:
        clocks.append(bg)
    tel.bind(clocks, fs.device)
    fs.obs = tel
    for attr in ("mgl", "metalog"):
        obj = getattr(fs, attr, None)
        if obj is not None:
            obj.obs = tel
    return tel
