"""The MGSP crash-consistency invariant checker.

Given a composed post-crash image, mount it through
:func:`repro.core.recovery.recover` and assert everything §III-D
promises. Checks, in order:

1. **Recovery terminates** without raising — any exception is a
   violation (a checksum-valid metalog entry must never brick a mount).
2. **Entry conservation**: every checksum-valid un-retired entry visible
   in the raw image is either replayed or deliberately discarded, and
   the metalog is empty after recovery (no retired-but-lost entries, no
   survivors to re-apply).
3. **Plain files**: every node table is durably cleared and the log
   area is reclaimed — recovery leaves no fresh-log indirection behind.
4. **Content legality**: each oracle file reads back exactly one of its
   legal states (all completed atomic ops, in-flight group
   all-or-nothing).
5. **Idempotence**: recovering the recovered image again is a byte-level
   no-op (recovery itself may crash and be rerun, so it must be a
   fixpoint).

Every violation is returned as a human-readable string; an empty list
means the image passed.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import MgspConfig
from repro.core.metalog import MetadataLog
from repro.core.mgsp import MgspFilesystem
from repro.core.radix import RadixTree
from repro.core.recovery import recover
from repro.fsapi.layout import VolumeLayout
from repro.nvm.device import NvmDevice

from repro.crashsweep.workloads import FileOracle, make_config


def pending_entries(image: bytes, config: MgspConfig) -> int:
    """Checksum-valid, un-retired metalog entries in a raw crash image."""
    device = NvmDevice.from_image(image)
    layout = VolumeLayout.for_device(device.size, log_fraction=MgspFilesystem.log_fraction)
    return len(MetadataLog(device, layout.metalog, config.metalog_entries).scan())


def check_image(
    image: bytes,
    config_name: str,
    oracles: Dict[str, FileOracle],
    idempotence: bool = True,
) -> List[str]:
    """Run every invariant against one post-crash image."""
    violations: List[str] = []
    config = make_config(config_name)
    visible = pending_entries(image, config)

    try:
        fs, stats = recover(NvmDevice.from_image(image), config=config)
    except Exception as exc:
        return [f"recovery raised {type(exc).__name__}: {exc}"]

    if stats.entries_replayed + stats.entries_discarded != visible:
        violations.append(
            f"entry conservation: {visible} entries visible in the image but "
            f"{stats.entries_replayed} replayed + {stats.entries_discarded} discarded"
        )
    leftover = fs.metalog.scan()
    if leftover:
        violations.append(
            f"metalog not empty after recovery: {len(leftover)} live entries"
        )

    for inode in fs.volume.files():
        if not inode.node_table_len:
            continue
        tree = RadixTree(fs.device, inode, config)
        tree.load_from_table()
        if tree.nodes:
            violations.append(
                f"{inode.name}: node table not cleared after recovery "
                f"({len(tree.nodes)} live slots)"
            )
    if fs.logs.in_use:
        violations.append(f"log area not reclaimed: {fs.logs.in_use} bytes live")

    for name, oracle in oracles.items():
        try:
            handle = fs.open(name)
            got = handle.read(0, oracle.capacity).ljust(oracle.capacity, b"\0")
        except Exception as exc:
            violations.append(f"{name}: unreadable after recovery: {exc!r}")
            continue
        if got not in oracle.legal_states():
            violations.append(
                f"{name}: recovered content is not a legal synced state "
                f"(size={handle.size})"
            )

    if idempotence:
        fs.device.drain()
        first = bytes(fs.device.buffer.durable)
        try:
            fs2, stats2 = recover(NvmDevice.from_image(first), config=make_config(config_name))
        except Exception as exc:
            violations.append(f"second recovery raised {type(exc).__name__}: {exc}")
            return violations
        fs2.device.drain()
        second = bytes(fs2.device.buffer.durable)
        if second != first:
            diff = sum(a != b for a, b in zip(first, second))
            violations.append(
                f"recovery is not idempotent: second pass changed {diff} bytes "
                f"(replayed {stats2.entries_replayed}, discarded {stats2.entries_discarded})"
            )
    return violations
