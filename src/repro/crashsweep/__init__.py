"""Systematic crash-state exploration for MGSP (WITCHER-style).

Hand-picked crash indices find the bugs you already suspect; this
package finds the rest by construction:

- :mod:`~repro.crashsweep.census` runs a workload once to count every
  persistence event (per element inside vectorized device ops) and
  proves the count matches what an armed plan would see;
- :mod:`~repro.crashsweep.workloads` is the registry of deterministic
  drivers (FIO-style, transactional, YCSB/KV) with byte-level oracles,
  each run under sync and async-write-back configs;
- :mod:`~repro.crashsweep.invariants` mounts each crash image through
  recovery and checks the §III-D contract, including that recovery
  itself is an idempotent fixpoint;
- :mod:`~repro.crashsweep.sweep` drives the whole loop, crashing at
  every sampled index under every :class:`~repro.nvm.crash.CrashPolicy`
  and shrinking failures to minimal seeded reproducers.

CLI::

    python -m repro.crashsweep --workload fio-randwrite --budget 500
"""

from repro.crashsweep.census import Census, sample_points, take_census
from repro.crashsweep.invariants import check_image, pending_entries
from repro.crashsweep.sweep import (
    POLICIES,
    Failure,
    SweepReport,
    UnitReport,
    minimize_failure,
    point_seed,
    sweep,
    sweep_unit,
)
from repro.crashsweep.workloads import (
    CONFIGS,
    WORKLOADS,
    FileOracle,
    RunOutcome,
    SweepWorkload,
    get_workload,
    make_config,
)

__all__ = [
    "CONFIGS",
    "Census",
    "Failure",
    "FileOracle",
    "POLICIES",
    "RunOutcome",
    "SweepReport",
    "SweepWorkload",
    "UnitReport",
    "WORKLOADS",
    "check_image",
    "get_workload",
    "make_config",
    "minimize_failure",
    "pending_entries",
    "point_seed",
    "sample_points",
    "sweep",
    "sweep_unit",
    "take_census",
]
