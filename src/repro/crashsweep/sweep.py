"""The sweep driver: census → sample → crash → check → minimize.

For every (workload, config) pair the driver runs one census to count
persistence events, samples crash indices within the budget, re-runs the
workload once per index with an armed :class:`CrashPlan`, and checks
every :class:`CrashPolicy` image of the crashed device against the
invariant checker. The three policies share one crashed run — they only
differ in which unfenced words the composed image keeps.

Failures carry a fully deterministic reproducer: the (workload, config,
policy, crash index, seed) tuple pins the exact image, and a greedy
word-subset minimizer shrinks the persisted-word set to a locally
minimal failing core so the reproducer is also *small*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.nvm.cache import choose_persist_words
from repro.nvm.crash import CrashPlan, CrashPolicy, compose_image

from repro.crashsweep.census import Census, sample_points, take_census
from repro.crashsweep.invariants import check_image
from repro.crashsweep.workloads import (
    CONFIGS,
    WORKLOADS,
    FileOracle,
    get_workload,
)

POLICIES = (CrashPolicy.DROP_ALL, CrashPolicy.KEEP_ALL, CrashPolicy.RANDOM)
PERSIST_PROBABILITY = 0.5


def point_seed(seed: int, crash_after: int) -> int:
    """The RANDOM-policy seed for one crash index, derived so a failure
    report's (sweep seed, index) pair replays the identical image."""
    return seed * 1_000_003 + crash_after


@dataclass
class Failure:
    workload: str
    config_name: str
    policy: CrashPolicy
    crash_after: int
    seed: int
    fired_kind: Optional[str]
    violations: List[str]
    #: locally minimal persisted-word set that still fails (None when
    #: minimization is off or the failing set was already empty)
    minimized_words: Optional[List[int]] = None

    @property
    def reproducer(self) -> str:
        return (
            f"python -m repro.crashsweep --workload {self.workload}"
            f" --configs {self.config_name} --policies {self.policy.value}"
            f" --at {self.crash_after} --seed {self.seed}"
        )


@dataclass
class UnitReport:
    """One (workload, config) sweep."""

    census: Census
    points: List[int]
    images_checked: int = 0
    failures: List[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.census.parity_ok and not self.failures


@dataclass
class SweepReport:
    units: List[UnitReport] = field(default_factory=list)

    @property
    def events(self) -> int:
        return sum(u.census.events for u in self.units)

    @property
    def points_swept(self) -> int:
        return sum(len(u.points) for u in self.units)

    @property
    def images_checked(self) -> int:
        return sum(u.images_checked for u in self.units)

    @property
    def failures(self) -> List[Failure]:
        return [f for u in self.units for f in u.failures]

    @property
    def parity_failures(self) -> List[Census]:
        return [u.census for u in self.units if not u.census.parity_ok]

    @property
    def ok(self) -> bool:
        return all(u.ok for u in self.units)


def _chosen_words(device, policy: CrashPolicy, seed: int) -> List[int]:
    """The exact word subset :func:`compose_image` persisted."""
    candidates = device.unfenced_words()
    if policy is CrashPolicy.DROP_ALL:
        return []
    if policy is CrashPolicy.KEEP_ALL:
        return list(candidates)
    return choose_persist_words(candidates, random.Random(seed), PERSIST_PROBABILITY)


def minimize_failure(
    device,
    config_name: str,
    oracles: Dict[str, FileOracle],
    chosen: Sequence[int],
    idempotence: bool = True,
    checker=None,
) -> List[int]:
    """Greedy 1-minimal shrink of a failing persisted-word set: drop each
    word whose removal keeps the image failing. O(n) recoveries.

    ``checker`` defaults to the module-level MGSP :func:`check_image`;
    workloads with their own recovery path (NOVA, pqueue, …) pass their
    ``check`` method instead."""
    words = list(chosen)
    i = 0
    while i < len(words):
        trial = words[:i] + words[i + 1 :]
        image = bytes(device.crash_image(persist_words=trial))
        check = checker if checker is not None else check_image
        if check(image, config_name, oracles, idempotence=idempotence):
            words = trial
        else:
            i += 1
    return words


def sweep_unit(
    workload_name: str,
    config_name: str,
    policies: Sequence[CrashPolicy] = POLICIES,
    budget: int = 200,
    seed: int = 0,
    idempotence: bool = True,
    minimize: bool = True,
    points: Optional[Iterable[int]] = None,
    progress=None,
) -> UnitReport:
    """Sweep one (workload, config) pair. ``points`` overrides sampling
    (used by ``--at`` to replay a single reported crash index)."""
    workload = get_workload(workload_name)
    census = take_census(workload, config_name)
    if points is None:
        points = sample_points(census.events, budget, seed)
    report = UnitReport(census=census, points=list(points))

    for n, crash_after in enumerate(report.points):
        outcome = workload.run(config_name, CrashPlan(crash_after))
        if not outcome.crashed:
            report.failures.append(
                Failure(
                    workload=workload_name,
                    config_name=config_name,
                    policy=CrashPolicy.DROP_ALL,
                    crash_after=crash_after,
                    seed=seed,
                    fired_kind=None,
                    violations=[
                        f"enumerated crash point {crash_after} never fired "
                        f"(census counted {census.events} events)"
                    ],
                )
            )
            continue
        device = outcome.fs.device
        for policy in policies:
            image_seed = point_seed(seed, crash_after)
            image = compose_image(
                device, policy, seed=image_seed, persist_probability=PERSIST_PROBABILITY
            )
            report.images_checked += 1
            violations = workload.check(
                image, config_name, outcome.oracles, idempotence=idempotence
            )
            if not violations:
                continue
            failure = Failure(
                workload=workload_name,
                config_name=config_name,
                policy=policy,
                crash_after=crash_after,
                seed=seed,
                fired_kind=outcome.plan.fired_kind,
                violations=violations,
            )
            if minimize:
                chosen = _chosen_words(device, policy, image_seed)
                if chosen:
                    failure.minimized_words = minimize_failure(
                        device,
                        config_name,
                        outcome.oracles,
                        chosen,
                        idempotence=idempotence,
                        checker=workload.check,
                    )
            report.failures.append(failure)
        if progress is not None and (n + 1) % 50 == 0:
            progress(workload_name, config_name, n + 1, len(report.points))
    return report


def sweep(
    workloads: Optional[Sequence[str]] = None,
    configs: Optional[Sequence[str]] = None,
    policies: Sequence[CrashPolicy] = POLICIES,
    budget: int = 200,
    seed: int = 0,
    idempotence: bool = True,
    minimize: bool = True,
    progress=None,
) -> SweepReport:
    """Sweep every requested (workload, config) pair. Configs a workload
    does not support (``supported_configs``) are skipped, not erred —
    the non-MGSP backends have no sync/async knob."""
    report = SweepReport()
    for workload_name in workloads or sorted(WORKLOADS):
        supported = get_workload(workload_name).supported_configs
        for config_name in configs or sorted(CONFIGS):
            if config_name not in supported:
                continue
            report.units.append(
                sweep_unit(
                    workload_name,
                    config_name,
                    policies=policies,
                    budget=budget,
                    seed=seed,
                    idempotence=idempotence,
                    minimize=minimize,
                    progress=progress,
                )
            )
    return report
