"""Crash-point enumeration: census a workload, then pick what to sweep.

The census runs the workload once with a *counting* plan armed — a
:class:`~repro.nvm.crash.CrashPlan` that observes every persistence
event but never fires — so the run takes exactly the device code paths
an armed run takes (some vectorized entry points specialize on
``crash_plan is None``). Two independent tallies must agree:

- ``events``: what the plan's ``on_event`` hook saw (ground truth);
- ``derived``: :func:`~repro.nvm.crash.count_events` over the
  ``DeviceStats`` delta since the plan was armed.

A mismatch means enumerated crash points diverge from events that can
actually fire — crash indices silently skipped or double-counted — and
the sweep reports it as a violation in its own right.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.nvm.crash import count_events, counting_plan

from repro.crashsweep.workloads import SweepWorkload


@dataclass
class Census:
    workload: str
    config_name: str
    events: int
    derived: int

    @property
    def parity_ok(self) -> bool:
        return self.events == self.derived


def take_census(
    workload: SweepWorkload, config_name: str, kinds: Optional[Set[str]] = None
) -> Census:
    """Run *workload* to completion and count its crash points."""
    plan = counting_plan(kinds)
    outcome = workload.run(config_name, plan)
    if outcome.crashed:  # pragma: no cover - counting plans cannot fire
        raise RuntimeError("census plan fired")
    derived = count_events(outcome.fs.device, kinds, since=outcome.stats_base)
    return Census(
        workload=workload.name,
        config_name=config_name,
        events=plan.count,
        derived=derived,
    )


def sample_points(events: int, budget: int, seed: int) -> List[int]:
    """Crash indices to sweep: exhaustive up to *budget*, otherwise a
    seeded stratified sample (one point per equal-width stratum, so
    coverage stays spread across the whole run instead of clustering)."""
    if events <= 0:
        return []
    if budget <= 0 or events <= budget:
        return list(range(events))
    rng = random.Random(seed)
    points = []
    for i in range(budget):
        lo = (i * events) // budget
        hi = ((i + 1) * events) // budget
        if hi > lo:
            points.append(rng.randrange(lo, hi))
    return sorted(set(points))
