"""Workload registry for the crash-state sweep.

A sweep workload is a *deterministic* driver: it builds a small system
under test, arms a :class:`~repro.nvm.crash.CrashPlan`, and issues a
fixed (seeded) operation stream while maintaining an oracle of what the
system must expose after any crash. Determinism is the whole point — the
sweep re-runs the same workload once per sampled crash index and every
run must emit the identical persistence-event sequence.

The registry started MGSP-only; it now carries three kinds of subject
behind one :class:`SweepWorkload` surface:

- **MGSP** workloads (fio/txn/ycsb) run under each named config in
  :data:`CONFIGS` — ``sync`` is the paper's baseline, ``async`` arms the
  background write-back scheduler — and check the full §III-D contract
  via :func:`repro.crashsweep.invariants.check_image`.
- **Baseline file systems** (NOVA, Libnvmmio) run their own recovery and
  their own (per-op-atomic resp. fsync-granular) oracles; the MGSP
  config axis does not apply, so they declare ``supported_configs``.
- **Raw-device structures** (the durable MPSC queue) run on a bare
  :class:`RawSystem` shim with an abstract-state oracle.

Subclass hooks: :meth:`make_system` builds the subject, :meth:`check`
judges a composed crash image, :meth:`region_map` names device regions
for the invariant miner, and :meth:`variant` derives a reseeded twin for
cross-run invariant pruning.

The MGSP oracle model: MGSP promises per-operation failure atomicity, so
at any instant a file's legal post-crash content is "all completed
atomic ops applied" (``synced``) plus the single in-flight atomic group
applied all-or-nothing (``pending``). Transactions widen the group to
the whole write set while ``commit`` is in flight; staged-but-
uncommitted transaction writes are *not* pending — they must roll back.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core import MgspConfig, MgspFilesystem
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice
from repro.sim.trace import TraceRecorder

#: Small device: every sampled crash point copies the image several
#: times (compose, mount, idempotence re-mount), so sweep throughput is
#: dominated by image size.
DEVICE_SIZE = 4 << 20
FILE_CAP = 96 << 10

CONFIGS: Dict[str, Callable[[], MgspConfig]] = {
    "sync": lambda: MgspConfig(degree=16),
    "async": lambda: MgspConfig(
        degree=16, async_writeback=True, writeback_epoch_bytes=16 << 10
    ),
}


def make_config(name: str) -> MgspConfig:
    factory = CONFIGS.get(name)
    if factory is None:
        raise ValueError(f"unknown sweep config {name!r}; choices: {sorted(CONFIGS)}")
    return factory()


@dataclass
class FileOracle:
    """Reference content of one file under per-op failure atomicity."""

    capacity: int
    synced: bytearray
    #: the in-flight atomic group; persists all-or-nothing
    pending: Optional[List[Tuple[int, bytes]]] = None

    def apply_pending(self) -> None:
        for off, payload in self.pending or ():
            self.synced[off : off + len(payload)] = payload
        self.pending = None

    def legal_states(self) -> Set[bytes]:
        states = {bytes(self.synced)}
        if self.pending:
            new = bytearray(self.synced)
            for off, payload in self.pending:
                new[off : off + len(payload)] = payload
            states.add(bytes(new))
        return states


@dataclass
class RunOutcome:
    """One workload execution, crashed or complete."""

    fs: object
    config_name: str
    oracles: Dict[str, object]
    crashed: bool
    plan: Optional[CrashPlan]
    #: DeviceStats snapshot taken when the plan was armed — the census
    #: derives the crash-point count from the delta since this point.
    stats_base: object


class RawSystem:
    """Bare-device stand-in for a mounted file system: gives raw-NVM
    subjects (the persistent queue, planted-bug protocols) the same
    ``device`` / ``recorder`` / ``op()`` surface the sweep and the
    analysis tap expect from a :class:`~repro.fsapi.interface.FileSystem`.
    """

    def __init__(self, device_size: int = DEVICE_SIZE) -> None:
        from repro.nvm.timing import OptaneTiming

        self.device = NvmDevice(device_size)
        self.recorder = TraceRecorder(OptaneTiming())

    @contextmanager
    def op(self, kind: str):
        self.recorder.begin_op(kind)
        try:
            yield
        finally:
            self.recorder.end_op()


class SweepWorkload:
    """Base driver: subclasses define :meth:`setup` and :meth:`body`."""

    name: str = "?"
    description: str = ""
    #: configs this workload runs under in a full sweep. Any config name
    #: is *accepted* by :meth:`run` (non-MGSP subjects ignore it), but
    #: :func:`repro.crashsweep.sweep.sweep` only schedules these.
    supported_configs: Tuple[str, ...] = ("sync", "async")

    def setup(self, system) -> dict:
        """Create files/handles; runs *before* the crash plan is armed."""
        raise NotImplementedError

    def body(self, system, state: dict) -> None:
        """The swept operation stream; every persistence event in here
        is a crash point."""
        raise NotImplementedError

    def oracles(self, state: dict) -> Dict[str, object]:
        return state.get("oracles", {})

    def make_system(self, config_name: str):
        """Build the system under test for one named config."""
        return MgspFilesystem(device_size=DEVICE_SIZE, config=make_config(config_name))

    def check(
        self,
        image: bytes,
        config_name: str,
        oracles: Dict[str, object],
        idempotence: bool = True,
    ) -> List[str]:
        """Judge one composed post-crash image; [] means it passed."""
        from repro.crashsweep.invariants import check_image

        return check_image(image, config_name, oracles, idempotence=idempotence)

    def region_map(self, system):
        """Offset→region classifier for the invariant miner."""
        from repro.analysis.analyzer import RegionMap

        return RegionMap.from_layout(system.volume.layout)

    def variant(self, seed: int) -> "SweepWorkload":
        """A reseeded twin issuing a *different* deterministic op stream
        (same shape); used by inference to prune run-specific patterns.
        The default — for workloads with no seed axis — is the workload
        itself."""
        return self

    def run(
        self,
        config_name: str,
        plan: Optional[CrashPlan] = None,
        instrument: Optional[Callable[[object], None]] = None,
    ) -> RunOutcome:
        system = self.make_system(config_name)
        if instrument is not None:
            # Observer attachment point (e.g. the repro.analysis tap):
            # runs before setup so the observer sees the whole stream.
            instrument(system)
        state = self.setup(system)
        system.device.drain()
        stats_base = system.device.stats.snapshot()
        system.device.crash_plan = plan
        crashed = False
        try:
            self.body(system, state)
        except CrashRequested:
            crashed = True
        return RunOutcome(
            fs=system,
            config_name=config_name,
            oracles=self.oracles(state),
            crashed=crashed,
            plan=plan,
            stats_base=stats_base,
        )


class FioSweepWorkload(SweepWorkload):
    """Single-file write stream mirroring the FIO job surface
    (``op``/``bs``-mix/``fsync`` cadence) at sweep scale."""

    def __init__(
        self,
        name: str,
        op: str = "randwrite",
        nops: int = 300,
        fsync_every: int = 4,
        seed: int = 0xF10,
    ) -> None:
        self.name = name
        self.op = op
        self.nops = nops
        self.fsync_every = fsync_every
        self.seed = seed
        self.description = f"{op}, {nops} ops, fsync every {fsync_every}"

    def variant(self, seed: int) -> "FioSweepWorkload":
        return FioSweepWorkload(
            self.name, op=self.op, nops=self.nops,
            fsync_every=self.fsync_every, seed=self.seed ^ (seed * 0x9E3779B9),
        )

    def setup(self, fs) -> dict:
        handle = fs.create("f", capacity=FILE_CAP)
        oracle = FileOracle(FILE_CAP, bytearray(FILE_CAP))
        return {"handle": handle, "oracles": {"f": oracle}}

    def body(self, fs, state: dict) -> None:
        handle = state["handle"]
        oracle = state["oracles"]["f"]
        rng = random.Random(self.seed)
        sizes = (64, 512, 2048, 4096)
        span = FILE_CAP - max(sizes)
        pos = 0
        for i in range(self.nops):
            size = sizes[rng.randrange(len(sizes))]
            if self.op == "randwrite":
                off = rng.randrange(0, span)
            else:
                off = pos
                pos = (pos + size) % span
            payload = bytes([1 + i % 250]) * size
            oracle.pending = [(off, payload)]
            handle.write(off, payload)
            oracle.apply_pending()
            if self.fsync_every and (i + 1) % self.fsync_every == 0:
                handle.fsync()


class TxnSweepWorkload(SweepWorkload):
    """Plain writes interleaved with multi-write transactions: staged
    writes must roll back, committed groups must appear atomically."""

    name = "txn-mixed"
    description = "plain writes + 2-3-write transactions (commit and rollback)"

    def __init__(self, rounds: int = 45, seed: int = 0x7A7) -> None:
        self.rounds = rounds
        self.seed = seed

    def variant(self, seed: int) -> "TxnSweepWorkload":
        twin = TxnSweepWorkload(rounds=self.rounds, seed=self.seed ^ (seed * 0x9E3779B9))
        return twin

    def setup(self, fs) -> dict:
        handle = fs.create("t", capacity=FILE_CAP)
        oracle = FileOracle(FILE_CAP, bytearray(FILE_CAP))
        return {"handle": handle, "oracles": {"t": oracle}}

    def body(self, fs, state: dict) -> None:
        handle = state["handle"]
        oracle = state["oracles"]["t"]
        rng = random.Random(self.seed)
        span = FILE_CAP - 4096
        for i in range(self.rounds):
            # One plain synchronized write.
            off = rng.randrange(0, span)
            payload = bytes([1 + i % 250]) * rng.choice([256, 1024])
            oracle.pending = [(off, payload)]
            handle.write(off, payload)
            oracle.apply_pending()

            # One transaction; every 5th one rolls back instead.
            group = [
                (rng.randrange(0, span), bytes([10 + i % 200]) * rng.choice([128, 768]))
                for _ in range(2 + i % 2)
            ]
            txn = fs.begin_transaction(handle)
            for t_off, t_payload in group:
                # Staged, not pending: a crash here must revert the group.
                txn.write(t_off, t_payload)
            if i % 5 == 4:
                txn.rollback()
            else:
                oracle.pending = group
                txn.commit()
                oracle.apply_pending()


class YcsbSweepWorkload(SweepWorkload):
    """YCSB-A-style update-heavy mix through the embedded database.

    The DB's own WAL defines its content semantics, so this workload
    carries no byte-level oracle — the sweep still proves the MGSP layer
    recovers (structural invariants + recovery idempotence) under
    key-value traffic with its many small co-located writes.
    """

    name = "ycsb-a"
    description = "update-heavy KV mix via the embedded DB (structural checks)"

    def __init__(
        self, records: int = 60, operations: int = 60, seed: int = 0x4C5B
    ) -> None:
        self.records = records
        self.operations = operations
        self.seed = seed

    def variant(self, seed: int) -> "YcsbSweepWorkload":
        return YcsbSweepWorkload(
            records=self.records, operations=self.operations,
            seed=self.seed ^ (seed * 0x9E3779B9),
        )

    def setup(self, fs) -> dict:
        from repro.db import Database

        db = Database(
            fs,
            name="ycsb.db",
            journal_mode="wal",
            capacity=640 << 10,
            wal_capacity=512 << 10,
            checkpoint_limit=96 << 10,
        )
        table = db.create_table("usertable")
        payload = "v" * 24
        for key in range(self.records):
            table.insert((key,), (payload,))
        return {"db": db, "table": table, "oracles": {}}

    def body(self, fs, state: dict) -> None:
        table = state["table"]
        rng = random.Random(self.seed)
        next_insert = self.records
        for step in range(self.operations):
            pick = rng.random()
            key = rng.randrange(self.records)
            if pick < 0.45:
                table.get((key,))
            elif pick < 0.9:
                table.update((key,), ("u" * 24 + str(step),))
            else:
                table.insert((next_insert,), ("n" * 24,))
                next_insert += 1


# -- baseline file-system subjects ------------------------------------------


class NovaSweepWorkload(SweepWorkload):
    """NOVA under the sweep: per-operation CoW atomicity, checked through
    :meth:`repro.fs.nova.Nova.recover` (journal roll-forward).

    The MGSP config axis does not apply — NOVA is its own protocol — so
    only one config is scheduled; the name is accepted and ignored.
    """

    supported_configs = ("sync",)

    def __init__(self, name: str, pattern: str = "randwrite", nops: int = 40,
                 seed: int = 0x404A) -> None:
        self.name = name
        self.pattern = pattern
        self.nops = nops
        self.seed = seed
        self.description = f"NOVA CoW {pattern}, {nops} ops (per-op atomic oracle)"

    def variant(self, seed: int) -> "NovaSweepWorkload":
        return NovaSweepWorkload(
            self.name, pattern=self.pattern, nops=self.nops,
            seed=self.seed ^ (seed * 0x9E3779B9),
        )

    def make_system(self, config_name: str):
        from repro.fs.nova import Nova

        return Nova(device_size=DEVICE_SIZE)

    def setup(self, fs) -> dict:
        handle = fs.create("n", capacity=FILE_CAP)
        oracle = FileOracle(FILE_CAP, bytearray(FILE_CAP))
        return {"handle": handle, "oracles": {"n": oracle}}

    def body(self, fs, state: dict) -> None:
        handle = state["handle"]
        oracle = state["oracles"]["n"]
        rng = random.Random(self.seed)
        if self.pattern == "randwrite":
            sizes = (512, 4096, 8192)
        else:  # multi-page bursts: stress the chunked journal commit
            sizes = (8192, 12288, 20480)
        span = FILE_CAP - max(sizes)
        for i in range(self.nops):
            size = sizes[rng.randrange(len(sizes))]
            off = rng.randrange(0, span)
            if self.pattern != "randwrite":
                off &= ~4095  # page-aligned whole-page overwrites
            payload = bytes([1 + i % 250]) * size
            oracle.pending = [(off, payload)]
            handle.write(off, payload)
            oracle.apply_pending()
            if i % 8 == 7:
                handle.fsync()

    def check(self, image, config_name, oracles, idempotence=True) -> List[str]:
        from repro.fs.nova import Nova

        violations: List[str] = []
        try:
            fs = Nova.recover(NvmDevice.from_image(bytes(image)))
        except Exception as exc:
            return [f"NOVA recovery raised {type(exc).__name__}: {exc}"]
        for name, oracle in oracles.items():
            try:
                handle = fs.open(name)
                got = handle.read(0, oracle.capacity).ljust(oracle.capacity, b"\0")
            except Exception as exc:
                violations.append(f"{name}: unreadable after recovery: {exc!r}")
                continue
            if got not in oracle.legal_states():
                violations.append(
                    f"{name}: recovered content is neither the synced nor the "
                    f"synced+pending state (size={handle.size})"
                )
        if idempotence:
            fs.device.drain()
            first = bytes(fs.device.buffer.durable)
            try:
                fs2 = Nova.recover(NvmDevice.from_image(first))
            except Exception as exc:
                violations.append(f"second NOVA recovery raised {exc!r}")
                return violations
            fs2.device.drain()
            second = bytes(fs2.device.buffer.durable)
            if second != first:
                diff = sum(a != b for a, b in zip(first, second))
                violations.append(
                    f"NOVA recovery is not idempotent: second pass changed {diff} bytes"
                )
        return violations


@dataclass
class LibnvmmioOracle:
    """Byte-wise fsync-granularity oracle: after a crash every file byte
    must read as either its last-synced value or its latest-written
    value (a checkpoint interrupted mid-flight writes back any subset of
    logged bytes; it never invents other values)."""

    capacity: int
    synced: bytearray
    current: bytearray


class LibnvmmioSweepWorkload(SweepWorkload):
    """Libnvmmio under the sweep. Write-only streams keep every epoch in
    redo mode — the undo epoch writes in place and deliberately breaks
    crash atomicity between syncs (pinned by the baseline-semantics
    tests), which no byte-wise oracle can bound."""

    supported_configs = ("sync",)

    def __init__(self, name: str, pattern: str = "randwrite", nops: int = 48,
                 fsync_every: int = 6, seed: int = 0x11B0) -> None:
        self.name = name
        self.pattern = pattern
        self.nops = nops
        self.fsync_every = fsync_every
        self.seed = seed
        self.description = (
            f"Libnvmmio redo-log {pattern}, {nops} ops, fsync every {fsync_every}"
        )

    def variant(self, seed: int) -> "LibnvmmioSweepWorkload":
        return LibnvmmioSweepWorkload(
            self.name, pattern=self.pattern, nops=self.nops,
            fsync_every=self.fsync_every, seed=self.seed ^ (seed * 0x9E3779B9),
        )

    def make_system(self, config_name: str):
        from repro.fs.libnvmmio import Libnvmmio

        return Libnvmmio(device_size=DEVICE_SIZE)

    def setup(self, fs) -> dict:
        handle = fs.create("l", capacity=FILE_CAP)
        oracle = LibnvmmioOracle(FILE_CAP, bytearray(FILE_CAP), bytearray(FILE_CAP))
        return {"handle": handle, "oracles": {"l": oracle}}

    def body(self, fs, state: dict) -> None:
        handle = state["handle"]
        oracle = state["oracles"]["l"]
        rng = random.Random(self.seed)
        sizes = (64, 1024, 4096) if self.pattern == "randwrite" else (2048, 4096)
        span = FILE_CAP - max(sizes)
        pos = 0
        for i in range(self.nops):
            size = sizes[rng.randrange(len(sizes))]
            if self.pattern == "randwrite":
                off = rng.randrange(0, span)
            else:
                off = pos
                pos = (pos + size) % span
            payload = bytes([1 + i % 250]) * size
            handle.write(off, payload)
            oracle.current[off : off + size] = payload
            if (i + 1) % self.fsync_every == 0:
                handle.fsync()
                oracle.synced[:] = oracle.current

    def check(self, image, config_name, oracles, idempotence=True) -> List[str]:
        from repro.fs.libnvmmio import Libnvmmio
        from repro.fsapi.layout import VolumeLayout
        from repro.fsapi.volume import Volume

        violations: List[str] = []
        device = NvmDevice.from_image(bytes(image))
        try:
            volume = Volume.mount(
                device,
                VolumeLayout.for_device(device.size, log_fraction=Libnvmmio.log_fraction),
            )
        except Exception as exc:
            return [f"Libnvmmio remount raised {type(exc).__name__}: {exc}"]
        for name, oracle in oracles.items():
            try:
                inode = volume.lookup(name)
            except Exception as exc:
                violations.append(f"{name}: lost after crash: {exc!r}")
                continue
            got = device.buffer.load(inode.base, oracle.capacity)
            for i, b in enumerate(got):
                if b != oracle.synced[i] and b != oracle.current[i]:
                    violations.append(
                        f"{name}: byte {i} reads {b}, neither last-synced "
                        f"({oracle.synced[i]}) nor latest-written ({oracle.current[i]})"
                    )
                    break
        # No recovery pass exists to re-run: idempotence is vacuous here.
        return violations


# -- raw-device subject: the durable MPSC queue -----------------------------

PQUEUE_BASE = 4096
PQUEUE_NSLOTS = 16
PQUEUE_PAYLOAD_CAP = 48


def _pq_payload(counter: int) -> bytes:
    """Deterministic, per-item-unique payload (maps items back to seqs)."""
    width = 8 + (counter % 5) * 8
    return (counter.to_bytes(4, "little") * ((width // 4) + 1))[:width]


@dataclass
class QueueOracle:
    """Abstract queue state with at most one ambiguous in-flight op."""

    payloads: Dict[int, bytes] = field(default_factory=dict)
    committed: Set[int] = field(default_factory=set)
    consumed: Set[int] = field(default_factory=set)
    inflight_commit: Optional[int] = None
    inflight_consume: Optional[int] = None

    def legal_live_payload_lists(self) -> List[List[bytes]]:
        base = self.committed - self.consumed
        candidates = [set(base)]
        if self.inflight_commit is not None:
            candidates.append(base | {self.inflight_commit})
        if self.inflight_consume is not None:
            candidates.append(base - {self.inflight_consume})
        out = []
        for cand in candidates:
            lst = [self.payloads[s] for s in sorted(cand)]
            if lst not in out:
                out.append(lst)
        return out


class PqueueSweepWorkload(SweepWorkload):
    """The durable MPSC queue under the sweep: interleaved two-phase
    enqueues (simulated multi-producer out-of-order commits), one-shot
    enqueues, and dequeues. ``sync`` persists the header hints per op;
    ``async`` leaves them stale — recovery must not trust them either
    way."""

    name = "pqueue-mpsc"
    description = "durable MPSC queue: 2-phase + one-shot enqueues, dequeues"
    supported_configs = ("sync", "async")

    def __init__(self, rounds: int = 8, seed: int = 0x9CE) -> None:
        self.rounds = rounds
        self.seed = seed

    def variant(self, seed: int) -> "PqueueSweepWorkload":
        return PqueueSweepWorkload(rounds=self.rounds, seed=self.seed ^ (seed * 0x9E3779B9))

    def make_system(self, config_name: str):
        return RawSystem(device_size=256 << 10)

    def setup(self, system) -> dict:
        from repro.db.pqueue import PersistentQueue

        with system.op("format"):
            queue = PersistentQueue.format(
                system.device,
                PQUEUE_BASE,
                nslots=PQUEUE_NSLOTS,
                payload_cap=PQUEUE_PAYLOAD_CAP,
                sync=True,
            )
        return {"queue": queue, "oracles": {"queue": QueueOracle()}}

    def body(self, system, state: dict) -> None:
        queue = state["queue"]
        queue.sync = self.run_config == "sync"
        oracle: QueueOracle = state["oracles"]["queue"]
        rng = random.Random(self.seed)
        # counter 0 would make the first payload all-zero — a no-op store
        # on the zeroed slot that degenerates tear probes; start at 1.
        counter = 1

        def begin(payload):
            with system.op("enqueue_begin"):
                return queue.enqueue_begin(payload)

        def commit(pending):
            oracle.payloads[pending.seq] = pending.payload
            oracle.inflight_commit = pending.seq
            with system.op("enqueue_commit"):
                queue.enqueue_commit(pending)
            oracle.committed.add(pending.seq)
            oracle.inflight_commit = None

        def dequeue():
            live = sorted(oracle.committed - oracle.consumed)
            expect = live[0] if live else None
            oracle.inflight_consume = expect
            with system.op("dequeue"):
                got = queue.dequeue()
            oracle.inflight_consume = None
            if expect is None:
                assert got is None, "dequeue from empty queue returned an item"
            else:
                oracle.consumed.add(expect)
                assert got == oracle.payloads[expect], "dequeue order violated"

        for _ in range(self.rounds):
            pa = begin(_pq_payload(counter))
            counter += 1
            pb = begin(_pq_payload(counter))
            counter += 1
            # Simulated second producer finishing first: out-of-order commit.
            commit(pb)
            commit(pa)
            with system.op("enqueue"):
                oracle.payloads[queue._tail_seq] = _pq_payload(counter)
                oracle.inflight_commit = queue._tail_seq
                queue.enqueue(_pq_payload(counter))
            oracle.committed.add(oracle.inflight_commit)
            oracle.inflight_commit = None
            counter += 1
            ndeq = 2 if rng.random() < 0.8 else 3
            for _ in range(ndeq):
                dequeue()

    def run(self, config_name, plan=None, instrument=None):
        # body() needs the config name to pick the hint-persistence mode.
        self.run_config = config_name
        return super().run(config_name, plan=plan, instrument=instrument)

    def region_map(self, system):
        return PqueueRegionMap()

    def check(self, image, config_name, oracles, idempotence=True) -> List[str]:
        from repro.db.pqueue import PersistentQueue

        violations: List[str] = []
        oracle: QueueOracle = oracles["queue"]
        sync = config_name == "sync"
        device = NvmDevice.from_image(bytes(image))
        try:
            queue = PersistentQueue.recover(device, PQUEUE_BASE, sync=sync)
        except Exception as exc:
            return [f"queue recovery raised {type(exc).__name__}: {exc}"]
        live = queue.live_items()
        legal = oracle.legal_live_payload_lists()
        if live not in legal:
            violations.append(
                f"recovered live set has {len(live)} item(s) and matches none of "
                f"{len(legal)} legal abstract state(s)"
            )
        drained = []
        while True:
            item = queue.dequeue()
            if item is None:
                break
            drained.append(item)
        if drained != live:
            violations.append("dequeue drain order diverges from the live-item scan")
        if idempotence:
            try:
                d1 = NvmDevice.from_image(bytes(image))
                PersistentQueue.recover(d1, PQUEUE_BASE, sync=sync)
                d1.drain()
                first = bytes(d1.buffer.durable)
                d2 = NvmDevice.from_image(first)
                PersistentQueue.recover(d2, PQUEUE_BASE, sync=sync)
                d2.drain()
                second = bytes(d2.buffer.durable)
            except Exception as exc:
                violations.append(f"re-recovery raised {type(exc).__name__}: {exc}")
                return violations
            if second != first:
                diff = sum(a != b for a, b in zip(first, second))
                violations.append(
                    f"queue recovery is not idempotent: second pass changed {diff} bytes"
                )
        return violations


class PqueueRegionMap:
    """Region names for the queue's extent (miner classification)."""

    def __init__(
        self,
        base: int = PQUEUE_BASE,
        nslots: int = PQUEUE_NSLOTS,
        payload_cap: int = PQUEUE_PAYLOAD_CAP,
    ) -> None:
        self.base = base
        self.nslots = nslots
        self.stride = 24 + payload_cap
        self.end = base + 64 + nslots * self.stride

    def classify(self, offset: int) -> str:
        if offset < self.base or offset >= self.end:
            return "unmapped"
        if offset < self.base + 64:
            return "qheader"
        within = (offset - self.base - 64) % self.stride
        if within < 8:
            return "qslot_commit"
        if within < 16:
            return "qslot_consumed"
        return "qslot_body"


WORKLOADS: Dict[str, SweepWorkload] = {
    w.name: w
    for w in (
        FioSweepWorkload("fio-randwrite", op="randwrite"),
        FioSweepWorkload("fio-write", op="write", fsync_every=8, seed=0xF11),
        TxnSweepWorkload(),
        YcsbSweepWorkload(),
        NovaSweepWorkload("nova-fio", pattern="randwrite"),
        NovaSweepWorkload("nova-txn", pattern="multipage", nops=24, seed=0x404B),
        LibnvmmioSweepWorkload("libnvmmio-fio", pattern="randwrite"),
        LibnvmmioSweepWorkload("libnvmmio-txn", pattern="write", nops=36,
                               fsync_every=4, seed=0x11B1),
        PqueueSweepWorkload(),
    )
}


def get_workload(name: str) -> SweepWorkload:
    workload = WORKLOADS.get(name)
    if workload is None:
        # Planted-bug fixtures live in repro.infer so the default CI
        # sweep never schedules them, but --at reproducers still resolve.
        try:
            from repro.infer import fixtures
        except ImportError:
            fixtures = None
        if fixtures is not None:
            workload = fixtures.FIXTURE_WORKLOADS.get(name)
    if workload is None:
        raise ValueError(f"unknown workload {name!r}; choices: {sorted(WORKLOADS)}")
    return workload
