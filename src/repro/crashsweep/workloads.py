"""Workload registry for the crash-state sweep.

A sweep workload is a *deterministic* driver: it builds a small MGSP
filesystem, arms a :class:`~repro.nvm.crash.CrashPlan`, and issues a
fixed (seeded) operation stream while maintaining a byte-level oracle of
what each file must contain after any crash. Determinism is the whole
point — the sweep re-runs the same workload once per sampled crash index
and every run must emit the identical persistence-event sequence.

Every workload runs under each named config in :data:`CONFIGS`:
``sync`` is the paper's baseline (every write synchronized, logs drained
at close) and ``async`` arms the PR-2 background write-back scheduler
with a tiny epoch so checkpoint drains land *between and inside* swept
ops.

The oracle model: MGSP promises per-operation failure atomicity, so at
any instant a file's legal post-crash content is "all completed atomic
ops applied" (``synced``) plus the single in-flight atomic group applied
all-or-nothing (``pending``). Transactions widen the group to the whole
write set while ``commit`` is in flight; staged-but-uncommitted
transaction writes are *not* pending — they must roll back.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core import MgspConfig, MgspFilesystem
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan

#: Small device: every sampled crash point copies the image several
#: times (compose, mount, idempotence re-mount), so sweep throughput is
#: dominated by image size.
DEVICE_SIZE = 4 << 20
FILE_CAP = 96 << 10

CONFIGS: Dict[str, Callable[[], MgspConfig]] = {
    "sync": lambda: MgspConfig(degree=16),
    "async": lambda: MgspConfig(
        degree=16, async_writeback=True, writeback_epoch_bytes=16 << 10
    ),
}


def make_config(name: str) -> MgspConfig:
    factory = CONFIGS.get(name)
    if factory is None:
        raise ValueError(f"unknown sweep config {name!r}; choices: {sorted(CONFIGS)}")
    return factory()


@dataclass
class FileOracle:
    """Reference content of one file under per-op failure atomicity."""

    capacity: int
    synced: bytearray
    #: the in-flight atomic group; persists all-or-nothing
    pending: Optional[List[Tuple[int, bytes]]] = None

    def apply_pending(self) -> None:
        for off, payload in self.pending or ():
            self.synced[off : off + len(payload)] = payload
        self.pending = None

    def legal_states(self) -> Set[bytes]:
        states = {bytes(self.synced)}
        if self.pending:
            new = bytearray(self.synced)
            for off, payload in self.pending:
                new[off : off + len(payload)] = payload
            states.add(bytes(new))
        return states


@dataclass
class RunOutcome:
    """One workload execution, crashed or complete."""

    fs: MgspFilesystem
    config_name: str
    oracles: Dict[str, FileOracle]
    crashed: bool
    plan: Optional[CrashPlan]
    #: DeviceStats snapshot taken when the plan was armed — the census
    #: derives the crash-point count from the delta since this point.
    stats_base: object


class SweepWorkload:
    """Base driver: subclasses define :meth:`setup` and :meth:`body`."""

    name: str = "?"
    description: str = ""

    def setup(self, fs: MgspFilesystem) -> dict:
        """Create files/handles; runs *before* the crash plan is armed."""
        raise NotImplementedError

    def body(self, fs: MgspFilesystem, state: dict) -> None:
        """The swept operation stream; every persistence event in here
        is a crash point."""
        raise NotImplementedError

    def oracles(self, state: dict) -> Dict[str, FileOracle]:
        return state.get("oracles", {})

    def run(
        self,
        config_name: str,
        plan: Optional[CrashPlan] = None,
        instrument: Optional[Callable[[MgspFilesystem], None]] = None,
    ) -> RunOutcome:
        fs = MgspFilesystem(device_size=DEVICE_SIZE, config=make_config(config_name))
        if instrument is not None:
            # Observer attachment point (e.g. the repro.analysis tap):
            # runs before setup so the observer sees the whole stream.
            instrument(fs)
        state = self.setup(fs)
        fs.device.drain()
        stats_base = fs.device.stats.snapshot()
        fs.device.crash_plan = plan
        crashed = False
        try:
            self.body(fs, state)
        except CrashRequested:
            crashed = True
        return RunOutcome(
            fs=fs,
            config_name=config_name,
            oracles=self.oracles(state),
            crashed=crashed,
            plan=plan,
            stats_base=stats_base,
        )


class FioSweepWorkload(SweepWorkload):
    """Single-file write stream mirroring the FIO job surface
    (``op``/``bs``-mix/``fsync`` cadence) at sweep scale."""

    def __init__(
        self,
        name: str,
        op: str = "randwrite",
        nops: int = 300,
        fsync_every: int = 4,
        seed: int = 0xF10,
    ) -> None:
        self.name = name
        self.op = op
        self.nops = nops
        self.fsync_every = fsync_every
        self.seed = seed
        self.description = f"{op}, {nops} ops, fsync every {fsync_every}"

    def setup(self, fs: MgspFilesystem) -> dict:
        handle = fs.create("f", capacity=FILE_CAP)
        oracle = FileOracle(FILE_CAP, bytearray(FILE_CAP))
        return {"handle": handle, "oracles": {"f": oracle}}

    def body(self, fs: MgspFilesystem, state: dict) -> None:
        handle = state["handle"]
        oracle = state["oracles"]["f"]
        rng = random.Random(self.seed)
        sizes = (64, 512, 2048, 4096)
        span = FILE_CAP - max(sizes)
        pos = 0
        for i in range(self.nops):
            size = sizes[rng.randrange(len(sizes))]
            if self.op == "randwrite":
                off = rng.randrange(0, span)
            else:
                off = pos
                pos = (pos + size) % span
            payload = bytes([1 + i % 250]) * size
            oracle.pending = [(off, payload)]
            handle.write(off, payload)
            oracle.apply_pending()
            if self.fsync_every and (i + 1) % self.fsync_every == 0:
                handle.fsync()


class TxnSweepWorkload(SweepWorkload):
    """Plain writes interleaved with multi-write transactions: staged
    writes must roll back, committed groups must appear atomically."""

    name = "txn-mixed"
    description = "plain writes + 2-3-write transactions (commit and rollback)"

    def __init__(self, rounds: int = 45, seed: int = 0x7A7) -> None:
        self.rounds = rounds
        self.seed = seed

    def setup(self, fs: MgspFilesystem) -> dict:
        handle = fs.create("t", capacity=FILE_CAP)
        oracle = FileOracle(FILE_CAP, bytearray(FILE_CAP))
        return {"handle": handle, "oracles": {"t": oracle}}

    def body(self, fs: MgspFilesystem, state: dict) -> None:
        handle = state["handle"]
        oracle = state["oracles"]["t"]
        rng = random.Random(self.seed)
        span = FILE_CAP - 4096
        for i in range(self.rounds):
            # One plain synchronized write.
            off = rng.randrange(0, span)
            payload = bytes([1 + i % 250]) * rng.choice([256, 1024])
            oracle.pending = [(off, payload)]
            handle.write(off, payload)
            oracle.apply_pending()

            # One transaction; every 5th one rolls back instead.
            group = [
                (rng.randrange(0, span), bytes([10 + i % 200]) * rng.choice([128, 768]))
                for _ in range(2 + i % 2)
            ]
            txn = fs.begin_transaction(handle)
            for t_off, t_payload in group:
                # Staged, not pending: a crash here must revert the group.
                txn.write(t_off, t_payload)
            if i % 5 == 4:
                txn.rollback()
            else:
                oracle.pending = group
                txn.commit()
                oracle.apply_pending()


class YcsbSweepWorkload(SweepWorkload):
    """YCSB-A-style update-heavy mix through the embedded database.

    The DB's own WAL defines its content semantics, so this workload
    carries no byte-level oracle — the sweep still proves the MGSP layer
    recovers (structural invariants + recovery idempotence) under
    key-value traffic with its many small co-located writes.
    """

    name = "ycsb-a"
    description = "update-heavy KV mix via the embedded DB (structural checks)"

    def __init__(
        self, records: int = 60, operations: int = 60, seed: int = 0x4C5B
    ) -> None:
        self.records = records
        self.operations = operations
        self.seed = seed

    def setup(self, fs: MgspFilesystem) -> dict:
        from repro.db import Database

        db = Database(
            fs,
            name="ycsb.db",
            journal_mode="wal",
            capacity=640 << 10,
            wal_capacity=512 << 10,
            checkpoint_limit=96 << 10,
        )
        table = db.create_table("usertable")
        payload = "v" * 24
        for key in range(self.records):
            table.insert((key,), (payload,))
        return {"db": db, "table": table, "oracles": {}}

    def body(self, fs: MgspFilesystem, state: dict) -> None:
        table = state["table"]
        rng = random.Random(self.seed)
        next_insert = self.records
        for step in range(self.operations):
            pick = rng.random()
            key = rng.randrange(self.records)
            if pick < 0.45:
                table.get((key,))
            elif pick < 0.9:
                table.update((key,), ("u" * 24 + str(step),))
            else:
                table.insert((next_insert,), ("n" * 24,))
                next_insert += 1


WORKLOADS: Dict[str, SweepWorkload] = {
    w.name: w
    for w in (
        FioSweepWorkload("fio-randwrite", op="randwrite"),
        FioSweepWorkload("fio-write", op="write", fsync_every=8, seed=0xF11),
        TxnSweepWorkload(),
        YcsbSweepWorkload(),
    )
}


def get_workload(name: str) -> SweepWorkload:
    workload = WORKLOADS.get(name)
    if workload is None:
        raise ValueError(f"unknown workload {name!r}; choices: {sorted(WORKLOADS)}")
    return workload
