"""``python -m repro.crashsweep`` — the crash-state sweep CLI.

Examples::

    # acceptance sweep: every policy, sync + async configs
    python -m repro.crashsweep --workload fio-randwrite --budget 500

    # budget-capped CI sweep over every registered workload
    python -m repro.crashsweep --budget 40 --seed 7

    # replay one reported failure and print its minimized word set
    python -m repro.crashsweep --workload txn-mixed --configs sync \\
        --policies random --at 1234 --seed 7
"""

from __future__ import annotations

import argparse
import sys

from repro.nvm.crash import CrashPolicy

from repro.crashsweep.sweep import POLICIES, sweep, sweep_unit
from repro.crashsweep.workloads import CONFIGS, WORKLOADS, get_workload

_POLICY_BY_VALUE = {p.value: p for p in CrashPolicy}


def _csv(value: str, choices, what: str):
    names = [v.strip() for v in value.split(",") if v.strip()]
    for name in names:
        if name not in choices:
            raise argparse.ArgumentTypeError(
                f"unknown {what} {name!r}; choices: {', '.join(sorted(choices))}"
            )
    return names


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.crashsweep",
        description="systematic crash-point sweep + MGSP invariant checker",
    )
    parser.add_argument(
        "--workload",
        action="append",
        help="workload(s) to sweep (repeatable; default: all registered; "
        "repro.infer fixture workloads resolve by name too)",
    )
    parser.add_argument(
        "--configs",
        type=lambda v: _csv(v, CONFIGS, "config"),
        default=sorted(CONFIGS),
        help="comma-separated config names (default: sync,async)",
    )
    parser.add_argument(
        "--policies",
        type=lambda v: _csv(v, _POLICY_BY_VALUE, "policy"),
        default=[p.value for p in POLICIES],
        help="comma-separated crash policies (default: all three)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=200,
        help="max crash points per (workload, config); sweeps run "
        "exhaustively below it, stratified-sampled above (default 200)",
    )
    parser.add_argument("--seed", type=int, default=0, help="sweep seed (default 0)")
    parser.add_argument(
        "--at",
        type=int,
        default=None,
        metavar="EVENT",
        help="sweep exactly one crash index (reproducer mode)",
    )
    parser.add_argument(
        "--no-idempotence",
        action="store_true",
        help="skip the second-recovery idempotence check (faster)",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="report failures without shrinking their persisted-word set",
    )
    parser.add_argument(
        "--list", action="store_true", help="list workloads and configs, then exit"
    )
    parser.add_argument(
        "--bundle-dir",
        metavar="DIR",
        help="write a black-box bundle (flight-recorder tail, metrics, "
        "held locks, reproducer) per failure into DIR",
    )
    parser.add_argument(
        "--max-bundles",
        type=int,
        default=10,
        help="cap on bundles written per run (default 10)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(WORKLOADS):
            print(f"{name:16s} {WORKLOADS[name].description}")
        print("configs :", ", ".join(sorted(CONFIGS)))
        print("policies:", ", ".join(p.value for p in POLICIES))
        return 0

    policies = [_POLICY_BY_VALUE[name] for name in args.policies]
    workloads = args.workload or sorted(WORKLOADS)
    try:
        supported = {w: get_workload(w).supported_configs for w in workloads}
    except ValueError as exc:
        parser.error(str(exc))
    kwargs = dict(
        policies=policies,
        budget=args.budget,
        seed=args.seed,
        idempotence=not args.no_idempotence,
        minimize=not args.no_minimize,
    )

    def progress(workload, config, done, total):
        print(f"  … {workload}/{config}: {done}/{total} points", flush=True)

    if args.at is not None:
        units = [
            sweep_unit(w, c, points=[args.at], **kwargs)
            for w in workloads
            for c in args.configs
            if c in supported[w]
        ]
        from repro.crashsweep.sweep import SweepReport

        report = SweepReport(units=units)
    else:
        report = sweep(workloads=workloads, configs=args.configs, progress=progress, **kwargs)

    for unit in report.units:
        census = unit.census
        parity = "ok" if census.parity_ok else f"MISMATCH (derived {census.derived})"
        print(
            f"{census.workload}/{census.config_name:5s}: events={census.events:<6d} "
            f"parity={parity} swept={len(unit.points)} "
            f"images={unit.images_checked} violations={len(unit.failures)}"
        )

    for failure in report.failures:
        print(
            f"\nFAIL {failure.workload}/{failure.config_name} "
            f"policy={failure.policy.value} crash_after={failure.crash_after} "
            f"(fired on {failure.fired_kind!r}, seed {failure.seed})"
        )
        for violation in failure.violations:
            print(f"  - {violation}")
        if failure.minimized_words is not None:
            print(f"  minimized persisted words: {failure.minimized_words}")
        print(f"  reproduce: {failure.reproducer}")

    if args.bundle_dir and report.failures:
        from repro.obs import blackbox

        emitted = 0
        for failure in report.failures[: max(0, args.max_bundles)]:
            path = blackbox.write_bundle(
                blackbox.capture_failure(failure), args.bundle_dir
            )
            print(f"  black-box bundle: {path}")
            emitted += 1
        skipped = len(report.failures) - emitted
        if skipped > 0:
            print(f"  ({skipped} further failure(s) not bundled; --max-bundles)")

    print(
        f"\nswept {report.points_swept} crash points, checked "
        f"{report.images_checked} images, {len(report.failures)} violations, "
        f"{len(report.parity_failures)} parity mismatches"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
