"""YCSB core workloads (an extension beyond the paper's evaluation).

The six standard mixes over the embedded database, with a Zipfian
request distribution — useful for exploring MGSP's behaviour on
key-value traffic the paper did not cover:

====  ==========================  ==================
 A    update heavy                50% read 50% update
 B    read mostly                 95% read 5% update
 C    read only                   100% read
 D    read latest                 95% read 5% insert
 E    short ranges                95% scan 5% insert
 F    read-modify-write           50% read 50% RMW
====  ==========================  ==================
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.db import Database
from repro.fsapi.interface import FileSystem

WORKLOADS = ("A", "B", "C", "D", "E", "F")

_MIX = {
    "A": {"read": 0.5, "update": 0.5},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.0},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.5, "rmw": 0.5},
}


class ZipfGenerator:
    """Zipfian integers in [0, n) via inverse-CDF table lookup."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.rng = random.Random(seed)
        weights = [1.0 / math.pow(i + 1, theta) for i in range(n)]
        total = sum(weights)
        acc = 0.0
        self._cdf: List[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def next(self) -> int:
        return bisect.bisect_left(self._cdf, self.rng.random())


@dataclass
class YcsbResult:
    fs_name: str
    workload: str
    journal_mode: str
    operations: int
    elapsed_ns: float
    per_op: Dict[str, int] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.operations / (self.elapsed_ns * 1e-9)


def run_ycsb(
    fs: FileSystem,
    workload: str = "A",
    journal_mode: str = "wal",
    records: int = 2000,
    operations: int = 300,
    value_size: int = 100,
    seed: int = 31,
    scan_length: int = 20,
) -> YcsbResult:
    workload = workload.upper()
    if workload not in _MIX:
        raise ValueError(f"unknown YCSB workload {workload!r}; choices {WORKLOADS}")
    db = Database(fs, name="ycsb.db", journal_mode=journal_mode)
    table = db.create_table("usertable")
    payload = "v" * value_size

    # Load phase (unmeasured).
    for key in range(records):
        table.insert((key,), (payload,))
    fs.take_traces()
    if hasattr(fs, "take_bg_traces"):
        fs.take_bg_traces()

    zipf = ZipfGenerator(records, seed=seed)
    rng = random.Random(seed ^ 0xBEEF)
    mix = _MIX[workload]
    ops_sorted = sorted(mix.items())
    next_insert = records
    per_op: Dict[str, int] = {}

    for step in range(operations):
        pick = rng.random()
        acc = 0.0
        op = ops_sorted[-1][0]
        for name, weight in ops_sorted:
            acc += weight
            if pick < acc:
                op = name
                break
        per_op[op] = per_op.get(op, 0) + 1
        if op == "read":
            key = next_insert - 1 - zipf.next() if workload == "D" else zipf.next()
            table.get((max(0, key),))
        elif op == "update":
            table.update((zipf.next(),), (payload + str(step),))
        elif op == "insert":
            table.insert((next_insert,), (payload,))
            next_insert += 1
        elif op == "scan":
            start = zipf.next()
            for _ in table.scan_from((start,), scan_length):
                pass
        elif op == "rmw":
            key = zipf.next()
            row = table.get((key,))
            base = row[0] if row else payload
            table.update((key,), (base[:value_size],))

    traces = fs.take_traces()
    elapsed = sum(tr.duration_ns(fs.timing.lock_ns) for tr in traces)
    db.close()
    return YcsbResult(
        fs_name=fs.name,
        workload=workload,
        journal_mode=journal_mode,
        operations=operations,
        elapsed_ns=elapsed,
        per_op=per_op,
    )
