"""Workload generators: FIO, Mobibench, TPC-C, YCSB, Filebench."""

from repro.workloads.filebench import FilebenchResult, run_filebench
from repro.workloads.fio import FioJob, FioResult, run_fio
from repro.workloads.mobibench import MobibenchResult, run_mobibench
from repro.workloads.tpcc import TpccResult, run_tpcc
from repro.workloads.ycsb import YcsbResult, run_ycsb

__all__ = [
    "FilebenchResult",
    "FioJob",
    "FioResult",
    "MobibenchResult",
    "TpccResult",
    "YcsbResult",
    "run_filebench",
    "run_fio",
    "run_mobibench",
    "run_tpcc",
    "run_ycsb",
]
