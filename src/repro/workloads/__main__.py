"""``run.sh``-compatible CLI (the artifact's finest-grained entry point).

The paper's appendix documents::

    run.sh fs op fsize bs fsync t_num write_ratio runtime ramptime

We accept the same positional parameters (runtime/ramptime map to an
operation count, since time here is virtual)::

    python -m repro.workloads MGSP write 16m 4k 1 1 0 10 5
    python -m repro.workloads Ext4-DAX randrw 16m 4k 1 4 50
"""

from __future__ import annotations

import argparse

from repro.bench.harness import run_one
from repro.obs.registry import Histogram
from repro.util import fmt_size, parse_size
from repro.workloads.fio import FioJob

#: virtual ops per "runtime second" — keeps CLI runs fast while scaling
#: with the requested duration like the artifact's scripts do.
OPS_PER_SECOND = 40


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="FIO-style benchmark, run.sh-compatible parameters",
    )
    parser.add_argument("fs", help="Ext4-DAX | Libnvmmio | NOVA | MGSP | Ext4-<mode>")
    parser.add_argument("op", help="write|randwrite|read|randread|rw|randrw")
    parser.add_argument("fsize", help="file size, e.g. 16m")
    parser.add_argument("bs", help="block size, e.g. 4k")
    parser.add_argument("fsync", nargs="?", default="1", help="writes between fsyncs (0=never)")
    parser.add_argument("t_num", nargs="?", default="1", help="thread count")
    parser.add_argument("write_ratio", nargs="?", default="50", help="%% writes for rw mixes")
    parser.add_argument("runtime", nargs="?", default="10", help="virtual seconds (maps to op count)")
    parser.add_argument("ramptime", nargs="?", default="0", help="accepted for compatibility")
    args = parser.parse_args(argv)

    threads = int(args.t_num)
    job = FioJob(
        op=args.op,
        fsize=parse_size(args.fsize),
        bs=parse_size(args.bs),
        fsync=int(args.fsync),
        threads=threads,
        write_ratio=int(args.write_ratio) / 100.0,
        nops=max(1, int(args.runtime)) * OPS_PER_SECOND * threads,
    )
    result = run_one(args.fs, job)
    print(
        f"{result.fs_name} {job.op} bs={fmt_size(job.bs)} file={fmt_size(job.fsize)} "
        f"fsync={job.fsync} threads={job.threads}"
    )
    print(f"  throughput : {result.throughput_mb_s:,.1f} MB/s ({result.iops:,.0f} IOPS)")
    print(
        f"  latency    : p50={result.latency_percentile(50):,.0f} ns "
        f"p99={result.latency_percentile(99):,.0f} ns"
    )
    # Distribution summary via the shared repro.obs histogram (same
    # fixed ns buckets as the telemetry exporters).
    hist = Histogram("latency_ns", ())
    for sample in result.latencies_ns:
        hist.observe(sample)
    if hist.count:
        print(
            f"  histogram  : mean={hist.mean:,.0f} ns max={hist.max:,.0f} ns "
            f"({len(hist.nonzero_buckets())} buckets)"
        )
    print(f"  write amp  : {result.write_amplification:.3f}")
    if result.lock_wait_ns:
        print(f"  lock wait  : {result.lock_wait_ns / 1e3:,.1f} us total")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
