"""Filebench-style multi-file personalities (extension workloads).

Two classic personalities over many files, exercising namespace churn
and whole-file I/O that the single-file FIO jobs do not:

- **fileserver**: create/append/whole-read/delete over a directory of
  medium files (write-heavy, file churn);
- **varmail**: mail-server pattern — create+fsync, read, append+fsync,
  delete over many small files (fsync-heavy, the classic journal
  killer).

Each operation set matches the well-known Filebench flowops at a small,
simulation-friendly scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.fsapi.interface import FileSystem

PERSONALITIES = ("fileserver", "varmail")


@dataclass
class FilebenchResult:
    fs_name: str
    personality: str
    operations: int
    elapsed_ns: float
    per_op: Dict[str, int] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.operations / (self.elapsed_ns * 1e-9)


@dataclass
class _Spec:
    nfiles: int
    file_size: int
    append_size: int
    mix: Dict[str, float]  # op -> weight


_SPECS = {
    "fileserver": _Spec(
        nfiles=24,
        file_size=64 * 1024,
        append_size=16 * 1024,
        mix={"create": 0.1, "append": 0.3, "whole_read": 0.3, "stat": 0.2, "delete": 0.1},
    ),
    "varmail": _Spec(
        nfiles=32,
        file_size=8 * 1024,
        append_size=4 * 1024,
        mix={"create_sync": 0.25, "read": 0.25, "append_sync": 0.25, "delete": 0.25},
    ),
}


class _Namespace:
    """Tracks the live files of one run (handles stay open)."""

    def __init__(self, fs: FileSystem, spec: _Spec, seed: int) -> None:
        self.fs = fs
        self.spec = spec
        self.rng = random.Random(seed)
        self.handles: Dict[str, object] = {}
        self.counter = 0

    def fresh_name(self) -> str:
        self.counter += 1
        return f"fb{self.counter:06d}"

    def create(self, sync: bool) -> None:
        name = self.fresh_name()
        handle = self.fs.create(name, capacity=self.spec.file_size * 4)
        payload = b"n" * self.spec.file_size
        handle.write(0, payload)
        if sync:
            handle.fsync()
        self.handles[name] = handle

    def pick(self):
        if not self.handles:
            return None, None
        name = self.rng.choice(sorted(self.handles))
        return name, self.handles[name]

    def append(self, sync: bool) -> None:
        name, handle = self.pick()
        if handle is None:
            return self.create(sync)
        end = handle.size
        take = min(self.spec.append_size, handle.inode.capacity - end)
        if take <= 0:
            return self.delete()
        handle.write(end, b"a" * take)
        if sync:
            handle.fsync()

    def whole_read(self) -> None:
        name, handle = self.pick()
        if handle is not None:
            handle.read(0, handle.size)

    def stat(self) -> None:
        name, handle = self.pick()
        if handle is not None:
            _ = handle.size

    def delete(self) -> None:
        name, handle = self.pick()
        if handle is None:
            return
        handle.close()
        self.fs.unlink(name)
        del self.handles[name]


def run_filebench(
    fs: FileSystem,
    personality: str = "fileserver",
    operations: int = 200,
    seed: int = 23,
) -> FilebenchResult:
    if personality not in _SPECS:
        raise ValueError(f"unknown personality {personality!r}; choices {PERSONALITIES}")
    spec = _SPECS[personality]
    ns = _Namespace(fs, spec, seed)

    # Preload the working set (unmeasured).
    for _ in range(spec.nfiles):
        ns.create(sync=True)
    fs.take_traces()
    if hasattr(fs, "take_bg_traces"):
        fs.take_bg_traces()

    ops_sorted = sorted(spec.mix.items())
    per_op: Dict[str, int] = {}
    rng = random.Random(seed ^ 0xF11E)
    for _ in range(operations):
        pick = rng.random()
        acc = 0.0
        op = ops_sorted[-1][0]
        for name, weight in ops_sorted:
            acc += weight
            if pick < acc:
                op = name
                break
        per_op[op] = per_op.get(op, 0) + 1
        if op == "create":
            ns.create(sync=False)
        elif op == "create_sync":
            ns.create(sync=True)
        elif op == "append":
            ns.append(sync=False)
        elif op == "append_sync":
            ns.append(sync=True)
        elif op == "whole_read" or op == "read":
            ns.whole_read()
        elif op == "stat":
            ns.stat()
        elif op == "delete":
            ns.delete()

    traces = fs.take_traces()
    elapsed = sum(tr.duration_ns(fs.timing.lock_ns) for tr in traces)
    return FilebenchResult(
        fs_name=fs.name,
        personality=personality,
        operations=operations,
        elapsed_ns=elapsed,
        per_op=per_op,
    )
