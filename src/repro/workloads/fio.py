"""FIO-style micro-benchmark jobs.

Mirrors the parameter surface of the paper's ``run.sh``::

    run.sh fs op fsize bs fsync t_num write_ratio runtime ramptime

Execution is functional-with-cost-traces: single-thread throughput is
the sum of trace durations; multi-thread throughput replays the
per-thread traces through the lock/channel-aware engine (Fig 10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.fsapi.interface import FileSystem
from repro.obs.registry import percentile
from repro.sim.engine import ReplayEngine
from repro.sim.trace import OpTrace
PREFILL_CHUNK = 1 << 20


@dataclass
class FioJob:
    op: str = "write"  # write | randwrite | read | randread | rw | randrw
    fsize: int = 64 << 20
    bs: int = 4096
    #: fsync every N writes; 0 = never (paper's "fsync - x" axis)
    fsync: int = 1
    threads: int = 1
    write_ratio: float = 0.5  # only for rw / randrw
    nops: int = 2000  # total operations across all threads
    seed: int = 42
    prefill: bool = True

    @property
    def is_random(self) -> bool:
        return self.op.startswith("rand")

    @property
    def kind(self) -> str:
        return self.op[4:] if self.is_random else self.op


@dataclass
class FioResult:
    job: FioJob
    fs_name: str
    elapsed_ns: float
    total_bytes: int
    ops: int
    write_amplification: float
    lock_wait_ns: float = 0.0
    mst_hit_rate: float = 0.0
    #: uncontended per-operation latencies (write+its fsync merged), ns
    latencies_ns: List[float] = field(default_factory=list)

    def latency_percentile(self, pct: float) -> float:
        """Virtual-time latency percentile (e.g. 50, 99)."""
        return percentile(self.latencies_ns, pct)

    @property
    def mean_latency_ns(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns)

    @property
    def throughput_mb_s(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return (self.total_bytes / (1 << 20)) / (self.elapsed_ns * 1e-9)

    @property
    def iops(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.ops / (self.elapsed_ns * 1e-9)

    def __str__(self) -> str:
        return (
            f"{self.fs_name:14s} {self.job.op:9s} bs={self.job.bs:7d} "
            f"t={self.job.threads:2d} {self.throughput_mb_s:10.1f} MB/s "
            f"amp={self.write_amplification:5.2f}"
        )


def _prefill(fs: FileSystem, handle, size: int) -> None:
    """Fill the file so reads hit real data; costs are then discarded.

    DAX-capable file systems are seeded straight through the device (a
    plain pre-existing file); others go through the API.
    """
    payload = bytes(range(256)) * (PREFILL_CHUNK // 256)
    try:
        device, base, _cap = handle.mmap_view()
        pos = 0
        while pos < size:
            take = min(PREFILL_CHUNK, size - pos)
            # analysis: allow(raw-store-outside-protocol) -- prefill of pre-existing file content, not measured traffic
            device.buffer.store(base + pos, payload[:take])
            pos += take
        device.buffer.drain()
        fs.volume.set_size(handle.inode, size)
    except NotImplementedError:
        pos = 0
        while pos < size:
            take = min(PREFILL_CHUNK, size - pos)
            handle.write(pos, payload[:take])
            pos += take
        handle.fsync()
    fs.take_traces()
    if hasattr(fs, "take_bg_traces"):
        fs.take_bg_traces()


def _offsets(job: FioJob, thread: int, per_thread_ops: int) -> List[int]:
    """Per-thread offset streams. Sequential threads stride through
    disjoint starting points (FIO's default offset interleave)."""
    max_blocks = max(1, job.fsize // job.bs)
    if job.is_random:
        rng = random.Random(job.seed * 1000003 + thread)
        return [rng.randrange(max_blocks) * job.bs for _ in range(per_thread_ops)]
    start = (thread * max_blocks) // max(1, job.threads)
    return [((start + i) % max_blocks) * job.bs for i in range(per_thread_ops)]


def run_fio(fs: FileSystem, job: FioJob, filename: str = "fio.dat") -> FioResult:
    """Execute *job* against *fs* and price it on the virtual clock."""
    handle = fs.create(filename, capacity=job.fsize)
    if job.prefill:
        _prefill(fs, handle, job.fsize)
    stats_base = fs.device.stats.snapshot()
    api_base = fs.api.snapshot()

    per_thread = max(1, job.nops // job.threads)
    offsets = [_offsets(job, t, per_thread) for t in range(job.threads)]
    payload = b"\xab" * job.bs
    mix_rng = random.Random(job.seed ^ 0x5EED)

    thread_traces: List[List[OpTrace]] = [[] for _ in range(job.threads)]
    writes_since_sync = [0] * job.threads
    total_bytes = 0
    ops = 0
    latencies: List[float] = []

    def collect(t: int) -> None:
        new = fs.take_traces()
        thread_traces[t].extend(new)
        if new:
            latencies.append(sum(tr.duration_ns(fs.timing.lock_ns) for tr in new))

    for i in range(per_thread):
        for t in range(job.threads):
            if hasattr(fs, "current_thread"):
                fs.current_thread = t
            off = offsets[t][i]
            kind = job.kind
            if kind == "rw":
                kind = "write" if mix_rng.random() < job.write_ratio else "read"
            if kind == "write":
                handle.write(off, payload)
                total_bytes += job.bs
                writes_since_sync[t] += 1
                if job.fsync and writes_since_sync[t] >= job.fsync:
                    handle.fsync()
                    writes_since_sync[t] = 0
            else:
                handle.read(off, job.bs)
                total_bytes += job.bs
            ops += 1
            collect(t)

    # Per-thread trailers (release lazily retained MGL intention locks).
    if hasattr(fs, "end_thread"):
        for t in range(job.threads):
            fs.end_thread(t)
            collect(t)

    bg_traces = fs.take_bg_traces() if hasattr(fs, "take_bg_traces") else []

    dev_delta = fs.device.stats.delta(stats_base)
    api_delta = fs.api.delta(api_base)
    amp = (
        dev_delta.stored_bytes / api_delta.bytes_written
        if api_delta.bytes_written
        else 0.0
    )

    if job.threads == 1 and not bg_traces:
        elapsed = sum(tr.duration_ns(fs.timing.lock_ns) for tr in thread_traces[0])
        lock_wait = 0.0
    else:
        streams = [traces for traces in thread_traces]
        daemon = 0
        if bg_traces:
            streams.append(bg_traces)
            # A daemon flusher (MGSP async write-back) contends for
            # channels/locks but its tail does not extend the makespan;
            # demand-driven drains (libnvmmio pressure relief) do.
            daemon = 1 if getattr(fs, "bg_daemon", False) else 0
        engine = ReplayEngine(fs.timing, obs=fs.obs)
        result = engine.run(streams, background=daemon)
        elapsed = result.makespan_ns
        lock_wait = result.total_lock_wait_ns

    mst_rate = 0.0
    if hasattr(handle, "mst_hits"):
        total = handle.mst_hits + handle.mst_misses
        mst_rate = handle.mst_hits / total if total else 0.0

    return FioResult(
        job=job,
        fs_name=fs.name,
        elapsed_ns=elapsed,
        total_bytes=total_bytes,
        ops=ops,
        write_amplification=amp,
        lock_wait_ns=lock_wait,
        mst_hit_rate=mst_rate,
        latencies_ns=latencies[:ops],
    )
