"""Mobibench-style SQLite micro-transactions (Fig 11).

Mobibench drives SQLite with single-statement transactions: INSERT,
UPDATE, or DELETE on a simple table. Each statement is one transaction
(autocommit), which in WAL mode means one WAL append + fsync, and in
OFF mode one in-place page write + fsync — exactly the pattern whose
cost the underlying file system's consistency machinery dominates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db import Database
from repro.fsapi.interface import FileSystem


@dataclass
class MobibenchResult:
    fs_name: str
    journal_mode: str
    mode: str
    transactions: int
    elapsed_ns: float

    @property
    def tx_per_sec(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.transactions / (self.elapsed_ns * 1e-9)


_PAYLOAD = "x" * 100  # Mobibench default record is ~100 bytes of text


def run_mobibench(
    fs: FileSystem,
    mode: str = "insert",  # insert | update | delete
    journal_mode: str = "wal",
    transactions: int = 300,
    seed: int = 7,
) -> MobibenchResult:
    if mode not in ("insert", "update", "delete"):
        raise ValueError(f"unknown mobibench mode {mode!r}")
    db = Database(fs, name="mobi.db", journal_mode=journal_mode)
    table = db.create_table("tbl")
    rng = random.Random(seed)

    # Setup rows for update/delete outside the measured window.
    prepopulate = transactions if mode in ("update", "delete") else 0
    for i in range(prepopulate):
        table.insert((i,), (i, _PAYLOAD))
    fs.take_traces()
    if hasattr(fs, "take_bg_traces"):
        fs.take_bg_traces()

    # Measured window: one statement per transaction (autocommit).
    for i in range(transactions):
        if mode == "insert":
            table.insert((prepopulate + i,), (i, _PAYLOAD))
        elif mode == "update":
            victim = rng.randrange(prepopulate)
            table.update((victim,), (victim, _PAYLOAD + str(i)))
        else:
            table.delete((i,))
    traces = fs.take_traces()
    elapsed = sum(tr.duration_ns(fs.timing.lock_ns) for tr in traces)
    db.close()
    return MobibenchResult(
        fs_name=fs.name,
        journal_mode=journal_mode,
        mode=mode,
        transactions=transactions,
        elapsed_ns=elapsed,
    )
