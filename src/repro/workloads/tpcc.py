"""TPC-C on the embedded database (Fig 12).

A faithful-in-structure, scaled-down TPC-C: the nine tables with their
composite primary keys and the five transaction types at the standard
mix (New-Order 45%, Payment 43%, Order-Status 4%, Delivery 4%,
Stock-Level 4%). Row payloads are trimmed but every read/write the spec
prescribes against the primary keys is performed, so the I/O pattern —
small scattered updates inside multi-statement transactions — matches
what SQLite generates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict

from repro.db import Database
from repro.fsapi.interface import FileSystem

#: scaled-down cardinalities (full spec: 10 districts, 3000 customers,
#: 100000 items; scaled to keep simulated runs tractable)
DISTRICTS = 10
CUSTOMERS_PER_DISTRICT = 120
ITEMS = 4000
STOCK_PER_WAREHOUSE = ITEMS

MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)


@dataclass
class TpccResult:
    fs_name: str
    journal_mode: str
    transactions: int
    elapsed_ns: float
    per_type: Dict[str, int] = field(default_factory=dict)

    @property
    def tpm(self) -> float:
        """Transactions per simulated minute."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.transactions / (self.elapsed_ns * 1e-9) * 60.0

    @property
    def tx_per_sec(self) -> float:
        return self.tpm / 60.0


class TpccDriver:
    def __init__(self, db: Database, warehouse: int = 1, seed: int = 99) -> None:
        self.db = db
        self.w = warehouse
        self.rng = random.Random(seed)
        self.next_order_id: Dict[int, int] = {}
        self.next_delivery: Dict[int, int] = {}

    # -- schema / load -----------------------------------------------------------

    def create_schema(self) -> None:
        for name in (
            "warehouse",
            "district",
            "customer",
            "item",
            "stock",
            "orders",
            "new_order",
            "order_line",
            "history",
        ):
            self.db.create_table(name)
        # The spec's customer-by-last-name access path (60% of payments).
        self.db.table("customer").create_index("by_last", (1,))

    def load(self) -> None:
        db, w = self.db, self.w
        db.begin()
        db.table("warehouse").insert((w,), (f"W{w}", 0.1, 300000.0))
        for d in range(1, DISTRICTS + 1):
            db.table("district").insert((w, d), (f"D{d}", 0.1, 30000.0, 1))
            self.next_order_id[d] = 1
            self.next_delivery[d] = 1
            for c in range(1, CUSTOMERS_PER_DISTRICT + 1):
                db.table("customer").insert(
                    (w, d, c),
                    (f"C{c}", f"LAST{c % 12}", 50000.0, -10.0, 10.0, 1, 0),
                )
        for i in range(1, ITEMS + 1):
            db.table("item").insert((i,), (f"item-{i}", float(self.rng.randrange(100, 10000)) / 100.0))
            db.table("stock").insert((w, i), (self.rng.randrange(10, 100), 0, 0, 0))
        db.commit()

    # -- transactions ----------------------------------------------------------------

    def new_order(self) -> None:
        db, w, rng = self.db, self.w, self.rng
        d = rng.randrange(1, DISTRICTS + 1)
        c = rng.randrange(1, CUSTOMERS_PER_DISTRICT + 1)
        n_lines = rng.randrange(5, 16)
        db.begin()
        district = db.table("district").get((w, d))
        o_id = self.next_order_id[d]
        self.next_order_id[d] += 1
        db.table("district").update((w, d), district[:3] + (o_id + 1,))
        db.table("customer").get((w, d, c))
        db.table("orders").insert((w, d, o_id), (c, n_lines, 0))
        db.table("new_order").insert((w, d, o_id), (1,))
        total = 0.0
        for line in range(1, n_lines + 1):
            item_id = rng.randrange(1, ITEMS + 1)
            qty = rng.randrange(1, 11)
            item = db.table("item").get((item_id,))
            stock = db.table("stock").get((w, item_id))
            new_qty = stock[0] - qty if stock[0] - qty >= 10 else stock[0] - qty + 91
            db.table("stock").update(
                (w, item_id), (new_qty, stock[1] + qty, stock[2] + 1, stock[3])
            )
            amount = qty * item[1]
            total += amount
            db.table("order_line").insert((w, d, o_id, line), (item_id, qty, amount))
        db.commit()

    def payment(self) -> None:
        db, w, rng = self.db, self.w, self.rng
        d = rng.randrange(1, DISTRICTS + 1)
        c = rng.randrange(1, CUSTOMERS_PER_DISTRICT + 1)
        amount = rng.randrange(100, 500000) / 100.0
        db.begin()
        if rng.random() < 0.6:
            # Spec: 60% of payments select the customer by last name,
            # taking the middle match — exercised via the secondary index.
            matches = sorted(
                db.table("customer").lookup_by("by_last", (f"LAST{c % 12}",))
            )
            if matches:
                c = int(matches[len(matches) // 2][0][1:])
        warehouse = db.table("warehouse").get((w,))
        db.table("warehouse").update((w,), (warehouse[0], warehouse[1], warehouse[2] + amount))
        district = db.table("district").get((w, d))
        db.table("district").update((w, d), (district[0], district[1], district[2] + amount, district[3]))
        customer = db.table("customer").get((w, d, c))
        db.table("customer").update(
            (w, d, c),
            customer[:3] + (customer[3] - amount, customer[4] + amount) + customer[5:],
        )
        db.table("history").insert(
            (w, d, c, self.rng.randrange(1 << 30)), (amount, "payment")
        )
        db.commit()

    def order_status(self) -> None:
        db, w, rng = self.db, self.w, self.rng
        d = rng.randrange(1, DISTRICTS + 1)
        c = rng.randrange(1, CUSTOMERS_PER_DISTRICT + 1)
        db.begin()
        db.table("customer").get((w, d, c))
        last = self.next_order_id[d] - 1
        if last >= 1:
            db.table("orders").get((w, d, last))
            for _ in db.table("order_line").scan_prefix((w, d, last)):
                pass
        db.commit()

    def delivery(self) -> None:
        db, w = self.db, self.w
        db.begin()
        for d in range(1, DISTRICTS + 1):
            o_id = self.next_delivery[d]
            if o_id >= self.next_order_id[d]:
                continue
            self.next_delivery[d] += 1
            db.table("new_order").delete((w, d, o_id))
            order = db.table("orders").get((w, d, o_id))
            if order is None:
                continue
            db.table("orders").update((w, d, o_id), (order[0], order[1], 1))
            total = 0.0
            for _key, row in db.table("order_line").scan_prefix((w, d, o_id)):
                total += row[2]
            c = order[0]
            customer = db.table("customer").get((w, d, c))
            db.table("customer").update(
                (w, d, c), customer[:2] + (customer[2] + total,) + customer[3:]
            )
        db.commit()

    def stock_level(self) -> None:
        db, w, rng = self.db, self.w, self.rng
        d = rng.randrange(1, DISTRICTS + 1)
        threshold = rng.randrange(10, 21)
        db.begin()
        last = self.next_order_id[d] - 1
        low = 0
        for o_id in range(max(1, last - 20), last + 1):
            for _key, row in db.table("order_line").scan_prefix((w, d, o_id)):
                stock = db.table("stock").get((w, row[0]))
                if stock is not None and stock[0] < threshold:
                    low += 1
        db.commit()

    def run_transaction(self) -> str:
        pick = self.rng.random()
        acc = 0.0
        for name, weight in MIX:
            acc += weight
            if pick < acc:
                getattr(self, name)()
                return name
        self.delivery()
        return "delivery"


def run_tpcc(
    fs: FileSystem,
    journal_mode: str = "wal",
    transactions: int = 200,
    seed: int = 99,
    capacity: int = 40 << 20,
) -> TpccResult:
    # A bounded page cache much smaller than the dataset, as in the
    # paper's SQLite runs: order lines / stock / customers miss often.
    db = Database(
        fs, name="tpcc.db", journal_mode=journal_mode, capacity=capacity, cache_pages=128
    )
    driver = TpccDriver(db, seed=seed)
    driver.create_schema()
    driver.load()
    # Warm the working set with some orders so delivery/status have data.
    for _ in range(20):
        driver.new_order()
    fs.take_traces()
    if hasattr(fs, "take_bg_traces"):
        fs.take_bg_traces()

    per_type: Dict[str, int] = {}
    for _ in range(transactions):
        name = driver.run_transaction()
        per_type[name] = per_type.get(name, 0) + 1
    traces = fs.take_traces()
    elapsed = sum(tr.duration_ns(fs.timing.lock_ns) for tr in traces)
    db.close()
    return TpccResult(
        fs_name=fs.name,
        journal_mode=journal_mode,
        transactions=transactions,
        elapsed_ns=elapsed,
        per_type=per_type,
    )
