"""An interactive demo shell over a simulated MGSP mount.

``python -m repro.shell`` gives a tiny REPL for poking the system —
handy for demos and exploratory debugging::

    mgsp> write notes 0 hello-world
    mgsp> read notes 0 11
    hello-world
    mgsp> tree notes
    mgsp> crash 0.5
    simulated power loss; recovered 1 in-flight op, 0 discarded
    mgsp> read notes 0 11
    hello-world

Commands are plain functions on :class:`Shell`, so the test suite drives
them directly.
"""

from __future__ import annotations

import random
import shlex
import sys
from typing import Dict, List, Optional

from repro.core import MgspConfig, MgspFilesystem, recover, verify_file
from repro.errors import ReproError
from repro.inspect import describe_device, describe_volume, dump_metalog, dump_tree
from repro.nvm.device import NvmDevice
from repro.util import parse_size


class Shell:
    def __init__(self, device_size: int = 128 << 20, seed: int = 0) -> None:
        self.fs = MgspFilesystem(device_size=device_size, config=MgspConfig())
        self.handles: Dict[str, object] = {}
        self.rng = random.Random(seed)

    # -- helpers -------------------------------------------------------------

    def _handle(self, name: str):
        handle = self.handles.get(name)
        if handle is None:
            if self.fs.exists(name):
                handle = self.fs.open(name)
            else:
                handle = self.fs.create(name, capacity=4 << 20)
            self.handles[name] = handle
        return handle

    # -- commands (each returns the text to print) -----------------------------

    def cmd_help(self) -> str:
        return (
            "commands:\n"
            "  write FILE OFF TEXT    atomic durable write\n"
            "  read FILE OFF LEN      read latest bytes\n"
            "  fill FILE OFF SIZE CH  write SIZE bytes of CH (e.g. 64k x)\n"
            "  txn FILE OFF1=T1 ...   multi-write transaction\n"
            "  crash [P]              power loss (unfenced words survive w.p. P)\n"
            "  checkpoint FILE        write logs back, reclaim space\n"
            "  tree FILE | metalog | volume | device   inspect state\n"
            "  verify FILE            run the fsck\n"
            "  stats                  device traffic counters\n"
            "  quit"
        )

    def cmd_write(self, name: str, offset: str, text: str) -> str:
        handle = self._handle(name)
        handle.write(parse_size(offset), text.encode())
        return f"wrote {len(text)} bytes at {offset} (atomic, durable)"

    def cmd_fill(self, name: str, offset: str, size: str, char: str = "x") -> str:
        handle = self._handle(name)
        n = parse_size(size)
        handle.write(parse_size(offset), char[:1].encode() * n)
        return f"filled {n} bytes"

    def cmd_read(self, name: str, offset: str, length: str) -> str:
        handle = self._handle(name)
        data = handle.read(parse_size(offset), parse_size(length))
        return data.decode("utf-8", errors="replace")

    def cmd_txn(self, name: str, *assignments: str) -> str:
        handle = self._handle(name)
        with self.fs.begin_transaction(handle) as txn:
            for assignment in assignments:
                off, _, text = assignment.partition("=")
                txn.write(parse_size(off), text.encode())
        return f"committed {len(assignments)} writes atomically"

    def cmd_crash(self, probability: str = "0.5") -> str:
        image = self.fs.device.crash_image(
            rng=self.rng, persist_probability=float(probability)
        )
        device = NvmDevice.from_image(bytes(image))
        self.fs, stats = recover(device)
        self.handles.clear()
        return (
            f"simulated power loss; recovered {stats.entries_replayed} in-flight "
            f"op(s), {stats.entries_discarded} discarded, "
            f"{stats.log_bytes_written_back:,} log bytes written back"
        )

    def cmd_checkpoint(self, name: str) -> str:
        copied = self._handle(name).checkpoint()
        return f"checkpointed: {copied:,} bytes written back"

    def cmd_tree(self, name: str) -> str:
        return dump_tree(self._handle(name))

    def cmd_metalog(self) -> str:
        return dump_metalog(self.fs.metalog)

    def cmd_volume(self) -> str:
        return describe_volume(self.fs.volume)

    def cmd_device(self) -> str:
        return describe_device(self.fs.device)

    def cmd_verify(self, name: str) -> str:
        report = verify_file(self._handle(name))
        if report.ok:
            return (
                f"OK: {report.nodes_checked} nodes, {report.valid_logs} live logs, "
                f"{report.fresh_bytes:,} fresh bytes"
            )
        return "FAILED:\n  " + "\n  ".join(report.errors)

    def cmd_stats(self) -> str:
        s = self.fs.device.stats
        return (
            f"stores={s.stores:,} bytes={s.stored_bytes:,} "
            f"flushes={s.flushed_lines:,} fences={s.fences:,}"
        )

    # -- dispatch -----------------------------------------------------------------

    def execute(self, line: str) -> Optional[str]:
        """Run one command line; returns output text, or None on quit."""
        parts = shlex.split(line)
        if not parts:
            return ""
        command, args = parts[0], parts[1:]
        if command in ("quit", "exit"):
            return None
        method = getattr(self, f"cmd_{command}", None)
        if method is None:
            return f"unknown command {command!r} (try 'help')"
        try:
            return method(*args)
        except ReproError as exc:
            return f"error: {exc}"
        except TypeError as exc:
            return f"usage error: {exc}"


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - interactive
    shell = Shell()
    print("MGSP demo shell — 'help' for commands, 'quit' to leave")
    while True:
        try:
            line = input("mgsp> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        output = shell.execute(line)
        if output is None:
            return 0
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
