"""``python -m repro.infer`` — mine and falsify persistence invariants.

Examples::

    # mine MGSP-sync fio invariants, falsify with a 200-point budget
    python -m repro.infer --workload fio --fs mgsp --budget 200 --seed 7

    # strict mode: any true bug OR unretired benign reordering fails
    python -m repro.infer --workload txn --fs mgsp --strict

    # the planted-bug fixture (must exit nonzero)
    python -m repro.infer --workload toy --fs planted

Exit codes: 0 clean, 1 true bugs found (always) or unretired benign
reorderings (``--strict`` only), 2 usage errors.

The JSON report goes to stdout (or ``--out``) and is byte-deterministic
for fixed arguments; the human summary goes to stderr so redirecting
stdout captures pure JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro.infer.falsify import TRUE_BUG, falsify
from repro.infer.miner import mine
from repro.infer.report import build_report, render
from repro.infer.subjects import SUBJECTS, collect_traces, resolve


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.infer",
        description="inferred-invariant crash testing (mine → falsify → triage)",
    )
    parser.add_argument(
        "--workload",
        default="fio",
        help="workload alias (fio/txn/ycsb/mpsc/toy; default fio)",
    )
    parser.add_argument(
        "--fs",
        default="mgsp",
        choices=sorted(SUBJECTS),
        help="subject system (default mgsp)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=200,
        help="falsification budget: policy points + surgical probes (default 200)",
    )
    parser.add_argument("--seed", type=int, default=0, help="sweep seed (default 0)")
    parser.add_argument(
        "--min-support",
        type=int,
        default=5,
        help="min observations for a candidate to be falsified (default 5)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=3,
        help="passing runs to mine (1 canonical + N-1 reseeded variants; default 3)",
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=None,
        help="stop collecting after N events per run (default unlimited)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on benign reorderings that lack a retirement entry",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here instead of stdout"
    )
    parser.add_argument(
        "--bundle-dir",
        metavar="DIR",
        default=None,
        help="write a black-box bundle per true bug into DIR "
        "(flight-recorder tail, metrics, held locks, reproducer)",
    )
    args = parser.parse_args(argv)

    try:
        workload_name, config_name = resolve(args.fs, args.workload)
    except ValueError as exc:
        parser.error(str(exc))

    traces = collect_traces(
        workload_name, config_name, runs=args.runs, max_events=args.max_events
    )
    candidates = mine(traces)
    verdicts = falsify(
        candidates,
        workload_name,
        config_name,
        args.fs,
        budget=args.budget,
        seed=args.seed,
        min_support=args.min_support,
    )
    report = build_report(
        args.fs,
        args.workload,
        workload_name,
        config_name,
        traces,
        verdicts,
        budget=args.budget,
        seed=args.seed,
        min_support=args.min_support,
    )
    text = render(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)

    summary = ", ".join(f"{k}={v}" for k, v in report["summary"].items())
    print(
        f"{args.fs}/{args.workload}: {len(report['candidates'])} candidates "
        f"({summary or 'none'})",
        file=sys.stderr,
    )
    for verdict in verdicts:
        if verdict.status == TRUE_BUG:
            c = verdict.candidate
            print(
                f"TRUE BUG {c.family}({c.a}{' -> ' + c.b if c.b else ''}): "
                f"{verdict.reason}",
                file=sys.stderr,
            )

    if args.bundle_dir:
        from repro.obs import blackbox

        for verdict in verdicts:
            if verdict.status != TRUE_BUG:
                continue
            c = verdict.candidate
            extra = {
                "candidate": {"family": c.family, "a": c.a, "b": c.b},
                "minimized_words": verdict.minimized_words,
            }
            failure = verdict.policy_failure
            if failure is not None:
                bundle = blackbox.capture(
                    workload_name,
                    config_name,
                    failure.crash_after,
                    seed=args.seed,
                    policy=failure.policy,
                    kind="infer-true-bug",
                    violations=failure.violations,
                    reproducer=failure.reproducer,
                    extra=extra,
                )
            else:
                # surgical bug: the minimized keep-set pins the image
                at = verdict.target_points[0]
                reproducer = verdict.reproducer or (
                    f"python -m repro.infer --fs {args.fs} --workload {args.workload}"
                    f" --budget {args.budget} --seed {args.seed}"
                    f" (surgical probe at event {at})"
                )
                bundle = blackbox.capture(
                    workload_name,
                    config_name,
                    at,
                    seed=args.seed,
                    persist_words=verdict.minimized_words,
                    kind="infer-true-bug",
                    reproducer=reproducer,
                    extra=extra,
                )
            path = blackbox.write_bundle(bundle, args.bundle_dir)
            print(f"black-box bundle: {path}", file=sys.stderr)

    if report["true_bugs"]:
        return 1
    if args.strict and report["unretired_benign"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
