"""Targeted falsification of mined invariants via crashsweep.

Each surviving candidate maps to the *exact* crash points that could
violate it (witness indices from the canonical trace — index parity
with ``CrashPlan`` makes these literal ``crash_after`` values), and two
kinds of evidence are gathered there:

1. a **policy pass** — one ``crashsweep.sweep_unit`` over the union of
   target points with the standard DROP_ALL/KEEP_ALL/RANDOM policies.
   Any failure is a true bug with a ready-made CLI reproducer line;
2. a **surgical probe** per candidate — replay to the target point and
   compose ``crash_image(persist_words=...)`` keeping everything except
   the candidate's "must already be durable" words (persist-before: B
   survives, A dropped; never-torn: half of one wide store dropped;
   fenced-by-op-end: the op's words dropped). If those words are no
   longer persist-candidates the violating image is *unreachable* and
   the invariant is empirically confirmed; if the image is reachable,
   recovery's verdict splits true bug from benign reordering.

Benign reorderings — reachable violation, oracle holds — refute the
invariant as a *requirement* while proving the implementation tolerates
it. Known-benign reorderings are retired via :data:`RETIREMENTS` so
``--strict`` runs stay green without hiding novel findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.nvm.crash import CrashPlan

from repro.crashsweep.sweep import minimize_failure, sweep_unit
from repro.crashsweep.workloads import get_workload

from repro.infer.miner import (
    FENCED_BY_OP_END,
    NEVER_TORN,
    PERSIST_BEFORE,
    Candidate,
)

#: statuses, roughly strongest-claim first
CONFIRMED = "confirmed"
TRUE_BUG = "true-bug"
REFUTED_BENIGN = "refuted-benign"
RETIRED_BENIGN = "retired-benign"
VIOLATED_IN_TRACE = "violated-in-trace"
BELOW_SUPPORT = "below-support"
UNPROBED = "unprobed"

#: (fs alias, family, region a, region b) -> documented reason why the
#: refuted ordering is benign. Every entry must correspond to a
#: reproducible refuted-benign finding; ``--strict`` fails on any
#: *unretired* benign so new reorderings surface instead of rotting.
RETIREMENTS: Dict[Tuple[str, str, str, str], str] = {
    # -- MGSP (sync): every entry reproduced on fio/txn/ycsb traces -------
    ("mgsp", NEVER_TORN, "metalog", ""): (
        "metalog entries are checksummed; a torn entry is detected and "
        "discarded by recovery, so the pre-fence tear window is harmless"
    ),
    ("mgsp", NEVER_TORN, "log_area", ""): (
        "log-area data is referenced only by a later metalog commit; a "
        "tear before the commit fence rolls back with the op"
    ),
    ("mgsp", NEVER_TORN, "data_area", ""): (
        "data-area write-back is replayed from the persistent log on "
        "recovery; a torn write-back is overwritten by the replay"
    ),
    ("mgsp", PERSIST_BEFORE, "node_tables", "log_area"): (
        "node-table refresh words may reorder after log data; recovery "
        "rebuilds them from the metalog, only the commit words bind"
    ),
    ("mgsp", PERSIST_BEFORE, "node_tables", "data_area"): (
        "node-table refresh words may trail data write-back; recovery "
        "rebuilds them from the metalog before the tables are read"
    ),
    ("mgsp", PERSIST_BEFORE, "node_tables", "superblock"): (
        "superblock epoch updates do not depend on in-flight node-table "
        "refresh words; the metalog rebuild restores the tables"
    ),
    # -- MGSP (async write-back): same recovery arguments as sync ---------
    ("mgsp-async", NEVER_TORN, "metalog", ""): "same checksum guard as sync mode",
    ("mgsp-async", NEVER_TORN, "log_area", ""): "same rollback-with-op argument as sync mode",
    ("mgsp-async", NEVER_TORN, "data_area", ""): "same log-replay argument as sync mode",
    ("mgsp-async", PERSIST_BEFORE, "node_tables", "log_area"): (
        "same metalog-rebuild argument as sync mode"
    ),
    ("mgsp-async", PERSIST_BEFORE, "node_tables", "data_area"): (
        "same metalog-rebuild argument as sync mode"
    ),
    ("mgsp-async", PERSIST_BEFORE, "node_tables", "superblock"): (
        "same metalog-rebuild argument as sync mode"
    ),
    ("mgsp-async", PERSIST_BEFORE, "data_area", "log_area"): (
        "async write-back lets in-place data trail the log append; the "
        "log is the durability source, write-back replays on recovery"
    ),
    # -- Libnvmmio --------------------------------------------------------
    ("libnvmmio", PERSIST_BEFORE, "log_area", "journal"): (
        "log data and its per-entry meta record share one op-end fence, "
        "so meta-before-data is reachable; recovery replays nothing from "
        "uncommitted epochs, so the byte-wise oracle holds either way"
    ),
    ("libnvmmio", NEVER_TORN, "log_area", ""): (
        "log chunks are torn only inside an unsynced epoch; fsync's "
        "checkpoint fence is the only durability promise libnvmmio makes"
    ),
    ("libnvmmio", NEVER_TORN, "data_area", ""): (
        "checkpoint write-back is byte-idempotent: every torn byte is "
        "either the old or the new value, both legal under the byte-wise "
        "fsync contract"
    ),
    # -- NOVA -------------------------------------------------------------
    ("nova", NEVER_TORN, "journal", ""): (
        "journal entries carry a crc32; recovery discards torn entries "
        "and the pre-entry data fence keeps old state consistent"
    ),
    ("nova", NEVER_TORN, "data_area", ""): (
        "CoW pages are unreachable until their journal entry commits; a "
        "tear before the data fence tears an orphan"
    ),
    ("nova", PERSIST_BEFORE, "node_tables", "superblock"): (
        "pointer swings and the inode size update share the post-commit "
        "fence; the still-valid journal entry replays both on recovery"
    ),
    # -- durable MPSC queue ----------------------------------------------
    ("pqueue", NEVER_TORN, "qslot_body", ""): (
        "slot bodies are guarded by the commit word's crc32; a torn "
        "body fails validation and the slot reads as unpublished"
    ),
    ("pqueue-async", NEVER_TORN, "qslot_body", ""): (
        "same crc guard as sync mode"
    ),
}


@dataclass
class Verdict:
    """One candidate's post-falsification classification."""

    candidate: Candidate
    status: str
    reason: str
    target_points: List[int] = field(default_factory=list)
    probes: int = 0
    reproducer: Optional[str] = None
    minimized_words: Optional[List[int]] = None
    retirement: Optional[str] = None
    #: the phase-1 crashsweep Failure behind a policy-pass TRUE_BUG
    #: (None for surgical bugs) — lets the CLI capture a black-box
    #: bundle with the exact policy/crash-index pair, not a re-parse
    #: of the reproducer string
    policy_failure: Optional[object] = None


def _probe_plan(candidate: Candidate) -> Optional[Tuple[int, List[int]]]:
    """(crash_after, words-to-drop) for one candidate's surgical probe,
    or None when the family is structurally confirmed (nothing to drop).
    """
    w = candidate.witness
    if w is None:
        return None
    if candidate.family == PERSIST_BEFORE:
        if w.get("post_fence_index") is not None:
            return (w["post_fence_index"], list(w["a_live_post_fence"]))
        return (w["b_index"] + 1, list(w["a_live_words"]))
    if candidate.family == NEVER_TORN:
        words = w["words"]
        # tear: keep the first half of the wide store, drop the rest
        return (w["store_index"] + 1, list(words[len(words) // 2 :]))
    if candidate.family == FENCED_BY_OP_END:
        return (w["end_index"], list(w["r_words"]))
    return None


def falsify(
    candidates: List[Candidate],
    workload_name: str,
    config_name: str,
    fs_alias: str,
    budget: int = 200,
    seed: int = 0,
    min_support: int = 5,
) -> List[Verdict]:
    """Classify every candidate; deterministic for fixed inputs."""
    workload = get_workload(workload_name)
    verdicts: List[Verdict] = []
    active: List[Tuple[Candidate, Optional[Tuple[int, List[int]]]]] = []

    for candidate in candidates:  # already key-sorted by the miner
        status = candidate.mined_status(min_support)
        if status == VIOLATED_IN_TRACE:
            verdicts.append(
                Verdict(
                    candidate,
                    VIOLATED_IN_TRACE,
                    "refuted by the passing traces themselves "
                    f"({candidate.violations} counterexamples)",
                )
            )
        elif status == BELOW_SUPPORT:
            verdicts.append(
                Verdict(
                    candidate,
                    BELOW_SUPPORT,
                    f"support {candidate.support} in "
                    f"{candidate.runs_present}/{candidate.runs_total} runs "
                    f"(min {min_support})",
                )
            )
        else:
            active.append((candidate, _probe_plan(candidate)))

    # -- phase 1: standard-policy pass over the union of target points ----
    point_map: Dict[int, List[int]] = {}
    for i, (candidate, plan) in enumerate(active):
        if plan is not None:
            point_map.setdefault(plan[0], []).append(i)
    points = sorted(point_map)
    if len(points) > max(1, budget // 2):
        points = points[: max(1, budget // 2)]
    points_set = set(points)
    policy_failures: Dict[int, object] = {}
    if points:
        unit = sweep_unit(
            workload_name, config_name, points=points, seed=seed, minimize=True
        )
        for failure in unit.failures:
            policy_failures.setdefault(failure.crash_after, failure)

    # -- phase 2: per-candidate surgical probes ---------------------------
    probes_left = max(0, budget - len(points))
    for candidate, plan in active:
        if plan is None:
            verdicts.append(
                Verdict(
                    candidate,
                    CONFIRMED,
                    "structurally confirmed: no crash image can violate it "
                    "(every relevant store is fenced or single-word)",
                )
            )
            continue
        point, drop_words = plan
        verdict = Verdict(candidate, UNPROBED, "probe budget exhausted", [point])

        failure = policy_failures.get(point) if point in points_set else None
        if failure is not None:
            verdict.status = TRUE_BUG
            verdict.reason = (
                f"standard {failure.policy.value} policy fails at the "
                f"candidate's target point: {failure.violations[0]}"
            )
            verdict.reproducer = failure.reproducer
            verdict.minimized_words = failure.minimized_words
            verdict.policy_failure = failure
            verdicts.append(verdict)
            continue

        if probes_left <= 0:
            verdicts.append(verdict)
            continue
        probes_left -= 1
        verdict.probes = 1

        outcome = workload.run(config_name, CrashPlan(point))
        if not outcome.crashed:
            verdict.status = CONFIRMED
            verdict.reason = "target point lies beyond the event stream"
            verdicts.append(verdict)
            continue
        device = outcome.fs.device
        reachable = set(device.unfenced_words())
        drop = sorted(set(drop_words) & reachable)
        if not drop:
            verdict.status = CONFIRMED
            verdict.reason = (
                "violating image unreachable: the words the invariant "
                "protects are already durable at the crash point"
            )
            verdicts.append(verdict)
            continue
        keep = sorted(reachable - set(drop))
        image = bytes(device.crash_image(persist_words=keep))
        violations = workload.check(image, config_name, outcome.oracles)
        if violations:
            verdict.status = TRUE_BUG
            verdict.reason = (
                f"surgical violation (dropped {len(drop)} words) breaks "
                f"recovery: {violations[0]}"
            )
            verdict.minimized_words = minimize_failure(
                device,
                config_name,
                outcome.oracles,
                keep,
                checker=workload.check,
            )
            # Surgical images are not expressible as a crashsweep policy
            # line; the CLI layer emits a `python -m repro.infer`
            # reproducer from target_points + minimized_words instead.
        else:
            key = (fs_alias, candidate.family, candidate.a, candidate.b)
            retirement = RETIREMENTS.get(key)
            if retirement is not None:
                verdict.status = RETIRED_BENIGN
                verdict.retirement = retirement
                verdict.reason = (
                    "reordering reachable but tolerated; retired: " + retirement
                )
            else:
                verdict.status = REFUTED_BENIGN
                verdict.reason = (
                    f"reordering reachable (dropped {len(drop)} words) but "
                    "recovery holds — not a required invariant"
                )
        verdicts.append(verdict)

    order = {c.key: i for i, c in enumerate(candidates)}
    verdicts.sort(key=lambda v: order[v.candidate.key])
    return verdicts
