"""Inferred-invariant crash testing (WITCHER-style).

Pipeline: collect persistence-event traces from passing runs
(:mod:`repro.infer.events`, index-parity with crashsweep) → mine
candidate invariants with support counts (:mod:`repro.infer.miner`) →
falsify survivors at exactly the crash points that would violate them
(:mod:`repro.infer.falsify`) → emit a deterministic JSON report
(:mod:`repro.infer.report`). ``python -m repro.infer`` drives it.

Unlike the hand-written rule set in :mod:`repro.analysis`, inference
needs no per-backend rules: it learns each subject's ordering discipline
from its own traces, so it covers NOVA, Libnvmmio, and raw-device
structures (the durable MPSC queue) as easily as MGSP.
"""

from repro.infer.events import EventCollector, PersistEvent, Trace, attach_collector
from repro.infer.falsify import RETIREMENTS, Verdict, falsify
from repro.infer.miner import Candidate, mine
from repro.infer.report import build_report, render
from repro.infer.subjects import SUBJECTS, collect_traces, resolve

__all__ = [
    "Candidate",
    "EventCollector",
    "PersistEvent",
    "RETIREMENTS",
    "SUBJECTS",
    "Trace",
    "Verdict",
    "attach_collector",
    "build_report",
    "collect_traces",
    "falsify",
    "mine",
    "render",
    "resolve",
]
