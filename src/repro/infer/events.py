"""Persistence-event collection for invariant inference.

The collector is a second consumer of the same ``device.analysis_tap``
observer the :class:`repro.analysis.analyzer.TraceAnalyzer` uses, with
the same event indexing discipline: every ``on_store`` / ``on_flush`` /
``on_fence`` callback consumes exactly one index, and ``on_drain``
resets the counter to zero. Because crashsweep's census counts the same
three event kinds from the same ``stats_base`` (taken right after the
post-setup drain), a collected event's ``index`` *is* the crashsweep
``crash_after`` index — the falsifier can hand it straight to
``CrashPlan`` and hit the corresponding moment exactly.

Unlike the analyzer (which checks rules online and forgets), the
collector keeps the whole event list, tagged with the region each
offset falls in and the operation it happened under, so the miner can
replay durability offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: event kinds, matching the census accounting exactly
STORE = "store"
FLUSH = "flush"
FENCE = "fence"


@dataclass(frozen=True)
class PersistEvent:
    """One indexed persistence event.

    ``index`` is crashsweep-parity: ``CrashPlan(crash_after=index)``
    fires on this event (events ``0..index-1`` completed before it).
    """

    index: int
    kind: str  # STORE | FLUSH | FENCE
    offset: int
    length: int
    store_kind: str  # "store" | "nt" | "atomic" | "" (flush/fence)
    region: str
    op: Optional[str]  # op kind, None outside any op bracket
    op_seq: int  # 0-based completed-op counter; -1 before the first op


@dataclass
class Trace:
    """One passing run's event stream."""

    workload: str
    config_name: str
    events: List[PersistEvent]
    ops: int
    saturated: bool


class EventCollector:
    """``analysis_tap`` observer + ``AnalysisRecorder`` analyzer duck
    type: records every persistence event with region/op context."""

    def __init__(self, regions=None, max_events: Optional[int] = None) -> None:
        self.regions = regions
        self.max_events = max_events
        self.events: List[PersistEvent] = []
        self.event_index = 0
        self.saturated = False
        self.op: Optional[str] = None
        self.op_seq = -1

    # -- indexing (mirrors TraceAnalyzer._next_index) ----------------------

    def _next_index(self) -> Optional[int]:
        idx = self.event_index
        self.event_index += 1
        if self.max_events is not None and idx >= self.max_events:
            self.saturated = True
            return None
        return idx

    def _region(self, offset: int) -> str:
        if self.regions is None:
            return "device"
        return self.regions.classify(offset)

    # -- device.analysis_tap -----------------------------------------------

    def on_store(self, offset: int, length: int, kind: str) -> None:
        idx = self._next_index()
        if idx is None:
            return
        self.events.append(
            PersistEvent(idx, STORE, offset, length, kind, self._region(offset), self.op, self.op_seq)
        )

    def on_flush(self, offset: int, length: int, nlines: int) -> None:
        idx = self._next_index()
        if idx is None:
            return
        self.events.append(
            PersistEvent(idx, FLUSH, offset, length, "", self._region(offset), self.op, self.op_seq)
        )

    def on_fence(self) -> None:
        idx = self._next_index()
        if idx is None:
            return
        self.events.append(PersistEvent(idx, FENCE, 0, 0, "", "", self.op, self.op_seq))

    def on_drain(self) -> None:
        """Setup boundary: everything before the drain is pre-history
        (crashsweep's census starts counting here too)."""
        self.events.clear()
        self.event_index = 0
        self.saturated = False

    # -- AnalysisRecorder op hooks -----------------------------------------

    def on_op_begin(self, name: str) -> None:
        self.op_seq += 1
        self.op = name

    def on_op_end(self, name: str) -> None:
        self.op = None


def attach_collector(system, regions=None, max_events: Optional[int] = None) -> EventCollector:
    """Instrument a workload system (file system or ``RawSystem``) with a
    collector; pass as ``SweepWorkload.run(..., instrument=...)`` body.

    Same shape as ``repro.analysis.harness.attach_analyzer``: the tap
    observes device-level events, an ``AnalysisRecorder`` wrapper feeds
    op boundaries.
    """
    from repro.analysis.analyzer import AnalysisRecorder

    collector = EventCollector(regions=regions, max_events=max_events)
    system.device.analysis_tap = collector
    system.recorder = AnalysisRecorder(system.recorder, collector)
    return collector
