"""Deterministic JSON report for one inference run.

Reports contain only ints, strings, bools, and sorted structures — no
timestamps, floats, or hash-order leakage — so two runs with identical
inputs emit byte-identical JSON (an acceptance criterion and a CI
check). Keep it that way.
"""

from __future__ import annotations

import json
from typing import List

from repro.infer.falsify import REFUTED_BENIGN, TRUE_BUG, Verdict


def _candidate_entry(verdict: Verdict, reproducer_prefix: str) -> dict:
    c = verdict.candidate
    entry = {
        "family": c.family,
        "a": c.a,
        "b": c.b,
        "invariant": c.describe(),
        "support": c.support,
        "violations": c.violations,
        "durability": c.durability,
        "runs": {"present": c.runs_present, "total": c.runs_total},
        "status": verdict.status,
        "reason": verdict.reason,
        "target_points": verdict.target_points,
        "probes": verdict.probes,
    }
    if c.witness is not None:
        entry["witness"] = c.witness
    if c.violation_witness is not None:
        entry["violation_witness"] = c.violation_witness
    if verdict.minimized_words is not None:
        entry["minimized_words"] = verdict.minimized_words
    if verdict.retirement is not None:
        entry["retirement"] = verdict.retirement
    if verdict.reproducer is not None:
        entry["reproducer"] = verdict.reproducer
    elif verdict.status == TRUE_BUG:
        at = verdict.target_points[0] if verdict.target_points else 0
        entry["reproducer"] = f"{reproducer_prefix} (surgical probe at event {at})"
    return entry


def build_report(
    fs_alias: str,
    workload_alias: str,
    workload_name: str,
    config_name: str,
    traces,
    verdicts: List[Verdict],
    budget: int,
    seed: int,
    min_support: int,
) -> dict:
    reproducer_prefix = (
        f"python -m repro.infer --fs {fs_alias} --workload {workload_alias}"
        f" --budget {budget} --seed {seed}"
    )
    by_status: dict = {}
    confirmed_families = sorted(
        {v.candidate.family for v in verdicts if v.status == "confirmed"}
    )
    for v in verdicts:
        by_status[v.status] = by_status.get(v.status, 0) + 1
    return {
        "subject": {
            "fs": fs_alias,
            "workload": workload_alias,
            "registry_workload": workload_name,
            "config": config_name,
        },
        "parameters": {
            "budget": budget,
            "seed": seed,
            "min_support": min_support,
            "runs": len(traces),
        },
        "trace": {
            "events": len(traces[0].events) if traces else 0,
            "ops": traces[0].ops if traces else 0,
            "saturated": any(t.saturated for t in traces),
        },
        "candidates": [_candidate_entry(v, reproducer_prefix) for v in verdicts],
        "summary": dict(sorted(by_status.items())),
        "confirmed_families": confirmed_families,
        "true_bugs": sum(1 for v in verdicts if v.status == TRUE_BUG),
        "unretired_benign": sum(1 for v in verdicts if v.status == REFUTED_BENIGN),
    }


def render(report: dict) -> str:
    """Canonical serialization: sorted keys, 2-space indent, one
    trailing newline."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
