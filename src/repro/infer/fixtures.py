"""Planted-bug fixtures for the inference pipeline's own tests and CI.

``toy-misordered`` is a deliberately broken commit protocol on a raw
device: each record's *commit word* is flushed and fenced while the
record *data* is still sitting dirty in the cache — the classic
commit-before-data crash bug. A crash right after the commit fence can
persist the commit and drop (or tear) the data.

The miner sees ``persist-before(toy_data → toy_commit)`` hold in every
trace (the data store does come first program-order-wise) but at
``dirty`` durability, and the falsifier's surgical image — commit word
kept, data words dropped — makes recovery observe a committed record
with garbage payload: a true bug, with a one-word minimized reproducer.

These fixtures are *not* in the crashsweep registry (the CI sweep must
stay green); ``get_workload`` resolves them lazily by name so
``--at N`` reproducer lines still replay.
"""

from __future__ import annotations

import zlib

from repro.nvm.device import NvmDevice

from repro.crashsweep.workloads import RawSystem, SweepWorkload

DATA0 = 4096
RECSZ = 128
COMMIT0 = 64 << 10
NREC = 12


def payload_for(seq: int) -> bytes:
    return bytes((seq * 37 + j) % 251 for j in range(RECSZ))


def commit_word(seq: int) -> int:
    crc = zlib.crc32(seq.to_bytes(4, "little")) & 0xFFFFFFFF
    return ((seq & 0xFFFFFFFF) << 32) | crc


class ToyRegionMap:
    """Region classifier for the toy record log."""

    def classify(self, offset: int) -> str:
        if DATA0 <= offset < DATA0 + NREC * RECSZ:
            return "toy_data"
        if COMMIT0 <= offset < COMMIT0 + NREC * 8:
            return "toy_commit"
        return "unmapped"


class ToyMisorderedWorkload(SweepWorkload):
    """Append NREC records with the commit fence in the wrong place."""

    name = "toy-misordered"
    description = "planted bug: commit word fenced before its data"
    supported_configs = ("sync",)

    def make_system(self, config_name: str):
        return RawSystem(device_size=128 << 10)

    def region_map(self, system):
        return ToyRegionMap()

    def setup(self, system) -> dict:
        return {"oracles": {}}

    def body(self, system, state: dict) -> None:
        device = system.device
        for i in range(NREC):
            seq = i + 1
            with system.op("record"):
                # BUG: plain cached store, then the commit is made durable
                # while the data is still dirty. The trailing persist()
                # "works on the happy path" — only a crash exposes it.
                device.store(DATA0 + i * RECSZ, payload_for(seq))  # analysis: allow(raw-store-outside-protocol) -- planted-bug fixture: the mis-ordering IS the subject
                device.atomic_store_u64(COMMIT0 + i * 8, commit_word(seq))
                device.flush(COMMIT0 + i * 8, 8)
                device.fence()
                device.persist(DATA0 + i * RECSZ, RECSZ)

    def check(self, image, config_name, oracles, idempotence: bool = True):
        device = NvmDevice.from_image(bytes(image))
        violations = []
        for i in range(NREC):
            seq = i + 1
            commit = device.buffer.load_u64(COMMIT0 + i * 8)
            if commit == 0:
                continue  # never committed: any data state is legal
            if commit != commit_word(seq):
                violations.append(f"record {seq}: corrupt commit word {commit:#x}")
                continue
            data = device.buffer.load(DATA0 + i * RECSZ, RECSZ)
            if data != payload_for(seq):
                violations.append(
                    f"record {seq}: committed but payload is torn/missing"
                )
        return violations


FIXTURE_WORKLOADS = {ToyMisorderedWorkload.name: ToyMisorderedWorkload()}
