"""Likely-invariant mining over persistence-event traces (WITCHER-style).

The miner replays each trace's durability offline — per 8-byte word,
``dirty`` (cached store, unflushed: evictable any time) → ``pending``
(flushed, or written non-temporally, but unfenced: persists iff the
crash keeps it) → durable (fenced) — and emits *candidate invariants*
in three families:

``persist-before(A → B)``
    Within every operation that stores to both regions, A's first store
    precedes B's first store. The candidate's ``durability`` records the
    weakest state A's words were in at B's first store across all ops:
    ``durable`` means the ordering is enforced by a fence (no crash can
    reorder it), ``pending``/``dirty`` mean a crash image *can* persist
    B without A — exactly what the falsifier then constructs.

``never-torn(R)``
    No store to R can persist partially. Violated in-trace by plain
    cached stores wider than the 8-byte atomic unit; weakened to
    ``pending`` by wide non-temporal stores (torn iff the crash lands in
    their pre-fence window); structurally ``durable`` when every store
    is single-word.

``fenced-by-op-end(R)``
    Every word stored to R inside an operation is durable when the
    operation returns (the "durable at op return" contract). Ops that
    leave dirty or pending words violate it in-trace.

Support counting: a candidate's ``support`` sums the per-op (or
per-store) observations across *all* runs, and ``runs_present`` counts
the runs that exhibited it at least once. An invariant survives to
falsification only with zero in-trace violations, support ≥ the
min-support threshold, and presence in every run — the cross-run
intersection prunes patterns specific to one seed's op stream.

Witnesses are taken from the first (canonical) run only: the falsifier
re-executes that exact workload, so witness event indices are crashsweep
``crash_after`` indices into the replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util import CACHE_LINE

from repro.infer.events import FENCE, FLUSH, STORE, Trace

PERSIST_BEFORE = "persist-before"
NEVER_TORN = "never-torn"
FENCED_BY_OP_END = "fenced-by-op-end"

#: weakest-first ranking of durability levels
_LEVELS = {"dirty": 0, "pending": 1, "durable": 2}

#: regions that are not protocol state (unclassified scratch space)
_SKIP_REGIONS = frozenset({"unmapped", ""})


def words_of(offset: int, length: int) -> List[int]:
    """8-byte word offsets covering ``[offset, offset+length)``."""
    start = offset & ~7
    end = (offset + length + 7) & ~7
    return list(range(start, end, 8))


def _weaker(a: str, b: str) -> str:
    return a if _LEVELS[a] <= _LEVELS[b] else b


@dataclass
class Candidate:
    """One mined candidate invariant (or in-trace refutation)."""

    family: str
    a: str  # region A (persist-before) / region R (others)
    b: str = ""  # region B (persist-before only)
    support: int = 0
    violations: int = 0
    durability: str = "durable"
    runs_present: int = 0
    runs_total: int = 0
    #: canonical-run witness of the invariant holding (falsification target)
    witness: Optional[dict] = None
    #: canonical-run witness of an in-trace violation
    violation_witness: Optional[dict] = None

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.family, self.a, self.b)

    def describe(self) -> str:
        if self.family == PERSIST_BEFORE:
            return f"{self.a} persists before {self.b} within an op"
        if self.family == NEVER_TORN:
            return f"stores to {self.a} are never observed torn"
        return f"{self.a} stores are durable at op return"

    def mined_status(self, min_support: int) -> str:
        if self.violations:
            return "violated-in-trace"
        if self.support < min_support or self.runs_present < self.runs_total:
            return "below-support"
        return "active"


class _Durability:
    """Word-granular replay of the x86+ADR durability lattice.

    Cached stores (``store``/``atomic``) are ``dirty`` until flushed,
    ``pending`` until fenced. Non-temporal stores skip the cache: they
    are ``pending`` immediately (the next fence alone drains them).
    """

    def __init__(self) -> None:
        self.state: Dict[int, str] = {}  # word -> "dirty"|"pending"

    def store(self, offset: int, length: int, kind: str) -> None:
        level = "pending" if kind == "nt" else "dirty"
        for w in words_of(offset, length):
            self.state[w] = level

    def flush(self, offset: int, length: int) -> None:
        start = offset & -CACHE_LINE
        end = (offset + length + CACHE_LINE - 1) & -CACHE_LINE
        for w in range(start, end, 8):
            if self.state.get(w) == "dirty":
                self.state[w] = "pending"

    def fence(self) -> None:
        self.state = {w: s for w, s in self.state.items() if s != "pending"}

    def level_of(self, words) -> str:
        level = "durable"
        for w in words:
            s = self.state.get(w)
            if s is not None:
                level = _weaker(level, s)
        return level

    def live_subset(self, words) -> List[int]:
        return sorted(w for w in words if w in self.state)


class _OpScope:
    """Per-operation accumulation for one region."""

    __slots__ = ("first_index", "first_words", "words")

    def __init__(self, first_index: int, first_words: List[int]) -> None:
        self.first_index = first_index
        self.first_words = first_words
        self.words = set(first_words)


def _mine_run(trace: Trace, canonical: bool) -> Dict[Tuple[str, str, str], Candidate]:
    """Mine one run. Witnesses are recorded only on the canonical run."""
    durability = _Durability()
    found: Dict[Tuple[str, str, str], Candidate] = {}

    def cand(family: str, a: str, b: str = "") -> Candidate:
        key = (family, a, b)
        if key not in found:
            found[key] = Candidate(family=family, a=a, b=b)
        return found[key]

    op_regions: Dict[str, _OpScope] = {}
    # (A, B) -> observation dict, keyed at B's first store
    op_pairs: Dict[Tuple[str, str], dict] = {}
    open_op: Optional[int] = None
    end_index = 0  # index right after the open op's latest event

    def close_op() -> None:
        """Fold the finished op's observations into candidates.

        Runs *before* the first post-op event touches durability, so the
        fenced-by-op-end judgement sees the exact at-return state.
        """
        for (a, b), obs in sorted(op_pairs.items()):
            b_event = obs["b_event"]
            c = cand(PERSIST_BEFORE, a, b)
            c.support += 1
            c.durability = _weaker(c.durability, obs["level"])
            # prefer a witness with a post-fence kill point (B durable,
            # A still dirty: DROP_ALL alone violates the ordering there)
            better = c.witness is None or (
                obs["post_fence_index"] is not None
                and c.witness.get("post_fence_index") is None
            )
            if canonical and better:
                c.witness = {
                    "op": b_event.op or "",
                    "op_seq": b_event.op_seq,
                    "b_index": b_event.index,
                    "b_words": words_of(b_event.offset, b_event.length),
                    "a_live_words": obs["a_live"],
                    "post_fence_index": obs["post_fence_index"],
                    "a_live_post_fence": obs["a_live_post_fence"],
                }
            # this op is a counterexample to the reverse direction
            r = cand(PERSIST_BEFORE, b, a)
            r.violations += 1
            if canonical and r.violation_witness is None:
                r.violation_witness = {
                    "op_seq": b_event.op_seq,
                    "observed_order": f"{a} stored before {b}",
                }
        for region, scope in sorted(op_regions.items()):
            c = cand(FENCED_BY_OP_END, region)
            live = durability.live_subset(scope.words)
            if live:
                c.violations += 1
                if canonical and c.violation_witness is None:
                    c.violation_witness = {
                        "end_index": end_index,
                        "live_words": live,
                        "level": durability.level_of(live),
                    }
            else:
                c.support += 1
                if canonical and c.witness is None:
                    c.witness = {
                        "end_index": end_index,
                        "r_words": sorted(scope.words),
                    }
        op_regions.clear()
        op_pairs.clear()

    for event in trace.events:
        if open_op is not None and (event.op is None or event.op_seq != open_op):
            close_op()
            open_op = None

        if event.kind == STORE:
            durability.store(event.offset, event.length, event.store_kind)
            region = event.region
            if region not in _SKIP_REGIONS and event.op is not None:
                w = words_of(event.offset, event.length)

                # never-torn
                t = cand(NEVER_TORN, region)
                t.support += 1
                if event.store_kind == "store" and event.length > 8:
                    t.violations += 1
                    if canonical and t.violation_witness is None:
                        t.violation_witness = {
                            "store_index": event.index,
                            "words": w,
                            "store_kind": event.store_kind,
                        }
                elif event.length > 8:  # wide nt store: pre-fence tear window
                    t.durability = _weaker(t.durability, "pending")
                    if canonical and t.witness is None:
                        t.witness = {"store_index": event.index, "words": w}

                # persist-before bookkeeping
                open_op = event.op_seq
                if region not in op_regions:
                    for other, scope in op_regions.items():
                        a_words = sorted(scope.words)
                        op_pairs[(other, region)] = {
                            "level": durability.level_of(a_words),
                            "a_live": durability.live_subset(a_words),
                            "a_words": a_words,
                            "b_event": event,
                            "post_fence_index": None,
                            "a_live_post_fence": None,
                        }
                    op_regions[region] = _OpScope(event.index, w)
                else:
                    op_regions[region].words.update(w)
        elif event.kind == FLUSH:
            durability.flush(event.offset, event.length)
        elif event.kind == FENCE:
            durability.fence()
            if open_op is not None:
                for obs in op_pairs.values():
                    if obs["post_fence_index"] is not None:
                        continue
                    b_event = obs["b_event"]
                    b_words = words_of(b_event.offset, b_event.length)
                    a_live = durability.live_subset(obs["a_words"])
                    if a_live and not durability.live_subset(b_words):
                        obs["post_fence_index"] = event.index + 1
                        obs["a_live_post_fence"] = a_live

        if open_op is not None:
            end_index = event.index + 1

    if open_op is not None:
        close_op()
    return found


def mine(traces: List[Trace]) -> List[Candidate]:
    """Mine candidates across runs; the first trace is canonical.

    Returns every candidate observed in the canonical run (including
    in-trace refutations — the differential tests rely on them), merged
    with the other runs' support/violation counts, sorted by key.
    """
    if not traces:
        return []
    merged = _mine_run(traces[0], canonical=True)
    for c in merged.values():
        c.runs_present = 1
        c.runs_total = len(traces)
    for trace in traces[1:]:
        for key, other in _mine_run(trace, canonical=False).items():
            c = merged.get(key)
            if c is None:
                continue  # variant-only pattern: no canonical witness
            c.support += other.support
            c.violations += other.violations
            c.durability = _weaker(c.durability, other.durability)
            c.runs_present += 1
    return [merged[key] for key in sorted(merged)]
