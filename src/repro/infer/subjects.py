"""Inference subjects: (fs, workload) aliases → registered sweep
workloads, plus multi-run trace collection with census parity checks.

The CLI surface mirrors ``python -m repro.analysis`` (``--workload fio
--fs mgsp``), but inference also covers the non-MGSP backends and the
raw-device structures, so the alias table is wider.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crashsweep.census import count_events
from repro.crashsweep.workloads import get_workload

from repro.infer.events import Trace, attach_collector

#: fs alias -> (config name, {workload alias -> registry workload})
SUBJECTS: Dict[str, Tuple[str, Dict[str, str]]] = {
    "mgsp": ("sync", {"fio": "fio-randwrite", "txn": "txn-mixed", "ycsb": "ycsb-a"}),
    "mgsp-async": ("async", {"fio": "fio-randwrite", "txn": "txn-mixed", "ycsb": "ycsb-a"}),
    "nova": ("sync", {"fio": "nova-fio", "txn": "nova-txn"}),
    "libnvmmio": ("sync", {"fio": "libnvmmio-fio", "txn": "libnvmmio-txn"}),
    "pqueue": ("sync", {"mpsc": "pqueue-mpsc"}),
    "pqueue-async": ("async", {"mpsc": "pqueue-mpsc"}),
    "planted": ("sync", {"toy": "toy-misordered"}),
}


class ParityError(RuntimeError):
    """Collected event count disagrees with the device's census count —
    the index-parity contract with crashsweep is broken."""


def resolve(fs: str, workload: str) -> Tuple[str, str]:
    """(registry workload name, config name) for the CLI aliases."""
    entry = SUBJECTS.get(fs)
    if entry is None:
        raise ValueError(f"unknown fs {fs!r}; choices: {', '.join(sorted(SUBJECTS))}")
    config_name, table = entry
    name = table.get(workload, workload if workload in table.values() else None)
    if name is None:
        raise ValueError(
            f"fs {fs!r} has no workload {workload!r}; choices: {', '.join(sorted(table))}"
        )
    return name, config_name


def collect_trace(
    workload, workload_name: str, config_name: str, max_events: Optional[int] = None
) -> Trace:
    """One passing instrumented run; raises :class:`ParityError` if the
    collector's index count drifts from the census event count."""
    collectors = []

    def instrument(system) -> None:
        regions = workload.region_map(system)
        collectors.append(attach_collector(system, regions=regions, max_events=max_events))

    outcome = workload.run(config_name, plan=None, instrument=instrument)
    if outcome.crashed:
        raise RuntimeError(f"{workload_name}: passing run crashed with no plan armed")
    collector = collectors[0]
    counted = count_events(outcome.fs.device, since=outcome.stats_base)
    if not collector.saturated and collector.event_index != counted:
        raise ParityError(
            f"{workload_name}/{config_name}: collector indexed "
            f"{collector.event_index} events, census counted {counted}"
        )
    return Trace(
        workload=workload_name,
        config_name=config_name,
        events=collector.events,
        ops=collector.op_seq + 1,
        saturated=collector.saturated,
    )


def collect_traces(
    workload_name: str,
    config_name: str,
    runs: int = 3,
    max_events: Optional[int] = None,
) -> List[Trace]:
    """Canonical run first, then ``runs - 1`` reseeded variants. Only the
    canonical trace's indices are crash points (the falsifier replays the
    canonical workload); variants exist to prune seed-specific patterns.
    """
    canonical = get_workload(workload_name)
    traces = [collect_trace(canonical, workload_name, config_name, max_events=max_events)]
    for r in range(1, max(1, runs)):
        variant = canonical.variant(1000 + r)
        traces.append(collect_trace(variant, workload_name, config_name, max_events=max_events))
    return traces
