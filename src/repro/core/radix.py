"""The multi-granularity radix tree (MSL index).

Each level of the tree manages shadow logs of one granularity:
``gran(level) = leaf_size * degree**level``; level 0 holds leaves. The
conceptual root is *the file itself* (its "log" is the file extent), is
implicitly always valid, and sits at the current ``height`` — which
grows on demand when the file outgrows the covered range (§III-B1).

Persistent state per node is one 16-byte slot in the file's node table:

    +0  u64  packed metadata word (see bitmap.py) — atomic commit unit
    +8  u64  log block device offset (0 = none)

The DRAM ``Node`` objects mirror those slots and are rebuilt by scanning
the table on remount/recovery.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import bitmap
from repro.core.config import MgspConfig
from repro.errors import FsError
from repro.fsapi.volume import Inode
from repro.nvm.device import NvmDevice

SLOT_SIZE = 16


class Node:
    __slots__ = ("level", "index", "start", "size", "log_off", "word", "slot_off")

    def __init__(self, level: int, index: int, size: int, slot_off: int) -> None:
        self.level = level
        self.index = index
        self.size = size
        self.start = index * size
        self.log_off = 0
        self.word = 0
        self.slot_off = slot_off

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(L{self.level}#{self.index} [{self.start},{self.start + self.size}))"


def required_table_len(capacity: int, config: MgspConfig) -> int:
    """Node-table bytes needed for a file of *capacity* bytes."""
    leaf_count = max(1, -(-capacity // config.leaf_size))
    total = 0
    count = leaf_count
    while True:
        total += count
        if count == 1:
            break
        count = -(-count // config.degree)
    total += 1  # allow one extra level above a multi-node top
    return total * SLOT_SIZE


class RadixTree:
    """DRAM mirror + persistence of one file's node slots."""

    def __init__(self, device: NvmDevice, inode: Inode, config: MgspConfig) -> None:
        self.device = device
        self.inode = inode
        self.config = config
        self.leaf_count = max(1, -(-inode.capacity // config.leaf_size))

        # Per-level node counts and slot bases, bottom-up.
        self.level_counts: List[int] = []
        count = self.leaf_count
        while True:
            self.level_counts.append(count)
            if count == 1:
                break
            count = -(-count // config.degree)
        self.level_counts.append(1)  # headroom level
        self.max_height = len(self.level_counts) - 1
        self.level_base: List[int] = []
        acc = 0
        for c in self.level_counts:
            self.level_base.append(acc)
            acc += c
        if acc * SLOT_SIZE > inode.node_table_len:
            raise FsError(
                f"{inode.name}: node table too small "
                f"({inode.node_table_len} < {acc * SLOT_SIZE})"
            )

        self.nodes: Dict[Tuple[int, int], Node] = {}
        self.gen = 0
        self.height = self._height_for(inode.size)
        #: bumped whenever the DRAM node set is rebuilt or discarded
        #: (clear_table / load_from_table) so cached Node references —
        #: e.g. the leaf fast path's ancestor chain — can be invalidated
        self.epoch = 0

    # -- geometry -----------------------------------------------------------

    def gran(self, level: int) -> int:
        return self.config.leaf_size * self.config.degree**level

    def _height_for(self, size: int) -> int:
        h = 1
        while self.gran(h) < size and h < self.max_height:
            h += 1
        return h

    def covered(self) -> int:
        """Bytes covered by the current root."""
        return self.gran(self.height)

    def slot_offset(self, level: int, index: int) -> int:
        return self.inode.node_table_off + (self.level_base[level] + index) * SLOT_SIZE

    # -- node access ------------------------------------------------------------

    def node(self, level: int, index: int) -> Node:
        key = (level, index)
        existing = self.nodes.get(key)
        if existing is not None:
            return existing
        if level > self.max_height or index >= self.level_counts[level]:
            raise FsError(f"node (L{level}, #{index}) outside tree")
        node = Node(level, index, self.gran(level), self.slot_offset(level, index))
        self.nodes[key] = node
        return node

    def peek(self, level: int, index: int) -> Optional[Node]:
        return self.nodes.get((level, index))

    @property
    def root(self) -> Node:
        return self.node(self.height, 0)

    def child_range(self, node: Node, offset: int, length: int) -> Tuple[int, int]:
        """Global child indices [first, last] touched by the range."""
        child_size = self.gran(node.level - 1)
        first = offset // child_size
        last = (offset + length - 1) // child_size
        return first, last

    def parent_of(self, node: Node) -> Node:
        return self.node(node.level + 1, node.index // self.config.degree)

    # -- generations -----------------------------------------------------------------

    def next_gen(self) -> int:
        self.gen += 1
        if self.gen > bitmap.GEN_MASK:
            raise FsError("generation counter exhausted (2^24 commits on one file)")
        return self.gen

    # -- persistence -----------------------------------------------------------------

    def store_word(self, node: Node, word: int) -> None:
        """Atomic 8-byte commit of a node's metadata word (+ flush; the
        caller fences)."""
        node.word = word
        self.device.atomic_store_u64(node.slot_off, word)
        self.device.flush(node.slot_off, 8)

    def store_log_ptr(self, node: Node, log_off: int) -> None:
        node.log_off = log_off
        self.device.atomic_store_u64(node.slot_off + 8, log_off)
        self.device.flush(node.slot_off + 8, 8)

    def store_words(self, pairs) -> None:
        """Batched :meth:`store_word` of (node, word) pairs (one
        vectorized device call; the caller fences)."""
        items = []
        for node, word in pairs:
            node.word = word
            items.append((node.slot_off, word))
        if items:
            # analysis: allow(unfenced-nt-store) -- caller fences: step 4 of _write_locked ends with one fence over the batch
            self.device.store_word_v(items)

    def store_log_ptrs(self, nodes) -> None:
        """Batched :meth:`store_log_ptr` from each node's own
        ``log_off`` (already set by the planner's allocation)."""
        items = [(node.slot_off + 8, node.log_off) for node in nodes]
        if items:
            # analysis: allow(unfenced-nt-store) -- caller fences: step 4 of _write_locked ends with one fence over the batch
            self.device.store_word_v(items)

    def grow_to(self, size: int) -> List[Node]:
        """Extend the tree height until *size* is covered; returns the new
        root nodes created (their existing bits were refreshed)."""
        changed: List[Node] = []
        while self.covered() < size:
            if self.height >= self.max_height:
                raise FsError(f"{self.inode.name}: size {size} exceeds tree capacity")
            old_root = self.root
            old_bits = bitmap.effective_nonleaf(old_root.word, 0)
            self.height += 1
            new_root = self.root
            had_fresh = old_bits.existing or old_bits.valid
            word = bitmap.pack_nonleaf(
                valid=False, existing=had_fresh, sub_gen=0, own_gen=old_bits.own_gen
            )
            if word != new_root.word:
                self.store_word(new_root, word)
                changed.append(new_root)
        return changed

    # -- remount (post-crash / reopen) -----------------------------------------------

    def load_from_table(self) -> None:
        """Rebuild the DRAM mirror by scanning the persistent node table."""
        total_slots = self.level_base[-1] + self.level_counts[-1]
        raw = self.device.buffer.load(self.inode.node_table_off, total_slots * SLOT_SIZE)
        words = np.frombuffer(raw, dtype="<u8")
        nonzero = np.flatnonzero(words)
        self.epoch += 1
        max_gen = 0
        for flat in nonzero.tolist():
            slot_idx, field = divmod(flat, 2)
            level = self._level_of_slot(slot_idx)
            index = slot_idx - self.level_base[level]
            node = self.node(level, index)
            value = int(words[flat])
            if field == 0:
                node.word = value
                if level == 0:
                    max_gen = max(max_gen, bitmap.unpack_leaf(value).own_gen)
                else:
                    bits = bitmap.unpack_nonleaf(value)
                    max_gen = max(max_gen, bits.own_gen, bits.sub_gen)
            else:
                node.log_off = value
        self.gen = max_gen
        self.height = self._height_for(self.inode.size)

    def _level_of_slot(self, slot_idx: int) -> int:
        for level in range(len(self.level_base) - 1, -1, -1):
            if slot_idx >= self.level_base[level]:
                return level
        raise FsError(f"bad slot index {slot_idx}")

    def clear_table(self) -> None:
        """Zero every materialized slot (file close / end of recovery).

        Two-phase for crash safety: first the metadata words are zeroed
        and fenced, only then the log pointers. A crash between the
        phases leaves either (word live, pointer live) or (word durably
        zero, pointer irrelevant) — never a live word pointing at a
        reclaimed log. Zeroing both in one unfenced batch could persist
        the pointer's zero while the word survived, sending readers of
        the still-valid node into unrelated memory.
        """
        dirty = [node for node in self.nodes.values() if node.word or node.log_off]
        for node in dirty:
            if node.word:
                self.device.atomic_store_u64(node.slot_off, 0)
                self.device.flush(node.slot_off, 8)
        self.device.fence()
        for node in dirty:
            if node.log_off:
                self.device.atomic_store_u64(node.slot_off + 8, 0)
                self.device.flush(node.slot_off + 8, 8)
        self.device.fence()
        self.nodes.clear()
        self.epoch += 1
        self.gen = 0
        self.height = self._height_for(self.inode.size)
