"""Crash recovery (§III-D "Close and Recovery").

Given a post-crash device image:

1. mount the volume (namespace is rebuilt from the superblock);
2. scan the metadata log: every checksum-valid, un-retired entry is an
   operation whose data logs are durable (the entry is persisted only
   after the data fence) but whose bitmap commits may be incomplete —
   roll it forward by re-applying the recorded valid-bit words and file
   size, then retire the entry;
3. write every fresh log byte back into its file and clear the node
   tables, leaving plain files and an empty log area.

Replaying an already-applied entry is idempotent (the words are absolute
values), so recovery itself may crash and be rerun.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import bitmap
from repro.core.config import MgspConfig
from repro.core.metalog import MetaEntry
from repro.core.mgsp import MgspFilesystem
from repro.core.radix import RadixTree
from repro.core.shadowlog import ShadowLog
from repro.errors import FileNotFound
from repro.nvm.device import NvmDevice


@dataclass
class RecoveryStats:
    entries_replayed: int = 0
    entries_discarded: int = 0  # orphaned (uncommitted) transaction members
    files_scanned: int = 0
    log_bytes_written_back: int = 0
    elapsed_ns: float = 0.0
    replayed_files: List[str] = field(default_factory=list)


def recover(
    device: NvmDevice,
    config: Optional[MgspConfig] = None,
    timing=None,
    telemetry=None,
) -> tuple:
    """Recover a crashed MGSP device image.

    Returns ``(fs, stats)`` — a freshly mounted :class:`MgspFilesystem`
    whose files are plain (all logs written back) plus statistics. The
    elapsed time is virtual (from the mounted FS's cost recorder).
    Pass a :class:`repro.obs.spans.Telemetry` as *telemetry* to attach
    it to the remounted filesystem and get per-phase recovery spans.
    """
    config = config or MgspConfig()
    fs = MgspFilesystem.remount(device, config=config, timing=timing)
    if telemetry is not None:
        from repro.obs.spans import attach_telemetry

        attach_telemetry(fs, telemetry=telemetry)
    obs = fs.obs
    stats = RecoveryStats()
    recorder = fs.recorder
    recorder.begin_op("recovery")

    # Phase 1: roll forward committed-but-unapplied operations.
    # Transaction groups (chained entries) are applied only when their
    # commit-flagged entry survived; orphaned members are discarded.
    frame = obs.span_begin("recovery.rollforward") if obs.enabled else None
    trees: Dict[int, RadixTree] = {}
    entries = fs.metalog.scan()
    committed_txns = {e.txn_id for e in entries if e.is_txn_member and e.is_txn_commit}
    replayed = []
    for entry in entries:
        if entry.is_txn_member and entry.txn_id not in committed_txns:
            replayed.append(entry)
            stats.entries_discarded += 1
            continue
        if _replay_entry(fs, trees, entry):
            stats.entries_replayed += 1
        else:
            # Entry for a since-unlinked file: its retire word was lost
            # in the crash but the unlink persisted. Nothing to roll
            # forward — discard it, and still retire it below so a
            # re-crashed recovery does not see it again.
            stats.entries_discarded += 1
        replayed.append(entry)
    # Fence the applied words BEFORE retiring: a crash must never leave
    # a retired entry whose effects were lost.
    device.fence()
    for entry in replayed:
        fs.metalog.retire(entry.index)
    device.fence()
    if frame is not None:
        obs.span_end(frame)
        frame = obs.span_begin("recovery.writeback")

    # Phase 2: write logs back and reset the trees.
    for inode in fs.volume.files():
        if not inode.node_table_len:
            continue
        tree = trees.get(inode.id)
        if tree is None:
            tree = RadixTree(device, inode, config)
            tree.load_from_table()
        stats.files_scanned += 1
        if not tree.nodes:
            continue
        shadow = ShadowLog(tree, device, fs.logs, inode, config)
        shadow.obs = obs
        copied = shadow.write_back()
        if copied:
            stats.replayed_files.append(inode.name)
        stats.log_bytes_written_back += copied
        tree.clear_table()

    fs.logs.reset()
    if frame is not None:
        obs.span_end(frame)
        reg = obs.registry
        reg.gauge("recovery_entries_replayed").set(stats.entries_replayed)
        reg.gauge("recovery_entries_discarded").set(stats.entries_discarded)
        reg.gauge("recovery_log_bytes_written_back").set(stats.log_bytes_written_back)
    trace = recorder.end_op()
    stats.elapsed_ns = trace.duration_ns(fs.timing.lock_ns)
    return fs, stats


def _replay_entry(fs: MgspFilesystem, trees: Dict[int, RadixTree], entry: MetaEntry) -> bool:
    """Roll *entry* forward; ``False`` if its file no longer exists."""
    try:
        inode = fs.volume.by_id(entry.file_id)
    except FileNotFound:  # entry for an unlinked file: nothing to do
        return False
    tree = trees.get(inode.id)
    if tree is None:
        tree = RadixTree(fs.device, inode, fs.config)
        tree.load_from_table()
        trees[inode.id] = tree

    # The entry's size is the post-op size; sizes only grow.
    if entry.file_size > inode.size:
        fs.volume.set_size_volatile(inode, entry.file_size)
        fs.volume.persist_size(inode)
        tree.height = tree._height_for(inode.size)

    for slot in entry.slots:
        level = tree._level_of_slot(slot.ordinal)
        index = slot.ordinal - tree.level_base[level]
        node = tree.node(level, index)
        if node.log_off == 0:
            # Reload the (possibly crash-surviving) log pointer.
            node.log_off = fs.device.buffer.load_u64(node.slot_off + 8)
        if slot.is_leaf:
            word = bitmap.pack_leaf(slot.leaf_mask, entry.gen)
        else:
            word = bitmap.pack_nonleaf(slot.valid, False, entry.gen, entry.gen)
        tree.store_word(node, word)
    tree.gen = max(tree.gen, entry.gen)
    return True
