"""Lock-free metadata log (§III-C1).

A small NVM region holds fixed 128-byte entries. A thread claims the
entry at ``hash(thread id) % N``, linear-probing past busy slots with
CAS. One entry describes one in-flight write:

    +0   u32  checksum (crc32 of bytes [4, 32 + 8*nslots))
    +4   u16  file id
    +6   u16  nslots
    +8   u32  length          (0 = retired; cleared with an atomic store)
    +12  u32  generation G stamped on every committed word
    +16  u64  file offset
    +24  u64  new file size
    +32  nslots x 8 B slots:
            u32  ordinal | LEAF<<28 | VALID<<29
            u32  new leaf mask (leaf slots only)

Only valid-bit changes are logged; existing bits are recomputed from
valid bits during recovery (the paper's "existing bits can be recovered
from the valid bits"). When ``nslots <= 3`` the entry fits in 64 bytes
and only that half is flushed (the paper's partial-flush optimization).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import FsError
from repro.fsapi.layout import Region
from repro.nvm.device import NvmDevice
from repro.obs.spans import NULL_SINK
from repro.util import checksum as crc

ENTRY_SIZE = 128
HEADER = struct.Struct("<IHHII Q Q")  # checksum, file_id, nslots, length, gen, offset, file_size
MAX_SLOTS = (ENTRY_SIZE - HEADER.size) // 8
SLOT = struct.Struct("<II")

_ORD_MASK = (1 << 28) - 1
_LEAF_FLAG = 1 << 28
_VALID_FLAG = 1 << 29

# Transaction support (chained entries; see repro.core.txn): the nslots
# u16 carries flags in its top bits, and for transaction entries the
# offset field holds the transaction id.
TXN_MEMBER = 1 << 15
TXN_COMMIT = 1 << 14
_NSLOTS_MASK = (1 << 14) - 1


@dataclass(frozen=True)
class MetaSlot:
    """One committed node word, in recoverable form."""

    ordinal: int
    is_leaf: bool
    valid: bool  # non-leaf commits: the new valid bit
    leaf_mask: int = 0

    def pack(self) -> bytes:
        word = self.ordinal & _ORD_MASK
        if self.is_leaf:
            word |= _LEAF_FLAG
        if self.valid:
            word |= _VALID_FLAG
        return SLOT.pack(word, self.leaf_mask & 0xFFFFFFFF)

    @classmethod
    def unpack(cls, raw: bytes) -> "MetaSlot":
        word, mask = SLOT.unpack(raw)
        return cls(
            ordinal=word & _ORD_MASK,
            is_leaf=bool(word & _LEAF_FLAG),
            valid=bool(word & _VALID_FLAG),
            leaf_mask=mask,
        )


@dataclass
class MetaEntry:
    index: int
    file_id: int
    length: int
    gen: int
    offset: int
    file_size: int
    slots: List[MetaSlot]
    flags: int = 0

    @property
    def is_txn_member(self) -> bool:
        return bool(self.flags & TXN_MEMBER)

    @property
    def is_txn_commit(self) -> bool:
        return bool(self.flags & TXN_COMMIT)

    @property
    def txn_id(self) -> int:
        return self.offset  # transaction entries reuse the offset field


class MetadataLog:
    """The per-mount metadata-log region."""

    #: telemetry sink (attach_telemetry replaces it per-instance)
    obs = NULL_SINK

    def __init__(self, device: NvmDevice, region: Region, entries: int = 32) -> None:
        if entries * ENTRY_SIZE > region.size:
            raise FsError(f"metalog region too small for {entries} entries")
        self.device = device
        self.region = region
        self.entries = entries
        self._in_use: Dict[int, int] = {}  # entry index -> owning thread

    def entry_offset(self, index: int) -> int:
        return self.region.start + index * ENTRY_SIZE

    # -- claim / release (lock-free via hash + CAS in the real system) -------

    def claim(self, thread_id: int, recorder=None) -> int:
        if recorder is not None and not recorder.enabled:
            recorder = None
        if recorder is not None:
            recorder.compute(recorder.timing.hash_ns)
        start = hash(thread_id) % self.entries
        for probe in range(self.entries):
            idx = (start + probe) % self.entries
            if recorder is not None:
                recorder.compute(recorder.timing.cas_ns)
            if idx not in self._in_use:
                self._in_use[idx] = thread_id
                return idx
        raise FsError("metadata log full: more concurrent writers than entries")

    def release(self, index: int) -> None:
        self._in_use.pop(index, None)

    # -- write / retire ---------------------------------------------------------

    def write(
        self,
        index: int,
        file_id: int,
        length: int,
        gen: int,
        offset: int,
        file_size: int,
        slots: List[MetaSlot],
        flags: int = 0,
    ) -> None:
        """Persist one entry; this is the commit point of a write op."""
        if len(slots) > MAX_SLOTS:
            raise FsError(f"write needs {len(slots)} metadata slots > {MAX_SLOTS}")
        obs = self.obs
        frame = obs.span_begin("metalog.commit") if obs.enabled else None
        nslots_field = len(slots) | flags
        body = bytearray(HEADER.pack(0, file_id, nslots_field, length, gen, offset, file_size))
        for slot in slots:
            body += slot.pack()
        # Patch the checksum in place instead of re-packing the header.
        struct.pack_into("<I", body, 0, crc(memoryview(body)[4:]))
        # Partial-flush optimization: small entries persist only 64 bytes.
        flush_len = 64 if len(slots) <= 3 else ENTRY_SIZE
        if len(body) < flush_len:
            body += bytes(flush_len - len(body))
        off = self.entry_offset(index)
        if self.device.tracer is not None:
            # Entry marshalling + checksum computation.
            self.device.tracer.compute(100.0)
        self.device.nt_store(off, body)
        self.device.fence()
        if frame is not None:
            obs.span_end(frame)
            obs.registry.counter("metalog_commits_total").inc()

    def retire(self, index: int) -> None:
        """Mark the entry outdated (length=0). Deliberately unfenced: a
        replay of an already-applied entry is idempotent."""
        off = self.entry_offset(index)
        # analysis: allow(unfenced-nt-store) -- deliberately unfenced (§III-C1): replaying a retired entry is idempotent
        self.device.store_word_v(((off + 8, 0),))  # clears length + gen

    # -- recovery scan ---------------------------------------------------------------

    def scan(self) -> List[MetaEntry]:
        """Return every un-retired, checksum-valid entry (recovery path)."""
        found: List[MetaEntry] = []
        for idx in range(self.entries):
            entry = self._load(idx)
            if entry is not None:
                found.append(entry)
        return found

    def _load(self, idx: int) -> Optional[MetaEntry]:
        off = self.entry_offset(idx)
        raw = self.device.buffer.load(off, ENTRY_SIZE)
        digest, file_id, nslots_field, length, gen, offset, file_size = HEADER.unpack(
            raw[: HEADER.size]
        )
        nslots = nslots_field & _NSLOTS_MASK
        flags = nslots_field & ~_NSLOTS_MASK
        if length == 0 or nslots > MAX_SLOTS:
            return None
        body_end = HEADER.size + nslots * 8
        if crc(raw[4:body_end]) != digest:
            return None  # torn entry: the write never committed
        slots = [
            MetaSlot.unpack(raw[HEADER.size + i * 8 : HEADER.size + (i + 1) * 8])
            for i in range(nslots)
        ]
        return MetaEntry(
            index=idx,
            file_id=file_id,
            length=length,
            gen=gen,
            offset=offset,
            file_size=file_size,
            slots=slots,
            flags=flags,
        )
