"""Multi-granularity locking (MGL, §III-C2).

The functional execution is single-threaded, so these locks arbitrate
*virtual* time: the manager decides which lock/unlock events each
operation emits into its cost trace, and the replay engine enforces the
Table I compatibility rules across simulated threads.

Design points reproduced:

- intention locks (IR/IW) down the search path, R/W on the accessed
  nodes, acquired in offset order and released in the same order;
- **lazy cleaning for intention locks**: intention locks are retained
  across operations and only re-emitted when a thread's path changes;
  retained locks are released in a per-thread trailer at thread end;
- **greedy locking**: with a single file reference, one coarse lock on
  the minimum-search-tree root replaces the whole path;
- with ``fine_grained_locking`` off, a single file-level rwlock models
  conventional file locking.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.core.config import MgspConfig
from repro.obs.spans import NULL_SINK
from repro.sim.locks import LockMode


class MglLockManager:
    #: telemetry sink (attach_telemetry replaces it per-instance); the
    #: acquire span measures emission cost, the hold histogram measures
    #: acquire-to-release virtual time per lock set.
    obs = NULL_SINK

    def __init__(self, config: MgspConfig, recorder) -> None:
        self.config = config
        self.recorder = recorder
        # thread id -> ordered dict of retained intention locks
        self._retained: Dict[int, Dict[Hashable, str]] = {}
        # id(keys list) -> virtual acquire time (popped at release)
        self._hold_since: Dict[int, float] = {}

    # -- key helpers -------------------------------------------------------

    @staticmethod
    def node_key(file_id: int, level: int, index: int) -> Hashable:
        return ("mgsp", file_id, level, index)

    @staticmethod
    def file_key(file_id: int) -> Hashable:
        return ("mgsp-file", file_id)

    # -- acquisition --------------------------------------------------------

    def acquire(
        self,
        thread: int,
        file_id: int,
        path: List[Tuple[int, int]],
        terminals: List[Tuple[int, int]],
        write: bool,
        greedy_node: Tuple[int, int] = None,
    ) -> List[Hashable]:
        """Emit lock segments for one op; returns the keys to release."""
        obs = self.obs
        if not obs.enabled:
            return self._acquire(thread, file_id, path, terminals, write, greedy_node)
        frame = obs.span_begin("mgl.acquire")
        keys = self._acquire(thread, file_id, path, terminals, write, greedy_node)
        obs.span_end(frame)
        if len(self._hold_since) > 4096:
            # Unreleased sets (exception paths) must not pin memory.
            self._hold_since.clear()
        self._hold_since[id(keys)] = obs.now()
        return keys

    def _acquire(
        self,
        thread: int,
        file_id: int,
        path: List[Tuple[int, int]],
        terminals: List[Tuple[int, int]],
        write: bool,
        greedy_node: Tuple[int, int] = None,
    ) -> List[Hashable]:
        rec = self.recorder
        if not self.config.fine_grained_locking:
            key = self.file_key(file_id)
            rec.lock(key, LockMode.W if write else LockMode.R)
            return [key]

        if self.config.greedy_locking and greedy_node is not None:
            key = self.node_key(file_id, *greedy_node)
            rec.lock(key, LockMode.W if write else LockMode.R)
            return [key]

        to_release: List[Hashable] = []
        intent = LockMode.IW if write else LockMode.IR
        retained = self._retained.setdefault(thread, {})
        for level, index in path:
            key = self.node_key(file_id, level, index)
            if self.config.lazy_intention_locks:
                held = retained.get(key)
                if held == intent or held == LockMode.IW:
                    continue  # already held (IW subsumes IR for our ops)
                rec.lock(key, intent)
                retained[key] = intent
            else:
                rec.lock(key, intent)
                to_release.append(key)
        mode = LockMode.W if write else LockMode.R
        for level, index in sorted(terminals, key=lambda t: t[1]):
            key = self.node_key(file_id, level, index)
            rec.lock(key, mode)
            to_release.append(key)
        return to_release

    def release(self, keys: List[Hashable]) -> None:
        """Release in the same order as acquisition (paper's rule)."""
        obs = self.obs
        if obs.enabled:
            since = self._hold_since.pop(id(keys), None)
            if since is not None:
                obs.registry.histogram("mgl_hold_ns").observe(obs.now() - since)
        for key in keys:
            self.recorder.unlock(key)

    def release_retained(self, thread: int) -> None:
        """Trailer at simulated-thread end: drop lazily-held intention
        locks so the replay engine sees balanced acquire/release."""
        retained = self._retained.pop(thread, {})
        for key in retained:
            self.recorder.unlock(key)
