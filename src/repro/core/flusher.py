"""Asynchronous write-back epochs: the background checkpoint scheduler.

The paper reclaims log space at ``close()``; a long-running writer
otherwise accumulates an unbounded fresh-log backlog that stretches
recovery and eventually exhausts the log area, forcing a synchronous
stop-the-world checkpoint *inside* a write. With
``MgspConfig.async_writeback`` the scheduler drains files proactively at
*epoch boundaries*: once a file has accumulated ``writeback_epoch_bytes``
fresh log bytes (or ``writeback_epoch_ops`` writes) since its last
drain, its logs are written back on the filesystem's background trace
stream (``MgspFilesystem.bg_recorder``). In the simulated timeline those
traces replay as a dedicated flusher thread competing for NVM channels
(see ``ReplayEngine.run(background=...)``); the foreground write that
crossed the boundary pays only the hand-off.

Crash consistency is untouched: a drain is exactly
:meth:`repro.core.file.MgspFile.checkpoint` — copy while the bitmap
still points at the logs, fence, then atomic per-node clears — and an
epoch boundary always lands *between* two synchronized atomic ops.
"""

from __future__ import annotations

from typing import Dict


class WritebackScheduler:
    """Per-file fresh-log accounting + epoch-boundary drains."""

    def __init__(self, fs, epoch_bytes: int, epoch_ops: int) -> None:
        self.fs = fs
        self.epoch_bytes = epoch_bytes
        self.epoch_ops = epoch_ops
        self._fresh_bytes: Dict[int, int] = {}
        self._fresh_ops: Dict[int, int] = {}
        # observability
        self.epochs = 0
        self.bytes_drained = 0
        self.deferred = 0

    def note_write(self, handle, nbytes: int) -> None:
        """Record one completed synchronized write; drain on boundary."""
        key = handle.inode.id
        fresh = self._fresh_bytes.get(key, 0) + nbytes
        ops = self._fresh_ops.get(key, 0) + 1
        self._fresh_bytes[key] = fresh
        self._fresh_ops[key] = ops
        if (self.epoch_bytes and fresh >= self.epoch_bytes) or (
            self.epoch_ops and ops >= self.epoch_ops
        ):
            self.drain(handle)

    def drain(self, handle) -> int:
        """Checkpoint *handle* on the background trace stream."""
        key = handle.inode.id
        if handle.closed:
            # Pop rather than zero: zeroing would resurrect entries that
            # forget() already dropped, leaking one dict slot per
            # close/unlink cycle in a long-running service.
            self._fresh_bytes.pop(key, None)
            self._fresh_ops.pop(key, None)
            return 0
        txn = handle._open_txn
        if txn is not None and txn.open:
            # Staged transaction words must not be checkpointed out from
            # under the transaction; retry at the next boundary.
            self.deferred += 1
            return 0
        fs = self.fs
        obs = fs.obs
        frame = obs.span_begin("flusher.drain") if obs.enabled else None
        fg_recorder, fg_tracer = fs.recorder, fs.device.tracer
        fs.recorder = fs.bg_recorder
        fs.device.tracer = fs.bg_recorder
        try:
            copied = handle.checkpoint()
        finally:
            fs.recorder = fg_recorder
            fs.device.tracer = fg_tracer
        self._fresh_bytes[key] = 0
        self._fresh_ops[key] = 0
        self.epochs += 1
        self.bytes_drained += copied
        if frame is not None:
            obs.span_end(frame)
            reg = obs.registry
            reg.counter("flusher_epochs_total").inc()
            reg.counter("flusher_bytes_total").inc(copied)
            reg.gauge("flusher_deferred").set(self.deferred)
        return copied

    def forget(self, inode_id: int) -> None:
        """Drop accounting for a closed file (its logs are gone)."""
        self._fresh_bytes.pop(inode_id, None)
        self._fresh_ops.pop(inode_id, None)
