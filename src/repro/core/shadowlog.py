"""Multi-granularity Shadow Logging (MSL, §III-B).

The planner walks the radix tree (Algorithm 1) and decomposes one write
into terminal actions. At a terminal node the *shadow log role switch*
happens:

- node's log **invalid** → redo-style: new data goes into the node's own
  log; commit sets the valid bit (old data stays authoritative upstream
  until commit).
- node's log **valid** → undo-style: the node's log already holds the
  (about to be old) data, so the new data is written straight into the
  *last valid ancestor's* log (ultimately the file itself); commit
  clears the valid bit. The bytes being overwritten upstream are
  shadowed by this node's still-set valid bit, so a torn write is
  invisible.

Either way each commit is one atomic word store, and every byte of user
data is written exactly once (plus sub-block RMW fill at the edges) —
the zero-copy property of Fig 3.

Planning is side-effect-light: it may materialize DRAM nodes and
allocate log blocks, and it *reads* authoritative bytes for RMW fill,
but all stores happen later in the exact crash-safe order
(:meth:`repro.core.file.MgspFile.write`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core import bitmap
from repro.core.config import MgspConfig
from repro.core.metalog import MetaSlot
from repro.core.radix import Node, RadixTree
from repro.fsapi.volume import Inode
from repro.nvm.allocator import LogAllocator
from repro.nvm.device import NvmDevice


@dataclass
class MslStats:
    """Observability: how the multi-granularity machinery is being used."""

    redo_commits: int = 0  # data written to the node's own log
    undo_commits: int = 0  # role switch: data written into an ancestor
    coarse_commits: int = 0  # non-leaf terminal commits
    fine_commits: int = 0  # leaf commits
    sub_block_writes: int = 0  # sub-leaf granularity updates
    rmw_fill_bytes: int = 0  # bytes copied for unaligned edges
    logs_allocated: int = 0


@dataclass
class WritePlan:
    gen: int
    data_writes: List[Tuple[int, bytes]] = field(default_factory=list)
    commits: List[Tuple[Node, int, MetaSlot]] = field(default_factory=list)
    refreshes: List[Tuple[Node, int]] = field(default_factory=list)
    new_logs: List[Node] = field(default_factory=list)
    path: List[Tuple[int, int]] = field(default_factory=list)
    terminals: List[Tuple[int, int]] = field(default_factory=list)
    nodes_visited: int = 0
    #: shadow-logging-off ablation: (node, src_off, dst_off, length) copies
    #: performed after commit, then the node's word is cleared.
    checkpoints: List[Tuple[Node, int, int, int]] = field(default_factory=list)


def _ordinal(tree: RadixTree, node: Node) -> int:
    return tree.level_base[node.level] + node.index


class ShadowLog:
    """Planner + reader + write-back for one file's tree."""

    def __init__(
        self,
        tree: RadixTree,
        device: NvmDevice,
        alloc: LogAllocator,
        inode: Inode,
        config: MgspConfig,
    ) -> None:
        self.tree = tree
        self.device = device
        self.alloc = alloc
        self.inode = inode
        self.config = config
        self.stats = MslStats()

    # ------------------------------------------------------------------ write

    def plan_write(self, offset: int, data: bytes, gen: int) -> WritePlan:
        plan = WritePlan(gen=gen)
        root = self.tree.root
        self._descend_write(
            plan, root, 0, self.inode.base, 0, offset, len(data), data, offset
        )
        return plan

    def _descend_write(
        self,
        plan: WritePlan,
        node: Node,
        path_gen: int,
        last_base: int,
        last_start: int,
        off: int,
        length: int,
        data: bytes,
        data_base: int,
    ) -> None:
        plan.nodes_visited += 1
        if node.level == 0:
            self._plan_leaf(plan, node, path_gen, last_base, last_start, off, length, data, data_base)
            plan.terminals.append((0, node.index))
            return

        is_root = node.level == self.tree.height and node.index == 0
        eff = bitmap.effective_nonleaf(node.word, path_gen)
        full_cover = off == node.start and length == node.size

        if full_cover and self.config.multi_granularity:
            self._plan_coarse_terminal(plan, node, eff, is_root, last_base, last_start, data, data_base, off)
            plan.terminals.append((node.level, node.index))
            return

        # Not terminal: refresh the existing bit on the path (eager,
        # unlogged; recovery recomputes existing bits from valid bits).
        new_word = bitmap.pack_nonleaf(
            valid=eff.valid, existing=True, sub_gen=eff.sub_gen, own_gen=plan.gen
        )
        if new_word != node.word:
            plan.refreshes.append((node, new_word))
        plan.path.append((node.level, node.index))

        if eff.valid and not is_root:
            last_base, last_start = node.log_off, node.start
        elif is_root:
            last_base, last_start = self.inode.base, 0

        child_size = self.tree.gran(node.level - 1)
        first, last_idx = self.tree.child_range(node, off, length)
        for i in range(first, last_idx + 1):
            child_off = max(off, i * child_size)
            child_end = min(off + length, (i + 1) * child_size)
            child = self.tree.node(node.level - 1, i)
            self._descend_write(
                plan, child, eff.sub_gen, last_base, last_start,
                child_off, child_end - child_off, data, data_base,
            )

    def _plan_coarse_terminal(
        self,
        plan: WritePlan,
        node: Node,
        eff: bitmap.NonLeafBits,
        is_root: bool,
        last_base: int,
        last_start: int,
        data: bytes,
        data_base: int,
        off: int,
    ) -> None:
        payload = data[off - data_base : off - data_base + node.size]
        ordinal = _ordinal(self.tree, node)
        shadow = self.config.shadow_logging
        valid_now = eff.valid or is_root

        if shadow and valid_now:
            # Undo-style: new data straight into the last valid ancestor
            # (for the root, "ancestor" is the file itself).
            self.stats.undo_commits += 1
            self.stats.coarse_commits += 1
            target = last_base + (off - last_start)
            limit = self._target_limit(last_base)
            plan.data_writes.append((target, payload[: max(0, limit - target)]))
            word = bitmap.pack_nonleaf(False, False, plan.gen, plan.gen)
            plan.commits.append((node, word, MetaSlot(ordinal, False, False)))
            return

        # Redo-style (also the shadow-off ablation path): own log.
        self.stats.redo_commits += 1
        self.stats.coarse_commits += 1
        if node.log_off == 0:
            node.log_off = self.alloc.alloc(node.size)
            plan.new_logs.append(node)
            self.stats.logs_allocated += 1
        plan.data_writes.append((node.log_off, payload))
        word = bitmap.pack_nonleaf(True, False, plan.gen, plan.gen)
        plan.commits.append((node, word, MetaSlot(ordinal, False, True)))
        if not shadow:
            target = last_base + (off - last_start)
            plan.checkpoints.append((node, node.log_off, target, node.size))

    def _plan_leaf(
        self,
        plan: WritePlan,
        node: Node,
        path_gen: int,
        last_base: int,
        last_start: int,
        off: int,
        length: int,
        data: bytes,
        data_base: int,
    ) -> None:
        cfg = self.config
        nbits = cfg.effective_leaf_bits
        sub = cfg.leaf_size // nbits
        eff = bitmap.effective_leaf(node.word, path_gen)
        s0 = (off - node.start) // sub
        s1 = -(-(off + length - node.start) // sub)
        covered = bitmap.mask_for_range(s0, s1)
        shadow = cfg.shadow_logging

        need_leaf_log = any(
            ((eff.mask >> i) & 1) == 0 or not shadow for i in range(s0, s1)
        )
        if need_leaf_log and node.log_off == 0:
            node.log_off = self.alloc.alloc(cfg.leaf_size)
            plan.new_logs.append(node)
            self.stats.logs_allocated += 1
        self.stats.fine_commits += 1
        if s1 - s0 < nbits:
            self.stats.sub_block_writes += 1

        # Build one coalesced write per run of sub-blocks sharing a target.
        run_target: Optional[int] = None
        run_buf = bytearray()

        def flush_run() -> None:
            nonlocal run_buf, run_target
            if run_target is not None and run_buf:
                limit = self._target_limit_base(run_target)
                payload = bytes(run_buf[: max(0, limit - run_target)])
                if payload:
                    plan.data_writes.append((run_target, payload))
            run_buf = bytearray()
            run_target = None

        for i in range(s0, s1):
            bit = (eff.mask >> i) & 1
            bs = node.start + i * sub  # sub-block global range
            be = bs + sub
            lo = max(off, bs)
            hi = min(off + length, be)
            # Where does this sub-block's new data go?
            if shadow and bit:
                self.stats.undo_commits += 1
                target = last_base + (bs - last_start)
                auth_for_fill = node.log_off + (bs - node.start)
            else:
                self.stats.redo_commits += 1
                target = node.log_off + (bs - node.start)
                if bit:
                    auth_for_fill = node.log_off + (bs - node.start)
                else:
                    auth_for_fill = last_base + (bs - last_start)
            buf = bytearray(sub)
            if lo > bs:  # RMW prefix fill from the authoritative source
                buf[: lo - bs] = self._read_clipped(auth_for_fill, lo - bs)
                self.stats.rmw_fill_bytes += lo - bs
            if hi < be:  # RMW suffix fill
                buf[hi - bs :] = self._read_clipped(auth_for_fill + (hi - bs), be - hi)
                self.stats.rmw_fill_bytes += be - hi
            buf[lo - bs : hi - bs] = data[lo - data_base : hi - data_base]

            if run_target is not None and target == run_target + len(run_buf):
                run_buf += buf
            else:
                flush_run()
                run_target = target
                run_buf = bytearray(buf)
        flush_run()

        if shadow:
            new_mask = eff.mask ^ covered
        else:
            new_mask = eff.mask | covered
        word = bitmap.pack_leaf(new_mask, plan.gen)
        ordinal = _ordinal(self.tree, node)
        plan.commits.append((node, word, MetaSlot(ordinal, True, False, new_mask)))
        if not shadow:
            # Ablation: synchronously push every fresh sub-block back.
            for rs, re_ in bitmap.iter_mask_runs(new_mask, nbits):
                src = node.log_off + rs * sub
                dst = last_base + (node.start + rs * sub - last_start)
                plan.checkpoints.append((node, src, dst, (re_ - rs) * sub))

    # -- helpers ----------------------------------------------------------------

    def _target_limit(self, base: int) -> int:
        """Writes into the file extent must not cross its capacity."""
        if base == self.inode.base:
            return self.inode.base + self.inode.capacity
        return 1 << 62

    def _target_limit_base(self, target: int) -> int:
        if self.inode.base <= target < self.inode.base + self.inode.capacity:
            return self.inode.base + self.inode.capacity
        return 1 << 62

    def _read_clipped(self, dev_off: int, length: int) -> bytes:
        """Device read clipped at the file extent end (tail sub-blocks)."""
        if self.inode.base <= dev_off < self.inode.base + self.inode.capacity:
            length = min(length, self.inode.base + self.inode.capacity - dev_off)
        data = self.device.load(dev_off, length) if length > 0 else b""
        return data.ljust(length, b"\0")

    # ----------------------------------------------------------- transactions

    def plan_txn_write(
        self,
        offset: int,
        data: bytes,
        gen: int,
        durable_word,
    ) -> WritePlan:
        """Plan one write inside a multi-write transaction.

        Transactions stage bitmap words in DRAM and commit them together
        (see :mod:`repro.core.txn`), so a torn transaction must leave
        every *durably authoritative* byte untouched. The safe target
        for each sub-block is therefore fixed by the DURABLE valid bit
        (1 → the ancestor slot it shadows, 0 → the leaf's own log),
        independent of how many times the transaction rewrites it, while
        fill content and the final mask follow the STAGED state.
        ``durable_word(node)`` returns the word as it stands on media.

        Transactional writes always decompose to leaf terminals (no
        coarse-grained logs), which keeps durable path generations equal
        to staged ones.
        """
        plan = WritePlan(gen=gen)
        root = self.tree.root
        self._descend_txn(
            plan, root, 0, self.inode.base, 0, offset, len(data), data, offset, durable_word
        )
        return plan

    def _descend_txn(
        self, plan, node, path_gen, last_base, last_start, off, length, data, data_base, durable_word
    ) -> None:
        plan.nodes_visited += 1
        if node.level == 0:
            self._plan_txn_leaf(
                plan, node, path_gen, last_base, last_start, off, length, data, data_base, durable_word
            )
            plan.terminals.append((0, node.index))
            return
        is_root = node.level == self.tree.height and node.index == 0
        eff = bitmap.effective_nonleaf(node.word, path_gen)
        new_word = bitmap.pack_nonleaf(
            valid=eff.valid, existing=True, sub_gen=eff.sub_gen, own_gen=plan.gen
        )
        if new_word != node.word:
            plan.refreshes.append((node, new_word))
        plan.path.append((node.level, node.index))
        if eff.valid and not is_root:
            last_base, last_start = node.log_off, node.start
        elif is_root:
            last_base, last_start = self.inode.base, 0
        child_size = self.tree.gran(node.level - 1)
        first, last_idx = self.tree.child_range(node, off, length)
        for i in range(first, last_idx + 1):
            child_off = max(off, i * child_size)
            child_end = min(off + length, (i + 1) * child_size)
            child = self.tree.node(node.level - 1, i)
            self._descend_txn(
                plan, child, eff.sub_gen, last_base, last_start,
                child_off, child_end - child_off, data, data_base, durable_word,
            )

    def _plan_txn_leaf(
        self, plan, node, path_gen, last_base, last_start, off, length, data, data_base, durable_word
    ) -> None:
        cfg = self.config
        nbits = cfg.effective_leaf_bits
        sub = cfg.leaf_size // nbits
        staged = bitmap.effective_leaf(node.word, path_gen)
        durable = bitmap.effective_leaf(durable_word(node), path_gen)
        s0 = (off - node.start) // sub
        s1 = -(-(off + length - node.start) // sub)

        need_leaf_log = any(((durable.mask >> i) & 1) == 0 for i in range(s0, s1))
        if need_leaf_log and node.log_off == 0:
            node.log_off = self.alloc.alloc(cfg.leaf_size)
            plan.new_logs.append(node)

        new_mask = staged.mask
        for i in range(s0, s1):
            d_bit = (durable.mask >> i) & 1
            s_bit = (staged.mask >> i) & 1
            bs = node.start + i * sub
            be = bs + sub
            lo, hi = max(off, bs), min(off + length, be)
            # Target fixed by the DURABLE bit: always a shadowed slot.
            if d_bit:
                target = last_base + (bs - last_start)
            else:
                target = node.log_off + (bs - node.start)
            if s_bit != d_bit:
                fill_src = target  # already written in this txn
            elif d_bit:
                fill_src = node.log_off + (bs - node.start)
            else:
                fill_src = last_base + (bs - last_start)
            buf = bytearray(sub)
            if lo > bs:
                buf[: lo - bs] = self._read_clipped(fill_src, lo - bs)
            if hi < be:
                buf[hi - bs :] = self._read_clipped(fill_src + (hi - bs), be - hi)
            buf[lo - bs : hi - bs] = data[lo - data_base : hi - data_base]
            limit = self._target_limit_base(target)
            payload = bytes(buf[: max(0, limit - target)])
            if payload:
                plan.data_writes.append((target, payload))
            # Final staged bit: the opposite side of the durable one.
            if d_bit:
                new_mask &= ~(1 << i)
            else:
                new_mask |= 1 << i

        word = bitmap.pack_leaf(new_mask, plan.gen)
        ordinal = _ordinal(self.tree, node)
        plan.commits.append((node, word, MetaSlot(ordinal, True, False, new_mask)))

    # ------------------------------------------------------------------- read

    def read_range(self, offset: int, length: int) -> Tuple[bytes, int]:
        """Assemble the latest bytes; returns (data, nodes_visited)."""
        out = bytearray(length)
        visited = self._read_rec(
            self.tree.root, 0, self.inode.base, 0, offset, length, out, offset
        )
        return bytes(out), visited

    def _read_rec(
        self,
        node: Optional[Node],
        path_gen: int,
        last_base: int,
        last_start: int,
        off: int,
        length: int,
        out: bytearray,
        out_base: int,
    ) -> int:
        if length <= 0:
            return 0
        if node is None:
            self._copy_from(last_base + (off - last_start), off, length, out, out_base)
            return 0

        if node.level == 0:
            return 1 + self._read_leaf(node, path_gen, last_base, last_start, off, length, out, out_base)

        is_root = node.level == self.tree.height and node.index == 0
        eff = bitmap.effective_nonleaf(node.word, path_gen)
        if eff.valid and not is_root:
            last_base, last_start = node.log_off, node.start
        elif is_root:
            last_base, last_start = self.inode.base, 0

        if not eff.existing:
            self._copy_from(last_base + (off - last_start), off, length, out, out_base)
            return 1

        visited = 1
        child_size = self.tree.gran(node.level - 1)
        first, last_idx = self.tree.child_range(node, off, length)
        for i in range(first, last_idx + 1):
            child_off = max(off, i * child_size)
            child_end = min(off + length, (i + 1) * child_size)
            child = self.tree.peek(node.level - 1, i)
            visited += self._read_rec(
                child, eff.sub_gen, last_base, last_start,
                child_off, child_end - child_off, out, out_base,
            )
        return visited

    def _read_leaf(
        self,
        node: Node,
        path_gen: int,
        last_base: int,
        last_start: int,
        off: int,
        length: int,
        out: bytearray,
        out_base: int,
    ) -> int:
        cfg = self.config
        nbits = cfg.effective_leaf_bits
        sub = cfg.leaf_size // nbits
        eff = bitmap.effective_leaf(node.word, path_gen)
        pos = off
        end = off + length
        while pos < end:
            i = (pos - node.start) // sub
            bit = (eff.mask >> i) & 1
            # Coalesce the run of sub-blocks served by the same source.
            j = i
            while node.start + (j + 1) * sub < end and ((eff.mask >> (j + 1)) & 1) == bit:
                j += 1
            run_end = min(end, node.start + (j + 1) * sub)
            take = run_end - pos
            if bit:
                src = node.log_off + (pos - node.start)
            else:
                src = last_base + (pos - last_start)
            self._copy_from(src, pos, take, out, out_base)
            pos = run_end
        return 0

    def _copy_from(self, dev_off: int, file_off: int, length: int, out: bytearray, out_base: int) -> None:
        data = self._read_clipped(dev_off, length)
        out[file_off - out_base : file_off - out_base + length] = data

    # -------------------------------------------------------------- write-back

    def write_back(self) -> int:
        """Copy every fresh log byte into the file (close / recovery).

        Parent-before-child order: deeper (fresher) content overwrites.
        Returns the number of bytes copied.
        """
        limit = min(self.tree.covered(), self.inode.size)
        copied = self._wb_rec(self.tree.root, 0, 0, limit)
        self.device.fence()
        return copied

    def _wb_rec(self, node: Optional[Node], path_gen: int, off: int, end: int) -> int:
        if node is None or off >= end:
            return 0
        copied = 0
        if node.level == 0:
            cfg = self.config
            nbits = cfg.effective_leaf_bits
            sub = cfg.leaf_size // nbits
            eff = bitmap.effective_leaf(node.word, path_gen)
            for rs, re_ in bitmap.iter_mask_runs(eff.mask, nbits):
                lo = max(off, node.start + rs * sub)
                hi = min(end, node.start + re_ * sub)
                if lo < hi:
                    data = self.device.load(node.log_off + (lo - node.start), hi - lo)
                    self.device.nt_store(self.inode.base + lo, data)
                    copied += hi - lo
            return copied

        is_root = node.level == self.tree.height and node.index == 0
        eff = bitmap.effective_nonleaf(node.word, path_gen)
        if eff.valid and not is_root:
            lo, hi = max(off, node.start), min(end, node.start + node.size)
            if lo < hi:
                data = self.device.load(node.log_off + (lo - node.start), hi - lo)
                self.device.nt_store(self.inode.base + lo, data)
                copied += hi - lo
        if eff.existing or is_root:
            child_size = self.tree.gran(node.level - 1)
            lo, hi = max(off, node.start), min(end, node.start + node.size)
            if lo < hi:
                first, last_idx = self.tree.child_range(node, lo, hi - lo)
                for i in range(first, last_idx + 1):
                    child = self.tree.peek(node.level - 1, i)
                    copied += self._wb_rec(child, eff.sub_gen, lo, hi)
        return copied
