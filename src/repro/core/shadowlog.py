"""Multi-granularity Shadow Logging (MSL, §III-B).

The planner walks the radix tree (Algorithm 1) and decomposes one write
into terminal actions. At a terminal node the *shadow log role switch*
happens:

- node's log **invalid** → redo-style: new data goes into the node's own
  log; commit sets the valid bit (old data stays authoritative upstream
  until commit).
- node's log **valid** → undo-style: the node's log already holds the
  (about to be old) data, so the new data is written straight into the
  *last valid ancestor's* log (ultimately the file itself); commit
  clears the valid bit. The bytes being overwritten upstream are
  shadowed by this node's still-set valid bit, so a torn write is
  invisible.

Either way each commit is one atomic word store, and every byte of user
data is written exactly once (plus sub-block RMW fill at the edges) —
the zero-copy property of Fig 3.

Planning is side-effect-light: it may materialize DRAM nodes and
allocate log blocks, and it *reads* authoritative bytes for RMW fill,
but all stores happen later in the exact crash-safe order
(:meth:`repro.core.file.MgspFile.write`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core import bitmap
from repro.core.config import MgspConfig
from repro.core.metalog import MetaSlot
from repro.core.radix import Node, RadixTree
from repro.fsapi.volume import Inode
from repro.nvm.allocator import LogAllocator
from repro.nvm.device import NvmDevice
from repro.obs.spans import NULL_SINK


@dataclass
class MslStats:
    """Observability: how the multi-granularity machinery is being used."""

    redo_commits: int = 0  # data written to the node's own log
    undo_commits: int = 0  # role switch: data written into an ancestor
    coarse_commits: int = 0  # non-leaf terminal commits
    fine_commits: int = 0  # leaf commits
    sub_block_writes: int = 0  # sub-leaf granularity updates
    rmw_fill_bytes: int = 0  # bytes copied for unaligned edges
    logs_allocated: int = 0


@dataclass(slots=True)
class WritePlan:
    gen: int
    data_writes: List[Tuple[int, bytes]] = field(default_factory=list)
    commits: List[Tuple[Node, int, MetaSlot]] = field(default_factory=list)
    refreshes: List[Tuple[Node, int]] = field(default_factory=list)
    new_logs: List[Node] = field(default_factory=list)
    path: List[Tuple[int, int]] = field(default_factory=list)
    terminals: List[Tuple[int, int]] = field(default_factory=list)
    nodes_visited: int = 0
    #: shadow-logging-off ablation: (node, src_off, dst_off, length) copies
    #: performed after commit, then the node's word is cleared.
    checkpoints: List[Tuple[Node, int, int, int]] = field(default_factory=list)
    #: coarse tail-merge state (see ``ShadowLog._append_coarse``): index
    #: of the last coarse append in ``data_writes`` and the [start, end)
    #: slice of the caller's buffer it carries. Source- and
    #: target-adjacent coarse writes extend that slice in place instead
    #: of concatenating payloads later — the pairs merged here are
    #: exactly pairs ``_coalesce`` would merge anyway (target-adjacent),
    #: so the device-visible write segmentation is unchanged.
    _tail_idx: int = -1
    _tail_src_start: int = -1
    _tail_src_end: int = -1


def _ordinal(tree: RadixTree, node: Node) -> int:
    return tree.level_base[node.level] + node.index


class ShadowLog:
    """Planner + reader + write-back for one file's tree."""

    #: telemetry sink (the owning MgspFile copies ``fs.obs`` here)
    obs = NULL_SINK

    def __init__(
        self,
        tree: RadixTree,
        device: NvmDevice,
        alloc: LogAllocator,
        inode: Inode,
        config: MgspConfig,
    ) -> None:
        self.tree = tree
        self.device = device
        self.alloc = alloc
        self.inode = inode
        self.config = config
        self.stats = MslStats()

    # ------------------------------------------------------------------ write

    def plan_write(self, offset: int, data: bytes, gen: int) -> WritePlan:
        plan = WritePlan(gen=gen)
        root = self.tree.root
        self._descend_write(
            plan, root, 0, self.inode.base, 0, offset, len(data), data, offset
        )
        return plan

    def plan_write_fast(
        self, offset: int, data: bytes, gen: int, leaf: Node, ancestors
    ) -> WritePlan:
        """Plan a write fully contained in *leaf* without descending.

        *ancestors* is the leaf's ancestor chain from the root down to
        its parent (resolved once and cached by
        :class:`~repro.core.file.MgspFile`). Because a leaf-contained
        write can never fully cover a non-leaf node, the generic descent
        would visit exactly this chain and recurse into a single child
        at every level; this method replays that walk iteratively over
        the cached node references — same refreshes, same path, same
        terminal plan, none of the per-level child-range arithmetic or
        dictionary lookups.
        """
        plan = WritePlan(gen=gen)
        path_gen = 0
        last_base, last_start = self.inode.base, 0
        height = self.tree.height
        path = plan.path
        refreshes = plan.refreshes
        gen_mask = bitmap.GEN_MASK
        gen_shifted = gen << 32
        # Inlined effective_nonleaf + pack_nonleaf(existing=True): this
        # loop runs for every ancestor of every leaf-contained write.
        for node in ancestors:
            word = node.word
            if (word >> 32) & gen_mask < path_gen:
                # Entire word predates a coarse ancestor update: dead.
                valid = 0
                sub_gen = path_gen
            else:
                valid = word & 1
                sub_gen = (word >> 8) & gen_mask
                if sub_gen < path_gen:
                    sub_gen = path_gen
            new_word = valid | 2 | (sub_gen << 8) | gen_shifted
            if new_word != word:
                refreshes.append((node, new_word))
            path.append((node.level, node.index))
            if valid and node.level != height:
                last_base, last_start = node.log_off, node.start
            path_gen = sub_gen
        plan.nodes_visited = len(ancestors) + 1
        self._plan_leaf(
            plan, leaf, path_gen, last_base, last_start, offset, len(data), data, offset
        )
        plan.terminals.append((0, leaf.index))
        return plan

    def _descend_write(
        self,
        plan: WritePlan,
        node: Node,
        path_gen: int,
        last_base: int,
        last_start: int,
        off: int,
        length: int,
        data: bytes,
        data_base: int,
    ) -> None:
        plan.nodes_visited += 1
        if node.level == 0:
            self._plan_leaf(plan, node, path_gen, last_base, last_start, off, length, data, data_base)
            plan.terminals.append((0, node.index))
            return

        is_root = node.level == self.tree.height and node.index == 0
        eff = bitmap.effective_nonleaf(node.word, path_gen)
        full_cover = off == node.start and length == node.size

        if full_cover and self.config.multi_granularity:
            self._plan_coarse_terminal(plan, node, eff, is_root, last_base, last_start, data, data_base, off)
            plan.terminals.append((node.level, node.index))
            return

        # Not terminal: refresh the existing bit on the path (eager,
        # unlogged; recovery recomputes existing bits from valid bits).
        new_word = bitmap.pack_nonleaf(
            valid=eff.valid, existing=True, sub_gen=eff.sub_gen, own_gen=plan.gen
        )
        if new_word != node.word:
            plan.refreshes.append((node, new_word))
        plan.path.append((node.level, node.index))

        if eff.valid and not is_root:
            last_base, last_start = node.log_off, node.start
        elif is_root:
            last_base, last_start = self.inode.base, 0

        child_size = self.tree.gran(node.level - 1)
        first, last_idx = self.tree.child_range(node, off, length)
        for i in range(first, last_idx + 1):
            child_off = max(off, i * child_size)
            child_end = min(off + length, (i + 1) * child_size)
            child = self.tree.node(node.level - 1, i)
            self._descend_write(
                plan, child, eff.sub_gen, last_base, last_start,
                child_off, child_end - child_off, data, data_base,
            )

    @staticmethod
    def _append_coarse(
        plan: WritePlan, target: int, data: bytes, src_start: int, src_end: int
    ) -> None:
        """Append a coarse payload as a zero-copy slice of the caller's
        buffer, extending the previous coarse write in place when both
        the device target and the source slice are contiguous (adjacent
        sibling terminals of one large write)."""
        dw = plan.data_writes
        if (
            plan._tail_idx == len(dw) - 1
            and plan._tail_src_end == src_start
            and dw
            and dw[-1][0] + (src_start - plan._tail_src_start) == target
        ):
            dw[-1] = (dw[-1][0], memoryview(data)[plan._tail_src_start : src_end])
            plan._tail_src_end = src_end
            return
        dw.append((target, memoryview(data)[src_start:src_end]))
        plan._tail_idx = len(dw) - 1
        plan._tail_src_start = src_start
        plan._tail_src_end = src_end

    def _plan_coarse_terminal(
        self,
        plan: WritePlan,
        node: Node,
        eff: bitmap.NonLeafBits,
        is_root: bool,
        last_base: int,
        last_start: int,
        data: bytes,
        data_base: int,
        off: int,
    ) -> None:
        src_start = off - data_base
        src_end = src_start + node.size
        ordinal = _ordinal(self.tree, node)
        shadow = self.config.shadow_logging
        valid_now = eff.valid or is_root

        if shadow and valid_now:
            # Undo-style: new data straight into the last valid ancestor
            # (for the root, "ancestor" is the file itself).
            self.stats.undo_commits += 1
            self.stats.coarse_commits += 1
            target = last_base + (off - last_start)
            limit = self._target_limit(last_base)
            if limit - target < node.size:
                src_end = src_start + max(0, limit - target)
            self._append_coarse(plan, target, data, src_start, src_end)
            word = bitmap.pack_nonleaf(False, False, plan.gen, plan.gen)
            plan.commits.append((node, word, MetaSlot(ordinal, False, False)))
            return

        # Redo-style (also the shadow-off ablation path): own log.
        self.stats.redo_commits += 1
        self.stats.coarse_commits += 1
        if node.log_off == 0:
            node.log_off = self.alloc.alloc(node.size)
            plan.new_logs.append(node)
            self.stats.logs_allocated += 1
        self._append_coarse(plan, node.log_off, data, src_start, src_end)
        word = bitmap.pack_nonleaf(True, False, plan.gen, plan.gen)
        plan.commits.append((node, word, MetaSlot(ordinal, False, True)))
        if not shadow:
            target = last_base + (off - last_start)
            plan.checkpoints.append((node, node.log_off, target, node.size))

    def _plan_leaf(
        self,
        plan: WritePlan,
        node: Node,
        path_gen: int,
        last_base: int,
        last_start: int,
        off: int,
        length: int,
        data: bytes,
        data_base: int,
    ) -> None:
        cfg = self.config
        nbits = cfg.effective_leaf_bits
        sub = cfg.leaf_size // nbits
        # Inlined effective_leaf / mask_for_range (hot path).
        word = node.word
        mask = 0 if (word >> 32) & bitmap.GEN_MASK < path_gen else word & bitmap.MASK32
        s0 = (off - node.start) // sub
        s1 = -(-(off + length - node.start) // sub)
        covered = ((1 << (s1 - s0)) - 1) << s0
        shadow = cfg.shadow_logging

        covered_mask = mask & covered
        need_leaf_log = not shadow or covered_mask != covered
        if need_leaf_log and node.log_off == 0:
            node.log_off = self.alloc.alloc(cfg.leaf_size)
            plan.new_logs.append(node)
            self.stats.logs_allocated += 1
        self.stats.fine_commits += 1
        if s1 - s0 < nbits:
            self.stats.sub_block_writes += 1

        # Slice the write by runs of sub-blocks sharing a target base:
        # under shadow logging a run is a maximal stretch of equal valid
        # bits (set -> undo into the ancestor slot, clear -> redo into
        # the own log); without it every sub-block targets the own log.
        # Adjacent runs whose targets happen to touch are then merged so
        # the emitted device writes match the per-sub-block planner
        # exactly.
        end = off + length
        stats = self.stats
        log_delta = node.log_off - node.start
        anc_delta = last_base - last_start

        if s1 - s0 == 1:
            # Single touched sub-block (the small-write hot case): one
            # run, one target, both RMW fills read the same source.
            bit = (mask >> s0) & 1
            if shadow and bit:
                stats.undo_commits += 1
                target_delta = anc_delta
            else:
                stats.redo_commits += 1
                target_delta = log_delta
            fill_delta = log_delta if bit else anc_delta
            run_start = node.start + s0 * sub
            run_end = run_start + sub
            payload = data[off - data_base : end - data_base]
            if off > run_start:
                head = self._read_clipped(run_start + fill_delta, off - run_start)
                stats.rmw_fill_bytes += off - run_start
                payload = head + payload
            if end < run_end:
                payload = payload + self._read_clipped(end + fill_delta, run_end - end)
                stats.rmw_fill_bytes += run_end - end
            target = run_start + target_delta
            limit = self._target_limit_base(target)
            if limit - target < len(payload):
                payload = payload[: max(0, limit - target)]
            if payload:
                plan.data_writes.append((target, payload))
            new_mask = mask ^ covered if shadow else mask | covered
            plan.commits.append(
                (node, bitmap.pack_leaf(new_mask, plan.gen),
                 MetaSlot(_ordinal(self.tree, node), True, False, new_mask))
            )
            if not shadow:
                for rs, re_ in bitmap.iter_mask_runs(new_mask, nbits):
                    src = node.log_off + rs * sub
                    dst = last_base + (node.start + rs * sub - last_start)
                    plan.checkpoints.append((node, src, dst, (re_ - rs) * sub))
            return

        pieces = []  # (target, [payload chunks])
        i = s0
        while i < s1:
            bit = (mask >> i) & 1
            j = i + 1
            if shadow:
                while j < s1 and ((mask >> j) & 1) == bit:
                    j += 1
            else:
                j = s1
            run_start = node.start + i * sub
            run_end = node.start + j * sub
            if shadow and bit:
                stats.undo_commits += j - i
                target = run_start + anc_delta
            else:
                stats.redo_commits += j - i
                target = run_start + log_delta
            lo = off if off > run_start else run_start
            hi = end if end < run_end else run_end
            chunks = []
            # RMW fills read from the authoritative source of the edge
            # sub-block: its own log if its valid bit is set, else the
            # last valid ancestor's slot.
            if lo > run_start:  # prefix fill (first touched sub-block)
                delta = log_delta if bit else anc_delta
                chunks.append(self._read_clipped(run_start + delta, lo - run_start))
                stats.rmw_fill_bytes += lo - run_start
            chunks.append(data[lo - data_base : hi - data_base])
            if hi < run_end:  # suffix fill (last touched sub-block)
                delta = log_delta if (mask >> (j - 1)) & 1 else anc_delta
                chunks.append(self._read_clipped(hi + delta, run_end - hi))
                stats.rmw_fill_bytes += run_end - hi
            if pieces and pieces[-1][0] + pieces[-1][1] == target:
                prev = pieces[-1]
                prev[1] += run_end - run_start
                prev[2].extend(chunks)
            else:
                pieces.append([target, run_end - run_start, chunks])
            i = j

        for target, _plen, chunks in pieces:
            payload = chunks[0] if len(chunks) == 1 else b"".join(chunks)
            limit = self._target_limit_base(target)
            if limit - target < len(payload):
                payload = payload[: max(0, limit - target)]
            if payload:
                plan.data_writes.append((target, bytes(payload)))

        if shadow:
            new_mask = mask ^ covered
        else:
            new_mask = mask | covered
        word = bitmap.pack_leaf(new_mask, plan.gen)
        ordinal = _ordinal(self.tree, node)
        plan.commits.append((node, word, MetaSlot(ordinal, True, False, new_mask)))
        if not shadow:
            # Ablation: synchronously push every fresh sub-block back.
            for rs, re_ in bitmap.iter_mask_runs(new_mask, nbits):
                src = node.log_off + rs * sub
                dst = last_base + (node.start + rs * sub - last_start)
                plan.checkpoints.append((node, src, dst, (re_ - rs) * sub))

    # -- helpers ----------------------------------------------------------------

    def _target_limit(self, base: int) -> int:
        """Writes into the file extent must not cross its capacity."""
        if base == self.inode.base:
            return self.inode.base + self.inode.capacity
        return 1 << 62

    def _target_limit_base(self, target: int) -> int:
        if self.inode.base <= target < self.inode.base + self.inode.capacity:
            return self.inode.base + self.inode.capacity
        return 1 << 62

    def _read_clipped(self, dev_off: int, length: int) -> bytes:
        """Device read clipped at the file extent end (tail sub-blocks)."""
        if self.inode.base <= dev_off < self.inode.base + self.inode.capacity:
            length = min(length, self.inode.base + self.inode.capacity - dev_off)
        data = self.device.load(dev_off, length) if length > 0 else b""
        return data.ljust(length, b"\0")

    # ----------------------------------------------------------- transactions

    def plan_txn_write(
        self,
        offset: int,
        data: bytes,
        gen: int,
        durable_word,
    ) -> WritePlan:
        """Plan one write inside a multi-write transaction.

        Transactions stage bitmap words in DRAM and commit them together
        (see :mod:`repro.core.txn`), so a torn transaction must leave
        every *durably authoritative* byte untouched. The safe target
        for each sub-block is therefore fixed by the DURABLE valid bit
        (1 → the ancestor slot it shadows, 0 → the leaf's own log),
        independent of how many times the transaction rewrites it, while
        fill content and the final mask follow the STAGED state.
        ``durable_word(node)`` returns the word as it stands on media.

        Transactional writes always decompose to leaf terminals (no
        coarse-grained logs), which keeps durable path generations equal
        to staged ones.
        """
        plan = WritePlan(gen=gen)
        root = self.tree.root
        self._descend_txn(
            plan, root, 0, self.inode.base, 0, offset, len(data), data, offset, durable_word
        )
        return plan

    def _descend_txn(
        self, plan, node, path_gen, last_base, last_start, off, length, data, data_base, durable_word
    ) -> None:
        plan.nodes_visited += 1
        if node.level == 0:
            self._plan_txn_leaf(
                plan, node, path_gen, last_base, last_start, off, length, data, data_base, durable_word
            )
            plan.terminals.append((0, node.index))
            return
        is_root = node.level == self.tree.height and node.index == 0
        eff = bitmap.effective_nonleaf(node.word, path_gen)
        new_word = bitmap.pack_nonleaf(
            valid=eff.valid, existing=True, sub_gen=eff.sub_gen, own_gen=plan.gen
        )
        if new_word != node.word:
            plan.refreshes.append((node, new_word))
        plan.path.append((node.level, node.index))
        if eff.valid and not is_root:
            last_base, last_start = node.log_off, node.start
        elif is_root:
            last_base, last_start = self.inode.base, 0
        child_size = self.tree.gran(node.level - 1)
        first, last_idx = self.tree.child_range(node, off, length)
        for i in range(first, last_idx + 1):
            child_off = max(off, i * child_size)
            child_end = min(off + length, (i + 1) * child_size)
            child = self.tree.node(node.level - 1, i)
            self._descend_txn(
                plan, child, eff.sub_gen, last_base, last_start,
                child_off, child_end - child_off, data, data_base, durable_word,
            )

    def _plan_txn_leaf(
        self, plan, node, path_gen, last_base, last_start, off, length, data, data_base, durable_word
    ) -> None:
        cfg = self.config
        nbits = cfg.effective_leaf_bits
        sub = cfg.leaf_size // nbits
        staged = bitmap.effective_leaf(node.word, path_gen)
        durable = bitmap.effective_leaf(durable_word(node), path_gen)
        s0 = (off - node.start) // sub
        s1 = -(-(off + length - node.start) // sub)

        need_leaf_log = any(((durable.mask >> i) & 1) == 0 for i in range(s0, s1))
        if need_leaf_log and node.log_off == 0:
            node.log_off = self.alloc.alloc(cfg.leaf_size)
            plan.new_logs.append(node)

        new_mask = staged.mask
        for i in range(s0, s1):
            d_bit = (durable.mask >> i) & 1
            s_bit = (staged.mask >> i) & 1
            bs = node.start + i * sub
            be = bs + sub
            lo, hi = max(off, bs), min(off + length, be)
            # Target fixed by the DURABLE bit: always a shadowed slot.
            if d_bit:
                target = last_base + (bs - last_start)
            else:
                target = node.log_off + (bs - node.start)
            if s_bit != d_bit:
                fill_src = target  # already written in this txn
            elif d_bit:
                fill_src = node.log_off + (bs - node.start)
            else:
                fill_src = last_base + (bs - last_start)
            buf = bytearray(sub)
            if lo > bs:
                buf[: lo - bs] = self._read_clipped(fill_src, lo - bs)
            if hi < be:
                buf[hi - bs :] = self._read_clipped(fill_src + (hi - bs), be - hi)
            buf[lo - bs : hi - bs] = data[lo - data_base : hi - data_base]
            limit = self._target_limit_base(target)
            payload = bytes(buf[: max(0, limit - target)])
            if payload:
                plan.data_writes.append((target, payload))
            # Final staged bit: the opposite side of the durable one.
            if d_bit:
                new_mask &= ~(1 << i)
            else:
                new_mask |= 1 << i

        word = bitmap.pack_leaf(new_mask, plan.gen)
        ordinal = _ordinal(self.tree, node)
        plan.commits.append((node, word, MetaSlot(ordinal, True, False, new_mask)))

    # ------------------------------------------------------------------- read

    def read_range(self, offset: int, length: int) -> Tuple[bytes, int]:
        """Assemble the latest bytes; returns (data, nodes_visited)."""
        out = bytearray(length)
        visited = self._read_rec(
            self.tree.root, 0, self.inode.base, 0, offset, length, out, offset
        )
        return bytes(out), visited

    def _read_rec(
        self,
        node: Optional[Node],
        path_gen: int,
        last_base: int,
        last_start: int,
        off: int,
        length: int,
        out: bytearray,
        out_base: int,
    ) -> int:
        if length <= 0:
            return 0
        if node is None:
            self._copy_from(last_base + (off - last_start), off, length, out, out_base)
            return 0

        if node.level == 0:
            return 1 + self._read_leaf(node, path_gen, last_base, last_start, off, length, out, out_base)

        is_root = node.level == self.tree.height and node.index == 0
        eff = bitmap.effective_nonleaf(node.word, path_gen)
        if eff.valid and not is_root:
            last_base, last_start = node.log_off, node.start
        elif is_root:
            last_base, last_start = self.inode.base, 0

        if not eff.existing:
            self._copy_from(last_base + (off - last_start), off, length, out, out_base)
            return 1

        visited = 1
        child_size = self.tree.gran(node.level - 1)
        first, last_idx = self.tree.child_range(node, off, length)
        for i in range(first, last_idx + 1):
            child_off = max(off, i * child_size)
            child_end = min(off + length, (i + 1) * child_size)
            child = self.tree.peek(node.level - 1, i)
            visited += self._read_rec(
                child, eff.sub_gen, last_base, last_start,
                child_off, child_end - child_off, out, out_base,
            )
        return visited

    def _read_leaf(
        self,
        node: Node,
        path_gen: int,
        last_base: int,
        last_start: int,
        off: int,
        length: int,
        out: bytearray,
        out_base: int,
    ) -> int:
        cfg = self.config
        nbits = cfg.effective_leaf_bits
        sub = cfg.leaf_size // nbits
        eff = bitmap.effective_leaf(node.word, path_gen)
        pos = off
        end = off + length
        while pos < end:
            i = (pos - node.start) // sub
            bit = (eff.mask >> i) & 1
            # Coalesce the run of sub-blocks served by the same source.
            j = i
            while node.start + (j + 1) * sub < end and ((eff.mask >> (j + 1)) & 1) == bit:
                j += 1
            run_end = min(end, node.start + (j + 1) * sub)
            take = run_end - pos
            if bit:
                src = node.log_off + (pos - node.start)
            else:
                src = last_base + (pos - last_start)
            self._copy_from(src, pos, take, out, out_base)
            pos = run_end
        return 0

    def _copy_from(self, dev_off: int, file_off: int, length: int, out: bytearray, out_base: int) -> None:
        data = self._read_clipped(dev_off, length)
        out[file_off - out_base : file_off - out_base + length] = data

    # -------------------------------------------------------------- write-back

    def write_back(self) -> int:
        """Copy every fresh log byte into the file (close / recovery).

        Parent-before-child order: deeper (fresher) content overwrites.
        All copies read from log blocks and write into the file extent
        (disjoint regions), so the stores are gathered and issued as one
        scatter-gather batch. Returns the number of bytes copied.
        """
        obs = self.obs
        frame = obs.span_begin("checkpoint.writeback") if obs.enabled else None
        limit = min(self.tree.covered(), self.inode.size)
        writes: List[Tuple[int, bytes]] = []
        self._wb_rec(self.tree.root, 0, 0, limit, writes)
        if writes:
            self.device.nt_store_v(writes)
        self.device.fence()
        copied = sum(len(data) for _, data in writes)
        if frame is not None:
            obs.span_end(frame)
            obs.registry.counter("checkpoint_bytes_total").inc(copied)
        return copied

    def _wb_rec(
        self, node: Optional[Node], path_gen: int, off: int, end: int, writes: List
    ) -> None:
        if node is None or off >= end:
            return
        if node.level == 0:
            cfg = self.config
            nbits = cfg.effective_leaf_bits
            sub = cfg.leaf_size // nbits
            eff = bitmap.effective_leaf(node.word, path_gen)
            for rs, re_ in bitmap.iter_mask_runs(eff.mask, nbits):
                lo = max(off, node.start + rs * sub)
                hi = min(end, node.start + re_ * sub)
                if lo < hi:
                    data = self.device.load(node.log_off + (lo - node.start), hi - lo)
                    writes.append((self.inode.base + lo, data))
            return

        is_root = node.level == self.tree.height and node.index == 0
        eff = bitmap.effective_nonleaf(node.word, path_gen)
        if eff.valid and not is_root:
            lo, hi = max(off, node.start), min(end, node.start + node.size)
            if lo < hi:
                data = self.device.load(node.log_off + (lo - node.start), hi - lo)
                writes.append((self.inode.base + lo, data))
        if eff.existing or is_root:
            lo, hi = max(off, node.start), min(end, node.start + node.size)
            if lo < hi:
                first, last_idx = self.tree.child_range(node, lo, hi - lo)
                for i in range(first, last_idx + 1):
                    child = self.tree.peek(node.level - 1, i)
                    self._wb_rec(child, eff.sub_gen, lo, hi, writes)
