"""MGSP state verifier (fsck).

Walks a file's radix tree and checks the structural invariants the
shadow-logging protocol relies on (DESIGN.md §5):

1. every *effectively valid* non-root node has a log block, inside the
   log area, aligned and non-overlapping with other logs;
2. effective existing bits are sound: if a node's subtree holds fresh
   data, every ancestor on the path has its existing bit set (a missing
   bit would make the data unreachable);
3. every byte of the file has exactly one authoritative source (by
   construction of the top-down resolution — verified by materializing
   the source map and checking it is total);
4. the file size is covered by the current tree height;
5. the metadata log holds no entry for this file unless an operation is
   in flight.

Returns a :class:`VerifyReport`; ``raise_on_error=True`` turns findings
into :class:`~repro.errors.FsError`. Used by the test suite after fuzz
workloads, and available to users as ``verify_file(handle)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core import bitmap
from repro.core.file import MgspFile
from repro.errors import FsError


@dataclass
class VerifyReport:
    file: str
    errors: List[str] = field(default_factory=list)
    nodes_checked: int = 0
    valid_logs: int = 0
    fresh_bytes: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def fail(self, message: str) -> None:
        self.errors.append(message)


def verify_file(handle: MgspFile, raise_on_error: bool = False) -> VerifyReport:
    tree = handle.tree
    fs = handle.fs
    inode = handle.inode
    config = handle.config
    report = VerifyReport(file=inode.name)
    log_area = fs.volume.layout.log_area

    if tree.covered() < inode.size:
        report.fail(
            f"tree of height {tree.height} covers {tree.covered()} < size {inode.size}"
        )

    claimed: List[Tuple[int, int]] = []  # (start, end) of log blocks

    def check_log_block(node) -> None:
        if node.log_off == 0:
            report.fail(f"{node!r}: effectively valid but no log block")
            return
        if not log_area.contains(node.log_off, node.size):
            report.fail(f"{node!r}: log [{node.log_off}, +{node.size}) outside log area")
        if node.log_off % node.size:
            report.fail(f"{node!r}: log offset {node.log_off} unaligned to {node.size}")
        for start, end in claimed:
            if node.log_off < end and start < node.log_off + node.size:
                report.fail(f"{node!r}: log overlaps [{start}, {end})")
        claimed.append((node.log_off, node.log_off + node.size))

    def walk(node, path_gen: int, is_root: bool) -> bool:
        """Returns True when the subtree holds any fresh data."""
        report.nodes_checked += 1
        if node.level == 0:
            eff = bitmap.effective_leaf(node.word, path_gen)
            if eff.mask:
                report.valid_logs += 1
                check_log_block(node)
                sub = config.leaf_size // config.effective_leaf_bits
                report.fresh_bytes += bin(eff.mask).count("1") * sub
            return bool(eff.mask)

        eff = bitmap.effective_nonleaf(node.word, path_gen)
        if eff.valid and not is_root:
            report.valid_logs += 1
            check_log_block(node)
            report.fresh_bytes += node.size

        child_fresh = False
        first = node.start // tree.gran(node.level - 1)
        last = (node.start + node.size - 1) // tree.gran(node.level - 1)
        for index in range(first, min(last + 1, tree.level_counts[node.level - 1])):
            child = tree.peek(node.level - 1, index)
            if child is not None:
                child_fresh |= walk(child, eff.sub_gen, is_root=False)

        if child_fresh and not eff.existing:
            report.fail(
                f"{node!r}: descendants hold fresh data but existing bit is clear "
                "(data unreachable)"
            )
        return child_fresh or (eff.valid and not is_root)

    root = tree.peek(tree.height, 0)
    if root is not None:
        walk(root, 0, is_root=True)
    else:
        # No root record: the whole tree must be empty.
        for (level, index), node in tree.nodes.items():
            if node.word or node.log_off:
                if level == tree.height and index == 0:
                    continue
                report.fail(f"{node!r}: populated node under an un-materialized root")

    # Source totality: every byte resolves without raising and the
    # composition equals a direct read (cheap spot check on boundaries).
    try:
        probes = {0, inode.size // 2, max(0, inode.size - 1)}
        for off in sorted(p for p in probes if p < inode.size):
            handle.shadow.read_range(off, 1)
    except Exception as exc:  # pragma: no cover - defensive
        report.fail(f"read resolution raised: {exc!r}")

    # No leftover in-flight metadata entries for this file.
    for entry in fs.metalog.scan():
        if entry.file_id == inode.id:
            report.fail(f"metadata-log entry {entry.index} still live (gen {entry.gen})")

    if raise_on_error and not report.ok:
        raise FsError(f"verify({inode.name}): " + "; ".join(report.errors))
    return report
