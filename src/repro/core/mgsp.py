"""MGSP as a mounted file system."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import MgspConfig
from repro.core.file import MgspFile
from repro.core.flusher import WritebackScheduler
from repro.core.locks import MglLockManager
from repro.core.metalog import MetadataLog
from repro.core.radix import required_table_len
from repro.errors import FileBusy, FileNotFound
from repro.fsapi.interface import FileSystem, OpenFlags
from repro.nvm.allocator import LogAllocator
from repro.sim.trace import TraceRecorder


class MgspFilesystem(FileSystem):
    """User-space crash-consistent MMIO library (the paper's system).

    Every write is a synchronized atomic operation; ``fsync`` is a
    fence. Files opened through this class correspond to the paper's
    ``O_ATOMIC`` interposition path.
    """

    name = "MGSP"
    kernel_space = False
    consistency = "operation"
    log_fraction = 0.40
    #: the async write-back flusher replays as a daemon thread
    bg_daemon = True

    def __init__(self, *args, config: Optional[MgspConfig] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.config = config or MgspConfig()
        area = self.volume.layout.log_area
        self.logs = LogAllocator(area.start, area.end)
        self.metalog = MetadataLog(
            self.device, self.volume.layout.metalog, self.config.metalog_entries
        )
        self.mgl = MglLockManager(self.config, self.recorder)
        #: simulated thread issuing the current op (set by workload runners)
        self.current_thread = 0
        self._refs: Dict[int, int] = {}
        self._txn_counter = 0
        self._init_flusher()

    def _init_flusher(self) -> None:
        """Asynchronous write-back epochs: background checkpoint traces
        land on ``bg_recorder`` and replay as a flusher thread."""
        self.bg_recorder = TraceRecorder(self.timing)
        self.flusher = (
            WritebackScheduler(
                self,
                self.config.writeback_epoch_bytes,
                self.config.writeback_epoch_ops,
            )
            if self.config.async_writeback
            else None
        )

    def take_bg_traces(self):
        return self.bg_recorder.take_completed()

    # -- handle refcounts (greedy locking gate) --------------------------------

    def handle_refs(self, inode_id: int) -> int:
        return self._refs.get(inode_id, 0)

    def release_handle(self, inode_id: int) -> None:
        self._refs[inode_id] = max(0, self._refs.get(inode_id, 1) - 1)
        self.open_handles = max(0, self.open_handles - 1)

    # -- namespace ---------------------------------------------------------------

    def create(self, name: str, capacity: int) -> MgspFile:
        inode = self.volume.create(
            name, capacity, node_table_len=required_table_len(capacity, self.config)
        )
        self.open_handles += 1
        self._refs[inode.id] = self._refs.get(inode.id, 0) + 1
        return MgspFile(self, inode)

    def open(self, name: str, flags: OpenFlags = OpenFlags.RDWR) -> MgspFile:
        if not self.volume.exists(name):
            if flags & OpenFlags.CREAT:
                return self.create(name, 4096)
            raise FileNotFound(name)
        inode = self.volume.lookup(name)
        if self._refs.get(inode.id, 0) > 0:
            # The paper's sharing model: threads share one handle; a
            # second process-level open waits for close.
            raise FileBusy(f"{name} is already open via MGSP")
        self.open_handles += 1
        self._refs[inode.id] = self._refs.get(inode.id, 0) + 1
        handle = MgspFile(self, inode)
        handle.read_only = not bool(flags & OpenFlags.RDWR)
        handle.tree.load_from_table()
        return handle

    def unlink(self, name: str) -> None:
        """Unlink *name* and drop its write-back accounting.

        The scheduler keys fresh-log counters by inode id; without the
        ``forget`` an unlinked-while-open file would keep its stale
        counters alive (and the next epoch drain for a dangling handle
        used to persist its size into the freed — possibly reused —
        inode slot; ``Volume`` now refuses slot writes for unlinked
        inodes, see :attr:`repro.fsapi.volume.Inode.unlinked`).
        """
        inode = self.volume.lookup(name)
        super().unlink(name)
        if self.flusher is not None:
            self.flusher.forget(inode.id)

    # -- transactions (future-work extension, see repro.core.txn) -------------------

    def begin_transaction(self, handle: MgspFile):
        """Open a failure-atomic multi-write transaction on *handle*."""
        from repro.core.txn import MgspTransaction

        return MgspTransaction(self, handle)

    def next_txn_id(self) -> int:
        self._txn_counter += 1
        return self._txn_counter

    # -- simulated-thread lifecycle -------------------------------------------------

    def end_thread(self, thread: int) -> None:
        """Emit the trailer that releases lazily retained intention locks."""
        self.recorder.begin_op("thread-trailer")
        self.mgl.release_retained(thread)
        self.recorder.end_op()

    @classmethod
    def remount(
        cls,
        device,
        config: Optional[MgspConfig] = None,
        timing=None,
    ) -> "MgspFilesystem":
        """Mount an existing device image (use :func:`repro.core.recover`
        first if the image may hold in-flight operations)."""
        from repro.fsapi.layout import VolumeLayout
        from repro.fsapi.volume import Volume

        fs = cls.__new__(cls)
        FileSystem.__init__(fs, device=device, timing=timing)
        fs.volume = Volume.mount(
            device, VolumeLayout.for_device(device.size, log_fraction=cls.log_fraction)
        )
        fs.config = config or MgspConfig()
        area = fs.volume.layout.log_area
        fs.logs = LogAllocator(area.start, area.end)
        fs.metalog = MetadataLog(device, fs.volume.layout.metalog, fs.config.metalog_entries)
        fs.mgl = MglLockManager(fs.config, fs.recorder)
        fs.current_thread = 0
        fs._refs = {}
        fs._txn_counter = 0
        fs._init_flusher()
        return fs
