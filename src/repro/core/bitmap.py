"""Packed per-node metadata words and effective-bit resolution.

Every radix node owns one 64-bit word in its file's persistent node
table, updated only with 8-byte atomic stores — the commit unit of MGSP.

Non-leaf word::

    bit 0        valid        this node's log holds (part of) the latest data
    bit 1        existing     some descendant holds fresher data
    bits 8..31   sub_gen      generation stamped on the whole subtree
    bits 32..55  own_gen      generation this word was written at

Leaf word::

    bits 0..31   mask         per-sub-block valid bits
    bits 32..55  own_gen

**Lazy bitmap cleaning** (§III-B2) is implemented with the generations: a
coarse-grained commit at node X stores ``sub_gen = G`` into X's word
*only*; every descendant whose ``own_gen < G`` is thereby stale (its
valid/existing/mask read as zero) without touching its word. Staleness
is resolved top-down: ``path_gen`` is the running max of ancestor
``sub_gen`` values. This keeps the paper's one-atomic-store commit while
making lazy cleaning crash-consistent.
"""

from __future__ import annotations

from typing import NamedTuple

GEN_BITS = 24
GEN_MASK = (1 << GEN_BITS) - 1
MASK32 = 0xFFFFFFFF

_VALID = 1 << 0
_EXISTING = 1 << 1


class NonLeafBits(NamedTuple):
    valid: bool
    existing: bool
    sub_gen: int
    own_gen: int


class LeafBits(NamedTuple):
    mask: int
    own_gen: int


def pack_nonleaf(valid: bool, existing: bool, sub_gen: int, own_gen: int) -> int:
    word = 0
    if valid:
        word |= _VALID
    if existing:
        word |= _EXISTING
    word |= (sub_gen & GEN_MASK) << 8
    word |= (own_gen & GEN_MASK) << 32
    return word


def unpack_nonleaf(word: int) -> NonLeafBits:
    return NonLeafBits(
        valid=bool(word & _VALID),
        existing=bool(word & _EXISTING),
        sub_gen=(word >> 8) & GEN_MASK,
        own_gen=(word >> 32) & GEN_MASK,
    )


def pack_leaf(mask: int, own_gen: int) -> int:
    return (mask & MASK32) | ((own_gen & GEN_MASK) << 32)


def unpack_leaf(word: int) -> LeafBits:
    return LeafBits(mask=word & MASK32, own_gen=(word >> 32) & GEN_MASK)


def effective_nonleaf(word: int, path_gen: int) -> NonLeafBits:
    """Resolve a stored non-leaf word against the ancestors' generation."""
    bits = unpack_nonleaf(word)
    if bits.own_gen < path_gen:
        # Entire word predates a coarse-grained ancestor update: dead.
        return NonLeafBits(valid=False, existing=False, sub_gen=path_gen, own_gen=path_gen)
    return NonLeafBits(
        valid=bits.valid,
        existing=bits.existing,
        sub_gen=max(path_gen, bits.sub_gen),
        own_gen=bits.own_gen,
    )


def effective_leaf(word: int, path_gen: int) -> LeafBits:
    bits = unpack_leaf(word)
    if bits.own_gen < path_gen:
        return LeafBits(mask=0, own_gen=path_gen)
    return bits


def mask_for_range(start_sub: int, end_sub: int) -> int:
    """Bit mask covering sub-blocks [start_sub, end_sub)."""
    if end_sub <= start_sub:
        return 0
    return ((1 << (end_sub - start_sub)) - 1) << start_sub


def iter_mask_runs(mask: int, nbits: int):
    """Yield (start_sub, end_sub) runs of set bits in *mask*."""
    sub = 0
    while sub < nbits:
        if mask & (1 << sub):
            run_start = sub
            while sub < nbits and mask & (1 << sub):
                sub += 1
            yield run_start, sub
        else:
            sub += 1
