"""The memory-mapped I/O surface (what "MMIO" means to applications).

The paper's library interposes on ``mmap`` so that loads and stores to
the mapped region become crash-consistent. In the simulation the same
idea is an object with Python's buffer idioms:

    mm = handle.mmap()
    mm[0:5] = b"hello"      # one synchronized atomic operation
    assert mm[0:5] == b"hello"
    mm.flush()              # msync: a fence (data is already safe)

Slice assignment routes through the MGSP write flow (shadow logs +
metadata log), so *every store is failure-atomic* — the semantic the
paper contrasts against Libnvmmio's fsync-granularity atomicity. Reads
assemble the latest bytes from the multi-granularity logs.

``MgspMmap`` works for any :class:`~repro.fsapi.interface.FileHandle`
that implements ``write``/``read`` (so the baselines can be driven
through the same interface, with their own weaker guarantees).
"""

from __future__ import annotations

from typing import Union

from repro.errors import FsError


class MgspMmap:
    """A mapped view of one file; subscripts are byte offsets."""

    def __init__(self, handle, length: int = 0) -> None:
        self.handle = handle
        self.length = length or handle.inode.capacity
        self.closed = False

    # -- buffer-style access -----------------------------------------------

    def _check(self) -> None:
        if self.closed:
            raise FsError("mmap view is closed")

    def _bounds(self, key: Union[int, slice]) -> tuple:
        if isinstance(key, int):
            if key < 0:
                key += self.length
            if not 0 <= key < self.length:
                raise IndexError(f"offset {key} outside mapping of {self.length}")
            return key, key + 1
        start, stop, step = key.indices(self.length)
        if step != 1:
            raise ValueError("mmap views do not support strided access")
        return start, stop

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, key) -> bytes:
        self._check()
        start, stop = self._bounds(key)
        if stop <= start:
            return b""
        obs = self.handle.fs.obs
        frame = obs.span_begin("mmio.read") if obs.enabled else None
        data = self.handle.read(start, stop - start)
        if frame is not None:
            obs.span_end(frame)
        # Reads past EOF within the mapping observe zeros (fresh pages).
        data = data.ljust(stop - start, b"\0")
        return data if isinstance(key, slice) else data

    def __setitem__(self, key, value: bytes) -> None:
        self._check()
        if isinstance(key, int):
            value = bytes(value) if not isinstance(value, (bytes, bytearray)) else value
            if isinstance(value, int):  # pragma: no cover - defensive
                value = bytes([value])
        start, stop = self._bounds(key)
        value = bytes(value)
        if len(value) != stop - start:
            raise ValueError(
                f"store of {len(value)} bytes into a {stop - start}-byte range"
            )
        if value:
            obs = self.handle.fs.obs
            frame = obs.span_begin("mmio.write") if obs.enabled else None
            self.handle.write(start, value)
            if frame is not None:
                obs.span_end(frame)

    # -- msync-family ----------------------------------------------------------

    def flush(self, offset: int = 0, length: int = 0) -> None:
        """msync(): with MGSP every store is already a synchronized
        atomic op, so this is just a fence (the paper's Fig 7 story)."""
        self._check()
        obs = self.handle.fs.obs
        frame = obs.span_begin("mmio.flush") if obs.enabled else None
        self.handle.fsync()
        if frame is not None:
            obs.span_end(frame)

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "MgspMmap":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
