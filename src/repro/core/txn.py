"""Failure-atomic multi-write transactions.

The paper's §IV-D closes with: *"although MGSP provides file-system-
level atomicity, it does not have a transaction-level atomic mechanism.
We hope to add related designs in future work so that existing database
software can obtain corresponding performance gains without
modification."* This module implements that future work.

Protocol
--------
Writes inside a transaction persist their data into shadow logs
immediately, but the bitmap words are only *staged* in DRAM — the
durable bitmap keeps pointing at the pre-transaction data, so a crash
before commit rolls the whole group back for free. Safe write targets
are chosen against the durable bitmap (see
:meth:`~repro.core.shadowlog.ShadowLog.plan_txn_write`).

Commit chains the staged words through the lock-free metadata log:
member entries (flag ``TXN_MEMBER``) carry up to 12 slots each and a
final entry flagged ``TXN_MEMBER | TXN_COMMIT`` is the atomic commit
point. Recovery applies a transaction's entries only when its commit
entry is present; orphaned member entries are retired unapplied
(:func:`repro.core.recovery.recover`).

Usage::

    txn = fs.begin_transaction(handle)
    txn.write(0, b"account A debit")
    txn.write(9000, b"account B credit")
    txn.commit()          # both or neither, even across crashes
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.core import bitmap
from repro.core.metalog import MAX_SLOTS, MetaSlot, TXN_COMMIT, TXN_MEMBER
from repro.errors import FsError, TransactionError


class MgspTransaction:
    """One open transaction over a single :class:`MgspFile`."""

    def __init__(self, fs, handle) -> None:
        if getattr(handle, "_open_txn", None) is not None and handle._open_txn.open:
            raise TransactionError(f"{handle.name} already has an open transaction")
        self.fs = fs
        self.handle = handle
        handle._open_txn = self
        self.open = True
        self.writes = 0
        self._durable_words: Dict[Tuple[int, int], int] = {}  # node key -> media word
        self._slots: Dict[Tuple[int, int], MetaSlot] = {}
        self._staged: Dict[Tuple[int, int], object] = {}  # node key -> Node
        self._txn_logs: List = []  # nodes whose log block this txn allocated
        self._locks: List[Hashable] = []
        self._orig_size = handle.inode.size
        self._new_size = handle.inode.size

    # -- write path ----------------------------------------------------------

    def _durable_word(self, node) -> int:
        return self._durable_words.get((node.level, node.index), node.word)

    def write(self, offset: int, data: bytes) -> int:
        if not self.open:
            raise TransactionError("transaction is closed")
        if not data:
            return 0
        handle = self.handle
        fs = self.fs
        handle._check_writable()
        if offset < 0 or offset + len(data) > handle.inode.capacity:
            raise FsError(f"txn write [{offset}, {offset + len(data)}) out of bounds")
        with fs.op("txn-write"):
            handle._ensure_height(offset + len(data))
            gen = handle.tree.next_gen()
            plan = handle.shadow.plan_txn_write(offset, data, gen, self._durable_word)
            rec = fs.recorder
            rec.compute(fs.timing.tree_node_ns * max(1, plan.nodes_visited))

            # Two-phase locking: terminals stay locked until commit,
            # acquired in index order (the same deadlock-avoidance
            # discipline as MglLockManager.acquire).
            for level, index in sorted(plan.terminals, key=lambda t: t[1]):
                key = fs.mgl.node_key(handle.inode.id, level, index)
                if key not in self._locks:
                    rec.lock(key, "W")
                    self._locks.append(key)

            for node, word in plan.refreshes:
                handle.tree.store_word(node, word)
            for node in plan.new_logs:
                handle.tree.store_log_ptr(node, node.log_off)
                self._txn_logs.append(node)
            for dev_off, payload in plan.data_writes:
                fs.device.nt_store(dev_off, payload)
            fs.device.fence()

            # Stage the bitmap words: DRAM only until commit.
            for node, word, slot in plan.commits:
                key = (node.level, node.index)
                self._durable_words.setdefault(key, node.word)
                node.word = word
                self._slots[key] = slot
                self._staged[key] = node
            self._new_size = max(self._new_size, offset + len(data))
            if self._new_size > handle.inode.size:
                # Stage the size too (DRAM only) so in-txn reads see it;
                # the durable size is written at commit.
                fs.volume.set_size_volatile(handle.inode, self._new_size)
        self.writes += 1
        fs.api.writes += 1
        fs.api.bytes_written += len(data)
        return len(data)

    def read(self, offset: int, length: int) -> bytes:
        """Reads inside the transaction see its own staged writes."""
        return self.handle.read(offset, length)

    # -- resolution -------------------------------------------------------------

    def commit(self) -> None:
        if not self.open:
            raise TransactionError("transaction is closed")
        fs = self.fs
        handle = self.handle
        with fs.op("txn-commit"), fs.obs.span("txn.commit"):
            slots = list(self._slots.values())
            chunks = [slots[i : i + MAX_SLOTS] for i in range(0, len(slots), MAX_SLOTS)] or [[]]
            if len(chunks) >= fs.metalog.entries:
                raise TransactionError(
                    f"transaction too large: needs {len(chunks)} metadata entries"
                )
            txn_id = fs.next_txn_id()
            gen = handle.tree.gen
            entries: List[int] = []
            try:
                # Member entries first, the commit-flagged one last: its
                # persistence is the atomic commit point.
                for chunk in chunks[:-1]:
                    idx = fs.metalog.claim(("txn", txn_id, len(entries)), fs.recorder)
                    entries.append(idx)
                    fs.metalog.write(
                        idx, handle.inode.id, max(1, self.writes), gen,
                        txn_id, self._new_size, chunk, flags=TXN_MEMBER,
                    )
                idx = fs.metalog.claim(("txn", txn_id, "commit"), fs.recorder)
                entries.append(idx)
                fs.metalog.write(
                    idx, handle.inode.id, max(1, self.writes), gen,
                    txn_id, self._new_size, chunks[-1], flags=TXN_MEMBER | TXN_COMMIT,
                )

                # Apply the staged words durably, then the size (the DRAM
                # size was staged at write time; persist it now).
                for key, node in self._staged.items():
                    handle.tree.store_word(node, node.word)
                if self._new_size > self._orig_size:
                    fs.volume.set_size_volatile(handle.inode, self._new_size)
                    if not handle.inode.unlinked:  # slot may be reused
                        fs.device.atomic_store_u64(
                            handle.inode.size_field_offset, self._new_size
                        )
                        fs.device.flush(handle.inode.size_field_offset, 8)
                fs.device.fence()

                # Retire the commit entry first: without it the members
                # are orphans and recovery ignores them.
                for idx in reversed(entries):
                    fs.metalog.retire(idx)
            finally:
                for idx in entries:
                    fs.metalog.release(idx)
            for key in self._locks:
                fs.recorder.unlock(key)
        if fs.obs.enabled:
            fs.obs.registry.counter("txn_commits_total").inc()
        self._finish()

    def rollback(self) -> None:
        if not self.open:
            raise TransactionError("transaction is closed")
        fs = self.fs
        handle = self.handle
        with fs.op("txn-rollback"), fs.obs.span("txn.rollback"):
            # Restore the staged size, but never below what plain writes
            # committed while this transaction was open (the durable
            # size field is monotone).
            committed_size = (
                0  # slot may belong to another file now; trust the mirror
                if handle.inode.unlinked
                else fs.device.buffer.load_u64(handle.inode.size_field_offset)
            )
            fs.volume.set_size_volatile(
                handle.inode, max(self._orig_size, committed_size)
            )
            for key, node in self._staged.items():
                node.word = self._durable_words[key]
            freed_any = False
            for node in self._txn_logs:
                # Only reclaim logs that are not referenced by the
                # (restored) durable state.
                if not self._node_log_live(node):
                    fs.logs.free(node.log_off, node.size)
                    handle.tree.store_log_ptr(node, 0)
                    freed_any = True
            if freed_any:
                # Only the pointer-zeroing needs ordering; the staged
                # words were DRAM-only and every txn write already
                # fenced its own data, so a rollback that freed nothing
                # has nothing pending and would fence for free.
                fs.device.fence()
            for key in self._locks:
                fs.recorder.unlock(key)
        if fs.obs.enabled:
            fs.obs.registry.counter("txn_rollbacks_total").inc()
        self._finish()

    def _node_log_live(self, node) -> bool:
        if node.level == 0:
            return bitmap.unpack_leaf(node.word).mask != 0
        return bitmap.unpack_nonleaf(node.word).valid

    def _finish(self) -> None:
        self.open = False
        self.handle._open_txn = None
        self._staged.clear()
        self._slots.clear()
        self._durable_words.clear()
        self._txn_logs.clear()
        self._locks.clear()

    # -- context manager: commit on success, roll back on exception -------------

    def __enter__(self) -> "MgspTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.open:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
