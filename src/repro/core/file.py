"""MGSP file handle: the write/read flows of §III-D."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import bitmap
from repro.core.config import MgspConfig
from repro.core.metalog import MAX_SLOTS
from repro.core.radix import RadixTree
from repro.core.shadowlog import ShadowLog
from repro.errors import AllocationError, FsError
from repro.fsapi.interface import FileHandle
from repro.fsapi.volume import Inode
from repro.util import align_down


def _coalesce(writes):
    """Merge adjacent device writes (e.g. sibling leaf logs allocated
    back-to-back) so they cost one media op like one large store.

    Payloads are gathered as chunk lists and joined once per merged run
    — no incremental bytearray growth, and a run of one chunk passes the
    original buffer (often a zero-copy planner slice) straight through.
    """
    if len(writes) <= 1:
        return writes
    merged = []  # [offset, end, [payload chunks]]
    for off, payload in writes:
        if merged and merged[-1][1] == off:
            last = merged[-1]
            last[1] += len(payload)
            last[2].append(payload)
        else:
            merged.append([off, off + len(payload), [payload]])
    return [
        (off, chunks[0] if len(chunks) == 1 else b"".join(chunks))
        for off, _end, chunks in merged
    ]


class MgspFile(FileHandle):
    def __init__(self, fs, inode: Inode) -> None:
        super().__init__(fs, inode.name)
        self.inode = inode
        #: open MgspTransaction, if any (plain writes are excluded while
        #: one is staged: they would plan against staged bitmap words)
        self._open_txn = None
        self.config: MgspConfig = fs.config
        self.tree = RadixTree(fs.device, inode, fs.config)
        self.shadow = ShadowLog(self.tree, fs.device, fs.logs, inode, fs.config)
        self.shadow.obs = fs.obs
        self._mst: Optional[Tuple[int, int]] = None
        self.mst_hits = 0
        self.mst_misses = 0
        #: leaf fast path: leaf_index -> (leaf, root->parent ancestors),
        #: valid only while (_lp_height, _lp_epoch) match the live tree.
        self._leaf_paths: dict = {}
        self._lp_height = -1
        self._lp_epoch = -1
        self.fast_hits = 0
        self.fast_misses = 0

    @property
    def size(self) -> int:
        return self.inode.size

    # -- geometry helpers (pure; used for lock keys and cost modelling) ------

    def _covering_node(self, offset: int, length: int) -> Tuple[int, int]:
        """Smallest single node covering [offset, offset+length)."""
        level, index = self.tree.height, 0
        while level > 0:
            child = self.tree.gran(level - 1)
            first = offset // child
            last = (offset + max(1, length) - 1) // child
            if first != last:
                break
            level -= 1
            index = first
        return (level, index)

    def _terminal_count(self, offset: int, length: int, cap: int) -> int:
        """How many terminal commits a write would need (early-exits past
        *cap*); pure geometry, mirrors the planner's decomposition."""

        def rec(level: int, off: int, ln: int, budget: int) -> int:
            if budget <= 0:
                return 0
            if level == 0:
                return 1
            gran = self.tree.gran(level)
            if self.config.multi_granularity and off % gran == 0 and ln == gran:
                return 1
            child = self.tree.gran(level - 1)
            first = off // child
            last = (off + ln - 1) // child
            total = 0
            for i in range(first, last + 1):
                lo = max(off, i * child)
                hi = min(off + ln, (i + 1) * child)
                total += rec(level - 1, lo, hi - lo, budget - total)
                if total > cap:
                    return total
            return total

        return rec(self.tree.height, offset, length, cap + 1)

    def _lock_path(self, covering: Tuple[int, int]) -> List[Tuple[int, int]]:
        """Ancestors from the root down to (excluding) the covering node."""
        level, index = covering
        degree = self.config.degree
        return [
            (lvl, index // degree ** (lvl - level))
            for lvl in range(self.tree.height, level, -1)
        ]

    def _mst_savings(self, offset: int, length: int) -> int:
        """Tree levels the minimum-search-tree cache skips for this op.

        The functional traversal always starts at the root (keeping
        semantics exact); the cache is modelled as a cost saving: a hit
        skips the levels above the cached subtree, the adjacent-subtree
        fallback saves one level less, a miss saves nothing.
        """
        if not self.config.min_search_tree or self._mst is None:
            return 0
        level, index = self._mst
        end = offset + max(1, length) - 1
        gran = self.tree.gran(level)
        if offset // gran == index and end // gran == index:
            self.mst_hits += 1
            return self.tree.height - level
        if offset // gran == index + 1 and end // gran == index + 1:
            self.mst_hits += 1
            return max(0, self.tree.height - level - 1)
        self.mst_misses += 1
        # Miss: two failed subtree cover checks, then a root restart.
        return -3

    def _greedy_node(self, covering: Tuple[int, int]) -> Optional[Tuple[int, int]]:
        """Greedy locking applies only while the file has one reference."""
        if not self.config.greedy_locking:
            return None
        if self.fs.handle_refs(self.inode.id) > 1:
            return None
        return covering

    # -- write (§III-D) --------------------------------------------------------

    def write(self, offset: int, data: bytes) -> int:
        self._check_writable()
        if self._open_txn is not None and self._open_txn.open:
            from repro.errors import TransactionError

            raise TransactionError(
                f"{self.inode.name}: plain write while a transaction is "
                "open (its staged state would leak into the commit)"
            )
        if offset < 0:
            raise FsError("negative offset")
        if offset + len(data) > self.inode.capacity:
            raise FsError(
                f"{self.inode.name}: write [{offset}, {offset + len(data)}) "
                f"exceeds capacity {self.inode.capacity}"
            )
        if not data:
            return 0
        # An op needing more metadata slots than one entry holds is split
        # into independently-atomic sub-writes.
        self._ensure_height(offset + len(data))
        if self.config.leaf_fast_path:
            leaf_index = offset // self.config.leaf_size
            if offset + len(data) <= (leaf_index + 1) * self.config.leaf_size:
                # Fully inside one leaf: exactly one terminal, so the
                # slot-budget split question is settled by geometry and
                # the planner can replay the handle's cached root->leaf
                # chain instead of descending.
                try:
                    self._write_atomic(offset, data, leaf_index)
                except AllocationError:
                    self.checkpoint()
                    self._write_atomic(offset, data, leaf_index)
                self._note_write(len(data))
                return len(data)
        if self._terminal_count(offset, len(data), MAX_SLOTS) > MAX_SLOTS:
            mid = align_down(offset + len(data) // 2, self.config.sub_block)
            if mid <= offset:
                mid = offset + len(data) // 2
            self.write(offset, data[: mid - offset])
            self.write(mid, data[mid - offset :])
            return len(data)  # sub-writes already notified the flusher
        try:
            self._write_atomic(offset, data)
        except AllocationError:
            # Log area exhausted: reclaim it by writing the logs back
            # (the paper reclaims at close; long-running writers need it
            # online), then retry once.
            self.checkpoint()
            self._write_atomic(offset, data)
        self._note_write(len(data))
        return len(data)

    def _note_write(self, nbytes: int) -> None:
        flusher = self.fs.flusher
        if flusher is not None:
            flusher.note_write(self, nbytes)

    def _leaf_path(self, leaf_index: int):
        """Resolve (leaf, root->parent ancestor chain), cached per handle.

        Node words are always read *live* from the DRAM mirror when the
        plan is built, so the cache only guards the references: it is
        invalidated when the tree height changes (the chain gains a
        level) or when the DRAM node set is rebuilt or discarded
        (``tree.epoch``, bumped by checkpoint/close/remount).
        """
        tree = self.tree
        if tree.height != self._lp_height or tree.epoch != self._lp_epoch:
            self._leaf_paths.clear()
            self._lp_height = tree.height
            self._lp_epoch = tree.epoch
        ctx = self._leaf_paths.get(leaf_index)
        if ctx is not None:
            self.fast_hits += 1
            return ctx
        self.fast_misses += 1
        degree = self.config.degree
        ancestors = [
            tree.node(level, leaf_index // degree**level)
            for level in range(tree.height, 0, -1)
        ]
        leaf = tree.node(0, leaf_index)
        if len(self._leaf_paths) >= 1 << 16:  # bound handle memory
            self._leaf_paths.clear()
        ctx = (leaf, ancestors)
        self._leaf_paths[leaf_index] = ctx
        return ctx

    def _ensure_height(self, end: int) -> None:
        if end > self.tree.covered():
            # grow_to returns the root nodes it actually stored; a fresh
            # tree often grows by height alone (the new root word is
            # already zero), and fencing then is pure overhead.
            if self.tree.grow_to(end):
                self.fs.device.fence()

    def _write_atomic(
        self, offset: int, data: bytes, leaf_index: Optional[int] = None
    ) -> None:
        fs = self.fs
        rec = fs.recorder
        timing = fs.timing
        thread = fs.current_thread
        obs = fs.obs
        frame = obs.span_begin("op.write") if obs.enabled else None
        # Inlined fs.op("write") bracket (hot path: no contextmanager).
        enabled = rec.enabled
        if enabled:
            rec.begin_op("write")
            rec.compute(timing.syscall_ns if fs.kernel_space else timing.user_call_ns)
        try:
            # 1. Claim a private metadata-log entry (hash + CAS probing).
            entry = fs.metalog.claim(thread, rec if enabled else None)
            try:
                self._write_locked(entry, offset, data, leaf_index)
            finally:
                fs.metalog.release(entry)
        finally:
            if enabled:
                rec.end_op()
            if frame is not None:
                # Also heals any phase frame left open by an exception.
                obs.span_end(frame)
        fs.api.writes += 1
        fs.api.bytes_written += len(data)

    def _write_locked(
        self, entry: int, offset: int, data: bytes, leaf_index: Optional[int] = None
    ) -> None:
        fs = self.fs
        rec = fs.recorder
        timing = fs.timing
        thread = fs.current_thread
        obs = fs.obs
        observing = obs.enabled
        gen = self.tree.next_gen()

        # 2. Plan: traverse the tree, pick log granularities, compute
        #    RMW fills (charged as reads by the device tracer).
        frame = obs.span_begin("write.plan") if observing else None
        saved = self._mst_savings(offset, len(data))
        if leaf_index is not None:
            leaf, ancestors = self._leaf_path(leaf_index)
            plan = self.shadow.plan_write_fast(offset, data, gen, leaf, ancestors)
            covering = (0, leaf_index)
        else:
            plan = self.shadow.plan_write(offset, data, gen)
            covering = self._covering_node(offset, len(data))
        if rec.enabled:
            rec.compute(timing.tree_node_ns * max(1, plan.nodes_visited - saved))
        if frame is not None:
            obs.span_end(frame)

        # 3. Lock (MGL or greedy).
        lock_keys = fs.mgl.acquire(
            thread,
            self.inode.id,
            plan.path,
            plan.terminals,
            write=True,
            greedy_node=self._greedy_node(covering),
        )

        # 4. Eager existing-bit refreshes + fresh log pointers + data,
        #    all made durable by one fence.
        frame = obs.span_begin("write.log") if observing else None
        self.tree.store_words(plan.refreshes)
        if plan.new_logs:
            self.tree.store_log_ptrs(plan.new_logs)
            if rec.enabled:
                # per-size free-list pop
                rec.compute(timing.block_alloc_ns * 0.2 * len(plan.new_logs))
        if frame is not None:
            obs.span_end(frame)
            frame = obs.span_begin("write.data")
        fs.device.nt_store_v(_coalesce(plan.data_writes))
        fs.device.fence()
        if frame is not None:
            obs.span_end(frame)

        # 5. Commit point: persist the metadata-log entry.
        new_size = max(self.inode.size, offset + len(data))
        fs.metalog.write(
            entry,
            self.inode.id,
            len(data),
            gen,
            offset,
            new_size,
            [slot for _, __, slot in plan.commits],
        )

        # 6. Apply the valid-bit words (atomic stores) + size, fence.
        frame = obs.span_begin("write.metadata") if observing else None
        self.tree.store_words([(node, word) for node, word, _slot in plan.commits])
        if new_size > self.inode.size:
            fs.volume.set_size_volatile(self.inode, new_size)
            if not self.inode.unlinked:  # freed slot may be reused; DRAM only
                fs.device.atomic_store_u64(self.inode.size_field_offset, new_size)
                fs.device.flush(self.inode.size_field_offset, 8)
        fs.device.fence()

        # 7. Retire the entry (unfenced; replay is idempotent).
        fs.metalog.retire(entry)
        if frame is not None:
            obs.span_end(frame)

        # Ablation only: without shadow logging every commit is
        # immediately checkpointed back (the classic double write).
        if plan.checkpoints:
            self._apply_checkpoints(plan)

        fs.mgl.release(lock_keys)
        if self.config.min_search_tree:
            self._mst = covering

    def _apply_checkpoints(self, plan) -> None:
        fs = self.fs
        obs = fs.obs
        frame = obs.span_begin("checkpoint.inline") if obs.enabled else None
        gen2 = self.tree.next_gen()
        cleared = set()
        for node, src, dst, length in plan.checkpoints:
            data = fs.device.load(src, length)
            limit = self.shadow._target_limit_base(dst)
            payload = data[: max(0, limit - dst)]
            if payload:
                fs.device.nt_store(dst, payload)
            if id(node) not in cleared:
                cleared.add(id(node))
                if node.level == 0:
                    word = bitmap.pack_leaf(0, gen2)
                else:
                    word = bitmap.pack_nonleaf(False, False, gen2, gen2)
                self.tree.store_word(node, word)
        fs.device.fence()
        if frame is not None:
            obs.span_end(frame)

    # -- read (§III-D) -------------------------------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        fs = self.fs
        rec = fs.recorder
        length = max(0, min(length, self.inode.size - offset))
        with fs.op("read"):
            if length == 0:
                fs.api.reads += 1
                return b""
            covering = self._covering_node(offset, length)
            saved = self._mst_savings(offset, length)
            path = self._lock_path(covering)
            lock_keys = fs.mgl.acquire(
                fs.current_thread,
                self.inode.id,
                path,
                [covering],
                write=False,
                greedy_node=self._greedy_node(covering),
            )
            data, visited = self.shadow.read_range(offset, length)
            rec.compute(fs.timing.tree_node_ns * max(1, visited - saved))
            fs.mgl.release(lock_keys)
            if self.config.min_search_tree:
                self._mst = covering
        fs.api.reads += 1
        fs.api.bytes_read += length
        return data

    # -- sync / close -----------------------------------------------------------------

    def fsync(self) -> None:
        """Every MGSP operation is already a synchronized atomic op, so
        fsync degenerates to a fence (the Fig 7 flat line)."""
        self._check_open()
        fs = self.fs
        with fs.op("fsync"):
            fs.device.fence()
        fs.api.fsyncs += 1

    def mmap(self, length: int = 0):
        """A failure-atomic memory-mapped view (the paper's interface)."""
        from repro.core.mmio import MgspMmap

        self._check_open()
        return MgspMmap(self, length)

    def mmap_view(self):
        self._check_open()
        return (self.fs.device, self.inode.base, self.inode.capacity)

    def checkpoint(self) -> int:
        """Online write-back: push every fresh log byte into the file and
        reclaim the log space, keeping the handle open.

        The paper reclaims log space at close; long-running applications
        can call this to bound log-area usage (each granularity's logs
        are bounded by the file size, §III-B1). Returns bytes copied.
        Crash-safe: the copy happens while the bitmap still points at
        the logs; the table reset uses atomic per-node clears after a
        fence, and a crash mid-checkpoint just recovers the logs again.
        """
        self._check_open()
        fs = self.fs
        with fs.op("checkpoint"):
            copied = self.shadow.write_back()
            freed = [
                (node.log_off, node.size)
                for node in self.tree.nodes.values()
                if node.log_off
            ]
            self.tree.clear_table()  # zeroes words, then pointers, durably
            for log_off, size in freed:
                fs.logs.free(log_off, size)
            fs.volume.persist_size(self.inode)
            self._mst = None
        return copied

    def close(self) -> None:
        """Write all logs back to the file and release log space."""
        if self.closed:
            return
        fs = self.fs
        with fs.op("close"):
            self.shadow.write_back()
            freed = [
                (node.log_off, node.size)
                for node in self.tree.nodes.values()
                if node.log_off
            ]
            self.tree.clear_table()  # zeroes words, then pointers, durably
            for log_off, size in freed:
                fs.logs.free(log_off, size)
            fs.volume.persist_size(self.inode)
        super().close()
        if fs.flusher is not None:
            fs.flusher.forget(self.inode.id)
        fs.release_handle(self.inode.id)
