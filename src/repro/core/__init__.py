"""MGSP: Multi-Granularity Shadow Paging (the paper's contribution).

Public entry points:

- :class:`~repro.core.mgsp.MgspFilesystem` — the user-space library as a
  mounted file system (``consistency="operation"``: every write is a
  synchronized atomic operation).
- :class:`~repro.core.config.MgspConfig` — tuning and ablation switches.
- :func:`~repro.core.recovery.recover` — crash recovery from a device
  image via the lock-free metadata log.
"""

from repro.core.config import MgspConfig
from repro.core.mgsp import MgspFilesystem
from repro.core.recovery import RecoveryStats, recover
from repro.core.txn import MgspTransaction
from repro.core.verify import VerifyReport, verify_file

__all__ = [
    "MgspConfig",
    "MgspFilesystem",
    "MgspTransaction",
    "RecoveryStats",
    "VerifyReport",
    "recover",
    "verify_file",
]
