"""MGSP configuration and ablation switches (Fig 13)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util import is_power_of_two


@dataclass(frozen=True)
class MgspConfig:
    """Knobs of the MGSP design.

    The defaults reproduce the full system; the ablation constructors
    peel techniques off for the Fig 13 breakdown.
    """

    #: radix-tree fan-out (paper: 64 -> granularities 64B/4K/256K/16M/1G)
    degree: int = 64
    #: leaf log size (the paper's minimum data block)
    leaf_size: int = 4096
    #: valid bits per leaf -> minimum update granularity
    #: (32 bits on a 4 KB leaf = 128 B; packed with a 24-bit generation
    #: in one atomic word, see bitmap.py)
    leaf_valid_bits: int = 32

    # -- technique switches ------------------------------------------------

    #: shadow logging (role switch between node log and last valid
    #: ancestor). Off = classic redo log + immediate write-back.
    shadow_logging: bool = True
    #: allow logs at non-leaf granularities (coarse-grained logging)
    multi_granularity: bool = True
    #: sub-leaf valid bits (fine-grained logging). Off = whole-leaf RMW.
    fine_grained_logging: bool = True
    #: MGL per-node IR/IW/R/W locks. Off = one file rwlock.
    fine_grained_locking: bool = True

    # -- optimizations -------------------------------------------------------

    min_search_tree: bool = True
    lazy_intention_locks: bool = True
    greedy_locking: bool = True
    #: leaf fast path: writes contained in one leaf skip the radix
    #: descent and plan against the handle's cached ancestor chain
    leaf_fast_path: bool = True

    # -- asynchronous write-back epochs --------------------------------------

    #: drain fresh log bytes back into files on epoch boundaries instead
    #: of only at close (bounds log usage and recovery time online)
    async_writeback: bool = False
    #: epoch boundary: fresh log bytes accumulated per file (0 = off)
    writeback_epoch_bytes: int = 1 << 20
    #: epoch boundary: writes accumulated per file (0 = off)
    writeback_epoch_ops: int = 0

    #: metadata-log entries (paper: 4 KB area -> 32 x 128 B entries)
    metalog_entries: int = 32

    def __post_init__(self) -> None:
        if self.async_writeback and (
            self.writeback_epoch_bytes <= 0 and self.writeback_epoch_ops <= 0
        ):
            raise ValueError("async_writeback needs a bytes or ops epoch threshold")
        if not is_power_of_two(self.degree):
            raise ValueError(f"degree must be a power of two, got {self.degree}")
        if not is_power_of_two(self.leaf_size):
            raise ValueError(f"leaf_size must be a power of two, got {self.leaf_size}")
        if self.leaf_valid_bits not in (1, 2, 4, 8, 16, 32):
            raise ValueError("leaf_valid_bits must be a power of two <= 32")
        if self.leaf_size % self.leaf_valid_bits:
            raise ValueError("leaf_size must divide evenly into sub-blocks")

    @property
    def sub_block(self) -> int:
        """Minimum update granularity."""
        if not self.fine_grained_logging:
            return self.leaf_size
        return self.leaf_size // self.leaf_valid_bits

    @property
    def effective_leaf_bits(self) -> int:
        return self.leaf_valid_bits if self.fine_grained_logging else 1

    # -- ablation presets (Fig 13) ----------------------------------------------

    @classmethod
    def baseline(cls) -> "MgspConfig":
        """Everything off: per-leaf redo logging with synchronous
        write-back, file-level locking."""
        return cls(
            shadow_logging=False,
            multi_granularity=False,
            fine_grained_logging=False,
            fine_grained_locking=False,
            min_search_tree=False,
            lazy_intention_locks=False,
            greedy_locking=False,
        )

    def with_shadow_logging(self) -> "MgspConfig":
        return replace(self, shadow_logging=True)

    def with_multi_granularity(self) -> "MgspConfig":
        return replace(self, multi_granularity=True, fine_grained_logging=True)

    def with_fine_locking(self) -> "MgspConfig":
        return replace(self, fine_grained_locking=True)

    def with_optimizations(self) -> "MgspConfig":
        return replace(
            self, min_search_tree=True, lazy_intention_locks=True, greedy_locking=True
        )
