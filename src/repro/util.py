"""Small shared helpers: alignment math, checksums, size parsing."""

from __future__ import annotations

import zlib

CACHE_LINE = 64
ATOMIC_UNIT = 8

_SIZE_SUFFIXES = {
    "b": 1,
    "k": 1024,
    "kb": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
}


def parse_size(text: str) -> int:
    """Parse a human size string like ``"4k"``, ``"1g"``, ``"128b"``.

    Bare integers are bytes. Matches the FIO-style sizes used by the
    paper's run scripts.
    """
    s = text.strip().lower()
    for suffix in sorted(_SIZE_SUFFIXES, key=len, reverse=True):
        if s.endswith(suffix):
            return int(float(s[: -len(suffix)]) * _SIZE_SUFFIXES[suffix])
    return int(s)


def fmt_size(n: int) -> str:
    """Render a byte count compactly (``2048 -> "2K"``)."""
    for unit, width in (("G", 1024**3), ("M", 1024**2), ("K", 1024)):
        if n % width == 0 and n >= width:
            return f"{n // width}{unit}"
    return f"{n}B"


def align_down(value: int, alignment: int) -> int:
    return value - (value % alignment)


def align_up(value: int, alignment: int) -> int:
    return -(-value // alignment) * alignment


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def checksum(data: bytes) -> int:
    """CRC32 of *data*, used by the metadata log to validate entries."""
    return zlib.crc32(data) & 0xFFFFFFFF


def ranges_overlap(off_a: int, len_a: int, off_b: int, len_b: int) -> bool:
    """True when [off_a, off_a+len_a) intersects [off_b, off_b+len_b)."""
    return off_a < off_b + len_b and off_b < off_a + len_a


def clamp_range(off: int, length: int, lo: int, hi: int) -> tuple[int, int]:
    """Intersect [off, off+length) with [lo, hi); returns (off, len)."""
    start = max(off, lo)
    end = min(off + length, hi)
    return (start, max(0, end - start))


def split_by_alignment(off: int, length: int, unit: int):
    """Yield (off, len) chunks of [off, off+length) cut at *unit* boundaries.

    Used to decompose a write into the aligned sub-ranges handled by
    sibling radix-tree nodes.
    """
    pos = off
    end = off + length
    while pos < end:
        boundary = align_down(pos, unit) + unit
        chunk_end = min(end, boundary)
        yield pos, chunk_end - pos
        pos = chunk_end
