"""CLI: run the multi-tenant service or the scalability sweep.

Examples::

    python -m repro.service --tenants 64 --shards 2 --ops 8
    python -m repro.service --sweep --out BENCH_service.json
    python -m repro.service --sweep --tenant-counts 16,64 --shard-counts 1,2
"""

from __future__ import annotations

import argparse
import sys

from repro.service.admission import TenantQuota
from repro.service.harness import SweepSpec, run_sweep
from repro.service.service import ServiceConfig, run_service_workload


def _int_list(text: str):
    return tuple(int(part) for part in text.split(",") if part)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Multi-tenant MGSP service: single run or Fig-10-style sweep.",
    )
    parser.add_argument("--tenants", type=int, default=16)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--ops", type=int, default=8, help="operations per tenant")
    parser.add_argument("--bs", type=int, default=1024, help="request size in bytes")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--device-size", type=int, default=64 << 20)
    parser.add_argument("--quota-ops", type=float, default=200_000.0,
                        help="per-tenant admitted ops/sec on the virtual clock")
    parser.add_argument("--burst", type=int, default=64, help="token-bucket burst")
    parser.add_argument("--sweep", action="store_true",
                        help="run the scalability sweep instead of one workload")
    parser.add_argument("--tenant-counts", type=_int_list, default=None)
    parser.add_argument("--shard-counts", type=_int_list, default=None)
    parser.add_argument("--out", default=None, help="write sweep JSON here")
    parser.add_argument("--perfetto", metavar="FILE", default=None,
                        help="single-run mode: export per-tenant replay "
                        "lanes as Chrome trace-event JSON (Perfetto)")
    parser.add_argument("--bundle-dir", metavar="DIR", default=None,
                        help="write a black-box bundle per tenant error")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="run bare shards (no span/byte telemetry)")
    args = parser.parse_args(argv)

    if args.sweep:
        spec = SweepSpec(seed=args.seed, device_size=args.device_size,
                         ops_per_tenant=args.ops, bs=args.bs)
        if args.tenant_counts:
            spec.tenant_counts = args.tenant_counts
        if args.shard_counts:
            spec.shard_counts = args.shard_counts
        result = run_sweep(spec)
        text = result.to_json()
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"wrote {args.out} ({len(result.rows)} rows)")
        print(f"{'tenants':>8} {'shards':>7} {'MB/s':>10} {'p50 us':>9} "
              f"{'p99 us':>9} {'rejects':>8}")
        for row in result.rows:
            print(f"{row['tenants']:8d} {row['shards']:7d} "
                  f"{row['throughput_mb_s']:10.1f} {row['p50_ns'] / 1e3:9.2f} "
                  f"{row['p99_ns'] / 1e3:9.2f} {row['rejected']:8d}")
        return 0

    config = ServiceConfig(
        shards=args.shards,
        device_size=args.device_size,
        quota=TenantQuota(ops_per_sec=args.quota_ops, burst=args.burst),
        telemetry=not args.no_telemetry,
        record_timeline=args.perfetto is not None,
        bundle_dir=args.bundle_dir,
    )
    report, service = run_service_workload(
        config, tenants=args.tenants, ops_per_tenant=args.ops,
        bs=args.bs, seed=args.seed, return_service=True,
    )
    if args.perfetto:
        from repro.obs import perfetto

        doc = perfetto.from_timelines(
            service.timelines, lane_names=service.lane_names
        )
        perfetto.validate(doc)
        with open(args.perfetto, "w", encoding="utf-8") as fh:
            fh.write(perfetto.render(doc))
        print(f"wrote {args.perfetto} "
              f"({sum(len(t) for t in service.timelines)} segments)")
    print(f"service: {report.tenants} tenants x {report.shards} shard(s)")
    print(f"  makespan    {report.makespan_ns / 1e6:10.3f} ms (virtual)")
    print(f"  throughput  {report.throughput_mb_s:10.1f} MB/s")
    print(f"  latency     p50 {report.p50_ns / 1e3:.2f} us   p99 {report.p99_ns / 1e3:.2f} us")
    print(f"  admission   {report.admitted} admitted, {report.rejected} rejected")
    for shard in report.per_shard:
        print(f"  shard {shard.shard}: {shard.tenants:4d} tenants  "
              f"util {shard.utilization * 100:5.1f}%  "
              f"lock-wait {shard.lock_wait_ns / 1e6:.3f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
