"""repro.service: the multi-tenant MGSP service front-end.

Sharded namespaces (:mod:`repro.service.sharding`), token-bucket
admission (:mod:`repro.service.admission`), deficit-round-robin fair
scheduling (:mod:`repro.service.scheduler`), the service itself
(:mod:`repro.service.service`), and the Fig-10-style scalability sweep
(:mod:`repro.service.harness`). Run ``python -m repro.service --help``.
"""

from repro.service.admission import TenantQuota, TokenBucket
from repro.service.harness import SweepSpec, run_cell, run_sweep
from repro.service.scheduler import DeficitRoundRobin
from repro.service.service import (
    MgspService,
    Request,
    ServiceConfig,
    ServiceReport,
    Session,
    TenantReport,
    run_service_workload,
    tenant_requests,
)
from repro.service.sharding import ShardMap

__all__ = [
    "TenantQuota",
    "TokenBucket",
    "SweepSpec",
    "run_cell",
    "run_sweep",
    "DeficitRoundRobin",
    "MgspService",
    "Request",
    "ServiceConfig",
    "ServiceReport",
    "Session",
    "TenantReport",
    "run_service_workload",
    "tenant_requests",
    "ShardMap",
]
