"""The multi-tenant MGSP service front-end.

``MgspService`` multiplexes many simulated clients over N independent
MGSP shards:

1. **Registration** — each tenant gets a session: a shard picked by
   :class:`~repro.service.sharding.ShardMap`, one file in the shard's
   namespace, a per-shard replay-thread id, and a token bucket built
   from its :class:`~repro.service.admission.TenantQuota`.
2. **Admission** — requests are offered in global arrival order
   (virtual ns). Bucket-empty requests are rejected and counted;
   admitted ones enqueue into the shard's deficit-round-robin
   scheduler with their byte size as DRR cost.
3. **Dispatch** — each shard drains its DRR queue against the MGSP
   protocol, collecting per-tenant cost traces exactly like the FIO
   runner does per thread.
4. **Replay** — each shard's tenant streams (plus its async write-back
   daemon stream) replay through :class:`~repro.sim.engine.ReplayEngine`
   with ``start_times`` staggered to tenant arrival, so lock waits and
   channel saturation land on the virtual clock. Shards are independent
   devices running concurrently: service makespan is the max over
   shards.

Everything is keyed off seeded RNGs and the virtual clock — the module
lives under the linter's ``REPLAYABLE_PREFIXES`` and a fixed seed gives
byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core import MgspConfig, MgspFilesystem
from repro.obs import MetricsRegistry, attach_telemetry, percentile
from repro.service.admission import TenantQuota, TokenBucket
from repro.service.scheduler import DeficitRoundRobin
from repro.service.sharding import ShardMap
from repro.sim.engine import ReplayEngine
from repro.sim.trace import OpTrace


@dataclass(frozen=True)
class Request:
    """One client operation, timestamped at its virtual arrival."""

    kind: str  # "write" | "read"
    offset: int
    nbytes: int
    arrival_ns: float


@dataclass
class Session:
    """Per-tenant service state."""

    tenant: str
    shard: int
    thread: int  # replay-thread index within the shard
    handle: object
    bucket: TokenBucket
    traces: List[OpTrace] = field(default_factory=list)
    latencies_ns: List[float] = field(default_factory=list)
    bytes_written: int = 0
    bytes_read: int = 0
    first_arrival_ns: float = 0.0
    _arrived: bool = False

    def note_arrival(self, at_ns: float) -> None:
        if not self._arrived:
            self.first_arrival_ns = at_ns
            self._arrived = True


@dataclass
class TenantReport:
    tenant: str
    shard: int
    admitted: int
    rejected: int
    bytes_written: int
    p50_ns: float
    p99_ns: float


@dataclass
class ShardReport:
    shard: int
    tenants: int
    makespan_ns: float
    lock_wait_ns: float
    io_ns: float
    utilization: float  # busy channel time / (makespan * channels)


@dataclass
class ServiceReport:
    tenants: int
    shards: int
    makespan_ns: float
    total_bytes: int
    admitted: int
    rejected: int
    p50_ns: float
    p99_ns: float
    per_shard: List[ShardReport] = field(default_factory=list)
    per_tenant: List[TenantReport] = field(default_factory=list)

    @property
    def throughput_mb_s(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return (self.total_bytes / (1 << 20)) / (self.makespan_ns * 1e-9)


@dataclass
class ServiceConfig:
    shards: int = 1
    device_size: int = 64 << 20
    file_capacity: int = 64 << 10
    quota: TenantQuota = field(default_factory=TenantQuota)
    drr_quantum: int = 8192
    fs_config: Optional[MgspConfig] = None
    #: attach span/byte telemetry to every shard (off = bare shards;
    #: reports and device state must be identical either way)
    telemetry: bool = True
    #: attach a flight recorder of this capacity to every shard
    #: (0 = unbounded; None = no recorder)
    flight_capacity: Optional[int] = None
    #: keep per-thread replay timelines (disables replay batching) —
    #: the source for per-tenant Perfetto lanes
    record_timeline: bool = False
    #: write a black-box bundle here when a tenant request errors
    bundle_dir: Optional[str] = None

    def make_fs_config(self) -> MgspConfig:
        if self.fs_config is not None:
            return self.fs_config
        # Async write-back on: each shard replays a daemon flusher
        # stream, which is where multi-tenant channel contention shows.
        return MgspConfig(async_writeback=True, writeback_epoch_bytes=256 << 10)


class MgspService:
    """Multi-tenant front-end over sharded MGSP filesystems."""

    def __init__(self, config: ServiceConfig, registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.shard_map = ShardMap(config.shards)
        fs_config = config.make_fs_config()
        self.shards: List[MgspFilesystem] = []
        self.flights: List[object] = []
        self.timelines: List[List[tuple]] = []
        self.lane_names: List[List[str]] = []
        self.error_bundles: List[Dict[str, object]] = []
        for _ in range(config.shards):
            fs = MgspFilesystem(device_size=config.device_size, config=fs_config)
            if config.telemetry:
                attach_telemetry(fs, registry=self.registry)
            fs.device.drain()
            if config.flight_capacity is not None:
                from repro.obs.flight import attach_flight

                self.flights.append(
                    attach_flight(fs, capacity=config.flight_capacity)
                )
            else:
                self.flights.append(None)
            self.shards.append(fs)
        self.schedulers = [DeficitRoundRobin(config.drr_quantum) for _ in range(config.shards)]
        self.sessions: Dict[str, Session] = {}
        self._threads_per_shard = [0] * config.shards

    # -- tenant lifecycle --------------------------------------------------

    def register(self, tenant: str) -> Session:
        """Create a session (and the tenant's backing file) on its shard."""
        if tenant in self.sessions:
            raise ValueError(f"tenant {tenant!r} already registered")
        if len(tenant) > 16:
            raise ValueError(f"tenant name too long for an inode slot: {tenant!r}")
        shard = self.shard_map.shard_for(tenant)
        fs = self.shards[shard]
        handle = fs.create(tenant, capacity=self.config.file_capacity)
        fs.take_traces()  # setup cost is not tenant traffic
        session = Session(
            tenant=tenant,
            shard=shard,
            thread=self._threads_per_shard[shard],
            handle=handle,
            bucket=TokenBucket(self.config.quota),
        )
        self._threads_per_shard[shard] += 1
        self.sessions[tenant] = session
        self.registry.gauge("service_tenants", shard=str(shard)).add(1)
        return session

    # -- admission + scheduling -------------------------------------------

    def submit(self, tenant: str, request: Request) -> bool:
        """Offer one request; False means the quota rejected it."""
        session = self.sessions[tenant]
        if not session.bucket.admit(request.arrival_ns):
            self.registry.counter(
                "service_admission_rejects_total", shard=str(session.shard)
            ).inc()
            return False
        session.note_arrival(request.arrival_ns)
        self.schedulers[session.shard].enqueue(tenant, request, request.nbytes)
        return True

    # -- dispatch + replay -------------------------------------------------

    def _dispatch_shard(self, shard: int) -> None:
        """Execute the shard's DRR order against the MGSP protocol."""
        fs = self.shards[shard]
        for tenant, request in self.schedulers[shard].drain():
            session = self.sessions[tenant]
            fs.current_thread = session.thread
            try:
                if request.kind == "write":
                    session.handle.write(request.offset, b"\xab" * request.nbytes)
                    session.handle.fsync()
                    session.bytes_written += request.nbytes
                elif request.kind == "read":
                    session.handle.read(request.offset, request.nbytes)
                    session.bytes_read += request.nbytes
                else:
                    raise ValueError(f"unknown request kind {request.kind!r}")
            except Exception as exc:
                self._note_tenant_error(shard, tenant, request, exc)
                raise
            new = fs.take_traces()
            session.traces.extend(new)
            if new:
                session.latencies_ns.append(
                    sum(tr.duration_ns(fs.timing.lock_ns) for tr in new)
                )

    def _note_tenant_error(self, shard: int, tenant: str, request: Request,
                           exc: BaseException) -> None:
        """Record a black-box bundle for a failing tenant request before
        the error propagates."""
        from repro.obs import blackbox

        self.registry.counter(
            "service_tenant_errors_total", shard=str(shard)
        ).inc()
        bundle = blackbox.service_error_bundle(self, shard, tenant, request, exc)
        self.error_bundles.append(bundle)
        if self.config.bundle_dir:
            blackbox.write_bundle(
                bundle,
                self.config.bundle_dir,
                name=f"blackbox-service-error-shard{shard}-{tenant}.json",
            )

    def _replay_shard(self, shard: int) -> ShardReport:
        fs = self.shards[shard]
        shard_sessions = sorted(
            (s for s in self.sessions.values() if s.shard == shard),
            key=lambda s: s.thread,
        )
        for session in shard_sessions:
            fs.current_thread = session.thread
            fs.end_thread(session.thread)
            session.traces.extend(fs.take_traces())
        streams = [session.traces for session in shard_sessions]
        starts = [session.first_arrival_ns for session in shard_sessions]
        bg = fs.take_bg_traces()
        daemon = 0
        if bg:
            streams.append(bg)
            starts.append(0.0)
            daemon = 1 if fs.bg_daemon else 0
        engine = ReplayEngine(fs.timing, obs=fs.obs)
        result = engine.run(
            streams,
            background=daemon,
            start_times=starts,
            record_timeline=self.config.record_timeline,
        )
        if self.config.record_timeline:
            names = [session.tenant for session in shard_sessions]
            if daemon:
                names.append("writeback")
            self.timelines.append(list(result.timeline))
            self.lane_names.append(names)
        io_ns = sum(t.io_ns for t in result.threads)
        channels = max(1, fs.timing.channels)
        util = (
            io_ns / (result.makespan_ns * channels) if result.makespan_ns > 0 else 0.0
        )
        self.registry.gauge("service_shard_utilization", shard=str(shard)).set(util)
        self.registry.gauge("service_shard_makespan_ns", shard=str(shard)).set(
            result.makespan_ns
        )
        return ShardReport(
            shard=shard,
            tenants=len(shard_sessions),
            makespan_ns=result.makespan_ns,
            lock_wait_ns=result.total_lock_wait_ns,
            io_ns=io_ns,
            utilization=util,
        )

    def run(self) -> ServiceReport:
        """Dispatch everything queued and replay all shards."""
        per_shard = []
        for shard in range(self.config.shards):
            self._dispatch_shard(shard)
            per_shard.append(self._replay_shard(shard))

        latency_hist = self.registry.histogram("service_latency_ns")
        all_latencies: List[float] = []
        per_tenant: List[TenantReport] = []
        admitted = rejected = total_bytes = 0
        for tenant in sorted(self.sessions):
            session = self.sessions[tenant]
            admitted += session.bucket.admitted
            rejected += session.bucket.rejected
            total_bytes += session.bytes_written + session.bytes_read
            all_latencies.extend(session.latencies_ns)
            for sample in session.latencies_ns:
                latency_hist.observe(sample)
            per_tenant.append(
                TenantReport(
                    tenant=tenant,
                    shard=session.shard,
                    admitted=session.bucket.admitted,
                    rejected=session.bucket.rejected,
                    bytes_written=session.bytes_written,
                    p50_ns=percentile(session.latencies_ns, 50),
                    p99_ns=percentile(session.latencies_ns, 99),
                )
            )
        return ServiceReport(
            tenants=len(self.sessions),
            shards=self.config.shards,
            makespan_ns=max((s.makespan_ns for s in per_shard), default=0.0),
            total_bytes=total_bytes,
            admitted=admitted,
            rejected=rejected,
            p50_ns=percentile(all_latencies, 50),
            p99_ns=percentile(all_latencies, 99),
            per_shard=per_shard,
            per_tenant=per_tenant,
        )


def tenant_requests(
    tenant_index: int,
    ops: int,
    bs: int,
    file_capacity: int,
    seed: int,
    mean_gap_ns: float = 2_000.0,
    read_ratio: float = 0.0,
) -> List[Request]:
    """Seeded per-tenant request stream with staggered virtual arrivals."""
    import random

    rng = random.Random(seed * 1_000_003 + tenant_index)
    max_blocks = max(1, file_capacity // bs)
    arrival = rng.uniform(0.0, mean_gap_ns)
    out: List[Request] = []
    for _ in range(ops):
        kind = "read" if rng.random() < read_ratio else "write"
        out.append(
            Request(
                kind=kind,
                offset=rng.randrange(max_blocks) * bs,
                nbytes=bs,
                arrival_ns=arrival,
            )
        )
        arrival += rng.uniform(0.5, 1.5) * mean_gap_ns
    return out


def run_service_workload(
    config: ServiceConfig,
    tenants: int,
    ops_per_tenant: int = 8,
    bs: int = 1024,
    seed: int = 42,
    mean_gap_ns: float = 2_000.0,
    read_ratio: float = 0.0,
    registry: Optional[MetricsRegistry] = None,
    return_service: bool = False,
):
    """Register *tenants* clients, offer their seeded streams in global
    arrival order, and run the service.

    Returns the :class:`ServiceReport`, or ``(report, service)`` when
    *return_service* is true (exporters need the live service for
    timelines, flight recorders, and conservation checks)."""
    service = MgspService(config, registry=registry)
    names = [f"t{idx:04d}" for idx in range(tenants)]
    for name in names:
        service.register(name)
    offered: List[tuple] = []
    for idx, name in enumerate(names):
        for request in tenant_requests(
            idx,
            ops_per_tenant,
            bs,
            config.file_capacity,
            seed,
            mean_gap_ns=mean_gap_ns,
            read_ratio=read_ratio,
        ):
            offered.append((request.arrival_ns, idx, name, request))
    offered.sort(key=lambda item: (item[0], item[1]))
    for _, _, name, request in offered:
        service.submit(name, request)
    report = service.run()
    if return_service:
        return report, service
    return report
