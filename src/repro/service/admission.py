"""Token-bucket admission control.

Each tenant session carries a bucket refilled on the *virtual* clock
(request arrival timestamps), so admission decisions are deterministic
functions of the seeded workload — no wall time anywhere. A request
that finds the bucket empty is rejected up front and never reaches the
shard scheduler; rejects are the service's backpressure signal and are
counted per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (ops on the virtual clock)."""

    ops_per_sec: float = 200_000.0
    burst: int = 64

    def __post_init__(self) -> None:
        if self.ops_per_sec <= 0 or self.burst < 1:
            raise ValueError(f"invalid quota: {self}")


class TokenBucket:
    """Classic token bucket on virtual-ns timestamps."""

    __slots__ = ("rate", "burst", "tokens", "last_ns", "admitted", "rejected")

    def __init__(self, quota: TenantQuota) -> None:
        self.rate = quota.ops_per_sec
        self.burst = float(quota.burst)
        self.tokens = float(quota.burst)
        self.last_ns = 0.0
        self.admitted = 0
        self.rejected = 0

    def admit(self, now_ns: float, cost: float = 1.0) -> bool:
        """Charge *cost* tokens at virtual time *now_ns*.

        Timestamps must be non-decreasing per bucket (the service feeds
        requests in arrival order); a stale timestamp refills nothing
        rather than going back in time.
        """
        elapsed = now_ns - self.last_ns
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * 1e-9 * self.rate)
            self.last_ns = now_ns
        if self.tokens >= cost:
            self.tokens -= cost
            self.admitted += 1
            return True
        self.rejected += 1
        return False
