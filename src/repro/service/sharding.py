"""Directory-hash sharding of tenant namespaces.

A service instance runs N independent MGSP shards (one simulated DIMM
each). Every tenant's namespace lives entirely on one shard, picked by
hashing the tenant name — so cross-tenant operations never span
devices, each shard recovers independently after a crash, and adding
shards scales the channel/lock budget linearly (the Fig-10 axis).

The hash is ``zlib.crc32``, not the builtin ``hash()``: builtin string
hashing is salted per process (PYTHONHASHSEED), which would move
tenants between shards across runs and break seeded reproducibility.
"""

from __future__ import annotations

from zlib import crc32


class ShardMap:
    """Stable tenant → shard assignment."""

    __slots__ = ("nshards",)

    def __init__(self, nshards: int) -> None:
        if nshards < 1:
            raise ValueError(f"need at least one shard, got {nshards}")
        self.nshards = nshards

    def shard_for(self, tenant: str) -> int:
        return crc32(tenant.encode("utf-8")) % self.nshards
