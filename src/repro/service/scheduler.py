"""Deficit round-robin fair scheduling of admitted requests.

Each shard owns one :class:`DeficitRoundRobin`. Admitted requests
enqueue into per-tenant FIFO queues; the drain visits active tenants in
round-robin order, granting each a byte *quantum* per round plus any
deficit carried over from rounds where the head request did not fit.
Large-I/O tenants therefore cannot starve small-I/O ones: over time
every active tenant gets an equal byte share regardless of request
size (Shreedhar & Varghese's DRR, O(1) per dispatch).

Everything is plain deterministic data structure work — the order of
``drain()`` is a pure function of the enqueue sequence.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Iterator, Tuple


class DeficitRoundRobin:
    """Byte-deficit round-robin over per-tenant FIFO queues."""

    def __init__(self, quantum: int = 8192) -> None:
        if quantum < 1:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        #: insertion-ordered active queues: tenant -> deque[(item, cost)]
        self._queues: "OrderedDict[str, Deque[Tuple[object, int]]]" = OrderedDict()
        self._deficit: Dict[str, int] = {}
        self.dispatched = 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def enqueue(self, tenant: str, item: object, cost: int) -> None:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._deficit[tenant] = 0
        queue.append((item, max(1, cost)))

    def drain(self) -> Iterator[Tuple[str, object]]:
        """Yield every queued (tenant, item) in DRR order."""
        while self._queues:
            # Snapshot the round's membership: tenants enqueued mid-round
            # (there are none in the batch driver, but be safe) wait for
            # the next round.
            for tenant in list(self._queues.keys()):
                queue = self._queues.get(tenant)
                if queue is None:
                    continue
                deficit = self._deficit[tenant] + self.quantum
                while queue and queue[0][1] <= deficit:
                    item, cost = queue.popleft()
                    deficit -= cost
                    self.dispatched += 1
                    yield tenant, item
                if queue:
                    self._deficit[tenant] = deficit
                else:
                    # Idle tenants do not bank credit (DRR invariant).
                    del self._queues[tenant]
                    del self._deficit[tenant]
