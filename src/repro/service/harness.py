"""Fig-10-style service scalability sweep.

Sweeps tenant counts across shard counts and reports virtual-time
throughput, latency percentiles, admission rejects, and shard
utilization per cell. The export is a pure function of the seed — no
wall-clock timestamps anywhere — so two runs with the same seed must
produce byte-identical JSON (the CI determinism gate re-runs one cell
and compares bytes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.bench.provenance import provenance
from repro.service.service import ServiceConfig, run_service_workload

DEFAULT_TENANTS: Sequence[int] = (16, 64, 256, 1000)
DEFAULT_SHARDS: Sequence[int] = (1, 2, 4)


@dataclass
class SweepSpec:
    tenant_counts: Sequence[int] = DEFAULT_TENANTS
    shard_counts: Sequence[int] = DEFAULT_SHARDS
    ops_per_tenant: int = 4
    bs: int = 1024
    seed: int = 42
    device_size: int = 64 << 20
    file_capacity: int = 16 << 10
    mean_gap_ns: float = 2_000.0


@dataclass
class SweepResult:
    spec: SweepSpec
    rows: List[dict] = field(default_factory=list)

    def to_json(self) -> str:
        """Deterministic export: stable key order, no timestamps."""
        payload = {
            "benchmark": "service-scalability",
            "figure": "fig10-service",
            "config": {
                "tenant_counts": list(self.spec.tenant_counts),
                "shard_counts": list(self.spec.shard_counts),
                "ops_per_tenant": self.spec.ops_per_tenant,
                "bs": self.spec.bs,
                "seed": self.spec.seed,
                "device_size": self.spec.device_size,
                "file_capacity": self.spec.file_capacity,
                "mean_gap_ns": self.spec.mean_gap_ns,
            },
            "rows": self.rows,
        }
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"


#: files one 64 MiB shard can hold: the node-table area (5% of the
#: device) divided by the 4 KiB per-file table alignment, with slack.
_FILES_PER_64MB = 800


def run_cell(spec: SweepSpec, tenants: int, shards: int) -> dict:
    """One sweep cell -> a flat JSON-ready row.

    The shard device grows with tenant density: each tenant needs one
    inode slot plus an aligned node table, so dense cells (1000 tenants
    on one shard) get a proportionally larger simulated DIMM.
    """
    per_shard = -(-tenants // shards)
    scale = max(1, -(-per_shard // _FILES_PER_64MB))
    config = ServiceConfig(
        shards=shards,
        device_size=spec.device_size * scale,
        file_capacity=spec.file_capacity,
    )
    report, service = run_service_workload(
        config,
        tenants=tenants,
        ops_per_tenant=spec.ops_per_tenant,
        bs=spec.bs,
        seed=spec.seed,
        mean_gap_ns=spec.mean_gap_ns,
        return_service=True,
    )
    stamp = provenance(
        seed=spec.seed,
        config={
            "tenants": tenants,
            "shards": shards,
            "device_size": spec.device_size * scale,
            "file_capacity": spec.file_capacity,
            "ops_per_tenant": spec.ops_per_tenant,
            "bs": spec.bs,
            "mean_gap_ns": spec.mean_gap_ns,
        },
        telemetries=[fs.obs for fs in service.shards],
    )
    return {
        "provenance": stamp,
        "tenants": tenants,
        "shards": shards,
        "makespan_ns": report.makespan_ns,
        "throughput_mb_s": round(report.throughput_mb_s, 6),
        "p50_ns": report.p50_ns,
        "p99_ns": report.p99_ns,
        "admitted": report.admitted,
        "rejected": report.rejected,
        "total_bytes": report.total_bytes,
        "shard_utilization": [round(s.utilization, 6) for s in report.per_shard],
        "lock_wait_ns": sum(s.lock_wait_ns for s in report.per_shard),
    }


def run_sweep(spec: SweepSpec) -> SweepResult:
    result = SweepResult(spec=spec)
    for shards in spec.shard_counts:
        for tenants in spec.tenant_counts:
            result.rows.append(run_cell(spec, tenants, shards))
    return result
