"""Paged access to one database file with transaction page tracking.

The pager holds decoded page images in DRAM. A transaction collects the
set of dirty pages plus their before-images (for rollback); how dirty
pages reach the file at commit is the journal mode's business
(:mod:`repro.db.wal` / :mod:`repro.db.engine`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set

from repro.errors import DbError
from repro.fsapi.interface import FileHandle

PAGE_SIZE = 4096
DEFAULT_CACHE_PAGES = 256  # SQLite-like bounded page cache


class Pager:
    def __init__(self, handle: FileHandle, cache_pages: int = DEFAULT_CACHE_PAGES) -> None:
        self.handle = handle
        self.cache: "OrderedDict[int, bytearray]" = OrderedDict()
        self.cache_pages = cache_pages
        self.page_count = max(1, (handle.size + PAGE_SIZE - 1) // PAGE_SIZE)
        self.dirty: Set[int] = set()
        self.before_images: Dict[int, bytes] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        #: optional callable(page_no) -> bytes | None consulted on cache
        #: misses before the DB file (WAL lookup in wal mode)
        self.miss_source = None

    def _evict_if_needed(self) -> None:
        # Evict least-recently-used *clean* pages; dirty pages are pinned
        # until commit (as SQLite pins journal-pending pages).
        while len(self.cache) > self.cache_pages:
            for page_no in self.cache:
                if page_no not in self.dirty:
                    del self.cache[page_no]
                    break
            else:
                return  # everything dirty: cannot evict

    # -- page access ---------------------------------------------------------

    def read(self, page_no: int) -> bytearray:
        if page_no >= self.page_count:
            raise DbError(f"page {page_no} beyond page count {self.page_count}")
        page = self.cache.get(page_no)
        if page is None:
            self.cache_misses += 1
            raw = self.miss_source(page_no) if self.miss_source is not None else None
            if raw is None:
                raw = self.handle.read(page_no * PAGE_SIZE, PAGE_SIZE)
            page = bytearray(raw.ljust(PAGE_SIZE, b"\0"))
            self.cache[page_no] = page
            self._evict_if_needed()
        else:
            self.cache_hits += 1
            self.cache.move_to_end(page_no)
        return page

    def write(self, page_no: int, data: bytes) -> None:
        if len(data) > PAGE_SIZE:
            raise DbError(f"page image of {len(data)} bytes > {PAGE_SIZE}")
        if page_no not in self.before_images:
            if page_no < self.page_count and page_no in self.cache:
                self.before_images[page_no] = bytes(self.cache[page_no])
            elif page_no < self.page_count:
                self.before_images[page_no] = bytes(
                    self.handle.read(page_no * PAGE_SIZE, PAGE_SIZE).ljust(PAGE_SIZE, b"\0")
                )
            else:
                self.before_images[page_no] = b""  # fresh page
        self.cache[page_no] = bytearray(data.ljust(PAGE_SIZE, b"\0"))
        self.cache.move_to_end(page_no)
        self.dirty.add(page_no)
        self.page_count = max(self.page_count, page_no + 1)
        self._evict_if_needed()

    def allocate(self) -> int:
        page_no = self.page_count
        self.page_count += 1
        self.cache[page_no] = bytearray(PAGE_SIZE)
        self.dirty.add(page_no)
        self.before_images.setdefault(page_no, b"")
        self._evict_if_needed()
        return page_no

    # -- transaction support -------------------------------------------------------

    def take_dirty(self) -> Dict[int, bytes]:
        """Dirty page images for commit; clears the tx tracking."""
        out = {no: bytes(self.cache[no]) for no in sorted(self.dirty)}
        self.dirty.clear()
        self.before_images.clear()
        return out

    def rollback(self) -> None:
        """Restore before-images, dropping this transaction's changes."""
        max_kept = self.page_count
        for page_no, image in self.before_images.items():
            if image:
                self.cache[page_no] = bytearray(image)
            else:
                self.cache.pop(page_no, None)
                max_kept = min(max_kept, page_no)
        if self.before_images:
            fresh = [no for no, img in self.before_images.items() if img == b""]
            if fresh:
                self.page_count = min(fresh)
        self.dirty.clear()
        self.before_images.clear()

    def flush_to_file(self, pages: Optional[Dict[int, bytes]] = None) -> None:
        """Write page images straight to the DB file (OFF-mode commit or
        WAL checkpoint); caller fsyncs."""
        if pages is None:
            pages = self.take_dirty()
        for page_no, image in pages.items():
            self.handle.write(page_no * PAGE_SIZE, image)
