"""Row and key codecs.

Rows are tuples of ``int | float | str | bytes | None`` encoded with a
one-byte type tag per field. Keys use an order-preserving encoding so
raw-byte comparison in the B+tree matches tuple comparison: big-endian
offset-binary for ints, length-framed text.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Tuple, Union

Value = Union[int, float, str, bytes, None]

_T_NONE = 0
_T_INT = 1
_T_FLOAT = 2
_T_STR = 3
_T_BYTES = 4

_I64 = struct.Struct(">q")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")
_LEN = struct.Struct("<I")


def encode_row(values: Iterable[Value]) -> bytes:
    out = bytearray()
    values = list(values)
    out.append(len(values))
    for v in values:
        if v is None:
            out.append(_T_NONE)
        elif isinstance(v, bool):
            out.append(_T_INT)
            out += _I64.pack(int(v))
        elif isinstance(v, int):
            out.append(_T_INT)
            out += _I64.pack(v)
        elif isinstance(v, float):
            out.append(_T_FLOAT)
            out += _F64.pack(v)
        elif isinstance(v, str):
            raw = v.encode("utf-8")
            out.append(_T_STR)
            out += _LEN.pack(len(raw)) + raw
        elif isinstance(v, bytes):
            out.append(_T_BYTES)
            out += _LEN.pack(len(v)) + v
        else:
            raise TypeError(f"unsupported field type {type(v).__name__}")
    return bytes(out)


def decode_row(raw: bytes) -> Tuple[Value, ...]:
    n = raw[0]
    pos = 1
    out: List[Value] = []
    for _ in range(n):
        tag = raw[pos]
        pos += 1
        if tag == _T_NONE:
            out.append(None)
        elif tag == _T_INT:
            out.append(_I64.unpack_from(raw, pos)[0])
            pos += 8
        elif tag == _T_FLOAT:
            out.append(_F64.unpack_from(raw, pos)[0])
            pos += 8
        elif tag in (_T_STR, _T_BYTES):
            (ln,) = _LEN.unpack_from(raw, pos)
            pos += 4
            blob = raw[pos : pos + ln]
            pos += ln
            out.append(blob.decode("utf-8") if tag == _T_STR else bytes(blob))
        else:
            raise ValueError(f"bad field tag {tag}")
    return tuple(out)


def encode_key(parts: Iterable[Value]) -> bytes:
    """Order-preserving composite key encoding."""
    out = bytearray()
    for p in parts:
        if isinstance(p, bool):
            p = int(p)
        if isinstance(p, int):
            out.append(_T_INT)
            out += _U64.pack(p + (1 << 63))  # offset binary keeps order
        elif isinstance(p, str):
            raw = p.encode("utf-8")
            out.append(_T_STR)
            out += raw + b"\x00"  # terminator orders prefixes first
        elif isinstance(p, bytes):
            out.append(_T_BYTES)
            out += p + b"\x00"
        else:
            raise TypeError(f"unsupported key part {type(p).__name__}")
    return bytes(out)
