"""The database engine: catalog, tables, transactions, journal modes."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.db.btree import BTree
from repro.db.pager import PAGE_SIZE, Pager
from repro.db.records import Value, decode_row, encode_key, encode_row
from repro.db.wal import WriteAheadLog
from dataclasses import dataclass

from repro.errors import DbError, SchemaError, TransactionError
from repro.fsapi.interface import FileSystem


@dataclass(frozen=True)
class DbCpuModel:
    """CPU the SQL layer burns around the storage engine (prepared
    statements: bytecode VM execution, codec work, cursor moves). These
    keep the file system's share of a transaction realistic, matching
    how SQLite amortizes FS costs in the paper's Figs 11-12."""

    statement_ns: float = 3000.0  # one mutating statement (VM + btree CPU)
    row_read_ns: float = 1500.0  # one point lookup
    scan_row_ns: float = 300.0  # one row produced by a scan
    begin_ns: float = 800.0
    commit_ns: float = 12000.0  # commit bookkeeping above the journal


_CATALOG_PAGE = 0
_CATALOG_MAGIC = b"RDB1"

JOURNAL_MODES = ("wal", "off")


class SecondaryIndex:
    """Index on a subset of row columns; entries map (cols..., pk) -> b""."""

    def __init__(self, name: str, columns: Tuple[int, ...], tree: BTree) -> None:
        self.name = name
        self.columns = columns
        self.tree = tree

    def entry_key(self, pk: bytes, row: Tuple[Value, ...]) -> bytes:
        return encode_key(tuple(row[c] for c in self.columns)) + pk


class Table:
    """Keyed rows: composite key parts -> value tuple."""

    def __init__(self, db: "Database", name: str, tree: BTree) -> None:
        self.db = db
        self.name = name
        self.tree = tree
        self.indexes: Dict[str, SecondaryIndex] = {}

    # -- index maintenance -------------------------------------------------

    def _index_add(self, pk: bytes, row: Tuple[Value, ...]) -> None:
        for index in self.indexes.values():
            index.tree.insert(index.entry_key(pk, row), b"")

    def _index_remove(self, pk: bytes, raw_row: bytes) -> None:
        if not self.indexes or raw_row is None:
            return
        row = decode_row(raw_row)
        for index in self.indexes.values():
            index.tree.delete(index.entry_key(pk, row))

    def insert(self, key_parts: Tuple[Value, ...], row: Tuple[Value, ...]) -> None:
        self.db._cpu(self.db.cpu.statement_ns)
        key = encode_key(key_parts)

        def stmt():
            if self.indexes:
                self._index_remove(key, self.tree.get(key))
            self.tree.insert(key, encode_row(row))
            self._index_add(key, row)

        self.db._write_stmt(stmt)

    def update(self, key_parts: Tuple[Value, ...], row: Tuple[Value, ...]) -> bool:
        self.db._cpu(self.db.cpu.statement_ns)
        key = encode_key(key_parts)
        existed = self.tree.get(key) is not None

        def stmt():
            if self.indexes:
                self._index_remove(key, self.tree.get(key))
            self.tree.insert(key, encode_row(row))
            self._index_add(key, row)

        self.db._write_stmt(stmt)
        return existed

    def get(self, key_parts: Tuple[Value, ...]) -> Optional[Tuple[Value, ...]]:
        self.db._cpu(self.db.cpu.row_read_ns)
        raw = self.tree.get(encode_key(key_parts))
        return decode_row(raw) if raw is not None else None

    def delete(self, key_parts: Tuple[Value, ...]) -> bool:
        self.db._cpu(self.db.cpu.statement_ns)
        key = encode_key(key_parts)
        result = []

        def stmt():
            if self.indexes:
                self._index_remove(key, self.tree.get(key))
            result.append(self.tree.delete(key))

        self.db._write_stmt(stmt)
        return result[0]

    def scan_prefix(
        self, prefix: Tuple[Value, ...]
    ) -> Iterator[Tuple[bytes, Tuple[Value, ...]]]:
        start = encode_key(prefix)
        for key, raw in self.tree.scan(start, start + b"\xff"):
            self.db._cpu(self.db.cpu.scan_row_ns)
            yield key, decode_row(raw)

    def scan_from(
        self, key_parts: Tuple[Value, ...], limit: int
    ) -> Iterator[Tuple[bytes, Tuple[Value, ...]]]:
        """Range scan: up to *limit* rows with key >= key_parts."""
        produced = 0
        for key, raw in self.tree.scan(encode_key(key_parts)):
            if produced >= limit:
                return
            self.db._cpu(self.db.cpu.scan_row_ns)
            yield key, decode_row(raw)
            produced += 1

    def scan_all(self) -> Iterator[Tuple[bytes, Tuple[Value, ...]]]:
        for key, raw in self.tree.scan():
            yield key, decode_row(raw)

    def count(self) -> int:
        return self.tree.count()

    # -- secondary indexes -----------------------------------------------------

    def create_index(self, name: str, columns: Tuple[int, ...]) -> "SecondaryIndex":
        """Index on row column positions; backfills existing rows."""
        if name in self.indexes:
            raise SchemaError(f"index {name!r} exists on {self.name!r}")
        index = self.db._create_index(self, name, columns)
        for pk, raw in self.tree.scan():
            index.tree.insert(index.entry_key(pk, decode_row(raw)), b"")
        if not self.db.in_tx:
            self.db._commit_pages()
        return index

    def lookup_by(
        self, index_name: str, values: Tuple[Value, ...]
    ) -> Iterator[Tuple[Value, ...]]:
        """Yield rows whose indexed columns equal *values*."""
        index = self.indexes.get(index_name)
        if index is None:
            raise SchemaError(f"no index {index_name!r} on {self.name!r}")
        self.db._cpu(self.db.cpu.row_read_ns)
        prefix = encode_key(values)
        for entry_key, _ in index.tree.scan(prefix, prefix + b"\xff"):
            self.db._cpu(self.db.cpu.scan_row_ns)
            pk = entry_key[len(prefix):]
            raw = self.tree.get(pk)
            if raw is not None:
                yield decode_row(raw)


class Database:
    """One DB file (+ WAL file in wal mode) over a simulated FS.

    ``journal_mode``:

    - ``"wal"`` — commits append to the WAL and fsync it; pages reach the
      DB file at checkpoints (SQLite WAL).
    - ``"off"`` — commits write pages in place and fsync; no DB-level
      crash atomicity — the paper's mode for delegating consistency to
      the file system.
    """

    def __init__(
        self,
        fs: FileSystem,
        name: str = "test.db",
        journal_mode: str = "wal",
        capacity: int = 32 << 20,
        wal_capacity: int = 8 << 20,
        checkpoint_limit: int = 2 << 20,
        cpu: Optional[DbCpuModel] = None,
        cache_pages: int = 256,
    ) -> None:
        if journal_mode not in JOURNAL_MODES:
            raise DbError(f"journal_mode must be one of {JOURNAL_MODES}")
        self.fs = fs
        self.name = name
        self.cpu = cpu or DbCpuModel()
        self.journal_mode = journal_mode
        self.checkpoint_limit = checkpoint_limit
        existing = fs.exists(name)
        self.handle = fs.open(name) if existing else fs.create(name, capacity)
        self.pager = Pager(self.handle, cache_pages=cache_pages)
        self.wal: Optional[WriteAheadLog] = None
        if journal_mode == "wal":
            wal_name = name + "-wal"
            if fs.exists(wal_name):
                wal_handle = fs.open(wal_name)
                self.wal = WriteAheadLog.recover(wal_handle, self.handle)
                self.pager = Pager(self.handle, cache_pages=cache_pages)  # file changed
            else:
                wal_handle = fs.create(wal_name, wal_capacity)
                self.wal = WriteAheadLog(wal_handle)
        if self.wal is not None:
            self.pager.miss_source = self.wal.lookup
        self.tables: Dict[str, Table] = {}
        self._catalog: Dict[str, int] = {}
        self.in_tx = False
        self.committed_txns = 0
        if existing:
            self._load_catalog()
        else:
            self.pager.write(_CATALOG_PAGE, _CATALOG_MAGIC)
            self._save_catalog()
            self._commit_pages()

    # -- catalog -----------------------------------------------------------------

    def _load_catalog(self) -> None:
        raw = bytes(self.pager.read(_CATALOG_PAGE))
        if raw[:4] != _CATALOG_MAGIC:
            raise DbError(f"{self.name}: bad catalog magic")
        (count,) = (raw[4],)
        flat = decode_row(raw[5:]) if count else ()
        deferred_indexes = []
        for i in range(0, len(flat), 2):
            name, root = flat[i], flat[i + 1]
            self._catalog[name] = root
            if name.startswith("__idx__"):
                deferred_indexes.append((name, root))
            else:
                self.tables[name] = Table(self, name, BTree(self.pager, root))
        for name, root in deferred_indexes:
            _, table_name, index_name, cols = name.split("__", 3)[0:1] + name[7:].split("__", 2)
            columns = tuple(int(c) for c in cols.split(","))
            table = self.tables[table_name]
            table.indexes[index_name] = SecondaryIndex(
                index_name, columns, BTree(self.pager, root)
            )

    def _save_catalog(self) -> None:
        flat = []
        for name, root in self._catalog.items():
            flat += [name, root]
        body = encode_row(tuple(flat)) if flat else b""
        raw = _CATALOG_MAGIC + bytes([1 if flat else 0]) + body
        if len(raw) > PAGE_SIZE:
            raise DbError("catalog page overflow (too many tables)")
        self.pager.write(_CATALOG_PAGE, raw)

    def create_table(self, name: str) -> Table:
        if name in self.tables:
            raise SchemaError(f"table {name!r} exists")
        root = self.pager.allocate()
        tree = BTree(self.pager, root, initialize=True)
        self._catalog[name] = root
        self._save_catalog()
        table = Table(self, name, tree)
        self.tables[name] = table
        if not self.in_tx:
            self._commit_pages()
        return table

    def _create_index(self, table: Table, index_name: str, columns) -> SecondaryIndex:
        catalog_name = f"__idx__{table.name}__{index_name}__{','.join(map(str, columns))}"
        if catalog_name in self._catalog:
            raise SchemaError(f"index {index_name!r} exists")
        root = self.pager.allocate()
        tree = BTree(self.pager, root, initialize=True)
        self._catalog[catalog_name] = root
        self._save_catalog()
        index = SecondaryIndex(index_name, tuple(columns), tree)
        table.indexes[index_name] = index
        return index

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no such table {name!r}") from None

    # -- transactions ----------------------------------------------------------------

    def _cpu(self, ns: float) -> None:
        self.fs.recorder.compute(ns)

    def begin(self) -> None:
        if self.in_tx:
            raise TransactionError("transaction already open")
        self._cpu(self.cpu.begin_ns)
        self.in_tx = True

    def commit(self) -> None:
        if not self.in_tx:
            raise TransactionError("no open transaction")
        self._cpu(self.cpu.commit_ns)
        self._commit_pages()
        self.in_tx = False
        self.committed_txns += 1

    def rollback(self) -> None:
        if not self.in_tx:
            raise TransactionError("no open transaction")
        self.pager.rollback()
        self.in_tx = False

    def _write_stmt(self, fn) -> None:
        """Run a mutating statement; autocommit when no tx is open."""
        if self.in_tx:
            fn()
            return
        self.in_tx = True
        try:
            fn()
        except Exception:
            self.pager.rollback()
            self.in_tx = False
            raise
        self.commit()

    def _commit_pages(self) -> None:
        pages = self.pager.take_dirty()
        if not pages:
            return
        if self.wal is not None:
            self.wal.commit(pages)
            if self.wal.should_checkpoint(self.checkpoint_limit):
                self.wal.checkpoint(self.handle)
        else:
            self.pager.flush_to_file(pages)
            self.handle.fsync()

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        if self.in_tx:
            self.rollback()
        if self.wal is not None:
            self.wal.checkpoint(self.handle)
            self.wal.handle.close()
        self.handle.close()
