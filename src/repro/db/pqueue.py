"""Durable lock-free MPSC queue on raw NVM (Ben-David et al. style).

A fixed ring of slots over the :class:`~repro.nvm.device.NvmDevice`
store/flush/fence primitives, built the way the delay-free durable
structures literature builds them: every linearized operation is made
durable *before* it returns, helpers never wait on a slow peer, and
recovery is a pure function of the on-media image (the DRAM hints in the
header are untrusted accelerators).

Protocol
--------
Producers reserve monotonically increasing sequence numbers (the
simulated fetch-and-add); ``seq`` maps to slot ``(seq - 1) % nslots``.
Enqueue is two-phase so the durability point is a single 8-byte commit:

1. ``enqueue_begin``: non-temporal store of ``length || payload`` into
   the slot body, then a fence — the *data* is durable first;
2. ``enqueue_commit``: one atomic store of the commit word
   ``(seq << 32) | crc32(length || payload)`` + flush + fence — the
   linearization *and* durability point. An item is in the queue iff its
   commit word checks out.

The consumer retires an item with one atomic store of ``seq`` into the
slot's ``consumed`` word (+ flush + fence). ``sync`` mode additionally
persists the head/tail hints after every operation; ``async`` mode
leaves them stale (recovery never trusts them either way).

Recovery scans every slot, rebuilds the committed set from checksummed
commit words alone, repairs abandoned reservations (begun, never
committed) by writing ``consumed = seq`` *skip markers*, and is an
idempotent fixpoint: recovering a recovered image changes no byte.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError

MAGIC = 0x50515545_55453144  # "PQUEUE1D"
HEADER_SIZE = 64
SLOT_HEADER = 24  # commit u64 | consumed u64 | length u64

_OFF_MAGIC = 0
_OFF_NSLOTS = 8
_OFF_PAYLOAD_CAP = 16
_OFF_HEAD_HINT = 24
_OFF_TAIL_HINT = 32


class QueueFullError(ReproError):
    """All slots hold live (committed, unconsumed) items."""


class QueueFormatError(ReproError):
    """The region does not carry a formatted queue."""


def _crc(length: int, payload: bytes) -> int:
    return zlib.crc32(length.to_bytes(4, "little") + payload) & 0xFFFFFFFF


def _commit_word(seq: int, length: int, payload: bytes) -> int:
    return ((seq & 0xFFFFFFFF) << 32) | _crc(length, payload)


@dataclass
class PendingEnqueue:
    """A reserved-and-durable slot awaiting its commit word."""

    seq: int
    payload: bytes


class PersistentQueue:
    """Durable MPSC ring queue over one device extent.

    ``seq`` numbers start at 1 and are capped at 2**32 - 1 (the commit
    word keeps the full sequence in its high half, so wrap-around slot
    reuse can always tell a stale commit from a live one).
    """

    def __init__(self, device, base: int, sync: bool = True) -> None:
        buffer = device.buffer
        if buffer.load_u64(base + _OFF_MAGIC) != MAGIC:
            raise QueueFormatError(f"no queue magic at offset {base}")
        self.device = device
        self.base = base
        self.sync = sync
        self.nslots = buffer.load_u64(base + _OFF_NSLOTS)
        self.payload_cap = buffer.load_u64(base + _OFF_PAYLOAD_CAP)
        self.stride = SLOT_HEADER + self.payload_cap
        #: volatile cursors; recovery rebuilds them from the slots
        self._head_seq = 1
        self._tail_seq = 1

    # -- layout ------------------------------------------------------------

    @classmethod
    def format(
        cls, device, base: int, nslots: int, payload_cap: int, sync: bool = True
    ) -> "PersistentQueue":
        """Initialize an empty queue; zeroes every slot header."""
        if payload_cap % 8:
            raise QueueFormatError("payload_cap must be a multiple of 8")
        stride = SLOT_HEADER + payload_cap
        device.store(base + _OFF_MAGIC, MAGIC.to_bytes(8, "little"))
        device.store(base + _OFF_NSLOTS, nslots.to_bytes(8, "little"))
        device.store(base + _OFF_PAYLOAD_CAP, payload_cap.to_bytes(8, "little"))
        device.store(base + _OFF_HEAD_HINT, (1).to_bytes(8, "little"))
        device.store(base + _OFF_TAIL_HINT, (1).to_bytes(8, "little"))
        for i in range(nslots):
            device.store(base + HEADER_SIZE + i * stride, b"\0" * SLOT_HEADER)
        device.persist(base, HEADER_SIZE + nslots * stride)
        return cls(device, base, sync=sync)

    def size_of(self) -> int:
        return HEADER_SIZE + self.nslots * self.stride

    def _slot(self, seq: int) -> int:
        return self.base + HEADER_SIZE + ((seq - 1) % self.nslots) * self.stride

    def _commit_valid(self, seq: int, slot: int) -> bool:
        commit = self.device.buffer.load_u64(slot)
        if commit >> 32 != seq & 0xFFFFFFFF:
            return False
        length = self.device.buffer.load_u64(slot + 16)
        if length > self.payload_cap:
            return False
        payload = self.device.buffer.load(slot + 24, length)
        return commit & 0xFFFFFFFF == _crc(length, payload)

    # -- producers ---------------------------------------------------------

    def enqueue_begin(self, payload: bytes) -> PendingEnqueue:
        """Reserve a slot and make the payload durable (phase one)."""
        if len(payload) > self.payload_cap:
            raise QueueFormatError(
                f"payload of {len(payload)} exceeds cap {self.payload_cap}"
            )
        if self._tail_seq - self._head_seq >= self.nslots:
            raise QueueFullError(f"{self.nslots} slots all live")
        seq = self._tail_seq
        self._tail_seq += 1
        slot = self._slot(seq)
        body = len(payload).to_bytes(8, "little") + payload
        self.device.nt_store(slot + 16, body)
        self.device.fence()
        return PendingEnqueue(seq=seq, payload=payload)

    def enqueue_commit(self, pending: PendingEnqueue) -> int:
        """Publish: the single-word durability + linearization point."""
        seq = pending.seq
        slot = self._slot(seq)
        self.device.atomic_store_u64(
            slot, _commit_word(seq, len(pending.payload), pending.payload)
        )
        self.device.flush(slot, 8)
        self.device.fence()
        if self.sync:
            self._persist_hints()
        return seq

    def enqueue(self, payload: bytes) -> int:
        return self.enqueue_commit(self.enqueue_begin(payload))

    # -- the (single) consumer ---------------------------------------------

    def dequeue(self) -> Optional[bytes]:
        """Pop the oldest committed item; None when the head is empty or
        still unpublished (an in-flight producer owns it)."""
        buffer = self.device.buffer
        while self._head_seq < self._tail_seq:
            seq = self._head_seq
            slot = self._slot(seq)
            if not self._commit_valid(seq, slot):
                if buffer.load_u64(slot + 8) == seq:
                    self._head_seq += 1  # recovery skip marker
                    continue
                return None  # head reserved but not yet committed
            if buffer.load_u64(slot + 8) == seq:
                self._head_seq += 1  # already consumed (pre-crash)
                continue
            length = buffer.load_u64(slot + 16)
            payload = self.device.load(slot + 24, length)
            self.device.atomic_store_u64(slot + 8, seq)
            self.device.flush(slot + 8, 8)
            self.device.fence()
            self._head_seq += 1
            if self.sync:
                self._persist_hints()
            return payload
        return None

    def live_items(self) -> List[bytes]:
        """Committed, unconsumed payloads in sequence order (read-only)."""
        buffer = self.device.buffer
        out = []
        for seq in range(self._head_seq, self._tail_seq):
            slot = self._slot(seq)
            if self._commit_valid(seq, slot) and buffer.load_u64(slot + 8) != seq:
                out.append(buffer.load(slot + 24, buffer.load_u64(slot + 16)))
        return out

    def _persist_hints(self) -> None:
        self.device.atomic_store_u64(self.base + _OFF_HEAD_HINT, self._head_seq)
        self.device.atomic_store_u64(self.base + _OFF_TAIL_HINT, self._tail_seq)
        self.device.flush(self.base + _OFF_HEAD_HINT, 16)
        self.device.fence()

    # -- recovery ----------------------------------------------------------

    @classmethod
    def recover(cls, device, base: int, sync: bool = True) -> "PersistentQueue":
        """Rebuild the queue from a (possibly crashed) image.

        Hints are ignored: the committed set comes from checksummed
        commit words, the consumed set from seq-matching consumed words.
        Reservations that never committed get durable skip markers so
        the consumer can stride over them. Idempotent by construction —
        a second pass finds nothing to repair and writes nothing.
        """
        queue = cls(device, base, sync=sync)
        buffer = device.buffer
        published = set()
        consumed = set()
        max_seq = 0
        for i in range(queue.nslots):
            slot = base + HEADER_SIZE + i * queue.stride
            commit_seq = buffer.load_u64(slot) >> 32
            if commit_seq and (commit_seq - 1) % queue.nslots == i:
                if queue._commit_valid(commit_seq, slot):
                    published.add(commit_seq)
                    max_seq = max(max_seq, commit_seq)
            cseq = buffer.load_u64(slot + 8)
            if cseq and (cseq - 1) % queue.nslots == i:
                consumed.add(cseq)
                max_seq = max(max_seq, cseq)
        tail = max_seq + 1
        live = sorted(published - consumed)
        head = live[0] if live else tail
        repaired = False
        for seq in range(head, tail):
            if seq in published or seq in consumed:
                continue
            slot = queue._slot(seq)
            device.atomic_store_u64(slot + 8, seq)
            device.flush(slot + 8, 8)
            repaired = True
        if repaired:
            device.fence()
        queue._head_seq = head
        queue._tail_seq = tail
        if sync:
            hints_ok = (
                buffer.load_u64(base + _OFF_HEAD_HINT) == head
                and buffer.load_u64(base + _OFF_TAIL_HINT) == tail
            )
            if not hints_ok:
                queue._persist_hints()
        return queue
