"""Write-ahead log (SQLite-style WAL mode).

Commit appends one frame per dirty page followed by a commit record,
then fsyncs the WAL file — the only durable write on the commit path.
A checkpoint pushes committed pages into the DB file and resets the log
with a new salt so stale frames are ignored (SQLite's wal salt scheme).
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.db.pager import PAGE_SIZE
from repro.errors import DbError
from repro.fsapi.interface import FileHandle
from repro.util import checksum as crc

_HEADER = struct.Struct("<IIQ")  # magic, salt, reserved
_FRAME = struct.Struct("<IIII")  # magic, salt, page_no, checksum
_COMMIT = struct.Struct("<IIII")  # magic, salt, nframes, checksum

HEADER_MAGIC = 0x57414C30  # "WAL0"
FRAME_MAGIC = 0x46524D31
COMMIT_MAGIC = 0x434D5431


class WriteAheadLog:
    def __init__(self, handle: FileHandle, fresh: bool = True) -> None:
        self.handle = handle
        self.salt = 1
        self.tail = _HEADER.size
        # page_no -> (file offset of the frame's image, image bytes)
        self.frames_since_checkpoint: Dict[int, tuple] = {}
        if fresh:
            self._write_header()

    def _write_header(self) -> None:
        self.handle.write(0, _HEADER.pack(HEADER_MAGIC, self.salt, 0))

    @property
    def size(self) -> int:
        return self.tail

    # -- commit path -----------------------------------------------------------

    def commit(self, pages: Dict[int, bytes]) -> None:
        """Append frames + a commit record, then fsync (the durable point)."""
        if not pages:
            return
        blob = bytearray()
        for page_no, image in pages.items():
            if len(image) > PAGE_SIZE:
                raise DbError(f"page {page_no}: image of {len(image)} bytes > {PAGE_SIZE}")
            image = image.ljust(PAGE_SIZE, b"\0")
            blob += _FRAME.pack(FRAME_MAGIC, self.salt, page_no, crc(image))
            image_off = self.tail + len(blob)
            blob += image
            self.frames_since_checkpoint[page_no] = (image_off, image)
        blob += _COMMIT.pack(COMMIT_MAGIC, self.salt, len(pages), crc(blob[-8:]))
        self.handle.write(self.tail, bytes(blob))
        self.tail += len(blob)
        self.handle.fsync()

    def should_checkpoint(self, limit: int) -> bool:
        return self.tail >= limit

    def lookup(self, page_no: int):
        """Latest committed image of *page_no* still in the log, read
        back through the WAL file (an FS read, like SQLite's wal-index
        lookup)."""
        found = self.frames_since_checkpoint.get(page_no)
        if found is None:
            return None
        offset, _image = found
        return self.handle.read(offset, PAGE_SIZE)

    def checkpoint(self, db_handle: FileHandle) -> int:
        """Push committed frames into the DB file; reset the log."""
        pages = self.frames_since_checkpoint
        for page_no, (_off, image) in sorted(pages.items()):
            db_handle.write(page_no * PAGE_SIZE, image)
        db_handle.fsync()
        count = len(pages)
        self.frames_since_checkpoint = {}
        self.salt += 1
        self.tail = _HEADER.size
        self._write_header()
        self.handle.fsync()
        return count

    # -- recovery -----------------------------------------------------------------

    @classmethod
    def recover(cls, handle: FileHandle, db_handle: FileHandle) -> "WriteAheadLog":
        """Replay committed transactions from an existing WAL file into
        the DB file, then reset the log."""
        wal = cls(handle, fresh=False)
        raw = handle.read(0, handle.size)
        if len(raw) < _HEADER.size:
            wal._write_header()
            handle.fsync()
            return wal
        magic, salt, _ = _HEADER.unpack_from(raw, 0)
        if magic != HEADER_MAGIC:
            wal._write_header()
            handle.fsync()
            return wal
        pos = _HEADER.size
        committed: Dict[int, bytes] = {}
        pending: Dict[int, bytes] = {}
        while pos + _FRAME.size <= len(raw):
            m, s, a, b = _FRAME.unpack_from(raw, pos)
            if m == FRAME_MAGIC and s == salt:
                image = raw[pos + _FRAME.size : pos + _FRAME.size + PAGE_SIZE]
                if len(image) < PAGE_SIZE or crc(image) != b:
                    break  # torn frame: stop
                pending[a] = image
                pos += _FRAME.size + PAGE_SIZE
            elif m == COMMIT_MAGIC and s == salt:
                committed.update(pending)
                pending = {}
                pos += _COMMIT.size
            else:
                break  # stale salt or garbage: end of log
        for page_no, image in sorted(committed.items()):
            db_handle.write(page_no * PAGE_SIZE, image)
        db_handle.fsync()
        wal.salt = salt + 1
        wal.tail = _HEADER.size
        wal._write_header()
        handle.fsync()
        return wal
