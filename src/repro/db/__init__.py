"""Embedded relational-ish database (the reproduction's SQLite stand-in).

A paged B+tree storage engine over any simulated file system, with the
two journal modes the paper evaluates:

- ``wal``  — write-ahead log file + checkpointing (SQLite's WAL mode);
- ``off``  — dirty pages written in place at commit, no DB-level journal
  (SQLite's ``journal_mode=OFF``; crash safety comes from the FS, which
  is exactly what MGSP provides and Ext4-DAX does not).

``repro.db.pqueue`` is the odd one out: a durable lock-free MPSC queue
that runs directly on the NVM device (no file system underneath), used
as a hostile crash-test and invariant-inference subject.
"""

from repro.db.engine import Database
from repro.db.btree import BTree
from repro.db.pager import Pager
from repro.db.pqueue import PendingEnqueue, PersistentQueue, QueueFullError

__all__ = [
    "BTree",
    "Database",
    "Pager",
    "PendingEnqueue",
    "PersistentQueue",
    "QueueFullError",
]
