"""B+tree over the pager.

- Leaf pages hold (key, value) cells and a next-leaf link for scans.
- Interior pages hold separator keys and child page numbers.
- The root page number is stable: a root split rewrites the root as an
  interior page in place, so the catalog never needs updating.
- Deletes are lazy (no rebalancing); pages shrink but stay linked, which
  is sufficient for the benchmark workloads and keeps the code honest
  about what it does.

Page layout (serialized on every write)::

    leaf:     u8 type(1)  u16 nkeys  u32 next_leaf  [u16 klen u16 vlen key value]*
    interior: u8 type(2)  u16 nkeys  u32 rightmost  [u16 klen u32 child key]*
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Tuple

from repro.db.pager import PAGE_SIZE, Pager
from repro.errors import DbError

LEAF = 1
INTERIOR = 2

_HDR = struct.Struct("<BHI")
_LEAF_CELL = struct.Struct("<HH")
_INT_CELL = struct.Struct("<HI")

_LEAF_OVERHEAD = _HDR.size
_SPLIT_LIMIT = PAGE_SIZE - 64


class _Node:
    __slots__ = ("kind", "keys", "values", "children", "next_leaf")

    def __init__(self, kind: int) -> None:
        self.kind = kind
        self.keys: List[bytes] = []
        self.values: List[bytes] = []  # leaf only
        self.children: List[int] = []  # interior only: len(keys) + 1
        self.next_leaf = 0

    # -- (de)serialization ----------------------------------------------------

    @classmethod
    def parse(cls, raw: bytes) -> "_Node":
        kind, nkeys, extra = _HDR.unpack_from(raw, 0)
        node = cls(kind)
        pos = _HDR.size
        if kind == LEAF:
            node.next_leaf = extra
            for _ in range(nkeys):
                klen, vlen = _LEAF_CELL.unpack_from(raw, pos)
                pos += _LEAF_CELL.size
                node.keys.append(bytes(raw[pos : pos + klen]))
                pos += klen
                node.values.append(bytes(raw[pos : pos + vlen]))
                pos += vlen
        elif kind == INTERIOR:
            for _ in range(nkeys):
                klen, child = _INT_CELL.unpack_from(raw, pos)
                pos += _INT_CELL.size
                node.children.append(child)
                node.keys.append(bytes(raw[pos : pos + klen]))
                pos += klen
            node.children.append(extra)  # rightmost
        else:
            raise DbError(f"corrupt page: unknown node type {kind}")
        return node

    def serialize(self) -> bytes:
        out = bytearray()
        if self.kind == LEAF:
            out += _HDR.pack(LEAF, len(self.keys), self.next_leaf)
            for k, v in zip(self.keys, self.values):
                out += _LEAF_CELL.pack(len(k), len(v)) + k + v
        else:
            out += _HDR.pack(INTERIOR, len(self.keys), self.children[-1])
            for k, child in zip(self.keys, self.children[:-1]):
                out += _INT_CELL.pack(len(k), child) + k
        if len(out) > PAGE_SIZE:
            raise DbError(f"node serialization overflow: {len(out)} bytes")
        return bytes(out)

    def size(self) -> int:
        total = _HDR.size
        if self.kind == LEAF:
            for k, v in zip(self.keys, self.values):
                total += _LEAF_CELL.size + len(k) + len(v)
        else:
            for k in self.keys:
                total += _INT_CELL.size + len(k)
        return total


def _empty_leaf_bytes() -> bytes:
    return _HDR.pack(LEAF, 0, 0)


class BTree:
    """One keyed tree rooted at a fixed page."""

    def __init__(self, pager: Pager, root_page: int, initialize: bool = False) -> None:
        self.pager = pager
        self.root_page = root_page
        if initialize:
            pager.write(root_page, _empty_leaf_bytes())

    # -- helpers ------------------------------------------------------------

    def _load(self, page_no: int) -> _Node:
        return _Node.parse(bytes(self.pager.read(page_no)))

    def _store(self, page_no: int, node: _Node) -> None:
        self.pager.write(page_no, node.serialize())

    # -- point ops -----------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        node = self._load(self.root_page)
        while node.kind == INTERIOR:
            node = self._load(node.children[bisect_right(node.keys, key)])
        idx = bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            return node.values[idx]
        return None

    def insert(self, key: bytes, value: bytes) -> None:
        """Upsert *key*."""
        split = self._insert_rec(self.root_page, key, value)
        if split is not None:
            sep, right_page = split
            # Root split: rewrite the root in place as an interior node.
            old_root = self._load(self.root_page)
            left_page = self.pager.allocate()
            self._store(left_page, old_root)
            new_root = _Node(INTERIOR)
            new_root.keys = [sep]
            new_root.children = [left_page, right_page]
            self._store(self.root_page, new_root)

    def _insert_rec(self, page_no: int, key: bytes, value: bytes):
        node = self._load(page_no)
        if node.kind == LEAF:
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
            else:
                node.keys.insert(idx, key)
                node.values.insert(idx, value)
            if node.size() > _SPLIT_LIMIT:
                return self._split_leaf(page_no, node)
            self._store(page_no, node)
            return None
        child_idx = bisect_right(node.keys, key)
        split = self._insert_rec(node.children[child_idx], key, value)
        if split is None:
            return None
        sep, right_page = split
        node.keys.insert(child_idx, sep)
        node.children.insert(child_idx + 1, right_page)
        if node.size() > _SPLIT_LIMIT:
            return self._split_interior(page_no, node)
        self._store(page_no, node)
        return None

    def _split_leaf(self, page_no: int, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(LEAF)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right_page = self.pager.allocate()
        node.next_leaf = right_page
        self._store(right_page, right)
        self._store(page_no, node)
        return (right.keys[0], right_page)

    def _split_interior(self, page_no: int, node: _Node):
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(INTERIOR)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        right_page = self.pager.allocate()
        self._store(right_page, right)
        self._store(page_no, node)
        return (sep, right_page)

    def delete(self, key: bytes) -> bool:
        """Remove *key*; returns whether it existed (lazy, no merging)."""
        path = []
        page_no = self.root_page
        node = self._load(page_no)
        while node.kind == INTERIOR:
            page_no = node.children[bisect_right(node.keys, key)]
            node = self._load(page_no)
        idx = bisect_left(node.keys, key)
        if idx >= len(node.keys) or node.keys[idx] != key:
            return False
        del node.keys[idx]
        del node.values[idx]
        self._store(page_no, node)
        return True

    # -- scans ---------------------------------------------------------------------

    def scan(
        self, start: Optional[bytes] = None, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Yield (key, value) with start <= key < end."""
        node = self._load(self.root_page)
        key = start or b""
        while node.kind == INTERIOR:
            node = self._load(node.children[bisect_right(node.keys, key)])
        idx = bisect_left(node.keys, key) if start else 0
        while True:
            while idx < len(node.keys):
                k = node.keys[idx]
                if end is not None and k >= end:
                    return
                yield (k, node.values[idx])
                idx += 1
            if not node.next_leaf:
                return
            node = self._load(node.next_leaf)
            idx = 0

    def count(self) -> int:
        return sum(1 for _ in self.scan())
