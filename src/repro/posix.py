"""POSIX-style interposition layer (the LD_PRELOAD equivalent).

The paper's artifact runs unmodified applications by intercepting POSIX
calls; files opened with ``O_ATOMIC`` go through MGSP, everything else
falls through to the underlying file system. This module reproduces
that composition: an :class:`Interposer` owns one *underlying* FS
(Ext4-DAX by default) and one MGSP instance **on the same device**
namespace model the paper uses — and exposes integer file descriptors
with ``open/pread/pwrite/fsync/lseek/read/write/close``.

    posix = Interposer()
    fd = posix.open("a.db", posix.O_CREAT | posix.O_ATOMIC, size_hint=1 << 20)
    posix.pwrite(fd, b"hello", 0)        # crash-consistent via MGSP
    fd2 = posix.open("plain.txt", posix.O_CREAT)   # plain Ext4-DAX
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import MgspConfig, MgspFilesystem
from repro.errors import BadFileDescriptor, FileNotFound, FsError
from repro.fs import Ext4Dax
from repro.fsapi.interface import FileHandle
from repro.nvm.timing import TimingModel


@dataclass
class _OpenFile:
    handle: FileHandle
    atomic: bool
    offset: int = 0  # implicit cursor for read/write/lseek


class Interposer:
    """User-space call interception, O_ATOMIC routing included."""

    O_RDONLY = 0
    O_RDWR = 1 << 0
    O_CREAT = 1 << 6
    O_ATOMIC = 1 << 20  # the paper's flag: route through MGSP

    SEEK_SET = 0
    SEEK_CUR = 1
    SEEK_END = 2

    def __init__(
        self,
        device_size: int = 256 << 20,
        mgsp_config: Optional[MgspConfig] = None,
        timing: Optional[TimingModel] = None,
        default_size_hint: int = 4 << 20,
    ) -> None:
        # The paper mounts MGSP over Ext4-DAX; we model the two layers
        # as sibling namespaces on equally-sized devices (the underlying
        # FS only sees non-atomic files, exactly as with LD_PRELOAD).
        self.underlying = Ext4Dax(device_size=device_size, timing=timing)
        self.mgsp = MgspFilesystem(
            device_size=device_size, timing=timing, config=mgsp_config
        )
        self.default_size_hint = default_size_hint
        self._fds: Dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0/1/2 are spoken for, as tradition demands

    # -- fd table -----------------------------------------------------------

    def _entry(self, fd: int) -> _OpenFile:
        entry = self._fds.get(fd)
        if entry is None:
            raise BadFileDescriptor(f"fd {fd} is not open")
        return entry

    def open(self, path: str, flags: int = O_RDWR, size_hint: int = 0) -> int:
        atomic = bool(flags & self.O_ATOMIC)
        fs = self.mgsp if atomic else self.underlying
        if fs.exists(path):
            handle = fs.open(path)
        elif flags & self.O_CREAT:
            handle = fs.create(path, capacity=size_hint or self.default_size_hint)
        else:
            raise FileNotFound(path)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _OpenFile(handle=handle, atomic=atomic)
        return fd

    def close(self, fd: int) -> None:
        entry = self._entry(fd)
        entry.handle.close()
        del self._fds[fd]

    # -- positional I/O ---------------------------------------------------------

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        return self._entry(fd).handle.write(offset, data)

    def pread(self, fd: int, length: int, offset: int) -> bytes:
        return self._entry(fd).handle.read(offset, length)

    # -- cursor I/O ----------------------------------------------------------------

    def write(self, fd: int, data: bytes) -> int:
        entry = self._entry(fd)
        n = entry.handle.write(entry.offset, data)
        entry.offset += n
        return n

    def read(self, fd: int, length: int) -> bytes:
        entry = self._entry(fd)
        data = entry.handle.read(entry.offset, length)
        entry.offset += len(data)
        return data

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        entry = self._entry(fd)
        if whence == self.SEEK_SET:
            new = offset
        elif whence == self.SEEK_CUR:
            new = entry.offset + offset
        elif whence == self.SEEK_END:
            new = entry.handle.size + offset
        else:
            raise FsError(f"bad whence {whence}")
        if new < 0:
            raise FsError("seek before start of file")
        entry.offset = new
        return new

    def fsync(self, fd: int) -> None:
        self._entry(fd).handle.fsync()

    def fstat_size(self, fd: int) -> int:
        return self._entry(fd).handle.size

    def unlink(self, path: str) -> None:
        for fs in (self.mgsp, self.underlying):
            if fs.exists(path):
                fs.unlink(path)
                return
        raise FileNotFound(path)

    def is_atomic(self, fd: int) -> bool:
        return self._entry(fd).atomic

    # -- mmap (the paper's headline interface) -------------------------------------

    def mmap(self, fd: int, length: int = 0):
        from repro.core.mmio import MgspMmap

        entry = self._entry(fd)
        return MgspMmap(entry.handle, length)
