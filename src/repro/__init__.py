"""MGSP reproduction: crash-consistent memory-mapped I/O on simulated NVM.

Quickstart::

    from repro import MgspFilesystem

    fs = MgspFilesystem(device_size=64 << 20)
    f = fs.create("data", capacity=1 << 20)
    f.write(0, b"hello")          # synchronized atomic operation
    assert f.read(0, 5) == b"hello"
    f.close()

See :mod:`repro.core` for the paper's contribution, :mod:`repro.fs` for
the baseline file systems, :mod:`repro.workloads` for FIO / Mobibench /
TPC-C, and :mod:`repro.bench` for the per-figure harnesses.
"""

from repro.core import MgspConfig, MgspFilesystem, MgspTransaction, recover, verify_file
from repro.fs import Ext4, Ext4Dax, Libnvmmio, Nova, Splitfs
from repro.fsapi import FileSystem, OpenFlags
from repro.nvm import NvmDevice, OptaneTiming

__version__ = "1.0.0"

__all__ = [
    "Ext4",
    "MgspTransaction",
    "verify_file",
    "Ext4Dax",
    "FileSystem",
    "Libnvmmio",
    "MgspConfig",
    "MgspFilesystem",
    "Nova",
    "NvmDevice",
    "Splitfs",
    "OpenFlags",
    "OptaneTiming",
    "recover",
    "__version__",
]
