"""Benchmark-suite plumbing.

Every module regenerates one table or figure from the paper's evaluation
(see DESIGN.md's per-experiment index). The pytest-benchmark fixture
times the *simulation run* (wall clock); the scientifically meaningful
numbers are the simulated metrics, which are printed as a table (run
with ``-s``) and attached to ``benchmark.extra_info``.

Shape assertions check orderings and coarse ratio bands against the
paper, with tolerance for the simulated substrate (EXPERIMENTS.md
documents the expected deviations).
"""

from __future__ import annotations

import pytest

FS_SET = ("Ext4-DAX", "Libnvmmio", "NOVA", "MGSP")

#: file size for FIO-style runs (paper: 1 GB; scaled for simulation)
FSIZE = 16 << 20
NOPS = 300


def run_and_report(benchmark, fn, report=None):
    """Run *fn* once under pytest-benchmark and print its result table."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    if report is not None:
        report(result)
    return result


@pytest.fixture
def bench_table(benchmark, capsys):
    """Run the experiment once; print its rendered table."""

    def _run(fn):
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(result if isinstance(result, str) else result)
        return result

    return _run
