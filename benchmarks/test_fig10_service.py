"""Fig-10-style service scalability: tenants x shards.

The multi-tenant front-end's analogue of the paper's thread-scaling
figure: instead of threads against one file, the axis is tenant count
multiplexed over 1/2/4 MGSP shards. Expectations mirror Fig 10's
shape — per-shard throughput saturates with tenant count, and adding
shards scales the aggregate because shards are independent devices
(namespaces are hash-partitioned, so no cross-shard coupling exists).

Writes ``BENCH_service.json`` (the committed copy is the reference;
the CI ``service`` job regenerates it and uploads the artifact). The
export is seed-deterministic: a second run must be byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.service.harness import SweepSpec, run_cell, run_sweep

EXPORT_PATH = Path(__file__).parent.parent / "BENCH_service.json"

#: the CLI default the committed BENCH_service.json was produced with
SPEC = SweepSpec(ops_per_tenant=8)


def test_fig10_service_scalability(bench_table):
    result = bench_table(lambda: run_sweep(SPEC))
    rows = {(r["tenants"], r["shards"]): r for r in result.rows}

    def mbs(tenants, shards):
        return rows[(tenants, shards)]["throughput_mb_s"]

    # Shard scaling at saturation (1000 tenants): 4 shards beat 1 shard
    # by at least 2.5x; 2 shards beat 1 by at least 1.5x.
    assert mbs(1000, 4) > 2.5 * mbs(1000, 1)
    assert mbs(1000, 2) > 1.5 * mbs(1000, 1)
    # Per-shard saturation: going 256 -> 1000 tenants moves aggregate
    # throughput by < 25% at any shard count (the Fig-10 plateau).
    for shards in (1, 2, 4):
        assert abs(mbs(1000, shards) - mbs(256, shards)) < 0.25 * mbs(256, shards)
    # Everything admitted made it through, and latency stayed sane.
    for row in result.rows:
        assert row["admitted"] == row["tenants"] * SPEC.ops_per_tenant
        assert 0 < row["p50_ns"] <= row["p99_ns"]
        assert all(0.0 <= u <= 1.0 for u in row["shard_utilization"])

    EXPORT_PATH.write_text(result.to_json())


def test_service_export_deterministic():
    """Two seeded runs of one cell produce byte-identical JSON rows."""
    first = json.dumps(run_cell(SPEC, 64, 2), sort_keys=True)
    second = json.dumps(run_cell(SPEC, 64, 2), sort_keys=True)
    assert first == second
