"""Figure 11: SQLite-style Mobibench transactions (WAL and OFF modes).

Paper: in WAL mode MGSP improves insert/update/delete by 18.3/7.9/32.5%
over Ext4-DAX and 25.7/9.2/20.6% over Libnvmmio; in OFF mode by
~30/30/27.6% over Ext4-DAX (which cannot even provide the consistency
OFF mode needs).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FS_SET
from repro.bench.harness import Table
from repro.bench.registry import make_fs
from repro.workloads.mobibench import run_mobibench

MODES = ("insert", "update", "delete")
TXNS = 150


def run_matrix(journal_mode: str) -> Table:
    table = Table(title=f"Fig 11 — Mobibench tx/s (SQLite journal={journal_mode})")
    for name in FS_SET:
        for mode in MODES:
            fs = make_fs(name, device_size=96 << 20)
            result = run_mobibench(fs, mode=mode, journal_mode=journal_mode, transactions=TXNS)
            table.set(name, mode, result.tx_per_sec)
    return table


@pytest.mark.parametrize("journal_mode", ["wal", "off"])
def test_fig11(bench_table, journal_mode):
    table = bench_table(lambda: run_matrix(journal_mode))
    v = table.value
    for mode in MODES:
        mgsp = v("MGSP", mode)
        # MGSP ahead of Ext4-DAX by a 5-60% margin (paper: 8-33%).
        gain_dax = mgsp / v("Ext4-DAX", mode) - 1
        assert 0.05 <= gain_dax <= 0.60, (journal_mode, mode, gain_dax)
        # MGSP ahead of Libnvmmio.
        assert mgsp > v("Libnvmmio", mode)
        # NOVA sits between MGSP and Ext4-DAX.
        assert v("Ext4-DAX", mode) < v("NOVA", mode) <= mgsp * 1.05
