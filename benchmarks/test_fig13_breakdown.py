"""Figure 13: per-technique contribution to write performance.

Paper examples (speedup over Ext4-DAX): 1 KB/1 thread -> 4.06x mainly
from multi-granularity shadow logging; 4 KB/4 threads -> 3.42x mainly
from fine-grained locking; 2 KB/2 threads -> 2.98x from both.

We stack the techniques cumulatively:
  base        - redo logging, file lock, no optimizations
  +shadow     - shadow logging (no double write)
  +multigran  - multi-granularity + fine-grained logging
  +finelock   - MGL fine-grained locking
  +opts       - min search tree, lazy intention locks, greedy locking
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Table, run_one
from repro.core.config import MgspConfig
from repro.util import fmt_size
from repro.workloads.fio import FioJob

CASES = ((1024, 1), (2048, 2), (4096, 4))

STACK = (
    ("base", MgspConfig.baseline()),
    ("+shadow", MgspConfig.baseline().with_shadow_logging()),
    ("+multigran", MgspConfig.baseline().with_shadow_logging().with_multi_granularity()),
    (
        "+finelock",
        MgspConfig.baseline().with_shadow_logging().with_multi_granularity().with_fine_locking(),
    ),
    (
        "+opts",
        MgspConfig.baseline()
        .with_shadow_logging()
        .with_multi_granularity()
        .with_fine_locking()
        .with_optimizations(),
    ),
)


def run_experiment() -> Table:
    table = Table(title="Fig 13 — technique stack, speedup over Ext4-DAX")
    for bs, threads in CASES:
        col = f"{fmt_size(bs)}/{threads}t"
        job = FioJob(op="write", bs=bs, fsize=16 << 20, fsync=1, threads=threads, nops=200 * threads)
        base = run_one("Ext4-DAX", job).throughput_mb_s
        for label, config in STACK:
            mbps = run_one("MGSP", job, mgsp_config=config).throughput_mb_s
            table.set(label, col, f"{mbps / base:.2f}")
    return table


def test_fig13(bench_table):
    table = bench_table(run_experiment)
    v = table.value
    for bs, threads in CASES:
        col = f"{fmt_size(bs)}/{threads}t"
        # Shadow logging removes the double write: the largest single jump.
        assert v("+shadow", col) > 1.3 * v("base", col), col
        # Every added technique helps (or at worst is neutral).
        assert v("+multigran", col) >= v("+shadow", col) * 0.97
        # Fine-grained locking alone can cost ~3-5% single-threaded (more
        # lock ops); the later optimizations win it back (lazy intention
        # locks, greedy locking) — hence the looser bound here.
        assert v("+finelock", col) >= v("+multigran", col) * 0.93
        assert v("+opts", col) >= v("+finelock", col) * 0.97
        # Full stack lands in the paper's 2.9-4.2x neighborhood.
        assert 2.2 <= v("+opts", col) <= 5.0, (col, v("+opts", col))

    # Fine-grained locking matters most with threads (paper's 4K/4t case).
    lock_gain_4t = v("+finelock", "4K/4t") / v("+multigran", "4K/4t")
    lock_gain_1t = v("+finelock", "1K/1t") / v("+multigran", "1K/1t")
    assert lock_gain_4t > lock_gain_1t
