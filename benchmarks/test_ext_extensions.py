"""Extension benchmarks beyond the paper's evaluation.

1. **YCSB** — key-value traffic the paper did not measure; checks that
   MGSP's advantage tracks the write intensity of the mix.
2. **FS-level transactions** — the paper's §IV-D future work,
   implemented in :mod:`repro.core.txn`: a database-like multi-write
   commit through MGSP transactions vs the same group as WAL commits.
"""

from __future__ import annotations

import random

from benchmarks.conftest import FS_SET
from repro.bench.harness import Table
from repro.bench.registry import make_fs
from repro.core import MgspConfig, MgspFilesystem
from repro.workloads.ycsb import run_ycsb


def run_ycsb_matrix() -> Table:
    table = Table(title="Extension — YCSB ops/s (WAL journal)")
    for name in ("Ext4-DAX", "NOVA", "MGSP"):
        for workload in ("A", "B", "C", "F"):
            fs = make_fs(name, device_size=96 << 20)
            result = run_ycsb(fs, workload=workload, records=600, operations=150)
            table.set(name, workload, result.ops_per_sec)
    return table


def test_ycsb_extension(bench_table):
    table = bench_table(run_ycsb_matrix)
    v = table.value
    # Update-heavy mixes: MGSP ahead of Ext4-DAX.
    for workload in ("A", "F"):
        assert v("MGSP", workload) > v("Ext4-DAX", workload)
    # Read-only: everyone within ~25% (page-cache bound).
    assert 0.75 <= v("MGSP", "C") / v("Ext4-DAX", "C") <= 1.35
    # The MGSP advantage grows with write share (A vs B).
    gain_a = v("MGSP", "A") / v("Ext4-DAX", "A")
    gain_b = v("MGSP", "B") / v("Ext4-DAX", "B")
    assert gain_a > gain_b


GROUP = 8  # writes per atomic group
GROUPS = 60


def run_txn_experiment() -> Table:
    """Commit GROUPS groups of GROUP scattered 512-byte writes, each
    group failure-atomic, three ways."""
    table = Table(title="Extension — atomic write groups, virtual us per group")
    rng_offsets = [
        [random.Random(g * 31 + i).randrange(0, (1 << 20) - 4096) for i in range(GROUP)]
        for g in range(GROUPS)
    ]

    def offsets(g):
        return rng_offsets[g]

    # (a) MGSP FS-level transactions (the future-work mechanism).
    fs = MgspFilesystem(device_size=96 << 20, config=MgspConfig(degree=16))
    f = fs.create("data", capacity=2 << 20)
    fs.take_traces()
    for g in range(GROUPS):
        with fs.begin_transaction(f) as txn:
            for off in offsets(g):
                txn.write(off, b"t" * 512)
    elapsed = sum(t.duration_ns(fs.timing.lock_ns) for t in fs.take_traces())
    table.set("MGSP txn", "us/group", elapsed / GROUPS / 1e3)

    # (b) MGSP plain writes (atomic per write, not per group).
    fs = MgspFilesystem(device_size=96 << 20, config=MgspConfig(degree=16))
    f = fs.create("data", capacity=2 << 20)
    fs.take_traces()
    for g in range(GROUPS):
        for off in offsets(g):
            f.write(off, b"t" * 512)
    elapsed = sum(t.duration_ns(fs.timing.lock_ns) for t in fs.take_traces())
    table.set("MGSP per-write", "us/group", elapsed / GROUPS / 1e3)

    # (c) The classic alternative: a WAL on Ext4-DAX (double write).
    from repro.db.wal import WriteAheadLog

    dax = make_fs("Ext4-DAX", device_size=96 << 20)
    data = dax.create("data", capacity=2 << 20)
    wal = WriteAheadLog(dax.create("wal", capacity=8 << 20))
    dax.take_traces()
    for g in range(GROUPS):
        pages = {}
        for off in offsets(g):
            page_no = off // 4096
            pages[page_no] = b"t" * 4096
        wal.commit(pages)
        wal.checkpoint(data)
    elapsed = sum(t.duration_ns(dax.timing.lock_ns) for t in dax.take_traces())
    table.set("Ext4-DAX WAL", "us/group", elapsed / GROUPS / 1e3)
    return table


def run_splitfs_matrix():
    from repro.util import fmt_size
    from repro.workloads.fio import FioJob

    table = Table(title="Extension — SplitFS(strict) vs MGSP, write MB/s (fsync/op)")
    for bs in (1024, 4096, 16384):
        job = FioJob(op="write", bs=bs, fsize=16 << 20, fsync=1, nops=250)
        for name in ("SplitFS", "MGSP"):
            from repro.bench.harness import run_one

            table.set(name, fmt_size(bs), run_one(name, job).throughput_mb_s)
    return table


def test_splitfs_extension(bench_table):
    """§II-C: SplitFS strict mode pays CoW for small writes and relink
    churn per sync; MGSP avoids both."""
    table = bench_table(run_splitfs_matrix)
    v = table.value
    for col in ("1K", "4K", "16K"):
        assert v("MGSP", col) > v("SplitFS", col), col
    # The gap is largest for sub-block writes (strict-mode CoW).
    gap_fine = v("MGSP", "1K") / v("SplitFS", "1K")
    gap_coarse = v("MGSP", "16K") / v("SplitFS", "16K")
    assert gap_fine > gap_coarse


def run_filebench_matrix():
    from repro.workloads.filebench import run_filebench

    table = Table(title="Extension — Filebench personalities, ops/s")
    for name in ("Ext4-DAX", "NOVA", "MGSP"):
        for personality in ("fileserver", "varmail"):
            fs = make_fs(name, device_size=96 << 20)
            result = run_filebench(fs, personality=personality, operations=150)
            table.set(name, personality, result.ops_per_sec)
    return table


def test_filebench_extension(bench_table):
    table = bench_table(run_filebench_matrix)
    v = table.value
    # fsync-heavy varmail: MGSP beats Ext4-DAX (cheap sync).
    assert v("MGSP", "varmail") > v("Ext4-DAX", "varmail")
    # sync-free fileserver: the always-synchronized guarantee costs MGSP.
    assert v("Ext4-DAX", "fileserver") > 0


def test_txn_extension(bench_table):
    table = bench_table(run_txn_experiment)
    v = table.value
    # Group atomicity via MGSP txns costs less than a WAL on Ext4-DAX.
    assert v("MGSP txn", "us/group") < v("Ext4-DAX WAL", "us/group")
    # And not much more than plain per-write atomicity.
    assert v("MGSP txn", "us/group") < 2.0 * v("MGSP per-write", "us/group")
