"""Figure 8: sequential/random read/write across block sizes.

Paper bands (MGSP vs baselines, per-op fsync):

- seq write fine (<4K):  vs DAX 3.31-4.21x, vs Lib 3.43-4.53x, vs NOVA 1.69-2.06x
- seq write coarse (>=4K): vs DAX 1.1-2.52x, vs Lib 3.23-4.3x, vs NOVA 1.01-1.43x
- rand write fine:  vs DAX 2.52-2.97x, vs Lib 2.56-3.16x
- rand write coarse: vs DAX 1.11-2.33x, vs Lib 2.72-3.46x
- seq read: vs DAX 1.89-3.07x fine / 1.26-1.33x coarse
- rand read: vs DAX 1.88-2.19x fine / 1.28-1.71x coarse

The harness asserts orderings and loose bands (see EXPERIMENTS.md for
measured-vs-paper detail and documented deviations).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FSIZE, FS_SET, NOPS
from repro.bench.harness import Table, run_one
from repro.util import fmt_size
from repro.workloads.fio import FioJob

FINE = (512, 1024, 2048)
COARSE = (4096, 16384, 65536)
SIZES = FINE + COARSE


def run_matrix(op: str) -> Table:
    table = Table(title=f"Fig 8 — {op} MB/s by block size (fsync per op)")
    for bs in SIZES:
        job = FioJob(op=op, bs=bs, fsize=FSIZE, fsync=1, nops=NOPS)
        for name in FS_SET:
            table.set(name, fmt_size(bs), run_one(name, job).throughput_mb_s)
    return table


def ratios(table: Table, base: str):
    return {
        col: table.value("MGSP", col) / table.value(base, col) for col in table.columns
    }


@pytest.mark.parametrize("op", ["write", "randwrite"])
def test_fig08_writes(bench_table, op):
    table = bench_table(lambda: run_matrix(op))
    vs_dax = ratios(table, "Ext4-DAX")
    vs_lib = ratios(table, "Libnvmmio")
    vs_nova = ratios(table, "NOVA")

    for bs in FINE:
        col = fmt_size(bs)
        assert 2.4 <= vs_dax[col] <= 4.8, (op, col, vs_dax[col])
        assert 2.8 <= vs_lib[col] <= 5.2, (op, col, vs_lib[col])
        assert 1.3 <= vs_nova[col] <= 2.6, (op, col, vs_nova[col])
    for bs in COARSE:
        col = fmt_size(bs)
        assert 0.85 <= vs_dax[col] <= 3.2, (op, col, vs_dax[col])
        assert 2.6 <= vs_lib[col] <= 5.0, (op, col, vs_lib[col])
        assert 0.85 <= vs_nova[col] <= 1.6, (op, col, vs_nova[col])
    # Fine-grained advantage shrinks as block size grows (write-amp story).
    assert vs_dax[fmt_size(512)] > vs_dax[fmt_size(16384)] > vs_dax[fmt_size(65536)]


@pytest.mark.parametrize("op", ["read", "randread"])
def test_fig08_reads(bench_table, op):
    table = bench_table(lambda: run_matrix(op))
    vs_dax = ratios(table, "Ext4-DAX")
    vs_lib = ratios(table, "Libnvmmio")

    for bs in FINE:
        col = fmt_size(bs)
        assert 1.6 <= vs_dax[col] <= 3.2, (op, col, vs_dax[col])
        assert 0.9 <= vs_lib[col] <= 1.3, (op, col, vs_lib[col])
    for bs in COARSE:
        col = fmt_size(bs)
        assert 1.0 <= vs_dax[col] <= 2.0, (op, col, vs_dax[col])
    # Reads gain less than writes: MGSP is not designed for reads.
    assert vs_dax[fmt_size(1024)] < 3.5
