"""Table II: write amplification of random writes.

Paper (device bytes / API bytes):

====  =========  =============  ==================  =====
 bs   Libnvmmio  Libnvmmio-100  Libnvmmio-wo-sync   MGSP
====  =========  =============  ==================  =====
 1K     2.048        1.997            1.061         1.088
 4K     2.013        1.967            1.012         1.021
 16K    2.002        1.956            1.001         1.014
====  =========  =============  ==================  =====
"""

from __future__ import annotations

from benchmarks.conftest import FSIZE, NOPS
from repro.bench.harness import Table, run_one
from repro.util import fmt_size
from repro.workloads.fio import FioJob

CONFIGS = (
    ("Libnvmmio", 1, "Libnvmmio"),
    ("Libnvmmio", 100, "Libnvmmio-100"),
    ("Libnvmmio", 0, "Libnvmmio-wo-sync"),
    ("MGSP", 1, "MGSP"),
)
SIZES = (1024, 4096, 16384)

PAPER = {
    ("Libnvmmio", "1K"): 2.048, ("Libnvmmio", "4K"): 2.013, ("Libnvmmio", "16K"): 2.002,
    ("Libnvmmio-100", "1K"): 1.997, ("Libnvmmio-100", "4K"): 1.967, ("Libnvmmio-100", "16K"): 1.956,
    ("Libnvmmio-wo-sync", "1K"): 1.061, ("Libnvmmio-wo-sync", "4K"): 1.012, ("Libnvmmio-wo-sync", "16K"): 1.001,
    ("MGSP", "1K"): 1.088, ("MGSP", "4K"): 1.021, ("MGSP", "16K"): 1.014,
}


def run_experiment() -> Table:
    table = Table(title="Table II — random-write amplification (device/API bytes)")
    for bs in SIZES:
        for fs_name, fsync, row in CONFIGS:
            job = FioJob(op="randwrite", bs=bs, fsize=FSIZE, fsync=fsync, nops=NOPS)
            result = run_one(fs_name, job)
            table.set(row, fmt_size(bs), f"{result.write_amplification:.3f}")
    return table


def test_tab02(bench_table):
    table = bench_table(run_experiment)
    for (row, col), paper in PAPER.items():
        measured = table.value(row, col)
        # Within 6% of the paper's measured ratio — the closest-matching
        # number in the whole reproduction, since amplification is pure
        # byte accounting, independent of the timing model.
        assert abs(measured - paper) / paper < 0.06, (row, col, measured, paper)
