"""Wall-clock hot-path microbenchmark (not a paper figure).

Unlike every other benchmark in this suite — which reports *simulated*
metrics on the virtual clock — this one measures how many writes per
second the Python simulation itself sustains. It gates the hot-path
write engine (leaf fast path + scatter-gather device batching): the
results are exported to ``BENCH_hotpath.json`` and compared against the
committed pre-optimization baseline in
``benchmarks/baselines/hotpath_baseline.json``.

Harness (identical to the one that produced the baseline): a fresh MGSP
filesystem with trace recording nulled out, a 16 MB file drained to
durable after creation, fixed payloads and a seeded offset stream. Each
case runs three timed passes over the same offset list and reports the
best one — wall-clock throughput on a shared machine is noisy downward
only, so best-of-N measures the code rather than scheduler luck. The
committed baseline is the per-key maximum over three independent runs
of this harness against the pre-optimization tree (the strictest bar
the old code could clear).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.core import MgspConfig, MgspFilesystem
from repro.sim.trace import NullRecorder

FSIZE = 16 << 20
CASES = ((64, 3000), (4096, 2000), (2 << 20, 100))  # (block size, ops)
PASSES = 3  # timed passes per case; best one is reported

BASELINE_PATH = Path(__file__).parent / "baselines" / "hotpath_baseline.json"
EXPORT_PATH = Path(__file__).parent.parent / "BENCH_hotpath.json"


def _bench(bs: int, seq: bool, nops: int, fast_path: bool) -> float:
    config = MgspConfig(leaf_fast_path=fast_path)
    fs = MgspFilesystem(device_size=max(64 << 20, FSIZE * 4), config=config)
    fs.recorder = NullRecorder()
    fs.device.tracer = None
    handle = fs.create("b", capacity=FSIZE)
    fs.device.drain()
    blocks = FSIZE // bs
    if seq:
        offs = [(i % blocks) * bs for i in range(nops)]
    else:
        rng = random.Random(7)
        offs = [rng.randrange(blocks) * bs for _ in range(nops)]
    payload = b"\xab" * bs
    best = float("inf")
    for _ in range(PASSES):
        t0 = time.perf_counter()
        for off in offs:
            handle.write(off, payload)
        best = min(best, time.perf_counter() - t0)
    return nops / best


def run_experiment() -> dict:
    from repro.bench.provenance import provenance

    out = {"fast": {}, "slow": {}}
    for bs, nops in CASES:
        for seq in (True, False):
            key = f"{'seq' if seq else 'rand'}_{bs}"
            out["fast"][key] = round(_bench(bs, seq, nops, fast_path=True), 1)
            out["slow"][key] = round(_bench(bs, seq, nops, fast_path=False), 1)
    out["baseline"] = json.loads(BASELINE_PATH.read_text())
    # wall-clock runs null their recorders, so telemetry is off by design
    out["provenance"] = provenance(
        seed=7,
        config={"fsize": FSIZE, "cases": list(CASES), "passes": PASSES},
        conservation="disabled",
    )
    return out


@pytest.mark.benchmark(group="wallclock")
def test_wallclock_hotpath(bench_table):
    results = bench_table(run_experiment)
    EXPORT_PATH.write_text(json.dumps(results, indent=1) + "\n")

    fast, slow, base = results["fast"], results["slow"], results["baseline"]

    # Acceptance gate: fast path + batching >= 2x pre-PR wall clock on
    # 64 B random writes (the descent-bound case).
    assert fast["rand_64"] >= 2.0 * base["rand_64"], (
        f"64B random writes {fast['rand_64']:.0f}/s "
        f"< 2x pre-PR baseline {base['rand_64']:.0f}/s"
    )
    # Every shape must at least hold the pre-PR line (generous margin
    # for machine noise — the CI smoke job uses a 3x band for the same
    # reason).
    for key, ref in base.items():
        assert fast[key] > ref / 3.0, f"{key}: {fast[key]:.0f}/s vs baseline {ref:.0f}/s"
    # The fast path itself must not lose to the slow path on its home
    # turf (leaf-contained writes).
    assert fast["rand_64"] > slow["rand_64"]
    assert fast["rand_4096"] > 0.8 * slow["rand_4096"]
