"""Figure 9: 4 KB mixed read/write, normalized to Ext4-DAX.

Paper: Libnvmmio gains ~50% at a 1:9 write:read mix but falls below
Ext4-DAX once writes reach 50%; NOVA holds +58.7~92.2%; MGSP holds
+113.1~141.3% across ratios.
"""

from __future__ import annotations

from benchmarks.conftest import FSIZE, FS_SET, NOPS
from repro.bench.harness import Table, run_one
from repro.workloads.fio import FioJob

RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)


def run_experiment() -> Table:
    table = Table(title="Fig 9 — 4KB mixed rw, throughput normalized to Ext4-DAX")
    for ratio in RATIOS:
        col = f"{int(ratio * 100)}%w"
        base = None
        for name in FS_SET:
            job = FioJob(
                op="randrw", bs=4096, fsize=FSIZE, fsync=1, write_ratio=ratio, nops=NOPS
            )
            mbps = run_one(name, job).throughput_mb_s
            if name == "Ext4-DAX":
                base = mbps
            table.set(name, col, mbps / base)
    return table


def test_fig09(bench_table):
    table = bench_table(run_experiment)
    v = table.value

    for ratio in RATIOS:
        col = f"{int(ratio * 100)}%w"
        # MGSP is the clear winner at every mix.
        assert v("MGSP", col) > v("NOVA", col) > 1.0
        assert v("MGSP", col) > 1.6, (col, v("MGSP", col))
    # Libnvmmio: beats DAX when read-dominant, loses once write-heavy.
    assert v("Libnvmmio", "10%w") > 1.0
    assert v("Libnvmmio", "70%w") < 1.0
    assert v("Libnvmmio", "90%w") < 1.0
    # NOVA holds a solid stable band.
    for ratio in RATIOS:
        assert 1.2 <= v("NOVA", f"{int(ratio * 100)}%w") <= 2.6
