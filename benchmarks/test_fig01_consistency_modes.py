"""Figure 1: 4 KB write performance under consistency/sync requirements.

Paper: Ext4 wb/ordered/journal are fast without sync (page cache) but
collapse with per-op fsync; Ext4-DAX drops when synced; Libnvmmio is
fast unsynced but collapses with sync; MGSP keeps its performance since
every operation is already synchronized and atomic.
"""

from __future__ import annotations

from benchmarks.conftest import FSIZE, NOPS
from repro.bench.harness import Table, run_one
from repro.workloads.fio import FioJob

SYSTEMS = ("Ext4-wb", "Ext4-ordered", "Ext4-journal", "Ext4-DAX", "Libnvmmio", "MGSP")


def run_experiment() -> Table:
    table = Table(title="Fig 1 — 4KB write MB/s (no sync vs fsync per op)")
    for name in SYSTEMS:
        for label, fsync in (("no-sync", 0), ("sync", 1)):
            job = FioJob(op="write", bs=4096, fsize=FSIZE, fsync=fsync, nops=NOPS)
            table.set(name, label, run_one(name, job).throughput_mb_s)
    return table


def test_fig01(bench_table):
    table = bench_table(run_experiment)

    def v(row, col):
        return table.value(row, col)

    # Page-cache Ext4 is fast unsynced, collapses with sync.
    for mode in ("Ext4-wb", "Ext4-ordered", "Ext4-journal"):
        assert v(mode, "no-sync") > 3 * v(mode, "sync")
    # Libnvmmio collapses under per-op sync.
    assert v("Libnvmmio", "no-sync") > 3 * v("Libnvmmio", "sync")
    # Ext4-DAX drops when synced.
    assert v("Ext4-DAX", "no-sync") > 1.5 * v("Ext4-DAX", "sync")
    # MGSP barely moves (each op is already a synchronized atomic op).
    assert v("MGSP", "sync") > 0.75 * v("MGSP", "no-sync")
    # With sync, MGSP beats everything.
    for name in SYSTEMS[:-1]:
        assert v("MGSP", "sync") > v(name, "sync")
