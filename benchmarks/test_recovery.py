"""§III-D recovery experiment.

Paper: crashing a random-write workload and recovering a 1 GB file takes
186 ms, of which 153 ms writes 189 MB of logs back (48 K entries); the
worst case stays under 1 s because the replayed bytes never exceed the
file size.

We run the same experiment on a scaled 64 MB file and check that the
virtual recovery time extrapolated to 1 GB stays under the paper's 1 s
bound, and that the written-back bytes never exceed the file size.
"""

from __future__ import annotations

import random

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice

FILE_SIZE = 64 << 20
PAPER_FILE_SIZE = 1 << 30


def run_experiment():
    config = MgspConfig()
    fs = MgspFilesystem(device_size=256 << 20, config=config)
    f = fs.create("big.dat", capacity=FILE_SIZE)
    fs.device.buffer.store(f.inode.base, b"\x11" * FILE_SIZE)
    fs.device.buffer.drain()
    fs.volume.set_size(f.inode, FILE_SIZE)

    rng = random.Random(17)
    fs.device.crash_plan = CrashPlan(crash_after=60_000)
    writes = 0
    try:
        while True:
            off = rng.randrange(0, FILE_SIZE // 4096) * 4096
            f.write(off, b"\x22" * 4096)
            writes += 1
    except CrashRequested:
        pass

    image = fs.device.crash_image(rng=random.Random(3))
    device = NvmDevice.from_image(bytes(image))
    fs2, stats = recover(device, config=config)
    return {
        "writes_before_crash": writes,
        "entries_replayed": stats.entries_replayed,
        "log_bytes_written_back": stats.log_bytes_written_back,
        "recovery_ms": stats.elapsed_ns / 1e6,
        "extrapolated_1g_ms": stats.elapsed_ns / 1e6 * (PAPER_FILE_SIZE / FILE_SIZE)
        * (stats.log_bytes_written_back / max(1, FILE_SIZE)),
    }


def test_recovery_time(bench_table):
    stats = bench_table(run_experiment)
    # Logs written back never exceed the file size (paper's bound).
    assert stats["log_bytes_written_back"] <= FILE_SIZE
    # Virtual recovery of the scaled file is a few-hundred-ms affair at
    # most; the paper's 1 GB bound of ~1 s must hold when scaled.
    per_byte_ms = stats["recovery_ms"] / max(1, stats["log_bytes_written_back"])
    worst_case_1g_ms = per_byte_ms * PAPER_FILE_SIZE
    assert worst_case_1g_ms < 1000, worst_case_1g_ms
    # The interrupted operation (if any) was rolled forward.
    assert stats["entries_replayed"] <= 1
