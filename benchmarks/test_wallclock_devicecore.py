"""Wall-clock gate for the array-native device core (ISSUE 7).

Companion to ``test_wallclock_hotpath.py``, with the opposite emphasis:
the hot-path suite gates the small-write engine (leaf fast path +
scatter-gather batching); this one gates the *bulk* write path that the
array-native rebuild targets — bitmap dirty-tracking, memoryview copy
pipeline, zero-copy coarse planning. The reference numbers in
``benchmarks/baselines/devicecore_reference.json`` are the fast-config
results the pre-rebuild tree committed to ``BENCH_hotpath.json``; the
acceptance bar is **2x on 2 MB blocks** with no small-block regression.

Identical harness to the hotpath suite (same file size, cases, seeds,
pass count), so the two JSON exports are directly comparable.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from repro.core import MgspConfig, MgspFilesystem
from repro.sim.trace import NullRecorder

FSIZE = 16 << 20
CASES = ((64, 3000), (4096, 2000), (2 << 20, 100))  # (block size, ops)
PASSES = 3  # timed passes per case; best one is reported
LARGE_KEYS = ("seq_2097152", "rand_2097152")

REFERENCE_PATH = Path(__file__).parent / "baselines" / "devicecore_reference.json"
EXPORT_PATH = Path(__file__).parent.parent / "BENCH_devicecore.json"


def _bench(bs: int, seq: bool, nops: int) -> float:
    config = MgspConfig(leaf_fast_path=True)
    fs = MgspFilesystem(device_size=max(64 << 20, FSIZE * 4), config=config)
    fs.recorder = NullRecorder()
    fs.device.tracer = None
    handle = fs.create("b", capacity=FSIZE)
    fs.device.drain()
    blocks = FSIZE // bs
    if seq:
        offs = [(i % blocks) * bs for i in range(nops)]
    else:
        rng = random.Random(7)
        offs = [rng.randrange(blocks) * bs for _ in range(nops)]
    payload = b"\xab" * bs
    best = float("inf")
    for _ in range(PASSES):
        t0 = time.perf_counter()
        for off in offs:
            handle.write(off, payload)
        best = min(best, time.perf_counter() - t0)
    return nops / best


def run_experiment() -> dict:
    reference = json.loads(REFERENCE_PATH.read_text())
    results = {}
    for bs, nops in CASES:
        for seq in (True, False):
            key = f"{'seq' if seq else 'rand'}_{bs}"
            results[key] = round(_bench(bs, seq, nops), 1)
    from repro.bench.provenance import provenance

    return {
        "results": results,
        "reference": reference,
        "speedup": {
            key: round(results[key] / ref, 2) for key, ref in reference.items()
        },
        # wall-clock runs null their recorders, so telemetry is off by design
        "provenance": provenance(
            seed=7,
            config={"fsize": FSIZE, "cases": list(CASES), "passes": PASSES},
            conservation="disabled",
        ),
    }


@pytest.mark.benchmark(group="wallclock")
def test_wallclock_devicecore(bench_table):
    out = bench_table(run_experiment)
    EXPORT_PATH.write_text(json.dumps(out, indent=1) + "\n")

    results, reference = out["results"], out["reference"]

    # Acceptance gate (ISSUE 7): the array-native core must at least
    # double 2 MB block throughput over the pre-rebuild fast config.
    for key in LARGE_KEYS:
        assert results[key] >= 2.0 * reference[key], (
            f"{key}: {results[key]:.0f}/s < 2x pre-rebuild "
            f"reference {reference[key]:.0f}/s"
        )
    # Small/medium blocks must hold the line. The committed export is
    # checked at the strict 10% band; at run time allow the same 3x
    # machine-noise band the hotpath smoke uses, so a loaded CI box
    # doesn't flake the suite.
    for key, ref in reference.items():
        if key in LARGE_KEYS:
            continue
        assert results[key] > ref / 3.0, (
            f"{key}: {results[key]:.0f}/s vs reference {ref:.0f}/s"
        )
