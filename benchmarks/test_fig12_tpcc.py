"""Figure 12: TPC-C on the embedded database (WAL and OFF modes).

Paper: in WAL mode MGSP performs similarly to Ext4-DAX and Libnvmmio;
in OFF mode MGSP improves by 36.5% over Ext4-DAX, 41.3% over Libnvmmio
and 14.6% over NOVA. Our SQL CPU model compresses the OFF-mode
magnitudes (see EXPERIMENTS.md) but preserves the ordering
MGSP >= NOVA > Ext4-DAX > Libnvmmio.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FS_SET
from repro.bench.harness import Table
from repro.bench.registry import make_fs
from repro.workloads.tpcc import run_tpcc

TXNS = 120


def run_matrix(journal_mode: str) -> Table:
    table = Table(title=f"Fig 12 — TPC-C transactions/min (journal={journal_mode})")
    for name in FS_SET:
        fs = make_fs(name, device_size=192 << 20)
        result = run_tpcc(fs, journal_mode=journal_mode, transactions=TXNS)
        table.set(name, "tpm", result.tpm)
    return table


def test_fig12_wal_similar(bench_table):
    table = bench_table(lambda: run_matrix("wal"))
    v = table.value
    # WAL mode: MGSP ~ Ext4-DAX ~ NOVA ("performs similarly").
    assert 0.95 <= v("MGSP", "tpm") / v("Ext4-DAX", "tpm") <= 1.25
    assert 0.95 <= v("MGSP", "tpm") / v("NOVA", "tpm") <= 1.25
    # Libnvmmio trails (per-op sync penalty on WAL writes).
    assert v("MGSP", "tpm") > v("Libnvmmio", "tpm")


def test_fig12_off_mgsp_wins(bench_table):
    table = bench_table(lambda: run_matrix("off"))
    v = table.value
    mgsp = v("MGSP", "tpm")
    # Ordering matches the paper: MGSP >= NOVA > Ext4-DAX > Libnvmmio.
    assert mgsp >= v("NOVA", "tpm") * 0.98
    assert v("NOVA", "tpm") > v("Ext4-DAX", "tpm")
    assert v("Ext4-DAX", "tpm") > v("Libnvmmio", "tpm")
    # MGSP ahead of Ext4-DAX (paper +36.5%; compressed here).
    assert mgsp / v("Ext4-DAX", "tpm") - 1 >= 0.03
    # MGSP ahead of Libnvmmio by a wide margin.
    assert mgsp / v("Libnvmmio", "tpm") - 1 >= 0.15
