"""Figure 10: multi-threaded writes to one shared file.

Paper: Ext4-DAX and NOVA show limited scalability; Libnvmmio barely
scales (foreground/background conflict + epoch serialization); MGSP
scales best at 1K/4K via MGL and saturates on hardware at 16K, where
all systems converge.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FSIZE, FS_SET
from repro.bench.harness import Table, run_one
from repro.util import fmt_size
from repro.workloads.fio import FioJob

THREADS = (1, 2, 4, 8, 16)
OPS_PER_THREAD = 150


def run_matrix(op: str, bs: int) -> Table:
    table = Table(title=f"Fig 10 — {op} bs={fmt_size(bs)} MB/s by thread count")
    for name in FS_SET:
        for t in THREADS:
            job = FioJob(
                op=op, bs=bs, fsize=FSIZE, fsync=1, threads=t, nops=OPS_PER_THREAD * t
            )
            table.set(name, f"t{t}", run_one(name, job).throughput_mb_s)
    return table


@pytest.mark.parametrize("op", ["write", "randwrite"])
def test_fig10_fine_grained_1k(bench_table, op):
    table = bench_table(lambda: run_matrix(op, 1024))
    v = table.value
    # MGSP scales: 16 threads at least 3.5x its single thread.
    assert v("MGSP", "t16") > 3.5 * v("MGSP", "t1")
    # Ext4-DAX flattens (jbd2 serialization).
    assert v("Ext4-DAX", "t16") < 2.5 * v("Ext4-DAX", "t2")
    # Libnvmmio barely moves with threads.
    assert v("Libnvmmio", "t16") < 1.8 * v("Libnvmmio", "t1")
    # Paper band: MGSP/DAX between ~3.8x and ~8.5x somewhere in the sweep.
    ratio_range = [v("MGSP", f"t{t}") / v("Ext4-DAX", f"t{t}") for t in THREADS]
    assert max(ratio_range) >= 3.8
    assert min(ratio_range) >= 2.5
    # vs NOVA: 1.89~6.16x band (loose).
    nova_ratios = [v("MGSP", f"t{t}") / v("NOVA", f"t{t}") for t in THREADS]
    assert 1.4 <= min(nova_ratios) and max(nova_ratios) <= 7.0


@pytest.mark.parametrize("op", ["write", "randwrite"])
def test_fig10_4k(bench_table, op):
    table = bench_table(lambda: run_matrix(op, 4096))
    v = table.value
    ratios = [v("MGSP", f"t{t}") / v("Ext4-DAX", f"t{t}") for t in THREADS]
    # Paper: 2.56-3.76x (seq) / 2.13-3.51x (rand) across the sweep.
    assert 1.9 <= min(ratios) and max(ratios) <= 4.2, ratios


def test_fig10_16k_converges(bench_table):
    table = bench_table(lambda: run_matrix("write", 16384))
    v = table.value
    # Coarse-grained writes: hardware-limited; MGSP ~ Ext4-DAX ~ NOVA.
    for t in (8, 16):
        assert 0.8 <= v("MGSP", f"t{t}") / v("Ext4-DAX", f"t{t}") <= 1.6
        assert 0.8 <= v("MGSP", f"t{t}") / v("NOVA", f"t{t}") <= 1.6
