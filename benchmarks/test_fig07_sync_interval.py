"""Figure 7: 4 KB sequential write vs fsync frequency.

Paper: Libnvmmio's throughput drops sharply even at one fsync per 100
writes (checkpoint double-write); Ext4-DAX drops when every op is
synced; MGSP is essentially flat across sync intervals.

Extension (beyond the paper): an MGSP-async row runs the same sweep
with asynchronous write-back epochs enabled, draining logs every 256 KB
on a daemon flusher thread — log usage stays bounded online at a small
throughput cost (the drains contend for NVM channels).
"""

from __future__ import annotations

from benchmarks.conftest import FSIZE, NOPS
from repro.bench.harness import Table, run_one
from repro.core import MgspConfig
from repro.workloads.fio import FioJob

INTERVALS = ((1, "fsync-1"), (10, "fsync-10"), (100, "fsync-100"), (0, "no-sync"))
SYSTEMS = ("Ext4-DAX", "Libnvmmio", "NOVA", "MGSP")

ASYNC_CONFIG = MgspConfig(async_writeback=True, writeback_epoch_bytes=256 << 10)


def run_experiment() -> Table:
    table = Table(title="Fig 7 — 4KB seq write MB/s vs sync interval")
    for name in SYSTEMS:
        for interval, label in INTERVALS:
            job = FioJob(op="write", bs=4096, fsize=FSIZE, fsync=interval, nops=NOPS)
            table.set(name, label, run_one(name, job).throughput_mb_s)
    for interval, label in INTERVALS:
        job = FioJob(op="write", bs=4096, fsize=FSIZE, fsync=interval, nops=NOPS)
        result = run_one("MGSP", job, mgsp_config=ASYNC_CONFIG)
        table.set("MGSP-async", label, result.throughput_mb_s)
    return table


def test_fig07(bench_table):
    table = bench_table(run_experiment)
    v = table.value

    # MGSP nearly flat: <= ~25% spread between fsync-1 and no-sync.
    assert v("MGSP", "fsync-1") > 0.75 * v("MGSP", "no-sync")
    # Libnvmmio still far below its unsynced speed at fsync-100.
    assert v("Libnvmmio", "fsync-100") < 0.6 * v("Libnvmmio", "no-sync")
    # Ext4-DAX recovers most of its speed once syncs are rare.
    assert v("Ext4-DAX", "fsync-100") > 0.8 * v("Ext4-DAX", "no-sync")
    # NOVA only pays the fsync syscall itself (data is durable per op).
    assert v("NOVA", "fsync-1") > 0.65 * v("NOVA", "no-sync")
    # At per-op sync, MGSP wins.
    for name in ("Ext4-DAX", "Libnvmmio"):
        assert v("MGSP", "fsync-1") > 2 * v(name, "fsync-1")
    # Async epochs keep most of the synchronous throughput and stay flat.
    for _, label in INTERVALS:
        assert v("MGSP-async", label) > 0.5 * v("MGSP", label)
    assert v("MGSP-async", "fsync-1") > 0.7 * v("MGSP-async", "no-sync")


def test_fig07_async_epochs_drain():
    """The async flusher actually runs: epoch drains happen on the
    background stream and the write amplification reflects the copies."""
    from repro.bench.registry import device_size_for, make_fs
    from repro.workloads.fio import run_fio

    fs = make_fs("MGSP", device_size=device_size_for(FSIZE), mgsp_config=ASYNC_CONFIG)
    job = FioJob(op="write", bs=4096, fsize=FSIZE, fsync=1, nops=NOPS)
    result = run_fio(fs, job)
    expected = (NOPS * 4096) // (256 << 10)
    assert fs.flusher is not None
    assert fs.flusher.epochs >= max(1, expected - 1)
    assert fs.flusher.bytes_drained > 0
    assert result.throughput_mb_s > 0
