"""Figure 7: 4 KB sequential write vs fsync frequency.

Paper: Libnvmmio's throughput drops sharply even at one fsync per 100
writes (checkpoint double-write); Ext4-DAX drops when every op is
synced; MGSP is essentially flat across sync intervals.
"""

from __future__ import annotations

from benchmarks.conftest import FSIZE, NOPS
from repro.bench.harness import Table, run_one
from repro.workloads.fio import FioJob

INTERVALS = ((1, "fsync-1"), (10, "fsync-10"), (100, "fsync-100"), (0, "no-sync"))
SYSTEMS = ("Ext4-DAX", "Libnvmmio", "NOVA", "MGSP")


def run_experiment() -> Table:
    table = Table(title="Fig 7 — 4KB seq write MB/s vs sync interval")
    for name in SYSTEMS:
        for interval, label in INTERVALS:
            job = FioJob(op="write", bs=4096, fsize=FSIZE, fsync=interval, nops=NOPS)
            table.set(name, label, run_one(name, job).throughput_mb_s)
    return table


def test_fig07(bench_table):
    table = bench_table(run_experiment)
    v = table.value

    # MGSP nearly flat: <= ~25% spread between fsync-1 and no-sync.
    assert v("MGSP", "fsync-1") > 0.75 * v("MGSP", "no-sync")
    # Libnvmmio still far below its unsynced speed at fsync-100.
    assert v("Libnvmmio", "fsync-100") < 0.6 * v("Libnvmmio", "no-sync")
    # Ext4-DAX recovers most of its speed once syncs are rare.
    assert v("Ext4-DAX", "fsync-100") > 0.8 * v("Ext4-DAX", "no-sync")
    # NOVA only pays the fsync syscall itself (data is durable per op).
    assert v("NOVA", "fsync-1") > 0.65 * v("NOVA", "no-sync")
    # At per-op sync, MGSP wins.
    for name in ("Ext4-DAX", "Libnvmmio"):
        assert v("MGSP", "fsync-1") > 2 * v(name, "fsync-1")
