"""Telemetry must never change simulation results.

Disabled mode (the NullSink default) is the baseline by construction;
the real claim is that *attaching* telemetry is purely observational:
same device traffic, same crash images, same recovered state. And with
telemetry on, two identical runs must export identical snapshots (the
virtual clock is the only time source).
"""

from __future__ import annotations

import random

from repro.crashsweep.workloads import get_workload
from repro.obs.exporters import to_json
from repro.obs.harness import run_workload
from repro.obs.spans import NULL_SINK, attach_telemetry

WORKLOAD = "fio-randwrite"


def _run(instrument=None, config="sync"):
    return get_workload(WORKLOAD).run(config, instrument=instrument)


def test_default_obs_is_null_sink():
    outcome = _run()
    assert outcome.fs.obs is NULL_SINK
    assert outcome.fs.mgl.obs is NULL_SINK
    assert outcome.fs.metalog.obs is NULL_SINK


def test_telemetry_does_not_perturb_device_traffic():
    plain = _run()
    observed = _run(instrument=lambda fs: attach_telemetry(fs))
    assert vars(plain.fs.device.stats) == vars(observed.fs.device.stats)
    # The cost traces price identically too: total virtual work charged
    # on the foreground recorder matches to the last nanosecond.
    assert plain.fs.recorder.clock_ns == observed.fs.recorder.clock_ns


def test_telemetry_does_not_perturb_crash_images():
    plain = _run(config="async")
    observed = _run(instrument=lambda fs: attach_telemetry(fs), config="async")
    # Same eviction decisions (seeded rng) over the same pending state
    # -> byte-identical adversarial crash images.
    img_a = plain.fs.device.crash_image(rng=random.Random(1234))
    img_b = observed.fs.device.crash_image(rng=random.Random(1234))
    assert bytes(img_a) == bytes(img_b)
    # And the fully-persisted images match as well.
    plain.fs.device.drain()
    observed.fs.device.drain()
    assert bytes(plain.fs.device.buffer.durable) == bytes(observed.fs.device.buffer.durable)


def test_telemetry_on_runs_are_reproducible():
    a = run_workload("fio", "mgsp-sync")
    b = run_workload("fio", "mgsp-sync")
    assert to_json(a.telemetry) == to_json(b.telemetry)


def test_telemetry_on_async_runs_are_reproducible():
    a = run_workload("txn", "mgsp-async")
    b = run_workload("txn", "mgsp-async")
    assert to_json(a.telemetry) == to_json(b.telemetry)


def test_null_recorder_never_advances_clock():
    from repro.nvm.timing import TimingModel
    from repro.sim.trace import NullRecorder, TraceRecorder

    timing = TimingModel()
    rec = TraceRecorder(timing)
    rec.enabled = False
    rec.begin_op("noop")
    rec.compute(500.0)
    assert rec.clock_ns == 0.0  # disabled recorders price nothing
    assert NullRecorder().clock_ns == 0.0
