"""Violation corpus self-test: every rule fires on its program and
stays silent on its conforming twin."""

from __future__ import annotations

import os

import pytest

from repro.analysis import RULES, run_program
from repro.analysis.__main__ import main as analysis_main

CORPUS = os.path.join(os.path.dirname(__file__), "analysis_corpus")


def corpus_files(subdir=""):
    directory = os.path.join(CORPUS, subdir) if subdir else CORPUS
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".py")
    )


VIOLATING = corpus_files()
CLEAN = corpus_files("clean")


def name_of(path):
    return os.path.relpath(path, CORPUS)


@pytest.mark.parametrize("path", VIOLATING, ids=name_of)
def test_violating_program_trips_expected_rule(path):
    findings, expect = run_program(path)
    assert expect, f"{path} declares no EXPECT rules"
    fired = {f.rule for f in findings}
    missing = set(expect) - fired
    assert not missing, f"{path}: expected {expect}, fired {sorted(fired)}"
    # precision: nothing beyond the declared violation
    assert fired == set(expect), f"{path}: extra findings {sorted(fired - set(expect))}"


@pytest.mark.parametrize("path", CLEAN, ids=name_of)
def test_clean_twin_produces_no_findings(path):
    findings, expect = run_program(path)
    assert expect == [], f"{path} should declare EXPECT = []"
    assert findings == [], f"{path}: " + "; ".join(f.format() for f in findings)


def test_every_trace_rule_has_a_violating_program():
    covered = set()
    for path in VIOLATING:
        covered.update(run_program(path)[1])
    assert covered == set(RULES), f"rules without corpus coverage: {set(RULES) - covered}"


def test_every_violating_program_has_a_clean_twin():
    assert {name_of(p) for p in VIOLATING} == {
        os.path.basename(p) for p in CLEAN
    }


# -- CLI exit semantics ----------------------------------------------------


def test_cli_corpus_mode_green(capsys):
    assert analysis_main(["--corpus", CORPUS]) == 0
    assert "corpus" in capsys.readouterr().out


def test_cli_single_program_nonzero_on_violation(capsys):
    path = os.path.join(CORPUS, "commit_before_data.py")
    assert analysis_main(["--program", path]) == 1
    assert "commit-before-data" in capsys.readouterr().out


def test_cli_single_program_zero_on_clean(capsys):
    path = os.path.join(CORPUS, "clean", "commit_before_data.py")
    assert analysis_main(["--program", path]) == 0


def test_cli_detects_silent_rule_regression(tmp_path, capsys):
    # a program that EXPECTs a rule which never fires must FAIL the
    # corpus run — this is what makes the corpus self-testing
    prog = tmp_path / "stale.py"
    prog.write_text(
        'EXPECT = ["commit-before-data"]\n\n\ndef run(ctx):\n    pass\n'
    )
    assert analysis_main(["--program", str(prog)]) == 2
    assert "expected" in capsys.readouterr().out.lower()
