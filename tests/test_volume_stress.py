"""Namespace stress + mmap views over baseline handles."""

from __future__ import annotations

import pytest

from repro.core.mmio import MgspMmap
from repro.errors import AllocationError
from repro.fs import Ext4Dax, Splitfs
from repro.fsapi.volume import Volume
from repro.nvm.device import NvmDevice


class TestManyFiles:
    def test_hundreds_of_files_roundtrip(self):
        device = NvmDevice(128 << 20)
        volume = Volume(device)
        inodes = {}
        for i in range(300):
            inodes[f"file{i:04d}"] = volume.create(f"file{i:04d}", 8192)
        device.drain()
        remounted = Volume.mount(NvmDevice.from_image(bytes(device.buffer.snapshot_durable())))
        assert len(remounted.files()) == 300
        for name, inode in list(inodes.items())[:20]:
            again = remounted.lookup(name)
            assert (again.base, again.capacity) == (inode.base, inode.capacity)

    def test_slot_table_exhaustion(self):
        device = NvmDevice(512 << 20)
        volume = Volume(device)
        with pytest.raises(AllocationError):
            for i in range(5000):
                volume.create(f"f{i}", 4096)
        assert len(volume.files()) == volume._max_slots

    def test_create_unlink_churn_reuses_slots_and_names(self):
        device = NvmDevice(64 << 20)
        volume = Volume(device)
        for round_ in range(5):
            for i in range(50):
                volume.create(f"churn{i}", 4096)
            for i in range(50):
                volume.unlink(f"churn{i}")
        assert volume.files() == []

    def test_name_truncated_at_16_bytes(self):
        device = NvmDevice(64 << 20)
        volume = Volume(device)
        long_name = "exactly-sixteen!"  # 16 bytes
        volume.create(long_name, 4096)
        device.drain()
        remounted = Volume.mount(NvmDevice.from_image(bytes(device.buffer.snapshot_durable())))
        assert remounted.exists(long_name)


class TestMmapOverBaselines:
    """MgspMmap is generic: it works over any FileHandle, inheriting the
    handle's (weaker) consistency guarantees."""

    def test_over_ext4dax(self):
        fs = Ext4Dax(device_size=64 << 20)
        handle = fs.create("m", 256 * 1024)
        mm = MgspMmap(handle)
        mm[0:5] = b"plain"
        assert mm[0:5] == b"plain"
        assert handle.read(0, 5) == b"plain"

    def test_over_splitfs_staging(self):
        fs = Splitfs(device_size=64 << 20)
        handle = fs.create("m", 256 * 1024)
        mm = MgspMmap(handle)
        mm[0:6] = b"staged"
        assert mm[0:6] == b"staged"  # served from staging before relink
        mm.flush()  # relink
        assert handle.read(0, 6) == b"staged"

    def test_length_bounds_view(self):
        fs = Ext4Dax(device_size=64 << 20)
        handle = fs.create("m", 256 * 1024)
        mm = MgspMmap(handle, length=4096)
        assert len(mm) == 4096
        with pytest.raises(IndexError):
            mm[4096]
