"""The systematic crash-point sweep harness (ISSUE 3 tentpole)."""

from __future__ import annotations

import pytest

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.core.metalog import MetadataLog
from repro.crashsweep import (
    CONFIGS,
    WORKLOADS,
    check_image,
    get_workload,
    minimize_failure,
    pending_entries,
    point_seed,
    sample_points,
    sweep_unit,
    take_census,
)
from repro.crashsweep.__main__ import main as sweep_main
from repro.errors import CrashRequested
from repro.fsapi.layout import VolumeLayout
from repro.nvm.crash import CrashPlan, CrashPolicy, compose_image, count_events
from repro.nvm.device import NvmDevice


class TestCensusAndSampling:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_event_parity_everywhere(self, name, config_name):
        """Enumerated crash-point count == events an armed plan fires —
        including inside the batched `_v` device entry points every MGSP
        write exercises."""
        census = take_census(get_workload(name), config_name)
        assert census.parity_ok, (census.events, census.derived)
        assert census.events > 0

    def test_census_is_deterministic(self):
        workload = get_workload("fio-randwrite")
        assert take_census(workload, "sync").events == take_census(workload, "sync").events

    def test_async_config_adds_events(self):
        workload = get_workload("fio-randwrite")
        assert take_census(workload, "async").events > take_census(workload, "sync").events

    def test_sample_exhaustive_below_budget(self):
        assert sample_points(17, 100, seed=1) == list(range(17))

    def test_sample_stratified_above_budget(self):
        points = sample_points(10_000, 100, seed=1)
        assert len(points) == 100
        assert points == sorted(set(points))
        # One point per stratum: spread across the whole event range.
        assert points[0] < 100 and points[-1] >= 9_900
        assert sample_points(10_000, 100, seed=1) == points
        assert sample_points(10_000, 100, seed=2) != points


class TestSweep:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_fio_randwrite_clean_sweep(self, config_name):
        report = sweep_unit("fio-randwrite", config_name, budget=12, seed=5)
        assert report.ok, [f.violations for f in report.failures]
        assert report.census.parity_ok
        assert report.images_checked == 3 * len(report.points)

    def test_txn_clean_sweep(self):
        report = sweep_unit("txn-mixed", "sync", budget=10, seed=5)
        assert report.ok, [f.violations for f in report.failures]

    def test_ycsb_clean_sweep(self):
        report = sweep_unit("ycsb-a", "sync", budget=6, seed=5)
        assert report.ok, [f.violations for f in report.failures]

    def test_single_point_replay(self):
        report = sweep_unit("fio-randwrite", "sync", points=[40], seed=5)
        assert report.points == [40]
        assert report.images_checked == 3
        assert report.ok


class TestRandomPolicyDeterminism:
    def crashed_device(self, crash_after=120):
        outcome = get_workload("fio-randwrite").run("sync", CrashPlan(crash_after))
        assert outcome.crashed
        return outcome.fs.device

    def test_same_seed_same_image(self):
        device = self.crashed_device()
        seed = point_seed(9, 120)
        first = compose_image(device, CrashPolicy.RANDOM, seed=seed)
        second = compose_image(device, CrashPolicy.RANDOM, seed=seed)
        assert first == second

    def test_different_seed_usually_differs(self):
        device = self.crashed_device()
        images = {compose_image(device, CrashPolicy.RANDOM, seed=s) for s in range(6)}
        assert len(images) > 1

    def test_policy_extremes(self):
        device = self.crashed_device()
        drop = compose_image(device, CrashPolicy.DROP_ALL, seed=0)
        keep = compose_image(device, CrashPolicy.KEEP_ALL, seed=0)
        assert drop == bytes(device.buffer.snapshot_durable())
        assert keep != drop  # a mid-write crash has unfenced words


class TestMinimizer:
    def test_shrinks_to_failing_core(self, monkeypatch):
        """With a checker that fails iff one specific word persisted, the
        greedy minimizer must shrink any chosen superset to that word."""
        device = NvmDevice(1 << 20)
        for off in range(0, 80, 8):
            device.store(off, bytes([1 + off % 250]) * 8)
        culprit = 16
        durable = bytes(device.buffer.snapshot_durable())

        def fake_check(image, config_name, oracles, idempotence=True):
            if image[culprit : culprit + 8] != durable[culprit : culprit + 8]:
                return ["culprit word persisted"]
            return []

        import sys

        # `repro.crashsweep.sweep` the attribute is the sweep() function
        # (re-exported by __init__), so go through sys.modules.
        monkeypatch.setattr(
            sys.modules["repro.crashsweep.sweep"], "check_image", fake_check
        )
        chosen = device.unfenced_words()
        assert culprit in chosen and len(chosen) > 1
        assert minimize_failure(device, "sync", {}, chosen) == [culprit]


def make_fs():
    return MgspFilesystem(device_size=8 << 20, config=MgspConfig(degree=16))


def metalog_of(image: bytes, config: MgspConfig) -> MetadataLog:
    device = NvmDevice.from_image(image)
    layout = VolumeLayout.for_device(device.size, log_fraction=MgspFilesystem.log_fraction)
    return MetadataLog(device, layout.metalog, config.metalog_entries)


class TestUnlinkedFileRecovery:
    """Regression for the `_replay_entry` abort: a crash can persist an
    unlink while dropping the (deliberately unfenced) retire word of the
    file's last write — recovery must discard that entry, not fail."""

    def build_image(self):
        fs = make_fs()
        f = fs.create("doomed", capacity=64 << 10)
        fs.device.drain()
        f.write(0, b"x" * 4096)  # completes; its retire word is unfenced
        slot = f.inode.slot_offset
        # The first half of unlink(): clear the inode magic+id word.
        fs.device.atomic_store_u64(slot, 0)
        assert slot in fs.device.unfenced_words()
        # Adversarial image: the unlink word persisted, the retire did not.
        return bytes(fs.device.crash_image(persist_words=[slot])), fs.config

    def test_entry_for_unlinked_file_is_discarded(self):
        image, config = self.build_image()
        entries = metalog_of(image, config).scan()
        assert entries, "scenario must leave a live metalog entry"
        fs2, stats = recover(NvmDevice.from_image(image), config=MgspConfig(degree=16))
        assert stats.entries_discarded >= 1
        assert not fs2.volume.exists("doomed")
        assert not fs2.metalog.scan()  # discarded AND retired

    def test_checker_accepts_the_image(self):
        image, _config = self.build_image()
        assert check_image(image, "sync", {}) == []


class TestRecoveryIdempotence:
    """Recovery may crash and be rerun: crashing it at any sampled event
    and recovering again must land on the byte-identical final image."""

    def crash_images(self, crash_after=140):
        outcome = get_workload("fio-randwrite").run("sync", CrashPlan(crash_after))
        assert outcome.crashed
        return [
            compose_image(outcome.fs.device, policy, seed=11)
            for policy in (CrashPolicy.RANDOM, CrashPolicy.DROP_ALL)
        ]

    def final_image(self, image: bytes) -> bytes:
        fs, _ = recover(NvmDevice.from_image(image), config=MgspConfig(degree=16))
        fs.device.drain()
        return bytes(fs.device.buffer.durable)

    def test_crashed_recovery_reruns_to_same_image(self):
        for image in self.crash_images():
            reference = self.final_image(image)
            # Census the recovery itself, then crash it at a few points.
            census_device = NvmDevice.from_image(image)
            plan = CrashPlan(1 << 62)
            census_device.crash_plan = plan
            recover(census_device, config=MgspConfig(degree=16))
            events = count_events(census_device)
            assert events == plan.count
            for crash_at in sorted({1, events // 3, events // 2, events - 1}):
                device = NvmDevice.from_image(image)
                device.crash_plan = CrashPlan(crash_at)
                with pytest.raises(CrashRequested):
                    recover(device, config=MgspConfig(degree=16))
                device.crash_plan = None
                for seed in (0, 1):
                    interrupted = compose_image(device, CrashPolicy.RANDOM, seed=seed)
                    assert self.final_image(interrupted) == reference, (
                        f"recovery crashed at event {crash_at}/{events} "
                        f"(seed {seed}) did not replay to the same image"
                    )


class TestPendingEntriesHelper:
    def test_counts_unretired_entries(self):
        fs = make_fs()
        f = fs.create("p", capacity=64 << 10)
        fs.device.drain()
        f.write(0, b"q" * 1024)
        # DROP_ALL image loses the unfenced retire: entry visible.
        image = compose_image(fs.device, CrashPolicy.DROP_ALL, seed=0)
        assert pending_entries(image, fs.config) == 1
        # KEEP_ALL persists the retire: no entry survives.
        image = compose_image(fs.device, CrashPolicy.KEEP_ALL, seed=0)
        assert pending_entries(image, fs.config) == 0


class TestCli:
    def test_list(self, capsys):
        assert sweep_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fio-randwrite" in out and "txn-mixed" in out and "ycsb-a" in out

    def test_small_sweep(self, capsys):
        assert (
            sweep_main(
                ["--workload", "fio-randwrite", "--configs", "sync", "--budget", "6"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parity=ok" in out and "violations=0" in out
        assert "swept 6 crash points, checked 18 images" in out

    def test_at_mode(self, capsys):
        argv = [
            "--workload",
            "txn-mixed",
            "--configs",
            "sync",
            "--policies",
            "random",
            "--at",
            "25",
            "--seed",
            "3",
        ]
        assert sweep_main(argv) == 0
        assert "swept 1 crash points, checked 1 images" in capsys.readouterr().out

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            sweep_main(["--workload", "nope"])
