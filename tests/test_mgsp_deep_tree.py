"""Degree-64 deep trees, coarse-grained terminals, boundary geometry."""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.core import bitmap
from repro.core.verify import verify_file
from repro.nvm.device import NvmDevice

MB = 1 << 20


def make(capacity, **cfg):
    fs = MgspFilesystem(device_size=max(128 * MB, capacity * 4), config=MgspConfig(**cfg))
    return fs, fs.create("deep", capacity=capacity)


class TestDegree64Geometry:
    def test_granularities_match_paper(self):
        """Degree 64, 4K leaves: 4K / 256K / 16M / 1G levels."""
        fs, f = make(32 * MB, degree=64)
        assert f.tree.gran(0) == 4096
        assert f.tree.gran(1) == 256 * 1024
        assert f.tree.gran(2) == 16 * MB
        assert f.tree.gran(3) == 1 << 30

    def test_height_scales_with_size(self):
        """The tree's height tracks the file SIZE (paper's extension),
        not the reserved capacity."""
        fs, f = make(32 * MB, degree=64)
        assert f.tree.height == 1  # empty file: one 256K root suffices
        f.write(20 * MB, b"x")  # grow past 16M
        assert f.tree.height == 3  # needs the 1G level to cover 20M+
        assert f.tree.covered() >= f.size

    def test_256k_write_commits_one_node(self):
        fs, f = make(32 * MB, degree=64)
        f.write(32 * MB - 4096, b"grow")  # raise the height first
        f.write(0, b"c" * 256 * 1024)
        l1 = f.tree.peek(1, 0)
        assert l1 is not None
        assert bitmap.unpack_nonleaf(l1.word).valid  # one coarse log
        assert l1.log_off != 0
        assert f.read(0, 10) == b"c" * 10

    def test_256k_write_on_empty_file_is_root_terminal(self):
        """With nothing written yet the root covers exactly 256K, so the
        write goes straight into the file (the root's 'log')."""
        fs, f = make(32 * MB, degree=64)
        f.write(0, b"c" * 256 * 1024)
        root_word = f.tree.root.word
        bits = bitmap.unpack_nonleaf(root_word)
        assert not bits.valid and not bits.existing  # committed at root
        assert f.read(0, 10) == b"c" * 10

    def test_1m_write_uses_four_coarse_nodes(self):
        fs, f = make(32 * MB, degree=64)
        f.write(0, b"m" * MB)
        for idx in range(4):
            node = f.tree.peek(1, idx)
            assert node is not None and bitmap.unpack_nonleaf(node.word).valid
        assert f.read(MB - 5, 5) == b"m" * 5

    def test_unaligned_multi_level_write(self):
        fs, f = make(32 * MB, degree=64)
        payload = bytes(range(256)) * 2048  # 512K
        f.write(100_000, payload)
        assert f.read(100_000, len(payload)) == payload
        assert verify_file(f).ok

    def test_write_spanning_16m_boundary(self):
        fs, f = make(32 * MB, degree=64)
        off = 16 * MB - 8192
        f.write(off, b"span" * 4096)  # 16K across the L2 boundary
        assert f.read(off, 16384) == b"span" * 4096

    def test_fine_then_coarse_then_fine(self):
        fs, f = make(32 * MB, degree=64)
        f.write(1000, b"fine-1")
        f.write(0, b"C" * 256 * 1024)  # coarse overwrite (invalidates leaf)
        assert f.read(1000, 6) == b"CCCCCC"
        f.write(1000, b"fine-2")
        assert f.read(1000, 6) == b"fine-2"
        assert f.read(990, 10) == b"C" * 10
        assert verify_file(f).ok

    def test_repeat_coarse_writes_role_switch(self):
        """256K writes to the same node alternate log <-> file."""
        fs, f = make(32 * MB, degree=64)
        f.write(32 * MB - 4096, b"grow")  # ensure L1 is below the root
        f.write(0, b"1" * 256 * 1024)
        node = f.tree.peek(1, 0)
        assert bitmap.unpack_nonleaf(node.word).valid
        f.write(0, b"2" * 256 * 1024)
        assert not bitmap.unpack_nonleaf(node.word).valid
        f.write(0, b"3" * 256 * 1024)
        assert bitmap.unpack_nonleaf(node.word).valid
        assert f.read(0, 4) == b"3333"

    def test_fuzz_deep_tree(self):
        fs, f = make(32 * MB, degree=64)
        rng = random.Random(8)
        ref = {}
        for i in range(120):
            off = rng.randrange(0, 32 * MB - MB)
            ln = rng.choice([64, 4096, 256 * 1024, 700_000])
            tag = bytes([rng.randrange(1, 255)])
            f.write(off, tag * ln)
            ref[i] = (off, ln, tag)
            probe_off, probe_ln, probe_tag = ref[rng.randrange(len(ref))]
            # Only check probes not overwritten since (cheap filter).
        # Final spot checks against a replayed model on 1 MB windows.
        model = bytearray(32 * MB)
        for off, ln, tag in ref.values():
            model[off : off + ln] = tag * ln
        for start in range(0, 32 * MB, 7 * MB):
            assert f.read(start, 4096) == bytes(model[start : start + 4096])
        assert verify_file(f).ok

    def test_crash_recovery_with_coarse_commits(self):
        fs, f = make(32 * MB, degree=64)
        fs.device.drain()
        f.write(0, b"A" * 256 * 1024)
        f.write(0, b"B" * 256 * 1024)  # undo-style: straight into file
        image = fs.device.crash_image(rng=random.Random(4))
        fs2, _ = recover(NvmDevice.from_image(bytes(image)), config=MgspConfig(degree=64))
        assert fs2.open("deep").read(0, 256 * 1024) == b"B" * 256 * 1024


class TestSmallDegrees:
    @pytest.mark.parametrize("degree", [4, 8, 16])
    def test_read_your_writes(self, degree):
        fs, f = make(4 * MB, degree=degree, leaf_valid_bits=8)
        rng = random.Random(degree)
        ref = bytearray(4 * MB)
        for _ in range(100):
            off = rng.randrange(0, 4 * MB - 1)
            ln = min(rng.choice([32, 512, 4096, 70_000]), 4 * MB - off)
            payload = bytes([rng.randrange(1, 255)]) * ln
            f.write(off, payload)
            ref[off : off + ln] = payload
        assert f.read(0, f.size) == bytes(ref[: f.size])
        assert verify_file(f).ok


class TestGenerationPressure:
    def test_many_commits_on_one_leaf(self):
        """Thousands of commits to one spot: generations stay ordered."""
        fs, f = make(MB, degree=16)
        for i in range(2000):
            f.write(0, bytes([i % 255 + 1]) * 128)
        assert f.read(0, 128) == bytes([1999 % 255 + 1]) * 128
        assert f.tree.gen == 2000
        assert verify_file(f).ok
