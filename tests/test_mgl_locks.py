"""MglLockManager: emitted segments under each configuration."""

from __future__ import annotations

import pytest

from repro.core.config import MgspConfig
from repro.core.locks import MglLockManager
from repro.nvm.timing import OptaneTiming
from repro.sim.trace import TraceRecorder


@pytest.fixture
def recorder():
    return TraceRecorder(OptaneTiming())


def segments(recorder):
    recorder_trace = recorder.end_op()
    return [s for s in recorder_trace.segments if s[0] in ("lock", "unlock")]


def manager(recorder, **cfg):
    return MglLockManager(MgspConfig(degree=16, **cfg), recorder)


PATH = [(2, 0), (1, 3)]
TERMINALS = [(0, 50), (0, 51)]


class TestFileLevelLocking:
    def test_single_file_lock_when_fine_grained_off(self, recorder):
        mgl = manager(recorder, fine_grained_locking=False)
        recorder.begin_op("w")
        keys = mgl.acquire(0, 1, PATH, TERMINALS, write=True)
        mgl.release(keys)
        segs = segments(recorder)
        assert segs == [
            ("lock", ("mgsp-file", 1), "W"),
            ("unlock", ("mgsp-file", 1)),
        ]

    def test_read_uses_shared_mode(self, recorder):
        mgl = manager(recorder, fine_grained_locking=False)
        recorder.begin_op("r")
        keys = mgl.acquire(0, 1, PATH, TERMINALS, write=False)
        mgl.release(keys)
        assert segments(recorder)[0][2] == "R"


class TestGreedyLocking:
    def test_greedy_single_lock(self, recorder):
        mgl = manager(recorder)
        recorder.begin_op("w")
        keys = mgl.acquire(0, 1, PATH, TERMINALS, write=True, greedy_node=(1, 3))
        mgl.release(keys)
        segs = segments(recorder)
        assert len(segs) == 2
        assert segs[0] == ("lock", ("mgsp", 1, 1, 3), "W")

    def test_greedy_disabled_by_config(self, recorder):
        mgl = manager(recorder, greedy_locking=False)
        recorder.begin_op("w")
        mgl.acquire(0, 1, PATH, TERMINALS, write=True, greedy_node=(1, 3))
        locks = [s for s in segments(recorder) if s[0] == "lock"]
        assert len(locks) > 1  # full MGL path instead


class TestMglPath:
    def test_intention_locks_then_terminals(self, recorder):
        mgl = manager(recorder, lazy_intention_locks=False)
        recorder.begin_op("w")
        keys = mgl.acquire(0, 1, PATH, TERMINALS, write=True)
        mgl.release(keys)
        locks = [s for s in segments(recorder) if s[0] == "lock"]
        modes = [s[2] for s in locks]
        assert modes == ["IW", "IW", "W", "W"]

    def test_read_path_uses_ir_r(self, recorder):
        mgl = manager(recorder, lazy_intention_locks=False)
        recorder.begin_op("r")
        mgl.acquire(0, 1, PATH, TERMINALS, write=False)
        modes = [s[2] for s in segments(recorder) if s[0] == "lock"]
        assert modes == ["IR", "IR", "R", "R"]

    def test_terminals_locked_in_offset_order(self, recorder):
        mgl = manager(recorder, lazy_intention_locks=False)
        recorder.begin_op("w")
        mgl.acquire(0, 1, [], [(0, 9), (0, 2), (0, 5)], write=True)
        locks = [s[1] for s in segments(recorder) if s[0] == "lock"]
        assert locks == [("mgsp", 1, 0, 2), ("mgsp", 1, 0, 5), ("mgsp", 1, 0, 9)]

    def test_release_in_acquisition_order(self, recorder):
        mgl = manager(recorder, lazy_intention_locks=False)
        recorder.begin_op("w")
        keys = mgl.acquire(0, 1, PATH, TERMINALS, write=True)
        mgl.release(keys)
        segs = segments(recorder)
        locked = [s[1] for s in segs if s[0] == "lock"]
        unlocked = [s[1] for s in segs if s[0] == "unlock"]
        assert unlocked == locked


class TestLazyIntentionLocks:
    def test_intention_locks_retained_across_ops(self, recorder):
        mgl = manager(recorder)
        recorder.begin_op("w1")
        keys = mgl.acquire(0, 1, PATH, TERMINALS, write=True)
        mgl.release(keys)
        first = segments(recorder)

        recorder.begin_op("w2")
        keys = mgl.acquire(0, 1, PATH, TERMINALS, write=True)
        mgl.release(keys)
        second = segments(recorder)

        first_locks = [s for s in first if s[0] == "lock"]
        second_locks = [s for s in second if s[0] == "lock"]
        # First op: 2 IW + 2 W; second op re-uses the retained IWs.
        assert len(first_locks) == 4
        assert len(second_locks) == 2
        assert all(s[2] == "W" for s in second_locks)

    def test_retained_locks_released_by_trailer(self, recorder):
        mgl = manager(recorder)
        recorder.begin_op("w")
        keys = mgl.acquire(0, 1, PATH, TERMINALS, write=True)
        mgl.release(keys)
        segments(recorder)

        recorder.begin_op("trailer")
        mgl.release_retained(0)
        trailer = segments(recorder)
        assert len([s for s in trailer if s[0] == "unlock"]) == len(PATH)

    def test_balanced_lock_unlock_overall(self, recorder):
        """Across ops + trailer, every acquire has exactly one release."""
        mgl = manager(recorder)
        recorder.begin_op("all")
        for _ in range(3):
            keys = mgl.acquire(0, 1, PATH, TERMINALS, write=True)
            mgl.release(keys)
        mgl.release_retained(0)
        trace = recorder.end_op()
        locks = [s[1] for s in trace.segments if s[0] == "lock"]
        unlocks = [s[1] for s in trace.segments if s[0] == "unlock"]
        assert sorted(map(str, locks)) == sorted(map(str, unlocks))

    def test_threads_tracked_independently(self, recorder):
        mgl = manager(recorder)
        recorder.begin_op("w")
        mgl.acquire(0, 1, PATH, [], write=True)
        mgl.acquire(1, 1, PATH, [], write=True)
        locks = [s for s in segments(recorder) if s[0] == "lock"]
        assert len(locks) == 2 * len(PATH)  # each thread acquires its own
