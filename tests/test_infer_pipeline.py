"""End-to-end tests for the inference pipeline + CLI (ISSUE 6).

Acceptance-criteria pins: the planted-bug fixture exits nonzero with a
working crashsweep reproducer; MGSP-sync fio mines >= 3 confirmed
invariant families with zero true bugs (strict exit 0); and the JSON
report is byte-identical across two runs of the same command.
"""

from __future__ import annotations

import json

import pytest

from repro.infer.__main__ import main as infer_main
from repro.infer.falsify import RETIREMENTS

from repro.crashsweep.__main__ import main as crashsweep_main

FAST = ["--budget", "120", "--seed", "7"]


def run_cli(tmp_path, *args, name="report.json"):
    out = tmp_path / name
    code = infer_main([*args, "--out", str(out)])
    return code, json.loads(out.read_text())


class TestPlantedBug:
    @pytest.fixture(scope="class")
    def planted(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("planted") / "report.json"
        code = infer_main(
            ["--workload", "toy", "--fs", "planted", *FAST, "--out", str(out)]
        )
        return code, json.loads(out.read_text())

    def test_exits_nonzero(self, planted):
        code, report = planted
        assert code == 1
        assert report["true_bugs"] >= 1

    def test_bug_is_the_planted_misordering(self, planted):
        _, report = planted
        bugs = [c for c in report["candidates"] if c["status"] == "true-bug"]
        assert [(b["family"], b["a"], b["b"]) for b in bugs] == [
            ("persist-before", "toy_data", "toy_commit")
        ]
        # unfenced ordering: a crash image can keep commit, drop data
        assert bugs[0]["durability"] == "dirty"

    def test_reproducer_replays_the_failure(self, planted, capsys):
        """The report's crashsweep line is a *working* reproducer: the
        minimized --at point fails under the named policy."""
        _, report = planted
        bug = next(c for c in report["candidates"] if c["status"] == "true-bug")
        line = bug["reproducer"]
        assert line.startswith("python -m repro.crashsweep ")
        argv = line.split()[3:]  # strip "python -m repro.crashsweep"
        assert crashsweep_main(argv) == 1
        assert "violation" in capsys.readouterr().out.lower()


class TestMgspAcceptance:
    @pytest.fixture(scope="class")
    def mgsp(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("mgsp") / "report.json"
        code = infer_main(
            ["--workload", "fio", "--fs", "mgsp", *FAST, "--strict", "--out", str(out)]
        )
        return code, json.loads(out.read_text())

    def test_strict_exit_zero(self, mgsp):
        code, report = mgsp
        assert code == 0
        assert report["true_bugs"] == 0
        assert report["unretired_benign"] == 0

    def test_three_confirmed_families(self, mgsp):
        _, report = mgsp
        assert len(report["confirmed_families"]) >= 3
        assert set(report["confirmed_families"]) >= {
            "persist-before",
            "never-torn",
            "fenced-by-op-end",
        }

    def test_commit_ordering_confirmed_durable(self, mgsp):
        """The log-data -> commit-record ordering must come out confirmed
        (it is MGSP's central correctness argument)."""
        _, report = mgsp
        entry = next(
            c
            for c in report["candidates"]
            if (c["family"], c["a"], c["b"]) == ("persist-before", "log_area", "metalog")
        )
        assert entry["status"] == "confirmed"
        assert entry["durability"] == "durable"

    def test_benigns_are_all_retired(self, mgsp):
        _, report = mgsp
        for c in report["candidates"]:
            if c["status"] == "retired-benign":
                key = ("mgsp", c["family"], c["a"], c["b"])
                assert key in RETIREMENTS
                assert c["retirement"] == RETIREMENTS[key]


class TestDeterminism:
    def test_byte_identical_reports(self, tmp_path):
        args = ["--workload", "fio", "--fs", "mgsp", "--budget", "200", "--seed", "7"]
        out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
        assert infer_main([*args, "--out", str(out1)]) == 0
        assert infer_main([*args, "--out", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()

    def test_seed_changes_only_parameters(self, tmp_path):
        """A different sweep seed may pick different RANDOM images but the
        mined candidate set is seed-independent (mining sees passing runs
        only)."""
        _, rep_a = run_cli(
            tmp_path, "--workload", "fio", "--fs", "mgsp", "--budget", "120",
            "--seed", "7", name="a.json",
        )
        _, rep_b = run_cli(
            tmp_path, "--workload", "fio", "--fs", "mgsp", "--budget", "120",
            "--seed", "11", name="b.json",
        )
        keys = lambda rep: [(c["family"], c["a"], c["b"]) for c in rep["candidates"]]
        assert keys(rep_a) == keys(rep_b)


class TestOtherSubjects:
    @pytest.mark.parametrize(
        "fs,workload",
        [("nova", "fio"), ("libnvmmio", "fio"), ("pqueue", "mpsc"), ("pqueue-async", "mpsc")],
    )
    def test_strict_clean(self, tmp_path, fs, workload):
        code, report = run_cli(
            tmp_path, "--workload", workload, "--fs", fs, *FAST, "--strict",
            name=f"{fs}.json",
        )
        assert code == 0, report["summary"]
        assert report["true_bugs"] == 0
        assert len(report["confirmed_families"]) >= 1

    def test_pqueue_tear_retirement_fires(self, tmp_path):
        """The queue's wide slot-body stores are crc-guarded: the tear
        candidate must land on the documented retirement, not escape as
        an unretired benign."""
        _, report = run_cli(
            tmp_path, "--workload", "mpsc", "--fs", "pqueue", *FAST, name="pq.json"
        )
        entry = next(
            c
            for c in report["candidates"]
            if (c["family"], c["a"]) == ("never-torn", "qslot_body")
        )
        assert entry["status"] == "retired-benign"

    def test_unknown_pairing_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            infer_main(["--workload", "mpsc", "--fs", "mgsp"])
        assert exc.value.code == 2
