"""Trace analyzer: per-rule units, event-index parity, fault injection."""

from __future__ import annotations

import pytest

from repro.analysis import (
    RULES,
    AnalysisRecorder,
    RegionMap,
    TraceAnalyzer,
    attach_analyzer,
    program_context,
    run_workload,
)
from repro.core import MgspConfig, MgspFilesystem
from repro.nvm.crash import count_events
from repro.nvm.timing import TimingModel
from repro.sim.trace import NullRecorder, Recorder, TraceRecorder


def rules_of(findings):
    return [f.rule for f in findings]


def make_fs(**cfg):
    return MgspFilesystem(device_size=8 << 20, config=MgspConfig(degree=16, **cfg))


# -- RegionMap -------------------------------------------------------------


def test_region_map_classifies_all_regions():
    ctx = program_context()
    layout = ctx.regions.layout
    for name in RegionMap.NAMES:
        span = getattr(layout, name)
        assert ctx.regions.classify(span.start) == name
        assert ctx.regions.classify(span.end - 1) == name
    assert ctx.regions.classify(layout.data_area.end) == "unmapped"


# -- commit-before-data ----------------------------------------------------


def test_commit_before_data_missing_data_fence():
    ctx = program_context()
    d = ctx.device
    d.nt_store(ctx.data_off, b"d" * 512)
    # MISSING: d.fence() — the data fence that must precede the commit
    d.nt_store(ctx.metalog_off, b"c" * 64)
    d.fence()
    assert rules_of(ctx.analyzer.errors) == ["commit-before-data"]
    (f,) = ctx.analyzer.errors
    assert f.severity == "error"
    # fence is the 3rd event (two stores before it)
    assert f.event_index == 2


def test_commit_before_data_dirty_guarded_line():
    ctx = program_context()
    d = ctx.device
    d.store(ctx.data_off, b"d" * 64)  # dirty, never flushed
    d.nt_store(ctx.metalog_off, b"c" * 64)
    d.fence()
    assert "commit-before-data" in rules_of(ctx.analyzer.errors)


def test_commit_before_data_clean_when_fenced():
    ctx = program_context()
    d = ctx.device
    d.nt_store(ctx.data_off, b"d" * 512)
    d.fence()  # data durable before the commit point
    d.nt_store(ctx.metalog_off, b"c" * 64)
    d.fence()
    assert ctx.analyzer.findings == []


def test_commit_word_store_is_not_a_commit_entry():
    # 8-byte metalog stores (valid-bit / retire pokes) are not commit
    # entries; fencing them with pending data around is legal.
    ctx = program_context()
    d = ctx.device
    d.nt_store(ctx.data_off, b"d" * 64)
    d.atomic_store_u64(ctx.metalog_off, 1)
    d.persist(ctx.metalog_off, 8)
    assert rules_of(ctx.analyzer.errors) == []


# -- torn-multiword --------------------------------------------------------


def test_torn_multiword_plain_store_in_node_tables():
    ctx = program_context()
    ctx.device.store(ctx.node_tables_off, b"x" * 16)
    assert rules_of(ctx.analyzer.errors) == ["torn-multiword"]


def test_torn_multiword_metalog_also_covered():
    ctx = program_context()
    ctx.device.store(ctx.metalog_off, b"x" * 64)
    assert "torn-multiword" in rules_of(ctx.analyzer.errors)


def test_torn_multiword_not_fired_for_nt_or_word_stores():
    ctx = program_context()
    d = ctx.device
    d.nt_store(ctx.node_tables_off, b"x" * 16)  # nt: fine
    d.atomic_store_u64(ctx.node_tables_off + 64, 7)  # single word: fine
    d.store(ctx.data_off, b"x" * 4096)  # data region: fine
    d.persist(ctx.data_off, 4096)
    assert rules_of(ctx.analyzer.errors) == []


# -- unfenced-at-boundary --------------------------------------------------


def test_unfenced_at_boundary_dirty_line_escapes_op():
    ctx = program_context()
    with ctx.op("write"):
        ctx.device.store(ctx.data_off, b"x" * 128)
    assert rules_of(ctx.analyzer.errors) == ["unfenced-at-boundary"]
    (f,) = ctx.analyzer.errors
    assert f.op == "write"


def test_unfenced_at_boundary_reported_once_per_line():
    ctx = program_context()
    with ctx.op("write"):
        ctx.device.store(ctx.data_off, b"x" * 64)
    with ctx.op("fsync"):
        pass  # same dirty line still alive: not re-reported
    assert rules_of(ctx.analyzer.errors) == ["unfenced-at-boundary"]


def test_unfenced_at_boundary_metalog_exempt():
    # MGSP's retire leaves one dirty metalog line per op, by design.
    ctx = program_context()
    with ctx.op("write"):
        ctx.device.store(ctx.metalog_off + 8, b"\0" * 8)
    assert rules_of(ctx.analyzer.errors) == []


def test_unfenced_at_boundary_quiet_under_async_writeback():
    ctx = program_context()
    ctx.analyzer.async_writeback = True
    with ctx.op("write"):
        ctx.device.store(ctx.data_off, b"x" * 64)
    assert rules_of(ctx.analyzer.errors) == []


# -- perf rules ------------------------------------------------------------


def test_redundant_flush_on_clean_line():
    ctx = program_context()
    d = ctx.device
    d.store(ctx.data_off, b"y" * 64)
    d.persist(ctx.data_off, 64)
    d.flush(ctx.data_off, 64)
    assert rules_of(ctx.analyzer.findings) == ["redundant-flush"]
    assert ctx.analyzer.errors == []  # perf severity


def test_redundant_fence_with_nothing_pending():
    ctx = program_context()
    d = ctx.device
    d.store(ctx.data_off, b"z" * 64)
    d.persist(ctx.data_off, 64)
    d.fence()
    assert rules_of(ctx.analyzer.findings) == ["redundant-fence"]


def test_perf_rules_suppressed_when_perf_off():
    ctx = program_context()
    ctx.analyzer.perf = False
    ctx.device.fence()
    assert ctx.analyzer.findings == []


# -- event indexing, budget, drain ----------------------------------------


def test_event_indices_match_crash_sweep_enumeration():
    ctx = program_context()
    d = ctx.device
    base = d.stats.snapshot()
    d.store(ctx.data_off, b"a" * 130)  # 1 store event
    d.persist(ctx.data_off, 130)  # 1 flush call + 1 fence
    d.store_v(((ctx.data_off, b"b" * 64), (ctx.data_off + 64, b"c" * 64)))  # 2
    d.flush_v(((ctx.data_off, 64), (ctx.data_off + 64, 64)))  # 2
    d.fence()  # 1
    assert ctx.analyzer.event_index == count_events(d, since=base) == 8


def test_budget_saturation_stops_analysis():
    ctx = program_context()
    ctx.analyzer.max_events = 2
    d = ctx.device
    d.store(ctx.data_off, b"x" * 64)
    d.store(ctx.node_tables_off, b"x" * 16)  # idx 1: still analyzed
    d.store(ctx.node_tables_off + 64, b"x" * 16)  # past budget: ignored
    assert ctx.analyzer.saturated
    assert rules_of(ctx.analyzer.errors) == ["torn-multiword"]
    # events keep counting for parity even while saturated
    assert ctx.analyzer.event_index == 3


def test_drain_resets_counter_and_state():
    ctx = program_context()
    d = ctx.device
    d.store(ctx.data_off, b"x" * 64)
    d.drain()
    assert ctx.analyzer.event_index == 0
    d.store(ctx.data_off, b"y" * 64)
    d.persist(ctx.data_off, 64)
    assert ctx.analyzer.findings == []


# -- AnalysisRecorder ------------------------------------------------------


def test_analysis_recorder_satisfies_protocol_and_forwards():
    analyzer = TraceAnalyzer(RegionMap.for_device(4 << 20))
    inner = TraceRecorder(TimingModel())
    rec = AnalysisRecorder(inner, analyzer)
    assert isinstance(rec, Recorder)
    assert isinstance(NullRecorder(), Recorder)
    rec.begin_op("write")
    rec.compute(10.0)
    rec.io_write(64)
    rec.io_flush(1)
    rec.io_fence()
    trace = rec.end_op()
    assert trace.name == "write"
    assert rec.take_completed() == [trace]
    rec.enabled = False
    assert inner.enabled is False


def test_attach_analyzer_wraps_live_mount():
    fs = make_fs()
    analyzer = attach_analyzer(fs, perf=False)
    assert fs.device.analysis_tap is analyzer
    assert isinstance(fs.recorder, AnalysisRecorder)
    f = fs.create("a", capacity=1 << 16)
    f.write(0, b"hello" * 100)
    f.fsync()
    f.close()
    assert analyzer.errors == []


# -- fault injection: the acceptance scenario ------------------------------


def drop_first_fence(device):
    """Patch ``device.fence`` so the next call is silently dropped."""
    real_fence = device.fence
    state = {"dropped": False}

    def fence():
        if not state["dropped"]:
            state["dropped"] = True
            return
        real_fence()

    device.fence = fence
    return state


def test_dropped_data_fence_caught_as_commit_before_data():
    """Remove the step-4 data fence from the MGSP commit path: the
    metalog commit fence then covers still-volatile data, and the
    analyzer must flag it as commit-before-data."""
    fs = make_fs()
    analyzer = attach_analyzer(fs, perf=False)
    f = fs.create("a", capacity=1 << 16)
    fs.device.drain()  # settle setup traffic; reset indices
    state = drop_first_fence(fs.device)
    f.write(0, b"a" * 4096)
    assert state["dropped"], "injection never reached a fence"
    assert "commit-before-data" in rules_of(analyzer.errors)


def test_same_write_clean_without_injection():
    fs = make_fs()
    analyzer = attach_analyzer(fs, perf=False)
    f = fs.create("a", capacity=1 << 16)
    fs.device.drain()
    f.write(0, b"a" * 4096)
    assert analyzer.errors == []


# -- workload harness ------------------------------------------------------


def test_run_workload_reports_parity_and_clean_errors():
    report = run_workload("fio", "mgsp-sync", perf=True)
    assert report.parity_ok
    assert report.errors == []
    assert report.events > 0
    text = report.format()
    assert "workload=fio-randwrite" in text


def test_run_workload_budget_flags_saturation():
    report = run_workload("fio", "mgsp-sync", perf=True, max_events=10)
    assert report.saturated
    assert "budget" in report.format()


def test_report_reproducer_names_crashsweep_at_index():
    report = run_workload("txn", "mgsp-sync", perf=True)
    from repro.analysis.analyzer import Finding

    fake = Finding(rule="commit-before-data", severity="error", event_index=42, message="x")
    line = report.reproducer(fake)
    assert "--at 42" in line and "repro.crashsweep" in line
    assert "--workload txn-mixed" in line
