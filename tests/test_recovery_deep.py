"""Recovery corner cases beyond the basic sweep."""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.core.verify import verify_file
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice

MB = 1 << 20


def crash_image(fs, seed=1, p=0.5):
    return bytes(fs.device.crash_image(rng=random.Random(seed), persist_probability=p))


class TestRecoveryCorners:
    def test_recovery_of_grown_file_size(self):
        """A crash right after a size-growing write commits: recovery
        must restore the new size from the metadata log."""
        fs = MgspFilesystem(device_size=64 * MB, config=MgspConfig(degree=16))
        f = fs.create("g", capacity=MB)
        fs.device.drain()
        # Crash immediately after the metalog fence (fence #2): the op is
        # committed but the size field may not be durable.
        fs.device.crash_plan = CrashPlan(crash_after=2, kinds={"fence"})
        with pytest.raises(CrashRequested):
            f.write(500_000, b"tail-data")
            f.write(600_000, b"x")  # force a second op if the first survived
        fs2, stats = recover(NvmDevice.from_image(crash_image(fs, p=0.0)), config=MgspConfig(degree=16))
        f2 = fs2.open("g")
        if stats.entries_replayed:
            assert f2.size >= 500_009
            assert f2.read(500_000, 9) == b"tail-data"

    def test_mixed_txn_and_plain_entries(self):
        """A committed plain write + a committed transaction both in the
        metalog at crash time: recovery applies both."""
        fs = MgspFilesystem(device_size=64 * MB, config=MgspConfig(degree=16))
        f = fs.create("m", capacity=MB)
        fs.device.drain()
        f.write(0, b"plain" * 100)
        with fs.begin_transaction(f) as txn:
            txn.write(50_000, b"txn-a" * 100)
            txn.write(90_000, b"txn-b" * 100)
        fs2, _ = recover(NvmDevice.from_image(crash_image(fs, seed=9)), config=MgspConfig(degree=16))
        f2 = fs2.open("m")
        assert f2.read(0, 5) == b"plain"
        assert f2.read(50_000, 5) == b"txn-a"
        assert f2.read(90_000, 5) == b"txn-b"

    def test_recovered_file_verifies_and_accepts_writes(self):
        fs = MgspFilesystem(device_size=64 * MB, config=MgspConfig(degree=16))
        f = fs.create("w", capacity=MB)
        fs.device.drain()
        rng = random.Random(6)
        fs.device.crash_plan = CrashPlan(crash_after=400)
        try:
            while True:
                f.write(rng.randrange(200) * 4096, b"d" * 4096)
        except CrashRequested:
            pass
        fs2, _ = recover(NvmDevice.from_image(crash_image(fs)), config=MgspConfig(degree=16))
        f2 = fs2.open("w")
        assert verify_file(f2).ok
        f2.write(0, b"post-recovery")
        assert f2.read(0, 13) == b"post-recovery"
        assert verify_file(f2).ok

    def test_double_crash_during_writeback(self):
        """Crash during recovery's write-back phase, then recover again."""
        fs = MgspFilesystem(device_size=64 * MB, config=MgspConfig(degree=16))
        f = fs.create("d", capacity=MB)
        fs.device.drain()
        for i in range(30):
            f.write(i * 4096, bytes([i + 1]) * 4096)
        image = crash_image(fs, seed=2)
        device = NvmDevice.from_image(image)
        device.crash_plan = CrashPlan(crash_after=100)
        try:
            recover(device, config=MgspConfig(degree=16))
        except CrashRequested:
            pass
        second = bytes(device.crash_image(rng=random.Random(3)))
        fs3, _ = recover(NvmDevice.from_image(second), config=MgspConfig(degree=16))
        f3 = fs3.open("d")
        for i in range(30):
            assert f3.read(i * 4096, 4096) == bytes([i + 1]) * 4096

    def test_recovery_with_many_leaf_flips(self):
        """Ping-pong a leaf so its latest copy lives in the FILE (valid
        bit 0); a crash + recovery must not resurrect the log copy."""
        fs = MgspFilesystem(device_size=64 * MB, config=MgspConfig(degree=16))
        f = fs.create("p", capacity=MB)
        fs.device.drain()
        f.write(0, b"old!" * 1024)  # -> leaf log
        f.write(0, b"new!" * 1024)  # -> file (undo-style)
        fs2, _ = recover(NvmDevice.from_image(crash_image(fs, seed=11)), config=MgspConfig(degree=16))
        assert fs2.open("p").read(0, 4096) == b"new!" * 1024

    def test_kindest_crash_equals_drain(self):
        """persist_probability=1.0 (every dirty line evicted just in
        time) must also recover correctly — the protocol cannot rely on
        data NOT persisting."""
        fs = MgspFilesystem(device_size=64 * MB, config=MgspConfig(degree=16))
        f = fs.create("k", capacity=MB)
        fs.device.drain()
        fs.device.crash_plan = CrashPlan(crash_after=333)
        ref = bytearray(MB)
        rng = random.Random(13)
        pending = None
        try:
            while True:
                off = rng.randrange(0, MB - 5000)
                payload = bytes([rng.randrange(1, 255)]) * 5000
                pending = (off, payload)
                f.write(off, payload)
                ref[off : off + 5000] = payload
                pending = None
        except CrashRequested:
            pass
        fs2, _ = recover(NvmDevice.from_image(crash_image(fs, p=1.0)), config=MgspConfig(degree=16))
        got = fs2.open("k").read(0, MB).ljust(MB, b"\0")
        expected_old = bytes(ref)
        if pending:
            off, payload = pending
            with_pending = bytearray(ref)
            with_pending[off : off + 5000] = payload
            assert got in (expected_old, bytes(with_pending))
        else:
            assert got == expected_old

    def test_empty_device_recovers(self):
        fs = MgspFilesystem(device_size=64 * MB)
        fs.device.drain()
        fs2, stats = recover(
            NvmDevice.from_image(bytes(fs.device.buffer.snapshot_durable()))
        )
        assert stats.entries_replayed == 0
        assert stats.files_scanned == 0
