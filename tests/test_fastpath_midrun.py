"""Bulk fast-path gate audit (ISSUE 8): observers attached mid-run.

The PR-7 ``_v`` entry points take a bulk buffer path only when no crash
plan, tracer, or analysis tap is attached.  The gating contract is that
the bulk path leaves *identical device state* behind, so an observer
attached between batched ops — mid-run — sees an event/trace stream
that could not distinguish which path the earlier ops took.

Two suites:

- mid-run attach parity: run a randomized batched op sequence, attach a
  recording tap (and tracer) at an arbitrary point, and assert the
  post-attach event stream, DeviceStats, unfenced-word candidates, and
  seeded crash image all match a device that ran the exact per-element
  loop throughout (forced by a null tracer).
- error-path parity (the bug this issue fixed): a ``store_word_v``
  batch failing mid-way used to leave the applied prefix *uncounted* in
  ``DeviceStats`` on the fused path — the per-element loop counts it —
  so anything reading stats deltas afterwards (obs attribution, write
  amplification, bench exports) diverged based on whether an observer
  happened to be attached.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import OutOfRangeError, TornWriteError
from repro.nvm.device import NvmDevice

SIZE = 1 << 16


class RecordingTap:
    def __init__(self):
        self.events = []

    def on_store(self, offset, length, kind):
        self.events.append(("store", offset, length, kind))

    def on_flush(self, offset, length, nlines):
        self.events.append(("flush", offset, length, nlines))

    def on_fence(self):
        self.events.append(("fence",))

    def on_drain(self):
        self.events.append(("drain",))


class RecordingTracer:
    def __init__(self):
        self.segments = []

    def io_cached(self, n):
        self.segments.append(("cached", n))

    def io_write(self, n):
        self.segments.append(("write", n))

    def io_read(self, n):
        self.segments.append(("read", n))

    def io_flush(self, n):
        self.segments.append(("flush", n))

    def io_fence(self):
        self.segments.append(("fence",))


class NullTracer:
    """Forces the per-element loop without recording anything."""

    def io_cached(self, n):
        pass

    def io_write(self, n):
        pass

    def io_read(self, n):
        pass

    def io_flush(self, n):
        pass

    def io_fence(self):
        pass


def _gen_ops(rng, n):
    ops = []
    for _ in range(n):
        kind = rng.choice(
            ["store_v", "nt_store_v", "flush_v", "store_word_v", "fence", "flush"]
        )
        if kind in ("store_v", "nt_store_v"):
            writes = [
                (
                    rng.randrange(0, SIZE - 256),
                    bytes([rng.randrange(256)]) * rng.choice([0, 1, 8, 13, 64, 200]),
                )
                for _ in range(rng.randint(1, 5))
            ]
            ops.append((kind, writes))
        elif kind == "flush_v":
            ops.append(
                (
                    kind,
                    [
                        (rng.randrange(0, SIZE - 256), rng.choice([0, 8, 64, 256]))
                        for _ in range(rng.randint(1, 4))
                    ],
                )
            )
        elif kind == "store_word_v":
            ops.append(
                (
                    kind,
                    [
                        (rng.randrange(0, SIZE // 8 - 1) * 8, rng.randrange(1 << 32))
                        for _ in range(rng.randint(1, 4))
                    ],
                )
            )
        elif kind == "fence":
            ops.append((kind, None))
        else:
            ops.append((kind, (rng.randrange(0, SIZE - 256), rng.choice([8, 64, 256]))))
    return ops


def _apply(device, op):
    kind, arg = op
    if kind == "fence":
        device.fence()
    elif kind == "flush":
        device.flush(*arg)
    else:
        getattr(device, kind)(arg)


@pytest.mark.parametrize("seed", range(30))
def test_midrun_tap_attach_event_parity(seed):
    """A tap attached between batched ops sees the same events, stats,
    and crash-image candidates whether the earlier ops took the bulk
    path or the per-element loop."""
    rng = random.Random(seed)
    ops = _gen_ops(rng, 40)
    attach_at = rng.randrange(0, len(ops))

    bulk = NvmDevice(SIZE)  # bulk fast path until attach
    slow = NvmDevice(SIZE)
    slow.tracer = NullTracer()  # per-element loop throughout
    taps = (RecordingTap(), RecordingTap())

    for i, op in enumerate(ops):
        if i == attach_at:
            bulk.analysis_tap, slow.analysis_tap = taps
        _apply(bulk, op)
        _apply(slow, op)

    assert taps[0].events == taps[1].events
    assert vars(bulk.stats) == vars(slow.stats)
    assert bulk.unfenced_words() == slow.unfenced_words()
    assert bulk.crash_image(rng=random.Random(7)) == slow.crash_image(rng=random.Random(7))


@pytest.mark.parametrize("seed", range(10))
def test_midrun_tracer_attach_segment_parity(seed):
    """Same as above for a tracer attached mid-run: identical post-attach
    cost segments regardless of which path the prefix took."""
    rng = random.Random(1000 + seed)
    ops = _gen_ops(rng, 30)
    attach_at = rng.randrange(0, len(ops))

    bulk = NvmDevice(SIZE)
    slow = NvmDevice(SIZE)
    slow.analysis_tap = RecordingTap()  # any observer forces per-element
    tracers = (RecordingTracer(), RecordingTracer())

    for i, op in enumerate(ops):
        if i == attach_at:
            bulk.tracer, slow.tracer = tracers
        _apply(bulk, op)
        _apply(slow, op)

    assert tracers[0].segments == tracers[1].segments
    assert vars(bulk.stats) == vars(slow.stats)


@pytest.mark.parametrize(
    "words, exc",
    [
        ([(0, 1), (64, 2), (130, 3), (192, 4)], TornWriteError),  # unaligned mid-batch
        ([(0, 1), (SIZE - 8, 2), (SIZE, 3)], OutOfRangeError),  # out of range at end
        ([(3, 1)], TornWriteError),  # first word already bad
    ],
)
def test_store_word_v_error_path_parity(words, exc):
    """Regression (ISSUE 8): a store_word_v batch failing mid-way must
    leave identical DeviceStats and buffer state on both paths.  The
    fused path used to apply the prefix to the medium but commit *no*
    stats, so a tap/tracer attached after the failure read diverging
    counters depending on the pre-attach path."""
    bulk = NvmDevice(SIZE)
    slow = NvmDevice(SIZE)
    slow.tracer = NullTracer()

    for device in (bulk, slow):
        with pytest.raises(exc):
            device.store_word_v(words)

    assert vars(bulk.stats) == vars(slow.stats)
    assert bulk.buffer.working == slow.buffer.working
    assert bulk.buffer._pending_log == slow.buffer._pending_log
    assert bulk.unfenced_words() == slow.unfenced_words()

    # a tap attached after the failed batch sees identical follow-on events
    taps = (RecordingTap(), RecordingTap())
    bulk.analysis_tap, slow.analysis_tap = taps
    for device in (bulk, slow):
        device.store_word_v([(256, 9)])
        device.fence()
    assert taps[0].events == taps[1].events
    assert vars(bulk.stats) == vars(slow.stats)


@pytest.mark.parametrize("vec", ["store_v", "nt_store_v"])
def test_store_v_error_path_parity(vec):
    """The store_v/nt_store_v validate-before-mutate fallback applies the
    exact per-element prefix (state, stats, exception) on a bad element."""
    writes = [(0, b"x" * 16), (4096, b"y" * 16), (SIZE - 4, b"z" * 16), (8192, b"w" * 8)]
    bulk = NvmDevice(SIZE)
    slow = NvmDevice(SIZE)
    slow.tracer = NullTracer()
    for device in (bulk, slow):
        with pytest.raises(OutOfRangeError):
            getattr(device, vec)(writes)
    assert vars(bulk.stats) == vars(slow.stats)
    assert bulk.buffer.working == slow.buffer.working
    assert bulk.unfenced_words() == slow.unfenced_words()
