"""Protocol linter: every rule positive + negative, pragmas, real tree."""

from __future__ import annotations

import textwrap

from repro.analysis.lint import (
    LINT_RULES,
    LintFinding,
    lint_source,
    main,
    run_lint,
)

BENCH = "repro/bench/fake.py"  # unsanctioned, not replayable
CORE = "repro/core/fake.py"  # sanctioned and replayable


def lint(src, module):
    return lint_source(textwrap.dedent(src), path=module, module=module)


def rules_of(findings):
    return [f.rule for f in findings]


# -- raw-store-outside-protocol --------------------------------------------


def test_raw_store_flagged_outside_protocol_modules():
    src = """
    def warm(device):
        device.store(0, b"x" * 64)
    """
    assert rules_of(lint(src, BENCH)) == ["raw-store-outside-protocol"]


def test_raw_store_vectorized_and_nt_also_flagged():
    src = """
    def warm(fs):
        fs.device.nt_store_v(((0, b"x"),))
    """
    findings = lint(src, BENCH)
    assert "raw-store-outside-protocol" in rules_of(findings)


def test_raw_store_allowed_in_protocol_module():
    src = """
    def persist_block(device):
        device.store(0, b"x" * 64)
        device.persist(0, 64)
    """
    assert lint(src, CORE) == []


def test_non_device_receiver_not_flagged():
    src = """
    def save(cache):
        cache.store(0, b"x")
    """
    assert lint(src, BENCH) == []


# -- unfenced-nt-store -----------------------------------------------------


def test_nt_store_without_fence_flagged_even_in_protocol_module():
    src = """
    def leak(device):
        device.nt_store(0, b"x" * 64)
    """
    assert rules_of(lint(src, CORE)) == ["unfenced-nt-store"]


def test_nt_store_with_fence_clean():
    src = """
    def ok(device):
        device.nt_store(0, b"x" * 64)
        device.fence()
    """
    assert lint(src, CORE) == []


def test_nt_store_with_persist_or_drain_clean():
    src = """
    def ok(device):
        device.nt_store_v(((0, b"x"),))
        device.drain()
    """
    assert lint(src, CORE) == []


def test_nested_function_fences_do_not_cover_outer_nt_store():
    src = """
    def outer(device):
        device.nt_store(0, b"x" * 64)
        def inner():
            device.fence()
    """
    assert rules_of(lint(src, CORE)) == ["unfenced-nt-store"]


# -- mgl-lock-order --------------------------------------------------------


def test_unsorted_terminal_lock_loop_flagged():
    src = """
    def grab(self, plan):
        for level, index in plan.terminals:
            self.locks.lock((level, index), "x")
    """
    assert rules_of(lint(src, CORE)) == ["mgl-lock-order"]


def test_sorted_terminal_lock_loop_clean():
    src = """
    def grab(self, plan):
        for level, index in sorted(plan.terminals, key=lambda t: t[1]):
            self.locks.lock((level, index), "x")
    """
    assert lint(src, CORE) == []


def test_terminal_loop_without_locking_clean():
    src = """
    def count(self, plan):
        for level, index in plan.terminals:
            print(level, index)
    """
    assert lint(src, CORE) == []


# -- ambient-nondeterminism ------------------------------------------------


def test_time_call_in_replayable_module_flagged():
    src = """
    def stamp():
        return time.time()
    """
    assert rules_of(lint(src, CORE)) == ["ambient-nondeterminism"]


def test_ambient_random_and_unseeded_rng_flagged():
    src = """
    def pick():
        x = random.randrange(10)
        rng = random.Random()
        return x, rng
    """
    assert rules_of(lint(src, CORE)) == [
        "ambient-nondeterminism",
        "ambient-nondeterminism",
    ]


def test_seeded_rng_and_non_replayable_module_clean():
    seeded = """
    def pick(seed):
        return random.Random(seed).randrange(10)
    """
    assert lint(seeded, CORE) == []
    ambient = """
    def stamp():
        return time.time()
    """
    assert lint(ambient, "repro/bench/fake.py") == []


# -- pragmas ---------------------------------------------------------------


def test_justified_pragma_suppresses():
    src = """
    def leak(device):
        device.nt_store(0, b"x")  # analysis: allow(unfenced-nt-store) -- caller fences
    """
    assert lint(src, CORE) == []


def test_pragma_on_line_above_also_suppresses():
    src = """
    def leak(device):
        # analysis: allow(unfenced-nt-store) -- caller fences
        device.nt_store(0, b"x")
    """
    assert lint(src, CORE) == []


def test_unjustified_pragma_reported_not_suppressed():
    src = """
    def leak(device):
        device.nt_store(0, b"x")  # analysis: allow(unfenced-nt-store)
    """
    # both the bad pragma AND the original violation are reported
    assert sorted(rules_of(lint(src, CORE))) == ["invalid-pragma", "unfenced-nt-store"]


def test_pragma_for_different_rule_does_not_suppress():
    src = """
    def leak(device):
        device.nt_store(0, b"x")  # analysis: allow(redundant-flush) -- wrong rule
    """
    assert rules_of(lint(src, CORE)) == ["unfenced-nt-store"]


# -- plumbing --------------------------------------------------------------


def test_syntax_error_surfaces_as_finding():
    assert rules_of(lint("def broken(:", CORE)) == ["syntax-error"]


def test_finding_format_is_path_line_rule():
    f = LintFinding(path="src/x.py", line=3, rule="unfenced-nt-store", message="m")
    assert f.format() == "src/x.py:3: unfenced-nt-store: m"


def test_every_documented_rule_has_a_description():
    assert set(LINT_RULES) == {
        "raw-store-outside-protocol",
        "unfenced-nt-store",
        "mgl-lock-order",
        "ambient-nondeterminism",
        "invalid-pragma",
        "stale-pragma",
    }
    assert all(LINT_RULES.values())


# -- the real tree must be clean (this is the CI gate) ---------------------


def test_src_repro_is_lint_clean():
    findings = run_lint(["src/repro"])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_main_exit_codes(tmp_path, capsys):
    assert main(["src/repro"]) == 0
    assert "clean" in capsys.readouterr().out
    bad = tmp_path / "bad.py"
    bad.write_text("def f(device):\n    device.nt_store(0, b'x')\n")
    assert main([str(bad)]) == 1
    assert "finding" in capsys.readouterr().out
