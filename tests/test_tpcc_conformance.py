"""TPC-C semantic conformance beyond throughput."""

from __future__ import annotations

import pytest

from repro.bench.registry import make_fs
from repro.db import Database
from repro.workloads.tpcc import CUSTOMERS_PER_DISTRICT, DISTRICTS, ITEMS, TpccDriver


@pytest.fixture(scope="module")
def warm_driver():
    fs = make_fs("Ext4-DAX", device_size=192 << 20)
    db = Database(fs, name="tpcc.db", journal_mode="wal", capacity=40 << 20)
    driver = TpccDriver(db)
    driver.create_schema()
    driver.load()
    for _ in range(40):
        driver.run_transaction()
    return db, driver


class TestLoad:
    def test_cardinalities(self, warm_driver):
        db, _ = warm_driver
        assert db.table("warehouse").count() == 1
        assert db.table("district").count() == DISTRICTS
        assert db.table("customer").count() == DISTRICTS * CUSTOMERS_PER_DISTRICT
        assert db.table("item").count() == ITEMS
        assert db.table("stock").count() == ITEMS

    def test_customer_name_index_exists(self, warm_driver):
        db, _ = warm_driver
        customer = db.table("customer")
        assert "by_last" in customer.indexes
        matches = list(customer.lookup_by("by_last", ("LAST3",)))
        assert matches and all(row[1] == "LAST3" for row in matches)


class TestTransactionEffects:
    def test_district_counters_match_orders(self, warm_driver):
        db, driver = warm_driver
        for d in range(1, DISTRICTS + 1):
            next_oid = db.table("district").get((1, d))[3]
            assert next_oid == driver.next_order_id[d]
            stored = sum(1 for _ in db.table("orders").scan_prefix((1, d)))
            assert stored == next_oid - 1

    def test_order_lines_complete(self, warm_driver):
        db, driver = warm_driver
        for d in range(1, DISTRICTS + 1):
            for o in range(1, driver.next_order_id[d]):
                order = db.table("orders").get((1, d, o))
                lines = list(db.table("order_line").scan_prefix((1, d, o)))
                assert order is not None
                assert len(lines) == order[1], (d, o)
                assert all(1 <= row[0] <= ITEMS for _, row in lines)

    def test_new_order_queue_subset_of_orders(self, warm_driver):
        db, driver = warm_driver
        for key, _ in db.table("new_order").scan_all():
            pass  # scanning must not raise
        for d in range(1, DISTRICTS + 1):
            pending = sum(1 for _ in db.table("new_order").scan_prefix((1, d)))
            total = driver.next_order_id[d] - 1
            delivered = driver.next_delivery[d] - 1
            assert pending == total - delivered, d

    def test_warehouse_ytd_equals_history_sum(self, warm_driver):
        db, _ = warm_driver
        ytd = db.table("warehouse").get((1,))[2]
        paid = sum(row[0] for _, row in db.table("history").scan_all())
        assert ytd == pytest.approx(300000.0 + paid)

    def test_delivered_orders_marked(self, warm_driver):
        db, driver = warm_driver
        for d in range(1, DISTRICTS + 1):
            for o in range(1, driver.next_delivery[d]):
                order = db.table("orders").get((1, d, o))
                if order is not None:
                    assert order[2] == 1  # carrier assigned

    def test_stock_order_counts_monotone(self, warm_driver):
        db, _ = warm_driver
        ordered = 0
        for _, row in db.table("stock").scan_all():
            assert row[1] >= 0 and row[2] >= 0  # ytd, order_cnt
            ordered += row[2]
        # Every order line incremented exactly one stock order counter.
        total_lines = db.table("order_line").count()
        assert ordered == total_lines
