"""Row/key codecs: roundtrips and order preservation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.db.records import decode_row, encode_key, encode_row

values = st.one_of(
    st.none(),
    st.integers(-(2**62), 2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)


class TestRows:
    def test_simple_roundtrip(self):
        row = (1, "hello", 3.5, b"\x00\xff", None)
        assert decode_row(encode_row(row)) == row

    def test_empty_row(self):
        assert decode_row(encode_row(())) == ()

    def test_bool_coerced_to_int(self):
        assert decode_row(encode_row((True, False))) == (1, 0)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_row(([1, 2],))

    @given(st.lists(values, max_size=10))
    def test_roundtrip_property(self, row):
        assert decode_row(encode_row(tuple(row))) == tuple(row)

    def test_unicode(self):
        row = ("héllo wörld ✓", "日本語")
        assert decode_row(encode_row(row)) == row


int_keys = st.lists(st.integers(-(2**62), 2**62), min_size=1, max_size=4)
str_keys = st.lists(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=127), max_size=8), min_size=1, max_size=3)


class TestKeys:
    def test_deterministic(self):
        assert encode_key((1, "a")) == encode_key((1, "a"))

    def test_distinct_keys_distinct_encodings(self):
        assert encode_key((1,)) != encode_key((2,))
        assert encode_key(("a",)) != encode_key(("b",))

    @given(int_keys, int_keys)
    def test_int_order_preserved(self, a, b):
        # Compare same-length prefixes so tuple order is well defined.
        n = min(len(a), len(b))
        a, b = tuple(a[:n]), tuple(b[:n])
        assert (encode_key(a) < encode_key(b)) == (a < b)

    @given(str_keys, str_keys)
    def test_str_order_preserved(self, a, b):
        n = min(len(a), len(b))
        a, b = tuple(a[:n]), tuple(b[:n])
        assert (encode_key(a) < encode_key(b)) == (a < b)

    def test_composite_prefix_scan_bound(self):
        """encode_key(prefix)+0xff upper-bounds every extension."""
        prefix = encode_key((1, 5))
        full = encode_key((1, 5, 99))
        assert prefix <= full < prefix + b"\xff"
        other = encode_key((1, 6))
        assert not (prefix <= other < prefix + b"\xff")

    def test_negative_ints_order(self):
        assert encode_key((-5,)) < encode_key((0,)) < encode_key((5,))

    def test_unsupported_key_part(self):
        with pytest.raises(TypeError):
            encode_key((3.14,))
