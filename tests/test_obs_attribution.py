"""Span-attribution conservation on real workload replays.

The contract: per-layer virtual time sums to the run's total elapsed
virtual time, and per-layer device bytes sum *exactly* (integers) to
``DeviceStats.stored_bytes`` — for both workload families, in both
sync and async write-back modes.
"""

from __future__ import annotations

import pytest

from repro.obs.attribution import (
    UNATTRIBUTED,
    lock_contention,
    span_table,
    time_breakdown,
    write_breakdown,
)
from repro.obs.harness import run_workload


@pytest.fixture(scope="module")
def runs():
    """One telemetered replay per (workload, config) cell."""
    return {
        (w, c): run_workload(w, c)
        for w in ("fio", "txn")
        for c in ("mgsp-sync", "mgsp-async")
    }


@pytest.mark.parametrize("workload", ["fio", "txn"])
@pytest.mark.parametrize("config", ["mgsp-sync", "mgsp-async"])
def test_time_conservation(runs, workload, config):
    tel = runs[(workload, config)].telemetry
    rows = time_breakdown(tel)
    total = tel.total_ns()
    assert total > 0
    assert sum(ns for _, ns in rows) == pytest.approx(total, rel=1e-9)


@pytest.mark.parametrize("workload", ["fio", "txn"])
@pytest.mark.parametrize("config", ["mgsp-sync", "mgsp-async"])
def test_byte_conservation_is_exact(runs, workload, config):
    run = runs[(workload, config)]
    tel = run.telemetry
    rows = write_breakdown(tel)
    # Integer meters: exact equality, not approx. The telemetry
    # attached to a fresh device, so its byte total is the device's.
    assert sum(b for _, b in rows) == tel.total_bytes()
    assert tel.total_bytes() == run.fs.device.stats.stored_bytes


@pytest.mark.parametrize("workload", ["fio", "txn"])
@pytest.mark.parametrize("config", ["mgsp-sync", "mgsp-async"])
def test_expected_layers_present(runs, workload, config):
    tel = runs[(workload, config)].telemetry
    times = dict(time_breakdown(tel))
    sizes = dict(write_breakdown(tel))
    # The MGSP write protocol always exercises these layers.
    for layer in ("data", "log", "metadata", "plan"):
        assert times.get(layer, 0) > 0, f"no {layer} time in {workload}/{config}"
    assert sizes.get("data", 0) > 0
    assert sizes.get("log", 0) > 0
    if workload == "txn":
        assert times.get("txn", 0) > 0
    if config == "mgsp-async":
        # Deferred write-back: the flusher's checkpoint layer shows up.
        assert times.get("checkpoint", 0) > 0


def test_unattributed_residual_is_small(runs):
    """Instrumentation coverage: the residual must stay a sliver of the
    total (it is think-time between spans, not protocol work)."""
    tel = runs[("fio", "mgsp-sync")].telemetry
    times = dict(time_breakdown(tel))
    assert times.get(UNATTRIBUTED, 0.0) < 0.05 * tel.total_ns()


def test_span_table_sorted_by_self_time(runs):
    tel = runs[("fio", "mgsp-sync")].telemetry
    rows = span_table(tel)
    assert rows, "no spans recorded"
    self_times = [r[2] for r in rows]
    assert self_times == sorted(self_times, reverse=True)
    names = {r[0] for r in rows}
    assert "write.data" in names and "op.write" in names


def test_lock_contention_shape(runs):
    tel = runs[("fio", "mgsp-sync")].telemetry
    rows = lock_contention(tel, top=5)
    # Single-simulated-thread replays may have no waits at all; the
    # shape contract still holds.
    assert len(rows) <= 5
    for key, blocked, wait_ns in rows:
        assert isinstance(key, str) and blocked >= 1 and wait_ns >= 0


def test_recovery_spans_attribute(runs):
    """Crash + recover under telemetry: the recovery layer appears and
    conservation still holds across the recovery run."""
    from repro.core.recovery import recover
    from repro.nvm.device import NvmDevice
    from repro.obs.spans import Telemetry

    fs = runs[("fio", "mgsp-sync")].fs
    image = fs.device.crash_image(persist_words=fs.device.unfenced_words())
    tel = Telemetry()
    recovered, _stats = recover(NvmDevice.from_image(bytes(image)), telemetry=tel)
    times = dict(time_breakdown(tel))
    assert times.get("recovery", 0) > 0
    assert sum(times.values()) == pytest.approx(tel.total_ns(), rel=1e-9)
