"""TraceRecorder and OpTrace."""

from __future__ import annotations

from repro.nvm.timing import OptaneTiming, TimingModel
from repro.sim.trace import NullRecorder, OpTrace, TraceRecorder


class TestOpTrace:
    def test_duration_sums_compute_and_io(self):
        tr = OpTrace(segments=[("compute", 10.0), ("io", 20.0)])
        assert tr.duration_ns() == 30.0

    def test_duration_charges_lock_events(self):
        tr = OpTrace(segments=[("lock", "k", "W"), ("unlock", "k")])
        assert tr.duration_ns(lock_ns=5.0) == 10.0

    def test_io_ns(self):
        tr = OpTrace(segments=[("compute", 10.0), ("io", 20.0), ("io", 5.0, 50.0)])
        assert tr.io_ns() == 25.0

    def test_lock_keys(self):
        tr = OpTrace(segments=[("lock", "a", "R"), ("lock", "b", "W"), ("unlock", "a")])
        assert tr.lock_keys() == ["a", "b"]


class TestRecorder:
    def test_op_lifecycle(self):
        rec = TraceRecorder(OptaneTiming())
        rec.begin_op("write")
        rec.compute(100)
        trace = rec.end_op()
        assert trace.name == "write"
        assert trace.duration_ns() == 100
        assert rec.take_completed() == [trace]
        assert rec.take_completed() == []

    def test_ambient_costs_are_kept(self):
        rec = TraceRecorder(OptaneTiming())
        rec.compute(50)  # outside any op
        rec.begin_op("write")
        rec.compute(10)
        rec.end_op()
        traces = rec.take_completed()
        assert [t.name for t in traces] == ["ambient", "write"]
        assert traces[0].duration_ns() == 50

    def test_disabled_recorder_drops_segments(self):
        rec = TraceRecorder(OptaneTiming())
        rec.enabled = False
        rec.begin_op("x")
        rec.compute(100)
        assert rec.end_op().segments == []

    def test_io_write_carries_occupancy(self):
        rec = TraceRecorder(OptaneTiming())
        rec.begin_op("x")
        rec.io_write(4096)
        (seg,) = rec.end_op().segments
        assert seg[0] == "io"
        assert len(seg) == 3
        assert seg[2] >= seg[1]  # channel occupancy >= visible latency

    def test_io_read_and_flush_and_fence(self):
        rec = TraceRecorder(OptaneTiming())
        rec.begin_op("x")
        rec.io_read(100)
        rec.io_flush(2)
        rec.io_flush(0)  # no lines -> no segment
        rec.io_fence()
        segs = rec.end_op().segments
        assert [s[0] for s in segs] == ["io", "io", "compute"]

    def test_zero_compute_dropped(self):
        rec = TraceRecorder(OptaneTiming())
        rec.begin_op("x")
        rec.compute(0)
        assert rec.end_op().segments == []


class TestNullRecorder:
    def test_accepts_everything_silently(self):
        rec = NullRecorder()
        rec.begin_op("x")
        rec.compute(10)
        rec.lock("k", "W")
        rec.unlock("k")
        rec.io_write(10)
        rec.io_cached(10)
        rec.io_read(10)
        rec.io_flush(1)
        rec.io_fence()
        assert rec.end_op().segments == []


class TestTimingModel:
    def test_media_costs_monotone_in_size(self):
        t = OptaneTiming()
        assert t.media_write_ns(8192) > t.media_write_ns(4096) > 0
        assert t.media_read_ns(8192) > t.media_read_ns(4096) > 0
        assert t.media_write_ns(0) == 0.0
        assert t.media_read_ns(0) == 0.0

    def test_overrides(self):
        t = OptaneTiming(syscall_ns=123.0)
        assert t.syscall_ns == 123.0

    def test_zero_default_model(self):
        t = TimingModel()
        assert t.media_write_ns(100) == 0.0
        assert t.dram_copy_ns(100) == 0.0
