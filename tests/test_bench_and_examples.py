"""Bench harness plumbing + the runnable examples."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro.bench.figures import EXPERIMENTS, run_all, tab02
from repro.bench.harness import Table, run_one, sweep_fio
from repro.bench.registry import FS_NAMES, device_size_for, make_fs
from repro.workloads.fio import FioJob

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestRegistry:
    @pytest.mark.parametrize("name", FS_NAMES)
    def test_factories(self, name):
        fs = make_fs(name, device_size=64 << 20)
        assert fs.name == name

    def test_ext4_modes(self):
        assert make_fs("Ext4-ordered", device_size=64 << 20).name == "Ext4-ordered"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_fs("ZFS")

    def test_device_size_for(self):
        assert device_size_for(1 << 20) == 64 << 20
        assert device_size_for(64 << 20) == 256 << 20


class TestTable:
    def test_set_value_render(self):
        table = Table(title="T")
        table.set("a", "x", 1.25)
        table.set("a", "y", "hi")
        table.set("b", "x", 3)
        text = table.render()
        assert "T" in text and "1.2" in text and "hi" in text
        assert table.value("a", "x") == pytest.approx(1.2, abs=0.06)
        assert str(table) == text

    def test_missing_cell_rendered_as_dash(self):
        table = Table(title="T")
        table.set("a", "x", 1)
        table.set("b", "y", 2)
        assert "-" in table.render()


class TestHarness:
    def test_run_one(self):
        result = run_one("MGSP", FioJob(op="write", bs=4096, fsize=4 << 20, nops=20))
        assert result.fs_name == "MGSP"
        assert result.throughput_mb_s > 0

    def test_sweep_fio(self):
        jobs = [FioJob(op="write", bs=bs, fsize=4 << 20, nops=20) for bs in (1024, 4096)]
        table = sweep_fio(("Ext4-DAX", "MGSP"), jobs, title="sweep")
        assert table.value("MGSP", "4096") > 0
        assert set(table.rows) == {"Ext4-DAX", "MGSP"}


class TestFigures:
    def test_registry_complete(self):
        expected = {
            "fig01", "fig07", "fig08-write", "fig08-randwrite", "fig08-read",
            "fig08-randread", "fig09", "fig10-1k", "fig10-4k", "fig10-16k",
            "fig11-wal", "fig11-off", "fig12-wal", "fig12-off", "tab02",
            "fig13", "recovery",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_all_selection(self):
        results = dict(run_all(["tab02"]))
        assert "tab02" in results
        assert "amplification" in results["tab02"]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            list(run_all(["fig99"]))

    def test_tab02_quick(self):
        table = tab02(nops=60)
        assert 1.8 < table.value("Libnvmmio", "4K") < 2.3
        assert table.value("MGSP", "4K") < 1.2


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "crash_recovery.py",
        "database_on_mgsp.py",
        "atomic_transactions.py",
        "contention_timeline.py",
    ],
)
def test_examples_run_clean(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()


def test_fio_comparison_example(monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", ["fio_comparison.py", "--nops", "40"])
    runpy.run_path(str(EXAMPLES / "fio_comparison.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "MGSP" in out and "x" in out
