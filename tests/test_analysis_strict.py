"""Tier-1 MGSP workloads replayed under the analyzer in strict mode.

Sync configs must be completely clean (zero findings, perf included —
the write protocol neither wastes a flush nor a fence). Async configs
are clean of *errors*; their fsync-after-epoch-drain fences surface as
intentional redundant-fence diagnostics (documented in docs/analysis.md).
"""

from __future__ import annotations

import pytest

from repro.analysis import run_workload

WORKLOADS = ["fio-randwrite", "fio-write", "txn-mixed", "ycsb-a"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_sync_workloads_fully_clean(workload):
    report = run_workload(workload, "sync", perf=True)
    assert report.parity_ok, "event indices drifted from crashsweep enumeration"
    assert report.findings == [], report.format()
    assert report.events > 0


@pytest.mark.parametrize("workload", WORKLOADS)
def test_async_workloads_error_free(workload):
    report = run_workload(workload, "async", perf=True)
    assert report.parity_ok
    assert report.errors == [], report.format()
    # anything that does surface is the documented fsync diagnostic
    assert {f.rule for f in report.findings} <= {"redundant-fence"}


def test_aliases_resolve():
    report = run_workload("fio", "mgsp-sync", perf=False)
    assert report.workload == "fio-randwrite"
    assert report.config_name == "sync"
    assert report.errors == []
