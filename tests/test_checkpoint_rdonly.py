"""Online checkpoint API and read-only open semantics."""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem
from repro.core.verify import verify_file
from repro.errors import ReadOnlyError
from repro.fsapi.interface import OpenFlags

from tests.conftest import ALL_FS_NAMES, make_filesystem

CAP = 512 * 1024


@pytest.fixture
def mgsp_handle():
    fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16))
    return fs.create("c", capacity=CAP)


class TestCheckpoint:
    def test_checkpoint_preserves_content(self, mgsp_handle):
        f = mgsp_handle
        rng = random.Random(1)
        ref = bytearray(CAP)
        for _ in range(100):
            off = rng.randrange(0, CAP - 1)
            ln = min(rng.choice([100, 4096, 20_000]), CAP - off)
            payload = bytes([rng.randrange(1, 255)]) * ln
            f.write(off, payload)
            ref[off : off + ln] = payload
        copied = f.checkpoint()
        assert copied > 0
        size = f.size
        assert f.read(0, size) == bytes(ref[:size])

    def test_checkpoint_reclaims_log_space(self, mgsp_handle):
        f = mgsp_handle
        fs = f.fs
        for i in range(32):
            f.write(i * 4096, b"x" * 4096)
        assert fs.logs.in_use > 0
        f.checkpoint()
        assert fs.logs.in_use == 0

    def test_writes_continue_after_checkpoint(self, mgsp_handle):
        f = mgsp_handle
        f.write(0, b"before")
        f.checkpoint()
        f.write(6, b"after")
        assert f.read(0, 11) == b"beforeafter"
        assert verify_file(f).ok

    def test_checkpoint_idempotent_when_clean(self, mgsp_handle):
        f = mgsp_handle
        f.write(0, b"x" * 1000)
        f.checkpoint()
        assert f.checkpoint() == 0

    def test_state_verifies_after_checkpoint(self, mgsp_handle):
        f = mgsp_handle
        for i in range(20):
            f.write(i * 10_000, b"y" * 5000)
        f.checkpoint()
        report = verify_file(f)
        assert report.ok, report.errors
        assert report.valid_logs == 0

    def test_checkpoint_bounds_log_usage_over_time(self, mgsp_handle):
        """Periodic checkpointing keeps log-area usage bounded even for
        endless random-write workloads."""
        f = mgsp_handle
        fs = f.fs
        rng = random.Random(2)
        peak = 0
        for i in range(300):
            f.write(rng.randrange(CAP // 4096) * 4096, b"z" * 4096)
            if i % 100 == 99:
                f.checkpoint()
            peak = max(peak, fs.logs.in_use)
        assert peak <= CAP + 64 * 1024


class TestReadOnly:
    @pytest.mark.parametrize("name", ALL_FS_NAMES)
    def test_rdonly_blocks_writes_everywhere(self, name):
        fs = make_filesystem(name, device_size=32 << 20)
        f = fs.create("r", 64 * 1024)
        f.write(0, b"data")
        f.close()
        ro = fs.open("r", OpenFlags.RDONLY)
        assert ro.read(0, 4) == b"data"
        with pytest.raises(ReadOnlyError):
            ro.write(0, b"nope")

    def test_rdwr_default_is_writable(self):
        fs = make_filesystem("MGSP", device_size=32 << 20)
        f = fs.create("r", 64 * 1024)
        f.close()
        rw = fs.open("r")
        rw.write(0, b"yes")
        assert rw.read(0, 3) == b"yes"
