"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.analysis import attach_analyzer
from repro.core import MgspConfig, MgspFilesystem
from repro.fs import Ext4, Ext4Dax, Libnvmmio, Nova, Splitfs
from repro.nvm.device import NvmDevice

SMALL_DEVICE = 32 << 20


@pytest.fixture
def device():
    return NvmDevice(SMALL_DEVICE)


@pytest.fixture
def mgsp():
    """An MGSP mount with the persistence-order analyzer armed in
    strict mode: any error-severity protocol violation observed while
    the test drove the filesystem fails the test at teardown."""
    fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16))
    analyzer = attach_analyzer(fs, perf=False)
    yield fs
    errors = analyzer.errors
    assert not errors, "persistence-protocol violations:\n" + "\n".join(
        f.format() for f in errors
    )


_FACTORIES = {
    "Ext4-DAX": lambda size: Ext4Dax(device_size=size),
    "Ext4-wb": lambda size: Ext4(device_size=size, mode="wb"),
    "Ext4-ordered": lambda size: Ext4(device_size=size, mode="ordered"),
    "Ext4-journal": lambda size: Ext4(device_size=size, mode="journal"),
    "NOVA": lambda size: Nova(device_size=size),
    "Libnvmmio": lambda size: Libnvmmio(device_size=size),
    "SplitFS": lambda size: Splitfs(device_size=size),
    "MGSP": lambda size: MgspFilesystem(device_size=size),
}


def make_filesystem(name, device_size=64 << 20):
    return _FACTORIES[name](device_size)


def make_all_filesystems(device_size=64 << 20):
    """Fresh instances of every file system (for contract tests)."""
    return [factory(device_size) for factory in _FACTORIES.values()]


ALL_FS_NAMES = [
    "Ext4-DAX",
    "Ext4-wb",
    "Ext4-ordered",
    "Ext4-journal",
    "NOVA",
    "Libnvmmio",
    "SplitFS",
    "MGSP",
]
