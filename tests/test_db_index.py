"""Secondary indexes on database tables."""

from __future__ import annotations

import random

import pytest

from repro.db import Database
from repro.errors import SchemaError
from repro.fs import Ext4Dax


@pytest.fixture
def table():
    fs = Ext4Dax(device_size=96 << 20)
    db = Database(fs, journal_mode="wal")
    t = db.create_table("people")
    t.create_index("by_name", (0,))
    return fs, db, t


class TestIndexes:
    def test_lookup_by_matches(self, table):
        _, _, t = table
        for i in range(12):
            t.insert((i,), (f"name{i % 3}", i))
        rows = list(t.lookup_by("by_name", ("name1",)))
        assert sorted(r[1] for r in rows) == [1, 4, 7, 10]

    def test_update_moves_index_entry(self, table):
        _, _, t = table
        t.insert((1,), ("alice", 10))
        t.update((1,), ("bob", 10))
        assert list(t.lookup_by("by_name", ("alice",))) == []
        assert list(t.lookup_by("by_name", ("bob",))) == [("bob", 10)]

    def test_delete_removes_index_entry(self, table):
        _, _, t = table
        t.insert((1,), ("alice", 10))
        t.delete((1,))
        assert list(t.lookup_by("by_name", ("alice",))) == []

    def test_upsert_replaces_entry(self, table):
        _, _, t = table
        t.insert((1,), ("alice", 10))
        t.insert((1,), ("carol", 11))  # upsert same pk
        assert list(t.lookup_by("by_name", ("alice",))) == []
        assert list(t.lookup_by("by_name", ("carol",))) == [("carol", 11)]

    def test_backfill_existing_rows(self):
        fs = Ext4Dax(device_size=96 << 20)
        db = Database(fs, journal_mode="wal")
        t = db.create_table("people")
        for i in range(8):
            t.insert((i,), ("dup" if i % 2 else "uniq%d" % i, i))
        t.create_index("late", (0,))
        assert len(list(t.lookup_by("late", ("dup",)))) == 4

    def test_multi_column_index(self):
        fs = Ext4Dax(device_size=96 << 20)
        db = Database(fs, journal_mode="off")
        t = db.create_table("orders")
        t.create_index("by_region_status", (0, 1))
        for i in range(10):
            t.insert((i,), ("east" if i < 5 else "west", i % 2, i))
        rows = list(t.lookup_by("by_region_status", ("east", 0)))
        assert sorted(r[2] for r in rows) == [0, 2, 4]

    def test_duplicate_index_rejected(self, table):
        _, _, t = table
        with pytest.raises(SchemaError):
            t.create_index("by_name", (0,))

    def test_unknown_index_rejected(self, table):
        _, _, t = table
        with pytest.raises(SchemaError):
            list(t.lookup_by("ghost", ("x",)))

    def test_index_survives_reopen(self, table):
        fs, db, t = table
        for i in range(6):
            t.insert((i,), (f"n{i % 2}", i))
        db.close()
        db2 = Database(fs, journal_mode="wal")
        t2 = db2.table("people")
        assert "by_name" in t2.indexes
        assert len(list(t2.lookup_by("by_name", ("n0",)))) == 3

    def test_index_respects_transactions(self, table):
        _, db, t = table
        db.begin()
        t.insert((1,), ("temp", 1))
        db.rollback()
        assert list(t.lookup_by("by_name", ("temp",))) == []
        db.begin()
        t.insert((1,), ("kept", 1))
        db.commit()
        assert list(t.lookup_by("by_name", ("kept",))) == [("kept", 1)]

    def test_fuzz_index_consistency(self, table):
        _, _, t = table
        rng = random.Random(6)
        model = {}
        for step in range(400):
            pk = rng.randrange(60)
            action = rng.random()
            if action < 0.6:
                row = (f"g{rng.randrange(5)}", step)
                t.insert((pk,), row)
                model[pk] = row
            elif pk in model:
                t.delete((pk,))
                del model[pk]
        for group in range(5):
            expected = sorted(v for v in model.values() if v[0] == f"g{group}")
            got = sorted(t.lookup_by("by_name", (f"g{group}",)))
            assert got == expected, group
