"""Unlink-while-open vs the write-back scheduler (PR-8 bugfix).

``Volume.create`` reuses the first free inode slot, so after
``unlink("a"); create("b")`` the two files share a slot offset. Before
the fix, an epoch drain of the *dangling* handle ``a`` (POSIX
unlink-while-open keeps it writable) ran ``persist_size(a)`` and wrote
a's size into the slot that now belongs to ``b`` — silent metadata
corruption visible after the next mount. The scheduler also never heard
about the unlink (``forget`` was only wired to ``close``), and
``drain`` on a closed handle *zeroed* the counters, resurrecting dict
keys ``forget`` had dropped.

These tests fail on the pre-fix tree.
"""

from __future__ import annotations

import random

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.errors import CrashRequested
from repro.fsapi.layout import VolumeLayout
from repro.fsapi.volume import Volume
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice

CONFIG_KW = dict(degree=16, async_writeback=True, writeback_epoch_bytes=8192)


def _fs():
    return MgspFilesystem(device_size=32 << 20, config=MgspConfig(**CONFIG_KW))


def _run_unlink_reuse_workload(fs):
    """create a → write below epoch → unlink a → create b (reuses a's
    slot) → write+fsync b → write a past the epoch boundary (drains)."""
    a = fs.create("a", capacity=64 << 10)
    a.write(0, b"\x11" * 4096)  # below the 8 KiB epoch: no drain yet
    fs.unlink("a")
    b = fs.create("b", capacity=64 << 10)
    assert b.inode.slot_offset == a.inode.slot_offset  # slot reused
    b.write(0, b"\x22" * 100)
    b.fsync()  # b.size == 100 durable in the (shared) slot
    a.write(4096, b"\x33" * 8192)  # crosses the epoch: drains dangling a
    return a, b


def test_drain_of_dangling_handle_must_not_clobber_reused_slot():
    fs = _fs()
    a, b = _run_unlink_reuse_workload(fs)
    assert fs.flusher.epochs >= 1  # the drain actually fired
    assert a.inode.size == 12288  # DRAM mirror of the dangling handle
    # Remount from the media: b owns the slot and must still be 100 bytes.
    volume = Volume.mount(
        fs.device, VolumeLayout.for_device(fs.device.size, log_fraction=0.40)
    )
    assert volume.lookup("b").size == 100
    assert not volume.exists("a")
    # The live fs agrees with the media.
    assert b.inode.size == 100


def test_unlink_forgets_writeback_accounting():
    fs = _fs()
    a = fs.create("a", capacity=64 << 10)
    a.write(0, b"\x11" * 4096)
    key = a.inode.id
    assert fs.flusher._fresh_bytes.get(key) == 4096
    fs.unlink("a")
    assert key not in fs.flusher._fresh_bytes
    assert key not in fs.flusher._fresh_ops


def test_drain_on_closed_handle_does_not_resurrect_counters():
    fs = _fs()
    a = fs.create("a", capacity=64 << 10)
    a.write(0, b"\x11" * 1024)
    key = a.inode.id
    a.close()  # close() → forget(): counters dropped
    assert key not in fs.flusher._fresh_bytes
    fs.flusher.drain(a)  # late drain of a closed handle: must stay a no-op
    assert key not in fs.flusher._fresh_bytes
    assert key not in fs.flusher._fresh_ops


def test_close_of_unlinked_handle_leaves_reused_slot_alone():
    """close() also persists size; it must respect the unlinked flag."""
    fs = _fs()
    a, b = _run_unlink_reuse_workload(fs)
    a.close()
    volume = Volume.mount(
        fs.device, VolumeLayout.for_device(fs.device.size, log_fraction=0.40)
    )
    assert volume.lookup("b").size == 100


def _build_crashed(crash_after):
    fs = _fs()
    fs.device.drain()
    fs.device.crash_plan = CrashPlan(crash_after)
    try:
        _run_unlink_reuse_workload(fs)
    except CrashRequested:
        return fs
    return None


def test_crash_sweep_unlink_reuse_never_corrupts_survivor():
    """Sweep crash points through the unlink/reuse sequence: at every
    point, under seeded persistence subsets, a recovered image must show
    b (if it exists) with a legal size — never a's 12288 — and recovery
    must be idempotent."""
    rng = random.Random(77)
    swept = 0
    for crash_after in range(1, 2000, 13):
        fs = _build_crashed(crash_after)
        if fs is None:
            break
        swept += 1
        words = fs.device.unfenced_words()
        subsets = [(), tuple(words)]
        if words:
            subsets.append(tuple(w for w in words if rng.random() < 0.5))
        for subset in subsets:
            image = fs.device.crash_image(persist_words=subset)
            fs2, _ = recover(
                NvmDevice.from_image(bytes(image)), config=MgspConfig(**CONFIG_KW)
            )
            if fs2.volume.exists("b"):
                size = fs2.volume.lookup("b").size
                assert size in (0, 100), f"crash_after={crash_after}: b.size={size}"
                if size:
                    data = fs2.open("b").read(0, 100)
                    assert data == b"\x22" * 100
                    fs2.close_all() if hasattr(fs2, "close_all") else None
            # Idempotence: recovering the recovered image changes nothing.
            stable = bytes(fs2.device.crash_image(persist_words=()))
            fs3, _ = recover(
                NvmDevice.from_image(stable), config=MgspConfig(**CONFIG_KW)
            )
            assert bytes(fs3.device.crash_image(persist_words=())) == stable
    assert swept >= 5, swept
