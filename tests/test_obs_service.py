"""Multi-shard service observability: conservation and the
disabled-mode determinism gate.

The service attaches telemetry to N shards at once (one registry, N
devices). Two contracts: the conservation laws hold per shard, and
turning all instrumentation off — or adding flight recorders to every
shard — changes nothing the service reports.
"""

from __future__ import annotations

from repro.bench.provenance import conservation_status, provenance
from repro.service.service import ServiceConfig, run_service_workload

TENANTS = 12
SHARDS = 3


def _run(**overrides):
    kwargs = dict(shards=SHARDS)
    kwargs.update(overrides)
    return run_service_workload(
        ServiceConfig(**kwargs), tenants=TENANTS, ops_per_tenant=4,
        return_service=True,
    )


def _durable_state(service):
    out = []
    for fs in service.shards:
        device = fs.device
        kept = sorted(device.unfenced_words())
        out.append(
            (vars(device.stats), bytes(device.crash_image(persist_words=kept)))
        )
    return out


def test_multi_shard_conservation():
    report, service = _run()
    assert len(service.shards) == SHARDS
    telemetries = [fs.obs for fs in service.shards]
    assert all(tel.enabled for tel in telemetries)
    assert conservation_status(telemetries) == "ok"
    # and each shard individually
    for tel in telemetries:
        assert conservation_status([tel]) == "ok"
    assert report.total_bytes > 0


def test_disabled_mode_byte_identical():
    """telemetry=False must not move a single reported number or byte."""
    on_report, on_service = _run(telemetry=True)
    off_report, off_service = _run(telemetry=False)
    assert not any(fs.obs.enabled for fs in off_service.shards)
    assert on_report == off_report
    assert _durable_state(on_service) == _durable_state(off_service)
    assert conservation_status(fs.obs for fs in off_service.shards) == "disabled"


def test_flight_on_every_shard_is_non_perturbing():
    plain_report, plain_service = _run()
    wired_report, wired_service = _run(flight_capacity=128)
    assert all(f is not None for f in wired_service.flights)
    assert any(f.recorded > 0 for f in wired_service.flights)
    assert plain_report == wired_report
    assert _durable_state(plain_service) == _durable_state(wired_service)


def test_provenance_stamp_shape():
    _, service = _run()
    stamp = provenance(
        seed=42,
        config={"tenants": TENANTS, "shards": SHARDS},
        telemetries=[fs.obs for fs in service.shards],
    )
    assert stamp == {
        "seed": 42,
        "config_digest": stamp["config_digest"],
        "conservation": "ok",
    }
    assert len(stamp["config_digest"]) == 12
    # digest depends only on the config payload
    again = provenance(seed=42, config={"shards": SHARDS, "tenants": TENANTS},
                       telemetries=())
    assert again["config_digest"] == stamp["config_digest"]
    assert again["conservation"] == "disabled"


def test_sweep_rows_carry_provenance():
    from repro.service.harness import SweepSpec, run_cell

    row = run_cell(SweepSpec(), tenants=8, shards=2)
    assert row["provenance"]["seed"] == 42
    assert row["provenance"]["conservation"] == "ok"
    assert len(row["provenance"]["config_digest"]) == 12
