"""Lock emission on the MGSP READ path (greedy gating, IR/R modes)."""

from __future__ import annotations

import pytest

from repro.core import MgspConfig, MgspFilesystem

CAP = 1 << 20


def make_fs(**cfg):
    params = {"degree": 16}
    params.update(cfg)
    return MgspFilesystem(device_size=64 << 20, config=MgspConfig(**params))


def lock_events(fs):
    events = []
    for trace in fs.take_traces():
        for seg in trace.segments:
            if seg[0] in ("lock", "unlock"):
                events.append(seg)
    return events


class TestReadLocks:
    def test_single_handle_reads_use_greedy_lock(self):
        fs = make_fs()
        f = fs.create("x", CAP)
        f.write(0, b"data" * 1024)
        fs.take_traces()
        f.read(0, 4096)
        events = lock_events(fs)
        locks = [e for e in events if e[0] == "lock"]
        assert len(locks) == 1  # one greedy lock, single reference
        assert locks[0][2] == "R"

    def test_greedy_disabled_uses_mgl_path(self):
        fs = make_fs(greedy_locking=False, lazy_intention_locks=False)
        f = fs.create("x", CAP)
        f.write(0, b"data" * 1024)
        fs.take_traces()
        f.read(0, 4096)
        locks = [e for e in lock_events(fs) if e[0] == "lock"]
        modes = [e[2] for e in locks]
        assert modes.count("IR") >= 1  # intention locks down the path
        assert modes[-1] == "R"

    def test_write_locks_use_w_modes(self):
        fs = make_fs(greedy_locking=False, lazy_intention_locks=False)
        f = fs.create("x", CAP)
        fs.take_traces()
        f.write(0, b"w" * 4096)
        locks = [e for e in lock_events(fs) if e[0] == "lock"]
        modes = [e[2] for e in locks]
        assert set(modes) <= {"IW", "W"}
        assert "W" in modes

    def test_lock_unlock_balanced_per_op(self):
        fs = make_fs(greedy_locking=False, lazy_intention_locks=False)
        f = fs.create("x", CAP)
        fs.take_traces()
        f.write(0, b"w" * 4096)
        f.read(0, 4096)
        events = lock_events(fs)
        assert len([e for e in events if e[0] == "lock"]) == len(
            [e for e in events if e[0] == "unlock"]
        )

    def test_file_lock_mode_for_reads(self):
        fs = make_fs(fine_grained_locking=False)
        f = fs.create("x", CAP)
        f.write(0, b"x" * 200)
        fs.take_traces()
        f.read(0, 100)
        locks = [e for e in lock_events(fs) if e[0] == "lock"]
        assert locks == [("lock", ("mgsp-file", f.inode.id), "R")]

    def test_empty_read_takes_no_locks(self):
        fs = make_fs(fine_grained_locking=False)
        f = fs.create("x", CAP)
        fs.take_traces()
        f.read(0, 100)  # size 0: clipped to nothing
        assert lock_events(fs) == []


class TestReplayConservation:
    """Structural properties any correct replay must satisfy."""

    def test_makespan_at_least_busiest_thread(self):
        from repro.nvm.timing import TimingModel
        from repro.sim.engine import ReplayEngine
        from repro.sim.trace import OpTrace

        engine = ReplayEngine(TimingModel(channels=4, lock_ns=0.0))
        traces = [
            [OpTrace(segments=[("compute", 100.0 * (t + 1)), ("io", 40.0)])]
            for t in range(4)
        ]
        result = engine.run(traces)
        busiest = max(t.compute_ns + t.io_ns for t in result.threads)
        assert result.makespan_ns >= busiest

    def test_serial_equals_sum(self):
        from repro.nvm.timing import TimingModel
        from repro.sim.engine import ReplayEngine
        from repro.sim.trace import OpTrace

        engine = ReplayEngine(TimingModel(channels=4, lock_ns=0.0))
        serial = [
            [
                OpTrace(segments=[("lock", "g", "W"), ("compute", 100.0), ("unlock", "g")])
                for _ in range(3)
            ]
            for _ in range(2)
        ]
        result = engine.run(serial)
        assert result.makespan_ns >= 600.0  # fully serialized compute
