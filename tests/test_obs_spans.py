"""Span mechanics: nesting, self-healing, conservation, NullSink."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.obs.attribution import (
    UNATTRIBUTED,
    layer_of,
    time_breakdown,
    write_breakdown,
)
from repro.obs.spans import NULL_SINK, NullSink, Telemetry


class FakeClock:
    def __init__(self):
        self.clock_ns = 0.0


def make_tel():
    clock = FakeClock()
    device = SimpleNamespace(stats=SimpleNamespace(stored_bytes=0))
    tel = Telemetry()
    tel.bind([clock], device)
    return tel, clock, device


def test_nested_spans_self_vs_inclusive():
    tel, clock, device = make_tel()
    outer = tel.span_begin("op.write")
    clock.clock_ns += 10
    inner = tel.span_begin("write.data")
    clock.clock_ns += 30
    device.stats.stored_bytes += 4096
    tel.span_end(inner)
    clock.clock_ns += 5
    tel.span_end(outer)

    data = tel.spans["write.data"]
    op = tel.spans["op.write"]
    assert data.total_ns == 30 and data.self_ns == 30
    assert data.self_bytes == 4096
    assert op.total_ns == 45
    assert op.self_ns == 15  # inclusive minus the nested span
    assert op.self_bytes == 0
    assert tel.attributed_ns() == 45
    assert tel.attributed_bytes() == 4096


def test_conservation_with_unattributed_residual():
    tel, clock, device = make_tel()
    clock.clock_ns += 7  # before any span: unattributed
    with tel.span("op.write"):
        clock.clock_ns += 13
        device.stats.stored_bytes += 100
    clock.clock_ns += 2  # after: unattributed
    device.stats.stored_bytes += 28  # outside any span

    times = dict(time_breakdown(tel))
    assert times[UNATTRIBUTED] == pytest.approx(9)
    assert sum(times.values()) == pytest.approx(tel.total_ns()) == pytest.approx(22)
    sizes = dict(write_breakdown(tel))
    assert sizes[UNATTRIBUTED] == 28
    assert sum(sizes.values()) == tel.total_bytes() == 128


def test_span_end_heals_orphaned_children():
    """An exception that unwinds past a child's span_end must not
    corrupt the stack: ending the parent discards the orphans."""
    tel, clock, _ = make_tel()
    outer = tel.span_begin("op.write")
    clock.clock_ns += 5
    orphan = tel.span_begin("write.data")
    clock.clock_ns += 5
    # exception unwinds here: orphan never closed
    tel.span_end(outer)
    assert tel.spans["op.write"].total_ns == 10
    # The orphan was discarded, not recorded...
    assert "write.data" not in tel.spans
    # ...and closing it late is a silent no-op, not a corruption.
    tel.span_end(orphan)
    assert "write.data" not in tel.spans
    assert not tel._stack


def test_span_contextmanager_closes_on_exception():
    tel, clock, _ = make_tel()
    with pytest.raises(RuntimeError):
        with tel.span("op.write"):
            clock.clock_ns += 4
            raise RuntimeError("boom")
    assert tel.spans["op.write"].count == 1
    assert not tel._stack


def test_multiple_clocks_sum():
    fg, bg = FakeClock(), FakeClock()
    tel = Telemetry()
    tel.bind([fg, bg], None)
    frame = tel.span_begin("flusher.drain")
    fg.clock_ns += 3
    bg.clock_ns += 40  # background flusher work counts too
    tel.span_end(frame)
    assert tel.spans["flusher.drain"].total_ns == 43
    assert tel.total_ns() == 43


def test_lock_wait_accounting():
    tel, _, _ = make_tel()
    key = ("block", 1, 7)
    tel.lock_wait(key, 100.0)
    tel.lock_wait(key, 50.0)
    tel.lock_wait(("mgl", 2), 10.0)
    assert tel.lock_waits[key] == [2, 150.0]
    assert tel.registry.counter("lock_waits_total").value == 3
    assert tel.registry.histogram("lock_wait_ns").count == 3


def test_span_metrics_emitted():
    tel, clock, _ = make_tel()
    with tel.span("metalog.commit"):
        clock.clock_ns += 12
    assert tel.registry.counter("span_calls_total", span="metalog.commit").value == 1
    assert tel.registry.histogram("span_ns", span="metalog.commit").count == 1


def test_null_sink_is_inert():
    assert NULL_SINK.enabled is False
    assert isinstance(NULL_SINK, NullSink)
    assert NULL_SINK.span_begin("anything") is None
    NULL_SINK.span_end(None)  # no-op
    NULL_SINK.lock_wait(("k",), 5.0)  # no-op
    with NULL_SINK.span("anything"):
        pass
    assert NULL_SINK.now() == 0.0


def test_layer_mapping():
    assert layer_of("write.data") == "data"
    assert layer_of("write.log") == "log"
    assert layer_of("write.plan") == "plan"
    assert layer_of("write.metadata") == "metadata"
    assert layer_of("metalog.commit") == "metadata"
    assert layer_of("mgl.acquire") == "lock"
    assert layer_of("checkpoint.writeback") == "checkpoint"
    assert layer_of("flusher.drain") == "checkpoint"
    assert layer_of("op.checkpoint") == "checkpoint"
    assert layer_of("txn.commit") == "txn"
    assert layer_of("op.txn-commit") == "txn"
    assert layer_of("op.read") == "read"
    assert layer_of("op.write") == "syscall"
    assert layer_of("recovery.rollforward") == "recovery"
    assert layer_of("mmio.flush") == "mmio"
    assert layer_of("something.else") == "other"
