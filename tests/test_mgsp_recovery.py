"""Crash consistency: atomicity + durability under adversarial crashes."""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice

CAP = 256 * 1024


def fresh_fs():
    fs = MgspFilesystem(device_size=32 << 20, config=MgspConfig(degree=16))
    f = fs.create("data", capacity=CAP)
    fs.device.drain()
    return fs, f


def crash_and_recover(fs, persist_probability=0.5, seed=1):
    image = fs.device.crash_image(rng=random.Random(seed), persist_probability=persist_probability)
    device = NvmDevice.from_image(bytes(image))
    return recover(device, config=MgspConfig(degree=16))


class TestRecoveryBasics:
    def test_clean_state_recovers_trivially(self):
        fs, f = fresh_fs()
        f.write(0, b"committed")
        fs2, stats = crash_and_recover(fs)
        f2 = fs2.open("data")
        assert f2.read(0, 9) == b"committed"
        assert stats.files_scanned >= 1

    def test_recovery_drops_all_logs(self):
        fs, f = fresh_fs()
        for i in range(10):
            f.write(i * 4096, bytes([i + 1]) * 4096)
        fs2, stats = crash_and_recover(fs)
        f2 = fs2.open("data")
        assert f2.tree.nodes == {}  # node table cleared
        for i in range(10):
            assert f2.read(i * 4096, 4096) == bytes([i + 1]) * 4096
        assert stats.log_bytes_written_back > 0

    def test_recovery_is_idempotent(self):
        fs, f = fresh_fs()
        f.write(0, b"x" * 5000)
        image = bytes(fs.device.crash_image(rng=random.Random(3)))
        fs_a, _ = recover(NvmDevice.from_image(image), config=MgspConfig(degree=16))
        fs_a.device.drain()
        fs_b, stats_b = recover(
            NvmDevice.from_image(bytes(fs_a.device.buffer.snapshot_durable())),
            config=MgspConfig(degree=16),
        )
        assert stats_b.entries_replayed == 0
        assert fs_b.open("data").read(0, 5000) == b"x" * 5000

    def test_recovery_reports_virtual_time(self):
        fs, f = fresh_fs()
        f.write(0, b"x" * 40960)
        _, stats = crash_and_recover(fs)
        assert stats.elapsed_ns > 0


def run_crashy_workload(crash_after, seed, persist_probability):
    """Returns (ok, detail) for one crash point."""
    fs, f = fresh_fs()
    rng = random.Random(seed)
    ref = bytearray(CAP)
    pending = None
    fs.device.crash_plan = CrashPlan(crash_after)
    try:
        for _ in range(10_000):
            off = rng.randrange(0, CAP - 1)
            ln = min(rng.choice([1, 100, 2048, 4096, 8192, 40000]), CAP - off)
            payload = bytes([rng.randrange(1, 256)]) * ln
            pending = (off, ln, payload)
            f.write(off, payload)
            ref[off : off + ln] = payload
            pending = None
        return None
    except CrashRequested:
        pass
    image = fs.device.crash_image(
        rng=random.Random(seed * 31 + crash_after), persist_probability=persist_probability
    )
    fs2, _ = recover(NvmDevice.from_image(bytes(image)), config=MgspConfig(degree=16))
    f2 = fs2.open("data")
    got = f2.read(0, f2.size).ljust(CAP, b"\0")
    old = bytes(ref)
    if pending is None:
        return got == old, "no in-flight op"
    off, ln, payload = pending
    new = bytearray(ref)
    new[off : off + ln] = payload
    ok = got == old or got == bytes(new)
    return ok, f"in-flight write [{off}, {off + ln})"


@pytest.mark.parametrize("persist_probability", [0.0, 0.5, 1.0])
def test_crash_atomicity_and_durability_sweep(persist_probability):
    """Crash at dozens of points; every completed write must survive and
    the in-flight write must be all-or-nothing."""
    for crash_after in range(1, 900, 53):
        result = run_crashy_workload(crash_after, seed=11, persist_probability=persist_probability)
        if result is None:
            break
        ok, detail = result
        assert ok, f"crash_after={crash_after} p={persist_probability}: {detail}"


def test_crash_during_recovery_is_recoverable():
    """Recovery itself may crash; rerunning it must still converge."""
    fs, f = fresh_fs()
    for i in range(5):
        f.write(i * 10_000, bytes([i + 1]) * 5000)
    image = bytes(fs.device.crash_image(rng=random.Random(5)))

    # First recovery attempt crashes partway through.
    device = NvmDevice.from_image(image)
    device.crash_plan = CrashPlan(crash_after=30)
    try:
        recover(device, config=MgspConfig(degree=16))
    except CrashRequested:
        pass
    image2 = bytes(device.crash_image(rng=random.Random(6)))

    fs2, _ = recover(NvmDevice.from_image(image2), config=MgspConfig(degree=16))
    f2 = fs2.open("data")
    for i in range(5):
        assert f2.read(i * 10_000, 5000) == bytes([i + 1]) * 5000


def test_torn_metalog_entry_means_op_never_happened():
    """If the crash tears the metadata-log entry, recovery must keep the
    old data (checksum rejects the entry)."""
    fs, f = fresh_fs()
    f.write(0, b"old" * 2000)
    fs.device.drain()
    # Crash on the second fence of the op (the metalog commit fence) and
    # persist NOTHING unfenced: the entry cannot be durable.
    fs.device.crash_plan = CrashPlan(crash_after=1, kinds={"fence"})
    try:
        f.write(100, b"NEW" * 2000)
    except CrashRequested:
        pass
    fs2, _ = recover(
        NvmDevice.from_image(bytes(fs.device.crash_image(persist_words=[]))),
        config=MgspConfig(degree=16),
    )
    data = fs2.open("data").read(0, 6000)
    assert data == b"old" * 2000


def test_multiple_files_recover_independently():
    fs = MgspFilesystem(device_size=32 << 20, config=MgspConfig(degree=16))
    a = fs.create("a", capacity=64 << 10)
    b = fs.create("b", capacity=64 << 10)
    fs.device.drain()
    a.write(0, b"A" * 8192)
    b.write(0, b"B" * 8192)
    fs2, stats = (lambda img: recover(NvmDevice.from_image(img), config=MgspConfig(degree=16)))(
        bytes(fs.device.crash_image(rng=random.Random(2)))
    )
    assert fs2.open("a").read(0, 8192) == b"A" * 8192
    assert fs2.open("b").read(0, 8192) == b"B" * 8192
    assert stats.files_scanned >= 2
